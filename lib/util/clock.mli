(** The process-wide time source shared by {!Telemetry} (timers, trace
    spans) and {!Journal} (event timestamps). One injectable reading so
    deterministic tests drive both layers from a single fake clock. *)

val now : unit -> float
(** Current reading of the installed clock, seconds. Defaults to
    [Unix.gettimeofday] - wall-clock time, which is {e not} monotonic:
    consumers computing elapsed durations must clamp negative
    differences to zero (NTP steps and leap smears can move the clock
    backwards mid-measurement). *)

val set : (unit -> float) -> unit
(** Replace the time source - used by tests that need deterministic
    timestamps and durations. {!Telemetry.set_clock} is an alias. *)
