examples/project_repair.ml: List Vc_bdd Vc_cube Vc_mooc
