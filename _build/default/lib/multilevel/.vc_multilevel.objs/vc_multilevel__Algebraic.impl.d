lib/multilevel/algebraic.ml: Array Hashtbl List Option String Vc_cube Vc_network
