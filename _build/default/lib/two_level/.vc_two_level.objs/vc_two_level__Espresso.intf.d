lib/two_level/espresso.mli: Pla Vc_cube
