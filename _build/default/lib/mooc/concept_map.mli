(** The concept map of the traditional 15-16 week course (Section 2 /
    Fig. 1): every lecture slide of the classroom class partitioned into
    unique EDA concepts with slide counts, used to decide what the 8-week
    MOOC keeps and at what depth.

    Invariants (checked by the test suite): 102 concepts, 948 slides -
    the numbers the paper reports for the analysis. *)

type concept = {
  area : string;
  concept : string;
  slides : int;
  in_mooc : bool;  (** Kept for the 8-week MOOC version. *)
}

val all : concept list

val total_slides : int
(** 948. *)

val total_concepts : int
(** 102. *)

val areas : string list
(** Distinct areas, course order. *)

val by_area : string -> concept list

val kept : concept list

val kept_slide_fraction : float
(** Fraction of classroom slides whose concepts survive into the MOOC
    (the paper says the MOOC comprises roughly 50-60% of the material). *)

val fig1_rows : (string * int) list
(** The Fig. 1 snapshot: BDD-and-Boolean-algebra concepts with slide
    counts, largest first. *)

val render_fig1 : unit -> string
(** ASCII bar chart matching Fig. 1's content. *)
