(* Continuous wall-clock profiler: every domain doing attributable work
   publishes an ambient frame stack ("worker" / "cache" / "execute" /
   tool name, pushed with [with_frame]), and a sampler tick walks every
   published stack and bumps a folded-stack aggregate - the classic
   "where is time going" histogram, collected while the service runs.

   The write side is near-zero overhead: a push is one cons plus one
   mutable-field store on the owning domain's cell, a pop restores the
   saved list. The sampler reads [cell.stack] from another domain
   without any lock. That read is a deliberate benign race: the field
   always holds an immutable list, so under the OCaml 5 memory model a
   racy read yields some previously published list (possibly one frame
   stale, never torn). A sample is a statistical observation, so
   staleness of one push/pop is noise, not corruption.

   Aggregates live under their own mutex (touched once per tick, never
   on the frame hot path). A domain with an empty stack at tick time is
   attributed to "idle" - workers call [register] when they start so
   their idle time is visible from the first tick. *)

type cell = { mutable stack : string list (* newest frame first *) }

let mu = Mutex.create ()
let all_cells : cell list ref = ref []

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { stack = [] } in
      Mutex.protect mu (fun () -> all_cells := c :: !all_cells);
      c)

let register () = ignore (Domain.DLS.get cell_key)

let with_frame name f =
  let c = Domain.DLS.get cell_key in
  let saved = c.stack in
  c.stack <- name :: saved;
  Fun.protect ~finally:(fun () -> c.stack <- saved) f

let current_stack () = List.rev (Domain.DLS.get cell_key).stack

(* ------------------------------------------------------------------ *)
(* folded-stack aggregates                                             *)
(* ------------------------------------------------------------------ *)

let agg_mu = Mutex.create ()
let agg : (string, int ref) Hashtbl.t = Hashtbl.create 64
let tick_count = ref 0
let sample_count = ref 0

let idle_frame = "idle"

let fold_of_stack = function
  | [] -> idle_frame
  | frames -> String.concat ";" (List.rev frames)

let tick ?(journal = false) () =
  let cells = Mutex.protect mu (fun () -> !all_cells) in
  (* group this tick's observations so the journal carries one event
     per distinct stack, not one per domain *)
  let this_tick : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = fold_of_stack c.stack in
      match Hashtbl.find_opt this_tick key with
      | Some r -> Stdlib.incr r
      | None -> Hashtbl.add this_tick key (ref 1))
    cells;
  let tick_no =
    Mutex.protect agg_mu (fun () ->
        Stdlib.incr tick_count;
        Hashtbl.iter
          (fun key r ->
            sample_count := !sample_count + !r;
            match Hashtbl.find_opt agg key with
            | Some total -> total := !total + !r
            | None -> Hashtbl.add agg key (ref !r))
          this_tick;
        !tick_count)
  in
  if journal then
    Hashtbl.iter
      (fun key r ->
        Journal.emit ~severity:Journal.Debug ~component:"profile"
          ~attrs:
            [
              ("tick", string_of_int tick_no);
              ("stack", key);
              ("count", string_of_int !r);
            ]
          "sample")
      this_tick

let ticks () = Mutex.protect agg_mu (fun () -> !tick_count)
let samples () = Mutex.protect agg_mu (fun () -> !sample_count)

let folded () =
  Mutex.protect agg_mu (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) agg [])
  |> List.sort (fun (ka, ca) (kb, cb) ->
         match compare cb ca with 0 -> compare ka kb | c -> c)

let reset () =
  Mutex.protect agg_mu (fun () ->
      Hashtbl.reset agg;
      tick_count := 0;
      sample_count := 0);
  (* only the caller's own stack can be cleared - other domains own
     theirs (mirrors Telemetry.reset) *)
  (Domain.DLS.get cell_key).stack <- []

let to_folded_text stacks =
  let b = Buffer.create 256 in
  List.iter
    (fun (stack, n) -> Buffer.add_string b (Printf.sprintf "%s %d\n" stack n))
    stacks;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* flamegraph SVG                                                      *)
(* ------------------------------------------------------------------ *)

(* The standard flamegraph layout: x = share of samples, y = stack
   depth (root row at the bottom), siblings sorted by name for a
   deterministic image. Same hand-built-SVG idiom as
   Vc_route.Render.result_svg - Buffer + printf, no dependencies. *)

type node = { mutable n_count : int; n_kids : (string, node) Hashtbl.t }

let new_node () = { n_count = 0; n_kids = Hashtbl.create 4 }

let build_tree stacks =
  let root = new_node () in
  List.iter
    (fun (stack, count) ->
      let rec insert node = function
        | [] -> ()
        | frame :: rest ->
          let kid =
            match Hashtbl.find_opt node.n_kids frame with
            | Some k -> k
            | None ->
              let k = new_node () in
              Hashtbl.add node.n_kids frame k;
              k
          in
          (* inclusive counts: a frame's width covers its descendants *)
          kid.n_count <- kid.n_count + count;
          insert kid rest
      in
      insert root (String.split_on_char ';' stack))
    stacks;
  root

let rec tree_depth node =
  Hashtbl.fold (fun _ k acc -> max acc (1 + tree_depth k)) node.n_kids 0

(* a stable warm palette keyed on the frame name *)
let frame_color name =
  let h = Hashtbl.hash name in
  let r = 200 + (h mod 56)
  and g = 70 + (h / 56 mod 120)
  and b = 30 + (h / 7919 mod 50) in
  Printf.sprintf "rgb(%d,%d,%d)" r g b

let xml_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let flamegraph_svg ?(title = "continuous profile") ?(ticks = 0) stacks =
  let root = build_tree stacks in
  let total =
    Hashtbl.fold (fun _ k acc -> acc + k.n_count) root.n_kids 0
  in
  let width = 1000.0 in
  let row_h = 16.0 in
  let header_h = 24.0 in
  let depth = max 1 (tree_depth root) in
  let height = header_h +. (float_of_int depth *. row_h) +. 4.0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
        height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"monospace\" \
        font-size=\"11\">\n"
       width height width height);
  Buffer.add_string b
    (Printf.sprintf "<!-- flamegraph samples=%d root_samples=%d ticks=%d -->\n"
       total total ticks);
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"4\" y=\"15\" font-size=\"13\">%s - %d sample(s), %d \
        tick(s)</text>\n"
       (xml_escape title) total ticks);
  let scale = if total = 0 then 0.0 else width /. float_of_int total in
  let rect ~x ~w ~level name count =
    (* rows grow upward from the bottom edge, flamegraph style *)
    let y = height -. 2.0 -. (float_of_int (level + 1) *. row_h) in
    let pct =
      if total = 0 then 0.0
      else 100.0 *. float_of_int count /. float_of_int total
    in
    Buffer.add_string b
      (Printf.sprintf
         "<g><title>%s: %d sample(s), %.1f%%</title><rect x=\"%.2f\" \
          y=\"%.2f\" width=\"%.2f\" height=\"%.1f\" fill=\"%s\" \
          stroke=\"white\" stroke-width=\"0.5\"/>"
         (xml_escape name) count pct x y w (row_h -. 1.0) (frame_color name));
    if w >= 40.0 then begin
      let max_chars = int_of_float (w /. 7.0) in
      let label =
        if String.length name <= max_chars then name
        else String.sub name 0 (max 1 (max_chars - 1)) ^ "~"
      in
      Buffer.add_string b
        (Printf.sprintf "<text x=\"%.2f\" y=\"%.2f\" fill=\"black\">%s</text>"
           (x +. 3.0)
           (y +. row_h -. 5.0)
           (xml_escape label))
    end;
    Buffer.add_string b "</g>\n"
  in
  let sorted_kids node =
    Hashtbl.fold (fun name k acc -> (name, k) :: acc) node.n_kids []
    |> List.sort compare
  in
  let rec layout node ~x ~level =
    List.fold_left
      (fun x (name, kid) ->
        let w = float_of_int kid.n_count *. scale in
        rect ~x ~w ~level name kid.n_count;
        layout kid ~x ~level:(level + 1) |> ignore;
        x +. w)
      x (sorted_kids node)
  in
  ignore (layout root ~x:0.0 ~level:0);
  Buffer.add_string b "</svg>\n";
  Buffer.contents b
