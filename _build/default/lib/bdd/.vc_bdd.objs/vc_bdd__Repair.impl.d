lib/bdd/repair.ml: Bdd List Printf Vc_cube
