(* ------------------------------------------------------------------ *)
(* dot-stuffing (SMTP-style)                                           *)
(* ------------------------------------------------------------------ *)

let unstuff line =
  if String.length line >= 2 && line.[0] = '.' && line.[1] = '.' then
    String.sub line 1 (String.length line - 1)
  else line

let stuff line =
  if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let read_body ic =
  let rec go acc =
    match In_channel.input_line ic with
    | None | Some "." -> List.rev acc
    | Some line -> go (unstuff line :: acc)
  in
  String.concat "\n" (go [])

(* ------------------------------------------------------------------ *)
(* the protocol engine                                                 *)
(* ------------------------------------------------------------------ *)

type submit_fn = Portal.request -> Portal.outcome

let max_protocol_version = 2

let protocol_help =
  "expected TOOL <name> [<session>] [TRACE <id>], SESSION <id>, LIST, \
   SHUTDOWN or QUIT"

(* When the client supplied a TRACE id, every status line echoes it as
   a trailing " trace=<id>" operand - the backward-compatible hook a
   load generator joins its client-side journal on. *)
let respond ?trace oc status body =
  Out_channel.output_string oc status;
  (match trace with
  | Some id ->
    Out_channel.output_string oc " trace=";
    Out_channel.output_string oc id
  | None -> ());
  Out_channel.output_char oc '\n';
  if body <> "" then
    List.iter
      (fun l ->
        Out_channel.output_string oc (stuff l);
        Out_channel.output_char oc '\n')
      (String.split_on_char '\n' body);
  Out_channel.output_string oc ".\n";
  Out_channel.flush oc

let respond_outcome ?trace oc = function
  | Portal.Executed out -> respond ?trace oc "OK executed" out
  | Portal.Cache_hit out -> respond ?trace oc "OK cache_hit" out
  | Portal.Rejected r ->
    respond ?trace oc
      (Printf.sprintf "ERR %s %s" (Portal.reason_label r)
         (Portal.reason_message r))
      ""

let trace_of_status status =
  match String.rindex_opt status ' ' with
  | Some i
    when String.length status - i > 7
         && String.sub status (i + 1) 6 = "trace=" ->
    Some (String.sub status (i + 7) (String.length status - i - 7))
  | _ -> None

let handle_tool ~input ~output ~submit ~session_id ~trace name =
  (* always read the dot-terminated body first - erroring out before
     consuming it would desynchronize the stream *)
  let body = read_body input in
  match trace with
  | Some id when not (Vc_util.Trace_ctx.is_valid_id id) ->
    respond output "ERR trace invalid trace id (4-64 lowercase hex chars)" ""
  | _ -> (
    match Portal.resolve_tool name with
    | Error msg -> respond ?trace output ("ERR unknown " ^ msg) ""
    | Ok tool ->
      respond_outcome ?trace output
        (submit (Portal.request ?trace ~session:session_id tool body)))

let session_loop ?(session_id = "default") ~input ~output ~submit () =
  (* [proto] is the negotiated protocol version: 1 until the client
     sends HELLO (so a version-less client gets v1 byte-identically),
     then [min requested max_protocol_version]. v2 adds PING. *)
  let rec loop session_id proto =
    match In_channel.input_line input with
    | None -> `Eof
    | Some raw -> (
      let line = String.trim raw in
      match String.split_on_char ' ' line with
      | [ "" ] -> loop session_id proto
      | [ "QUIT" ] -> `Quit
      | [ "SHUTDOWN" ] ->
        respond output "OK shutting down" "";
        `Shutdown
      | [ "HELLO"; v ] -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
          let negotiated = min n max_protocol_version in
          respond output (Printf.sprintf "OK proto %d" negotiated) "";
          loop session_id negotiated
        | _ ->
          respond output "ERR protocol HELLO takes a version number >= 1" "";
          loop session_id proto)
      | [ "PING" ] when proto >= 2 ->
        respond output "OK pong" "";
        loop session_id proto
      | [ "LIST" ] ->
        respond output "OK tools"
          (String.concat "\n"
             (List.map
                (fun t -> t.Portal.tool_name ^ " - " ^ t.Portal.description)
                Portal.all_tools));
        loop session_id proto
      | [ "SESSION"; id ] ->
        respond output ("OK session " ^ id) "";
        loop id proto
      | [ "TOOL"; name ] ->
        handle_tool ~input ~output ~submit ~session_id ~trace:None name;
        loop session_id proto
      | [ "TOOL"; name; "TRACE"; id ] ->
        (* TRACE is a reserved word in the session position *)
        handle_tool ~input ~output ~submit ~session_id ~trace:(Some id) name;
        loop session_id proto
      | [ "TOOL"; name; session ] ->
        (* per-request session: submit on its behalf without switching
           the connection's sticky session *)
        handle_tool ~input ~output ~submit ~session_id:session ~trace:None
          name;
        loop session_id proto
      | [ "TOOL"; name; session; "TRACE"; id ] ->
        handle_tool ~input ~output ~submit ~session_id:session
          ~trace:(Some id) name;
        loop session_id proto
      | _ ->
        respond output ("ERR protocol " ^ protocol_help) "";
        loop session_id proto)
  in
  loop session_id 1

(* ------------------------------------------------------------------ *)
(* TCP server                                                          *)
(* ------------------------------------------------------------------ *)

(* Live connections are tracked in a lock-free registry so [shutdown]
   can run inside a signal handler: it flips atomics and half-closes
   descriptors, never takes a lock. A closed connection is only marked
   (c_closed), not removed - the registry is bounded by the run's total
   connection count and the flag prevents double-shutdown on a reused
   descriptor number. *)
type conn = { c_fd : Unix.file_descr; c_closed : bool Atomic.t }

type listener = {
  l_sock : Unix.file_descr;
  l_port : int;
  l_addr : string;
  l_stopping : bool Atomic.t;
  l_conns : conn list Atomic.t;
  l_active : int Atomic.t;
}

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let listen ?(addr = "127.0.0.1") ~port () =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 64
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Vc_util.Journal.emit ~component:"wire"
    ~attrs:[ ("addr", addr); ("port", string_of_int bound_port) ]
    "listener.start";
  {
    l_sock = sock;
    l_port = bound_port;
    l_addr = addr;
    l_stopping = Atomic.make false;
    l_conns = Atomic.make [];
    l_active = Atomic.make 0;
  }

let port t = t.l_port
let addr t = t.l_addr
let active_connections t = Atomic.get t.l_active

let register_conn t conn =
  let rec add () =
    let cur = Atomic.get t.l_conns in
    if not (Atomic.compare_and_set t.l_conns cur (conn :: cur)) then add ()
  in
  add ()

let shutdown t =
  if not (Atomic.exchange t.l_stopping true) then begin
    (try Unix.close t.l_sock with Unix.Unix_error _ -> ());
    List.iter
      (fun c ->
        if not (Atomic.get c.c_closed) then
          try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
      (Atomic.get t.l_conns)
  end

let handle_connection t ~submit fd =
  let conn = { c_fd = fd; c_closed = Atomic.make false } in
  register_conn t conn;
  Atomic.incr t.l_active;
  let input = Unix.in_channel_of_descr fd in
  let output = Unix.out_channel_of_descr fd in
  let finish () =
    Atomic.set conn.c_closed true;
    (* In_channel.close closes the shared descriptor; flush the write
       side first, ignoring errors from a peer that already hung up *)
    (try Out_channel.flush output with Sys_error _ -> ());
    (try In_channel.close input with Sys_error _ -> ());
    Atomic.decr t.l_active;
    Vc_util.Journal.emit ~component:"wire" "conn.closed"
  in
  Fun.protect ~finally:finish (fun () ->
      Vc_util.Journal.emit ~component:"wire" "conn.accepted";
      match session_loop ~input ~output ~submit () with
      | `Eof | `Quit -> ()
      | `Shutdown -> shutdown t
      | exception Sys_error _ ->
        (* peer reset mid-exchange; treat as EOF *)
        ())

let serve t ~submit =
  (* The accept loop polls instead of blocking indefinitely: a pending
     OCaml signal handler (SIGINT -> [shutdown]) only runs when a
     domain reaches a safepoint, and the kernel may deliver the signal
     to a worker domain parked in [Condition.wait] that never will.
     Returning to OCaml every quarter second guarantees this domain
     processes pending signals itself, making Ctrl-C deterministic
     instead of a thread-delivery lottery. *)
  (try Unix.set_nonblock t.l_sock with Unix.Unix_error _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.l_stopping) then begin
      match Unix.accept t.l_sock with
      | fd, _ ->
        (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
        ignore
          (Domain.spawn (fun () ->
               try handle_connection t ~submit fd
               with e ->
                 Printf.eprintf "wire: connection handler failed: %s\n%!"
                   (Printexc.to_string e)));
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (match Unix.select [ t.l_sock ] [] [] 0.25 with
        | _ -> ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listener closed by [shutdown] *)
        ()
    end
  in
  accept_loop ();
  Vc_util.Journal.emit ~component:"wire"
    ~attrs:[ ("port", string_of_int t.l_port) ]
    "listener.stop"

let drain_connections ?(timeout_s = 5.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if Atomic.get t.l_active = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.01);
      wait ()
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : In_channel.t; oc : Out_channel.t }

  let connect ?(host = "127.0.0.1") ~port () =
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with
    | () -> ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
    }

  let read_reply t =
    match In_channel.input_line t.ic with
    | None -> failwith "wire client: connection closed by server"
    | Some status -> (status, read_body t.ic)

  let submit t ?session ?trace ~tool input =
    let trace_op =
      match trace with Some id -> " TRACE " ^ id | None -> ""
    in
    (match session with
    | None -> Printf.fprintf t.oc "TOOL %s%s\n" tool trace_op
    | Some s -> Printf.fprintf t.oc "TOOL %s %s%s\n" tool s trace_op);
    List.iter
      (fun l ->
        Out_channel.output_string t.oc (stuff l);
        Out_channel.output_char t.oc '\n')
      (String.split_on_char '\n' input);
    Out_channel.output_string t.oc ".\n";
    Out_channel.flush t.oc;
    read_reply t

  let hello t version =
    Printf.fprintf t.oc "HELLO %d\n" version;
    Out_channel.flush t.oc;
    match read_reply t with
    | status, _ -> (
      match String.split_on_char ' ' status with
      | [ "OK"; "proto"; v ] -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> failwith ("wire client: bad HELLO reply: " ^ status))
      | _ -> failwith ("wire client: HELLO rejected: " ^ status))

  let ping t =
    Out_channel.output_string t.oc "PING\n";
    Out_channel.flush t.oc;
    match read_reply t with status, _ -> status = "OK pong"

  let list_tools t =
    Out_channel.output_string t.oc "LIST\n";
    Out_channel.flush t.oc;
    snd (read_reply t)

  let shutdown_server t =
    Out_channel.output_string t.oc "SHUTDOWN\n";
    Out_channel.flush t.oc;
    ignore (read_reply t)

  let close t =
    (try
       Out_channel.output_string t.oc "QUIT\n";
       Out_channel.flush t.oc
     with Sys_error _ -> ());
    try In_channel.close t.ic with Sys_error _ -> ()
end
