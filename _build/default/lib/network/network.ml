module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube
module Expr = Vc_cube.Expr

type node = {
  name : string;
  fanins : string list;
  func : Cover.t;
}

type t = {
  net_name : string;
  net_inputs : string list;
  net_outputs : string list;
  nodes : (string, node) Hashtbl.t;
}

let create ?(name = "network") ~inputs ~outputs () =
  {
    net_name = name;
    net_inputs = inputs;
    net_outputs = outputs;
    nodes = Hashtbl.create 64;
  }

let name t = t.net_name
let inputs t = t.net_inputs
let outputs t = t.net_outputs

let add_node t ~name ~fanins ~func =
  if List.mem name t.net_inputs then
    invalid_arg ("Network.add_node: " ^ name ^ " is a primary input");
  if func.Cover.num_vars <> List.length fanins then
    invalid_arg "Network.add_node: function width differs from fanin count";
  Hashtbl.replace t.nodes name { name; fanins; func }

let remove_node t name = Hashtbl.remove t.nodes name

let find_node t name = Hashtbl.find_opt t.nodes name

let node_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.nodes []

let node_count t = Hashtbl.length t.nodes

let literal_count t =
  Hashtbl.fold
    (fun _ node acc ->
      acc
      + List.fold_left
          (fun a c -> a + Cube.literal_count c)
          0 node.func.Cover.cubes)
    t.nodes 0

let is_input t s = List.mem s t.net_inputs

let topological_order t =
  let visited = Hashtbl.create 64 in
  (* 0 = in progress, 1 = done *)
  let order = ref [] in
  let rec visit signal =
    if is_input t signal then ()
    else
      match Hashtbl.find_opt visited signal with
      | Some 1 -> ()
      | Some _ -> failwith ("Network: combinational cycle through " ^ signal)
      | None -> begin
        match Hashtbl.find_opt t.nodes signal with
        | None -> failwith ("Network: undefined signal " ^ signal)
        | Some node ->
          Hashtbl.add visited signal 0;
          List.iter visit node.fanins;
          Hashtbl.replace visited signal 1;
          order := signal :: !order
      end
  in
  List.iter visit t.net_outputs;
  (* also include nodes not in any output cone, for completeness *)
  List.iter visit (node_names t);
  List.rev !order

let fanouts t signal =
  Hashtbl.fold
    (fun name node acc -> if List.mem signal node.fanins then name :: acc else acc)
    t.nodes []

let depth t =
  let order = topological_order t in
  let level = Hashtbl.create 64 in
  let level_of s =
    if is_input t s then 0 else Option.value ~default:0 (Hashtbl.find_opt level s)
  in
  List.iter
    (fun name ->
      let node = Hashtbl.find t.nodes name in
      let d = List.fold_left (fun acc f -> max acc (level_of f)) 0 node.fanins in
      Hashtbl.replace level name (d + 1))
    order;
  List.fold_left (fun acc o -> max acc (level_of o)) 0 t.net_outputs

let simulate t env =
  let values = Hashtbl.create 64 in
  let value_of s =
    if is_input t s then env s
    else
      match Hashtbl.find_opt values s with
      | Some v -> v
      | None -> failwith ("Network.simulate: signal not evaluated: " ^ s)
  in
  let order = topological_order t in
  List.iter
    (fun name ->
      let node = Hashtbl.find t.nodes name in
      let point = Array.of_list (List.map value_of node.fanins) in
      Hashtbl.replace values name (Cover.eval node.func point))
    order;
  List.map (fun o -> (o, value_of o)) t.net_outputs

let output_expr t output =
  let memo = Hashtbl.create 64 in
  let rec expr_of s =
    if is_input t s then Expr.Var s
    else
      match Hashtbl.find_opt memo s with
      | Some e -> e
      | None -> begin
        match Hashtbl.find_opt t.nodes s with
        | None -> failwith ("Network: undefined signal " ^ s)
        | Some node ->
          let fanin_exprs = List.map expr_of node.fanins in
          let sop = Cover.to_expr node.fanins node.func in
          (* substitute fanin expressions for the fanin variable names *)
          let rec subst = function
            | Expr.Const b -> Expr.Const b
            | Expr.Var v ->
              let rec pick names exprs =
                match (names, exprs) with
                | n :: _, e :: _ when n = v -> e
                | _ :: ns, _ :: es -> pick ns es
                | _ -> Expr.Var v
              in
              pick node.fanins fanin_exprs
            | Expr.Not a -> Expr.Not (subst a)
            | Expr.And (a, b) -> Expr.And (subst a, subst b)
            | Expr.Or (a, b) -> Expr.Or (subst a, subst b)
            | Expr.Xor (a, b) -> Expr.Xor (subst a, subst b)
          in
          let e = Expr.simplify (subst sop) in
          Hashtbl.add memo s e;
          e
      end
  in
  expr_of output

let copy t = { t with nodes = Hashtbl.copy t.nodes }

let of_exprs ?name ~inputs bindings =
  let t =
    create ?name ~inputs ~outputs:(List.map fst bindings) ()
  in
  List.iter
    (fun (out, e) ->
      let support = Expr.vars e in
      let canonical = Cover.of_expr support e in
      (* the canonical minterm cover is huge; minimize it on the way in *)
      let func =
        Vc_two_level.Espresso.minimize
          ~dc:(Cover.empty (List.length support))
          canonical
      in
      add_node t ~name:out ~fanins:support ~func)
    bindings;
  t

let check t =
  match topological_order t with
  | _order ->
    let undefined =
      List.filter
        (fun o -> (not (is_input t o)) && not (Hashtbl.mem t.nodes o))
        t.net_outputs
    in
    if undefined <> [] then
      Error ("undefined outputs: " ^ String.concat ", " undefined)
    else Ok (t.net_name)
  | exception Failure msg -> Error msg
