bin/atpg.mli:
