type participant = {
  id : int;
  watched : int;
  did_homework : bool;
  tried_software : bool;
  took_final : bool;
  certificate : bool;
}

type params = {
  registered : int;
  p_watch : float;
  p_completer : float;
  p_continue : float;
  p_homework : float;
  p_software : float;
  p_final : float;
  p_cert : float;
}

(* Calibration: 7191/17500 watch; completers chosen so ~2000 finish all 69
   videos; the survival rate places video ~10 viewership near 5000; funnel
   conditionals from Fig. 8's raw counts. *)
let paper_params =
  {
    registered = 17_500;
    p_watch = 7191.0 /. 17500.0;
    p_completer = 0.28;
    p_continue = 0.955;
    p_homework = 1377.0 /. 7191.0;
    p_software = 369.0 /. 1377.0;
    p_final = 530.0 /. 1377.0;
    p_cert = 386.0 /. 530.0;
  }

let num_videos = 69

type funnel = {
  registered : int;
  watched_video : int;
  did_homework : int;
  tried_software : int;
  took_final : int;
  certificates : int;
}

let funnel_of ps =
  let count f = List.length (List.filter f ps) in
  {
    registered = List.length ps;
    watched_video = count (fun p -> p.watched > 0);
    did_homework = count (fun p -> p.did_homework);
    tried_software = count (fun p -> p.tried_software);
    took_final = count (fun p -> p.took_final);
    certificates = count (fun p -> p.certificate);
  }

(* One journal event per funnel level, in funnel order, so vcstat funnel
   can replay Fig. 8 from any moocsim --journal file. *)
let journal_funnel f =
  let stage name count =
    Vc_util.Journal.emit ~component:"cohort"
      ~attrs:[ ("stage", name); ("count", string_of_int count) ]
      "funnel.stage"
  in
  stage "registered" f.registered;
  stage "watched_video" f.watched_video;
  stage "did_homework" f.did_homework;
  stage "tried_software" f.tried_software;
  stage "took_final" f.took_final;
  stage "certificates" f.certificates

(* One participant's journey, drawn from a shared RNG. Draw order is part
   of the contract: [iter_participants] and [simulate] must produce the
   same cohort for the same seed (the moocsim golden test pins it). *)
let draw_participant rng params id =
  let watches = Vc_util.Rng.bernoulli rng params.p_watch in
  if not watches then
    {
      id;
      watched = 0;
      did_homework = false;
      tried_software = false;
      took_final = false;
      certificate = false;
    }
  else begin
    let watched =
      if Vc_util.Rng.bernoulli rng params.p_completer then num_videos
      else begin
        (* geometric stopping: watch video k+1 with prob p_continue *)
        let rec advance k =
          if k >= num_videos then num_videos
          else if Vc_util.Rng.bernoulli rng params.p_continue then
            advance (k + 1)
          else k
        in
        advance 1
      end
    in
    let did_homework = Vc_util.Rng.bernoulli rng params.p_homework in
    let tried_software =
      did_homework && Vc_util.Rng.bernoulli rng params.p_software
    in
    let took_final =
      did_homework && Vc_util.Rng.bernoulli rng params.p_final
    in
    let certificate = took_final && Vc_util.Rng.bernoulli rng params.p_cert in
    { id; watched; did_homework; tried_software; took_final; certificate }
  end

(* Streaming generation: each participant is drawn, handed to [f] and
   dropped, so a million-strong (or billion-strong) cohort costs constant
   memory. The materializing [simulate] below is this iterator plus an
   accumulator. *)
let iter_participants ?(seed = 2013) (params : params) f =
  let rng = Vc_util.Rng.create seed in
  for id = 0 to params.registered - 1 do
    f (draw_participant rng params id)
  done

let streamed_funnel ?(seed = 2013) params =
  let registered = ref 0
  and watched_video = ref 0
  and did_homework = ref 0
  and tried_software = ref 0
  and took_final = ref 0
  and certificates = ref 0 in
  iter_participants ~seed params (fun p ->
      incr registered;
      if p.watched > 0 then incr watched_video;
      if p.did_homework then incr did_homework;
      if p.tried_software then incr tried_software;
      if p.took_final then incr took_final;
      if p.certificate then incr certificates);
  {
    registered = !registered;
    watched_video = !watched_video;
    did_homework = !did_homework;
    tried_software = !tried_software;
    took_final = !took_final;
    certificates = !certificates;
  }

let simulate ?(seed = 2013) params =
  let acc = ref [] in
  iter_participants ~seed params (fun p -> acc := p :: !acc);
  let ps = List.rev !acc in
  Vc_util.Journal.emit ~component:"cohort"
    ~attrs:
      [
        ("seed", string_of_int seed);
        ("registered", string_of_int params.registered);
      ]
    "cohort.simulated";
  journal_funnel (funnel_of ps);
  ps

let paper_funnel =
  {
    registered = 17_500;
    watched_video = 7_191;
    did_homework = 1_377;
    tried_software = 369;
    took_final = 530;
    certificates = 386;
  }

let viewers_per_video ps =
  let viewers = Array.make num_videos 0 in
  List.iter
    (fun p ->
      for k = 0 to min p.watched num_videos - 1 do
        viewers.(k) <- viewers.(k) + 1
      done)
    ps;
  viewers

let render_fig8 f =
  String.concat "\n"
    [
      "Fig. 8: participation funnel";
      Printf.sprintf "  ~%-6d registered participants at peak" f.registered;
      Printf.sprintf "  %-7d watched a video" f.watched_video;
      Printf.sprintf "  %-7d did a homework" f.did_homework;
      Printf.sprintf "  %-7d tried a software assignment" f.tried_software;
      Printf.sprintf "  %-7d took the final exam" f.took_final;
      Printf.sprintf "  %-7d statement-of-accomplishment certificates"
        f.certificates;
      "";
    ]

let render_fig9 viewers =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Fig. 9: viewers per lecture video (69 videos)\n";
  let peak = Array.fold_left max 1 viewers in
  Array.iteri
    (fun i v ->
      let marks =
        if v * 60 / peak > 0 then String.make (v * 60 / peak) '#' else ""
      in
      Buffer.add_string buf (Printf.sprintf "  v%02d %5d %s\n" (i + 1) v marks))
    viewers;
  Buffer.add_string buf
    (Printf.sprintf
       "  reference lines: ~7000 (largest EDA vendors' headcount), ~5000 \
        (DAC'13 attendance), ~2000 (40 on-campus years)\n\
       \  measured: v1=%d  v10=%d  v69=%d\n"
       viewers.(0) viewers.(9) viewers.(68));
  Buffer.contents buf
