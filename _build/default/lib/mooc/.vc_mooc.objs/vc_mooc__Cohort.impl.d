lib/mooc/cohort.ml: Array Buffer List Printf String Vc_util
