(* smoke_front: crash-recovery check of the durable portal tier behind
   the consistent-hash front.
   Usage: smoke_front VCSERVE_EXE VCFRONT_EXE VCLOAD_EXE VCSTAT_EXE

   Boots two vcserve shards, each with a disk cache dir and a rotated
   (segmented) journal, and a vcfront router over both. A seeded vcload
   replay runs through the front; mid-replay shard A is SIGKILLed - the
   crash, not a graceful stop - and the replay must still finish clean
   because the front fails the affected sessions over to shard B. The
   front's journal must record the backend.down transition.

   Shard A is then restarted on the same port with the same cache dir
   and journal base. The restart must (a) warm-start its result cache
   from the spill files the killed process left behind (the disk tier
   writes through on every execution, straight to the fd, so a SIGKILL
   loses nothing already computed), (b) append new journal segments
   after the pre-crash ones rather than truncating them, and (c) rejoin
   the ring at the next health probe (backend.up in the front journal).
   A second replay with the same seed then re-submits the same trace;
   the restarted shard must answer from the warm cache, which the smoke
   checks in its post-restart journal segments (a cache.warm_start
   event with nonzero entries, and cache_hit submission outcomes).

   Shutdown is one SIGINT per process, each required to exit 0. The
   final artifact is `vcstat summary --format json` over shard A's
   rotated segment set, addressed by base name - the dune rule feeds it
   to `check_obs seq-gaps`, which fails on any missing journal sequence
   number: the lost-segment detector. Exits non-zero with a message on
   the first failure; children are always killed. *)

module Q = Vc_util.Journal_query

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("smoke_front: " ^ s);
      exit 1)
    fmt

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let read_all file =
  try In_channel.with_open_text file In_channel.input_all
  with Sys_error _ -> ""

(* Wait (up to ~10s) for MARKER followed by a port number in the
   process's stderr file. *)
let wait_for_port ~marker stderr_file =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec poll () =
    let text = read_all stderr_file in
    if contains text marker then begin
      let rec find i =
        if String.sub text i (String.length marker) = marker then i
        else find (i + 1)
      in
      let start = find 0 + String.length marker in
      let rec digits i =
        if i < String.length text && text.[i] >= '0' && text.[i] <= '9' then
          digits (i + 1)
        else i
      in
      let stop = digits start in
      int_of_string (String.sub text start (stop - start))
    end
    else if Unix.gettimeofday () > deadline then
      die "timed out waiting for %S in %s" marker stderr_file
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* Wait (up to ~15s) for NEEDLE to appear in FILE - used against
   journals whose sinks flush per line, so a transition event is
   visible as soon as it is emitted. *)
let wait_for_text ~what file needle =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec poll () =
    if contains (read_all file) needle then ()
    else if Unix.gettimeofday () > deadline then
      die "timed out waiting for %s (%S in %s)" what needle file
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* Reap PID, polling up to [timeout_s]; Some status, or None on timeout. *)
let wait_with_timeout pid timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.05;
        poll ()
      end
    | _, status -> Some status
  in
  poll ()

let spawn exe args ~stdout_file ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let openw f =
    Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let out = openw stdout_file and err = openw stderr_file in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) devnull out err
  in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

let run_to_file exe args ~stdout_file ~stderr_file ~timeout_s ~what =
  let pid = spawn exe args ~stdout_file ~stderr_file in
  match wait_with_timeout pid timeout_s with
  | Some (Unix.WEXITED 0) -> ()
  | Some status ->
    die "%s failed (%s):\n%s" what (status_string status)
      (read_all stderr_file)
  | None ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    die "%s did not finish within %.0fs" what timeout_s

let sigint_and_expect_clean pid ~what =
  Unix.kill pid Sys.sigint;
  match wait_with_timeout pid 10.0 with
  | Some (Unix.WEXITED 0) -> ()
  | Some status -> die "%s: %s after SIGINT" what (status_string status)
  | None -> die "%s still running 10s after SIGINT" what

(* The build directory persists between runs; a stale cache dir or
   journal segment from a previous execution would fake the warm-start
   and lifecycle assertions, so the smoke starts from a clean slate. *)
let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let remove_matching pred =
  Array.iter
    (fun f -> if pred f then try Sys.remove f with Sys_error _ -> ())
    (Sys.readdir ".")

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let vcserve_exe, vcfront_exe, vcload_exe, vcstat_exe =
    match Sys.argv with
    | [| _; serve; front; load; stat |] -> (serve, front, load, stat)
    | _ -> die "usage: smoke_front VCSERVE_EXE VCFRONT_EXE VCLOAD_EXE VCSTAT_EXE"
  in
  let cache_a = "smoke_front_cache_a" and cache_b = "smoke_front_cache_b" in
  let journal_a = "smoke_front_a.jsonl" and journal_b = "smoke_front_b.jsonl" in
  let front_journal = "smoke_front_router.jsonl" in
  rm_rf cache_a;
  rm_rf cache_b;
  remove_matching (fun f ->
      starts_with "smoke_front_a." f || starts_with "smoke_front_b." f
      || f = front_journal
      || starts_with "smoke_front_client" f);
  let serve_args listen cache journal =
    [
      "-listen"; listen; "-workers"; "2"; "-queue"; "512"; "-cache-dir";
      cache; "--journal"; journal; "--journal-segments"; "4096";
    ]
  in
  let pid_a =
    ref
      (spawn vcserve_exe
         (serve_args "0" cache_a journal_a)
         ~stdout_file:"smoke_front_serve_a_out.txt"
         ~stderr_file:"smoke_front_serve_a_err.txt")
  in
  let pid_b =
    ref
      (spawn vcserve_exe
         (serve_args "0" cache_b journal_b)
         ~stdout_file:"smoke_front_serve_b_out.txt"
         ~stderr_file:"smoke_front_serve_b_err.txt")
  in
  let pid_front = ref (-1) in
  let kill pid =
    if pid > 0 then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [ Unix.WNOHANG ] pid
         with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
    end
  in
  Fun.protect
    ~finally:(fun () ->
      kill !pid_a;
      kill !pid_b;
      kill !pid_front)
    (fun () ->
      let port_a =
        wait_for_port ~marker:"listening on 127.0.0.1:"
          "smoke_front_serve_a_err.txt"
      in
      let port_b =
        wait_for_port ~marker:"listening on 127.0.0.1:"
          "smoke_front_serve_b_err.txt"
      in
      pid_front :=
        spawn vcfront_exe
          [
            "-listen"; "0";
            "-backend"; Printf.sprintf "127.0.0.1:%d" port_a;
            "-backend"; Printf.sprintf "127.0.0.1:%d" port_b;
            "-check-interval"; "0.2"; "--journal"; front_journal;
          ]
          ~stdout_file:"smoke_front_router_out.txt"
          ~stderr_file:"smoke_front_router_err.txt";
      let port_front =
        wait_for_port ~marker:"listening on 127.0.0.1:"
          "smoke_front_router_err.txt"
      in
      let load_args seed_journal report =
        [
          "--journal"; seed_journal;
          "-port"; string_of_int port_front; "-clients"; "2"; "-rps";
          "250"; "-duration"; "2"; "-participants"; "20000"; "-seed";
          "11"; "-resubmit"; "0.4"; "-no-spike"; "-report"; report;
        ]
      in
      (* phase 1: replay through the front, then kill shard A cold
         while the replay is still running. The front must absorb the
         crash - the replay has to finish with exit 0. *)
      let load_pid =
        spawn vcload_exe
          (load_args "smoke_front_client1.jsonl" "smoke_front_report1.json")
          ~stdout_file:"smoke_front_load1_out.txt"
          ~stderr_file:"smoke_front_load1_err.txt"
      in
      Unix.sleepf 0.9;
      Unix.kill !pid_a Sys.sigkill;
      ignore (wait_with_timeout !pid_a 5.0);
      pid_a := -1;
      (match wait_with_timeout load_pid 60.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some status ->
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "replay across the crash failed (%s):\n%s" (status_string status)
          (read_all "smoke_front_load1_err.txt")
      | None ->
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "replay across the crash did not finish within 60s");
      let summary1 = read_all "smoke_front_load1_out.txt" in
      if not (contains summary1 "replayed ") then
        die "phase-1 vcload printed no replay summary:\n%s" summary1;
      wait_for_text ~what:"the front to mark the killed shard down"
        front_journal "backend.down";
      (* phase 2: restart shard A on the same port, same cache dir,
         same journal base. New segments must append after the
         pre-crash ones; the cache must warm-start from the spill
         files. *)
      let run1_segments = Q.expand_segments [ journal_a ] in
      if run1_segments = [ journal_a ] then
        die "shard A left no journal segments behind (looked for %s.NNNNN)"
          (Filename.remove_extension journal_a);
      pid_a :=
        spawn vcserve_exe
          (serve_args (string_of_int port_a) cache_a journal_a)
          ~stdout_file:"smoke_front_serve_a2_out.txt"
          ~stderr_file:"smoke_front_serve_a2_err.txt";
      ignore
        (wait_for_port ~marker:"listening on 127.0.0.1:"
           "smoke_front_serve_a2_err.txt");
      wait_for_text ~what:"the front to readmit the restarted shard"
        front_journal "backend.up";
      run_to_file vcload_exe
        (load_args "smoke_front_client2.jsonl" "smoke_front_report2.json")
        ~stdout_file:"smoke_front_load2_out.txt"
        ~stderr_file:"smoke_front_load2_err.txt" ~timeout_s:60.0
        ~what:"post-recovery replay";
      let summary2 = read_all "smoke_front_load2_out.txt" in
      if not (contains summary2 "replayed ") then
        die "phase-2 vcload printed no replay summary:\n%s" summary2;
      if not (contains summary2 "cache_hit") then
        die "phase-2 vcload summary has no outcome breakdown:\n%s" summary2;
      (* graceful shutdown: front first (stop accepting), then the
         shards; each journal flushes on the way out *)
      sigint_and_expect_clean !pid_front ~what:"vcfront";
      pid_front := -1;
      sigint_and_expect_clean !pid_a ~what:"restarted shard A";
      pid_a := -1;
      sigint_and_expect_clean !pid_b ~what:"shard B";
      pid_b := -1;
      (* the crash-recovery evidence, all from the flushed journals:
         pre-crash segments still on disk, post-restart segments
         appended after them, a nonzero warm start, and cache hits
         served by the restarted shard *)
      let all_segments = Q.expand_segments [ journal_a ] in
      if List.length all_segments < 2 then
        die "expected >= 2 journal segments for shard A, found %d"
          (List.length all_segments);
      List.iter
        (fun seg ->
          if not (List.mem seg all_segments) then
            die "pre-crash segment %s vanished after the restart" seg)
        run1_segments;
      let run2 =
        List.filter (fun seg -> not (List.mem seg run1_segments)) all_segments
      in
      if run2 = [] then
        die "the restarted shard appended no new journal segments";
      let run2_text = String.concat "" (List.map read_all run2) in
      if not (contains run2_text "cache.warm_start") then
        die "restarted shard journal has no cache.warm_start event";
      String.split_on_char '\n' run2_text
      |> List.iter (fun line ->
             if
               contains line "cache.warm_start"
               && contains line "\"entries\":\"0\""
             then die "warm start loaded 0 entries: %s" line);
      if not (contains run2_text "\"outcome\":\"cache_hit\"") then
        die "restarted shard served no cache hits after its warm start";
      let front_text = read_all front_journal in
      List.iter
        (fun needle ->
          if not (contains front_text needle) then
            die "front journal %s missing %S" front_journal needle)
        [ "front.start"; "backend.down"; "backend.up"; "front.stop" ];
      (* the lost-segment detector: summarize shard A's full segment
         set by base name; the dune rule requires seq.gaps == 0 *)
      run_to_file vcstat_exe
        [ "summary"; "--format"; "json"; journal_a ]
        ~stdout_file:"smoke_front_summary.json"
        ~stderr_file:"smoke_front_stat_err.txt" ~timeout_s:30.0
        ~what:"vcstat summary over the segment set";
      print_endline "smoke_front: ok")
