(** Dense linear algebra: the direct solver behind the course's [Ax=b]
    portal tool and the small-system fallback of the quadratic placer. *)

type t
(** A dense matrix (row-major). *)

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val of_rows : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val identity : int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val mat_vec : t -> float array -> float array

val transpose : t -> t

val mul : t -> t -> t

val solve : t -> float array -> float array
(** Gaussian elimination with partial pivoting.
    @raise Failure on singular systems; @raise Invalid_argument on shape
    mismatch. *)

val residual_norm : t -> float array -> float array -> float
(** [residual_norm a x b] is ||Ax - b||_2. *)

val to_string : t -> string
