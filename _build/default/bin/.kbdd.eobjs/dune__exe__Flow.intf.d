bin/flow.mli:
