module Expr = Vc_cube.Expr

type table = {
  t_name : string;
  t_reset : string;
  rows : ((string * string) * (string * bool list)) list;
}

let states t =
  List.fold_left
    (fun acc ((s, _), (n, _)) ->
      let acc = if List.mem s acc then acc else acc @ [ s ] in
      if List.mem n acc then acc else acc @ [ n ])
    [] t.rows

let input_symbols t =
  List.fold_left
    (fun acc ((_, i), _) -> if List.mem i acc then acc else acc @ [ i ])
    [] t.rows

let of_rows ?(name = "fsm") ~reset rows =
  let t = { t_name = name; t_reset = reset; rows } in
  let ss = states t and symbols = input_symbols t in
  if not (List.mem reset ss) then
    invalid_arg "Fsm.of_rows: reset state has no transitions";
  (* duplicate keys *)
  let keys = List.map fst rows in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg "Fsm.of_rows: duplicate (state, input) row";
  (* completeness *)
  List.iter
    (fun s ->
      List.iter
        (fun i ->
          if not (List.mem_assoc (s, i) rows) then
            invalid_arg
              (Printf.sprintf "Fsm.of_rows: missing row for (%s, %s)" s i))
        symbols)
    ss;
  (* consistent output widths *)
  (match rows with
  | [] -> invalid_arg "Fsm.of_rows: empty table"
  | (_, (_, out0)) :: _ ->
    let w = List.length out0 in
    List.iter
      (fun (_, (_, out)) ->
        if List.length out <> w then
          invalid_arg "Fsm.of_rows: inconsistent output widths")
      rows);
  t

let parse text =
  let reset = ref None and rows = ref [] in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ ".start"; s ] -> reset := Some s
    | [ ".end" ] -> ()
    | [ s; i; n; outs ] ->
      let bits =
        List.init (String.length outs) (fun k ->
            match outs.[k] with
            | '0' -> false
            | '1' -> true
            | c -> failwith (Printf.sprintf "fsm: bad output bit %C" c))
      in
      rows := ((s, i), (n, bits)) :: !rows
    | toks -> failwith ("fsm: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle (Vc_util.Tok.logical_lines ~comment:'#' text);
  match !reset with
  | None -> failwith "fsm: missing .start"
  | Some reset -> of_rows ~reset (List.rev !rows)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (".start " ^ t.t_reset ^ "\n");
  List.iter
    (fun ((s, i), (n, outs)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s\n" s i n
           (String.concat "" (List.map (fun b -> if b then "1" else "0") outs))))
    t.rows;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* minimization                                                         *)
(* ------------------------------------------------------------------ *)

let minimize t =
  let symbols = input_symbols t in
  let ss = states t in
  let next s i = List.assoc (s, i) t.rows in
  (* block id per state; start from the output signature *)
  let block = Hashtbl.create 16 in
  let signature s = List.map (fun i -> snd (next s i)) symbols in
  let distinct_signatures =
    List.sort_uniq compare (List.map signature ss)
  in
  List.iter
    (fun s ->
      let rec index k = function
        | [] -> assert false
        | sg :: rest -> if sg = signature s then k else index (k + 1) rest
      in
      Hashtbl.replace block s (index 0 distinct_signatures))
    ss;
  (* refine: split blocks by successor-block signature *)
  let changed = ref true in
  while !changed do
    changed := false;
    let refined_sig s =
      (Hashtbl.find block s,
       List.map (fun i -> Hashtbl.find block (fst (next s i))) symbols)
    in
    let sigs = List.sort_uniq compare (List.map refined_sig ss) in
    List.iter
      (fun s ->
        let rec index k = function
          | [] -> assert false
          | sg :: rest -> if sg = refined_sig s then k else index (k + 1) rest
        in
        let nb = index 0 sigs in
        if Hashtbl.find block s <> nb then changed := true;
        Hashtbl.replace block s nb)
      ss;
    (* a second write pass would corrupt refined_sig mid-flight; the loop
       recomputes from scratch each round, so a single pass per round is
       sound as long as we re-enter whenever anything moved *)
    ()
  done;
  (* representative per block = first state in original order *)
  let rep_of_block = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let b = Hashtbl.find block s in
      if not (Hashtbl.mem rep_of_block b) then Hashtbl.add rep_of_block b s)
    ss;
  let rep s = Hashtbl.find rep_of_block (Hashtbl.find block s) in
  let rows =
    List.filter_map
      (fun ((s, i), (n, outs)) ->
        if rep s = s then Some ((s, i), (rep n, outs)) else None)
      t.rows
  in
  let reduced =
    { t_name = t.t_name ^ "_min"; t_reset = rep t.t_reset; rows }
  in
  (reduced, List.map (fun s -> (s, rep s)) ss)

(* ------------------------------------------------------------------ *)
(* semantics                                                            *)
(* ------------------------------------------------------------------ *)

let simulate t sequence =
  let state = ref t.t_reset in
  List.map
    (fun i ->
      match List.assoc_opt (!state, i) t.rows with
      | None -> failwith ("Fsm.simulate: no transition for input " ^ i)
      | Some (n, outs) ->
        state := n;
        outs)
    sequence

let equivalent a b =
  let sa = List.sort compare (input_symbols a) in
  let sb = List.sort compare (input_symbols b) in
  sa = sb
  &&
  (* product reachability from the reset pair *)
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (a.t_reset, b.t_reset) queue;
  Hashtbl.replace seen (a.t_reset, b.t_reset) ();
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let pa, pb = Queue.pop queue in
    List.iter
      (fun i ->
        if !ok then begin
          let na, oa = List.assoc (pa, i) a.rows in
          let nb, ob = List.assoc (pb, i) b.rows in
          if oa <> ob then ok := false
          else if not (Hashtbl.mem seen (na, nb)) then begin
            Hashtbl.replace seen (na, nb) ();
            Queue.add (na, nb) queue
          end
        end)
      sa
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* encoding                                                             *)
(* ------------------------------------------------------------------ *)

(* ceil(log2 n), with 1 bit minimum *)
let rec bits_needed n = if n <= 2 then 1 else 1 + bits_needed ((n + 1) / 2)

let encode ?(style = `Binary) t =
  let ss = states t in
  let symbols = input_symbols t in
  let nstates = List.length ss in
  let nbits =
    match style with `Binary -> bits_needed nstates | `One_hot -> nstates
  in
  let index_of s =
    let rec go k = function
      | [] -> assert false
      | x :: rest -> if x = s then k else go (k + 1) rest
    in
    go 0 ss
  in
  let code s =
    let i = index_of s in
    match style with
    | `Binary -> List.init nbits (fun b -> i land (1 lsl b) <> 0)
    | `One_hot -> List.init nbits (fun b -> b = i)
  in
  let state_bit b = Printf.sprintf "st%d" b in
  let in_name i = "in_" ^ i in
  if nbits + List.length symbols > 16 then
    invalid_arg "Fsm.encode: too many state bits + symbols (limit 16)";
  (* expression: current state equals s AND input symbol is i *)
  let condition s i =
    let state_eq =
      List.mapi
        (fun b v ->
          if v then Expr.Var (state_bit b) else Expr.Not (Var (state_bit b)))
        (code s)
    in
    let conj =
      List.fold_left
        (fun acc e -> Expr.And (acc, e))
        (Expr.Var (in_name i)) state_eq
    in
    conj
  in
  let nouts =
    match t.rows with (_, (_, outs)) :: _ -> List.length outs | [] -> 0
  in
  let or_all = function
    | [] -> Expr.Const false
    | e :: rest -> List.fold_left (fun a b -> Expr.Or (a, b)) e rest
  in
  let next_bit b =
    or_all
      (List.filter_map
         (fun ((s, i), (n, _)) ->
           if List.nth (code n) b then Some (condition s i) else None)
         t.rows)
  in
  let out_bit b =
    or_all
      (List.filter_map
         (fun ((s, i), (_, outs)) ->
           if List.nth outs b then Some (condition s i) else None)
         t.rows)
  in
  let bindings =
    List.init nbits (fun b -> (Printf.sprintf "nst%d" b, next_bit b))
    @ List.init nouts (fun b -> (Printf.sprintf "out%d" b, out_bit b))
  in
  let inputs =
    List.map in_name symbols @ List.init nbits state_bit
  in
  Network.of_exprs ~name:(t.t_name ^ "_logic") ~inputs bindings
