lib/linalg/dense.ml: Array Buffer Printf
