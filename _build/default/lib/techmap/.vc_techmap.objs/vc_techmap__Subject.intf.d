lib/techmap/subject.mli: Vc_network
