type result = {
  side : bool array;
  cut : int;
  edge_cut : float;
  passes : int;
}

(* clique expansion: symmetric weight matrix as an adjacency list *)
let clique_edges (t : Pnet.t) =
  let edges = Hashtbl.create 256 in
  let add a b w =
    let key = if a < b then (a, b) else (b, a) in
    Hashtbl.replace edges key
      (w +. Option.value ~default:0.0 (Hashtbl.find_opt edges key))
  in
  Array.iter
    (fun (net : Pnet.net) ->
      let cells =
        List.filter_map
          (fun pin -> match pin with Pnet.Cell c -> Some c | Pnet.Pad _ -> None)
          net.Pnet.pins
        |> List.sort_uniq compare
      in
      let k = List.length cells in
      if k >= 2 then begin
        let w = 1.0 /. float_of_int (k - 1) in
        List.iteri
          (fun i a ->
            List.iteri (fun j b -> if i < j then add a b w) cells)
          cells
      end)
    t.Pnet.nets;
  let adj = Array.make t.Pnet.num_cells [] in
  Hashtbl.iter
    (fun (a, b) w ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    edges;
  adj

let edge_cut_value adj side =
  let total = ref 0.0 in
  Array.iteri
    (fun a neighbours ->
      List.iter
        (fun (b, w) -> if a < b && side.(a) <> side.(b) then total := !total +. w)
        neighbours)
    adj;
  !total

(* One KL pass; returns the (positive) improvement achieved. *)
let kl_pass adj side =
  let n = Array.length side in
  (* D value: external minus internal connection cost *)
  let d = Array.make n 0.0 in
  let recompute_d c =
    let v = ref 0.0 in
    List.iter
      (fun (b, w) -> if side.(b) <> side.(c) then v := !v +. w else v := !v -. w)
      adj.(c);
    d.(c) <- !v
  in
  for c = 0 to n - 1 do
    recompute_d c
  done;
  let locked = Array.make n false in
  let weight_between a b =
    List.fold_left (fun acc (x, w) -> if x = b then acc +. w else acc) 0.0 adj.(a)
  in
  let swaps = ref [] in
  let cumulative = ref 0.0 and best_sum = ref 0.0 and best_prefix = ref 0 in
  let num_pairs = n / 2 in
  for step = 1 to num_pairs do
    (* best unlocked cross pair *)
    let best = ref None in
    for a = 0 to n - 1 do
      if (not locked.(a)) && not side.(a) then
        for b = 0 to n - 1 do
          if (not locked.(b)) && side.(b) then begin
            let g = d.(a) +. d.(b) -. (2.0 *. weight_between a b) in
            match !best with
            | Some (_, _, bg) when bg >= g -> ()
            | Some _ | None -> best := Some (a, b, g)
          end
        done
    done;
    match !best with
    | None -> ()
    | Some (a, b, g) ->
      locked.(a) <- true;
      locked.(b) <- true;
      (* virtually swap: flip sides so subsequent D updates see it *)
      side.(a) <- true;
      side.(b) <- false;
      List.iter (fun (c, _) -> if not locked.(c) then recompute_d c) adj.(a);
      List.iter (fun (c, _) -> if not locked.(c) then recompute_d c) adj.(b);
      cumulative := !cumulative +. g;
      swaps := (a, b) :: !swaps;
      if !cumulative > !best_sum +. 1e-12 then begin
        best_sum := !cumulative;
        best_prefix := step
      end
  done;
  (* undo swaps beyond the best prefix *)
  let all = List.rev !swaps in
  List.iteri
    (fun i (a, b) ->
      if i >= !best_prefix then begin
        side.(a) <- false;
        side.(b) <- true
      end)
    all;
  !best_sum

let bipartition ?(seed = 1) ?(max_passes = 20) (t : Pnet.t) =
  let n = t.Pnet.num_cells in
  let side = Array.init n (fun i -> i mod 2 = 1) in
  let rng = Vc_util.Rng.create seed in
  Vc_util.Rng.shuffle rng side;
  (* enforce exact balance: KL swaps pairs, so sizes never change *)
  let left = ref 0 in
  Array.iter (fun s -> if not s then incr left) side;
  let want_left = (n + 1) / 2 in
  Array.iteri
    (fun i s ->
      if !left < want_left && s then begin
        side.(i) <- false;
        incr left
      end
      else if !left > want_left && not s then begin
        side.(i) <- true;
        decr left
      end)
    side;
  let adj = clique_edges t in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    incr passes;
    improved := kl_pass adj side > 1e-9
  done;
  {
    side;
    cut = Fm.cut_size t side;
    edge_cut = edge_cut_value adj side;
    passes = !passes;
  }
