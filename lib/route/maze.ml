type path = Grid.point list

let astar = ref false

let expansion_count = ref 0

let expansions () = !expansion_count

(* Cumulative two-pin search attempts/successes since program start,
   alongside the wavefront-pop count, for the Telemetry probe. *)
let search_count = ref 0
let found_count = ref 0

let stats () =
  [
    ("expansions", !expansion_count);
    ("searches", !search_count);
    ("paths_found", !found_count);
  ]

let () = Vc_util.Telemetry.register_probe "route.maze" stats

(* Directions: 0 = none/start, 1 = E, 2 = W, 3 = N, 4 = S, 5 = via. *)
type dir = int

let step_of_dir = function
  | 1 -> (1, 0)
  | 2 -> (-1, 0)
  | 3 -> (0, 1)
  | 4 -> (0, -1)
  | d -> invalid_arg ("Maze.step_of_dir: " ^ string_of_int d)

let is_planar d = d >= 1 && d <= 4

let wrong_way layer d =
  (* layer 0 prefers horizontal (E/W), layer 1 vertical (N/S) *)
  match (layer, d) with
  | 0, (3 | 4) -> true
  | 1, (1 | 2) -> true
  | _, _ -> false

let path_contiguous path =
  let ok_step (a : Grid.point) (b : Grid.point) =
    let dx = abs (a.Grid.x - b.Grid.x) and dy = abs (a.Grid.y - b.Grid.y) in
    if a.Grid.layer = b.Grid.layer then dx + dy = 1
    else dx = 0 && dy = 0 && abs (a.Grid.layer - b.Grid.layer) = 1
  in
  let rec check = function
    | a :: (b :: _ as rest) -> ok_step a b && check rest
    | [ _ ] | [] -> true
  in
  check path

let path_cost (cp : Grid.cost_params) path =
  let dir_between (a : Grid.point) (b : Grid.point) =
    if a.Grid.layer <> b.Grid.layer then 5
    else if b.Grid.x > a.Grid.x then 1
    else if b.Grid.x < a.Grid.x then 2
    else if b.Grid.y > a.Grid.y then 3
    else 4
  in
  let rec go prev_dir acc = function
    | a :: (b :: _ as rest) ->
      let d = dir_between a b in
      let c =
        if d = 5 then cp.Grid.via
        else begin
          let base = cp.Grid.step in
          let base =
            if wrong_way a.Grid.layer d then base + cp.Grid.wrong_way else base
          in
          if is_planar prev_dir && prev_dir <> d then base + cp.Grid.bend
          else base
        end
      in
      go d (acc + c) rest
    | [ _ ] | [] -> acc
  in
  go 0 0 path

(* Dijkstra from a set of sources to [dst]; cells must be free for [net].
   Returns the path (source .. dst) without claiming cells. *)
let search g net sources dst =
  incr search_count;
  let cp = Grid.costs g in
  let best : (int * int * int * dir, int) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (int * int * int * dir, (int * int * int * dir) option) Hashtbl.t =
    Hashtbl.create 1024
  in
  let key (p : Grid.point) d = (p.Grid.layer, p.Grid.x, p.Grid.y, d) in
  let point_of (layer, x, y, _) = { Grid.layer; x; y } in
  let heur (p : Grid.point) =
    if !astar then
      cp.Grid.step * (abs (p.Grid.x - dst.Grid.x) + abs (p.Grid.y - dst.Grid.y))
    else 0
  in
  let cmp (c1, _, _) (c2, _, _) = compare c1 c2 in
  let heap = Vc_util.Heap.create ~cmp in
  let push cost p d par =
    let k = key p d in
    match Hashtbl.find_opt best k with
    | Some c when c <= cost -> ()
    | Some _ | None ->
      Hashtbl.replace best k cost;
      Hashtbl.replace parent k par;
      Vc_util.Heap.push heap (cost + heur p, k, cost)
  in
  List.iter (fun p -> push 0 p 0 None) sources;
  let found = ref None in
  let continue_ = ref true in
  while !continue_ do
    match Vc_util.Heap.pop heap with
    | None -> continue_ := false
    | Some (_, k, cost) ->
      if Hashtbl.find best k = cost then begin
        incr expansion_count;
        let (layer, x, y, d) = k in
        let p = point_of k in
        if p = dst then begin
          found := Some k;
          continue_ := false
        end
        else begin
          (* planar moves *)
          List.iter
            (fun nd ->
              let dx, dy = step_of_dir nd in
              let q = { Grid.layer; x = x + dx; y = y + dy } in
              if Grid.free_for g net q then begin
                let c = cp.Grid.step in
                let c = if wrong_way layer nd then c + cp.Grid.wrong_way else c in
                let c = if is_planar d && d <> nd then c + cp.Grid.bend else c in
                push (cost + c) q nd (Some k)
              end)
            [ 1; 2; 3; 4 ];
          (* via *)
          let q = { Grid.layer = 1 - layer; x; y } in
          if Grid.free_for g net q then push (cost + cp.Grid.via) q 5 (Some k)
        end
      end
  done;
  match !found with
  | None -> None
  | Some k ->
    incr found_count;
    let rec backtrace k acc =
      let p = point_of k in
      match Hashtbl.find parent k with
      | None -> p :: acc
      | Some pk ->
        let pp = point_of pk in
        (* skip duplicate points (shouldn't occur, but keep paths clean) *)
        if pp = p then backtrace pk acc else backtrace pk (p :: acc)
    in
    Some (backtrace k [])

let claim g net path = List.iter (Grid.occupy g net) path

let route_two_pins g ~net ~src ~dst =
  match search g net [ src ] dst with
  | None -> None
  | Some path ->
    claim g net path;
    Some path

let route_net g ~net ~pins =
  match pins with
  | [] -> Some []
  | (x0, y0) :: rest ->
    let pt (x, y) = { Grid.layer = 0; x; y } in
    let first = pt (x0, y0) in
    if not (Grid.free_for g net first) then None
    else begin
      Grid.occupy g net first;
      let tree = ref [ first ] in
      let paths = ref [] in
      let remaining = ref (List.map pt rest) in
      let failed = ref false in
      while (not !failed) && !remaining <> [] do
        (* nearest unconnected pin to the tree (manhattan) *)
        let dist p =
          List.fold_left
            (fun acc (t : Grid.point) ->
              min acc (abs (t.Grid.x - p.Grid.x) + abs (t.Grid.y - p.Grid.y)))
            max_int !tree
        in
        let next =
          List.fold_left
            (fun acc p ->
              match acc with
              | Some q when dist q <= dist p -> acc
              | Some _ | None -> Some p)
            None !remaining
        in
        match next with
        | None -> ()
        | Some pin -> begin
          remaining := List.filter (fun p -> p <> pin) !remaining;
          match search g net !tree pin with
          | None -> failed := true
          | Some path ->
            claim g net path;
            tree := path @ !tree;
            paths := path :: !paths
        end
      done;
      if !failed then begin
        Grid.release_net g net;
        None
      end
      else Some (List.rev !paths)
    end
