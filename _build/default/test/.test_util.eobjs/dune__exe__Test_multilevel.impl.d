test/test_multilevel.ml: Alcotest Helpers List QCheck String Vc_cube Vc_multilevel Vc_network
