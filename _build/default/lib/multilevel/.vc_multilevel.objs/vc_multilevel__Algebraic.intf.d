lib/multilevel/algebraic.mli: Vc_cube Vc_network
