(* Software project 4: two-layer maze routing - the Fig. 6 unit tests, the
   grader round trip, and a Fig. 7-style larger benchmark rendered as SVG. *)

let () =
  (* the unit-test battery, solved and drawn (Fig. 6) *)
  print_string (Vc_mooc.Projects.render_fig6 ());

  (* grade the reference router like a participant upload *)
  let p = Vc_mooc.Projects.project4 in
  let submission = p.Vc_mooc.Projects.p_reference () in
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader submission));

  (* an illegal submission is rejected with a reason *)
  print_endline "--- grading a submission with a broken path ---";
  let broken =
    "problem short_horizontal\nnet a\n0 1 1\n0 3 1\n0 6 1\nendnet\n"
  in
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader broken));

  (* Fig. 7 right: route a placed MCNC-profile design *)
  let fract =
    match Vc_place.Netgen.by_name "fract" with Some pr -> pr | None -> assert false
  in
  let net = Vc_place.Netgen.generate ~seed:202 fract in
  let qp = Vc_place.Quadratic.place net in
  let legal = Vc_place.Legalize.to_grid net qp.Vc_place.Quadratic.placement in
  let problem = Vc_mooc.Flow.routing_problem_of net legal 10 in
  Vc_route.Maze.astar := true;
  let result = Vc_route.Router.route ~rip_up_passes:4 problem in
  Vc_route.Maze.astar := false;
  Printf.printf "fract routing: %d/%d nets, wirelength %d, vias %d\n"
    result.Vc_route.Router.completed result.Vc_route.Router.total
    result.Vc_route.Router.wirelength result.Vc_route.Router.vias;
  Out_channel.with_open_text "fract_routing.svg" (fun oc ->
      Out_channel.output_string oc (Vc_route.Render.result_svg result));
  print_endline "wrote fract_routing.svg"
