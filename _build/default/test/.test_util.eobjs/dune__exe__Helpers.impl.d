test/helpers.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random String Vc_cube Vc_network Vc_sat Vc_util
