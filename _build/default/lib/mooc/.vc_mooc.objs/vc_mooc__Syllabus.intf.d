lib/mooc/syllabus.mli:
