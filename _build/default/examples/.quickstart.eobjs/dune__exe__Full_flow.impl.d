examples/full_flow.ml: List Out_channel Printf Vc_cube Vc_mooc Vc_network Vc_route Vc_techmap
