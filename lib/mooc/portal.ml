type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;
  execute : string -> string;
}

let guard_errors f input =
  match f input with
  | output -> output
  | exception Failure msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "error: " ^ msg

let kbdd =
  {
    tool_name = "kbdd";
    description = "BDD-based Boolean calculator with a scripting language";
    max_input_lines = 2000;
    execute =
      (fun input -> String.concat "\n" (Vc_bdd.Bdd_script.run_script input));
  }

let espresso =
  {
    tool_name = "espresso";
    description = "two-level logic minimizer on PLA files";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let pla = Vc_two_level.Pla.parse input in
          if pla.Vc_two_level.Pla.num_inputs > 16 then
            failwith "espresso portal: at most 16 inputs"
          else Vc_two_level.Pla.to_string (Vc_two_level.Espresso.minimize_pla pla));
  }

let split_sis_input input =
  let lines = String.split_on_char '\n' input in
  let rec split blif = function
    | [] -> (List.rev blif, [])
    | line :: rest when String.trim line = "%script" -> (List.rev blif, rest)
    | line :: rest -> split (line :: blif) rest
  in
  let blif, script = split [] lines in
  (String.concat "\n" blif, String.concat "\n" script)

let sis =
  {
    tool_name = "sis";
    description = "multi-level logic optimization scripts on BLIF networks";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let blif_text, script_text = split_sis_input input in
          let net = Vc_network.Blif.parse blif_text in
          let script_text =
            if String.trim script_text = "" then
              Vc_multilevel.Script.script_rugged
            else script_text
          in
          let report = Vc_multilevel.Script.run net script_text in
          String.concat "\n"
            (report.Vc_multilevel.Script.log
            @ [ ""; Vc_network.Blif.to_string report.Vc_multilevel.Script.network ]));
  }

let minisat =
  {
    tool_name = "minisat";
    description = "CDCL Boolean satisfiability solver on DIMACS CNF";
    max_input_lines = 50_000;
    execute =
      guard_errors (fun input ->
          let cnf = Vc_sat.Cnf.parse_dimacs input in
          match Vc_sat.Solver.solve cnf with
          | Vc_sat.Solver.Sat model, stats ->
            let lits =
              List.init cnf.Vc_sat.Cnf.num_vars (fun i ->
                  let v = i + 1 in
                  string_of_int (if model.(v) then v else -v))
            in
            Printf.sprintf
              "SATISFIABLE\nv %s 0\nc %d conflicts, %d decisions, %d propagations"
              (String.concat " " lits)
              stats.Vc_sat.Solver.conflicts stats.Vc_sat.Solver.decisions
              stats.Vc_sat.Solver.propagations
          | Vc_sat.Solver.Unsat, stats ->
            Printf.sprintf "UNSATISFIABLE\nc %d conflicts"
              stats.Vc_sat.Solver.conflicts
          | Vc_sat.Solver.Unknown, _ -> "UNKNOWN");
  }

let axb =
  {
    tool_name = "axb";
    description = "linear system solver for quadratic-placement homeworks";
    max_input_lines = 5000;
    execute = Vc_linalg.Axb.run;
  }

let all_tools = [ kbdd; espresso; sis; minisat; axb ]

(* ------------------------------------------------------------------ *)
(* tool-name resolution                                                *)
(* ------------------------------------------------------------------ *)

(* One resolution path shared by vcserve, the bench driver and anything
   else that maps user-typed names to portals: case-insensitive, with
   the paper's colloquial aliases, and a near-miss suggestion in the
   error text so a typo comes back actionable. *)

let aliases = [ ("bdd", "kbdd"); ("sat", "minisat") ]

let canonical_name name =
  let lower = String.lowercase_ascii (String.trim name) in
  match List.assoc_opt lower aliases with Some c -> c | None -> lower

let find_tool name =
  let c = canonical_name name in
  List.find_opt (fun t -> t.tool_name = c) all_tools

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  let candidates =
    List.map (fun t -> t.tool_name) all_tools @ List.map fst aliases
  in
  let scored =
    List.map (fun c -> (edit_distance name c, c)) candidates |> List.sort compare
  in
  match scored with
  | (d, c) :: _ when d <= 2 && d < String.length name -> Some c
  | _ -> None

let resolve_tool name =
  match find_tool name with
  | Some t -> Ok t
  | None ->
    let base =
      Printf.sprintf "unknown tool %S (available: %s)" name
        (String.concat ", " (List.map (fun t -> t.tool_name) all_tools))
    in
    Error
      (match suggest (canonical_name name) with
      | Some s -> Printf.sprintf "%s; did you mean %s?" base s
      | None -> base)

(* ------------------------------------------------------------------ *)
(* sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* A session's history may be appended from several server workers at
   once, so it carries its own lock (held only around the hashtable
   touch, never around a tool execution). *)
type session = {
  s_mu : Mutex.t;
  s_history : (string, (string * string) list ref) Hashtbl.t;
}

let create_session () : session =
  { s_mu = Mutex.create (); s_history = Hashtbl.create 8 }

(* ------------------------------------------------------------------ *)
(* structured outcomes                                                 *)
(* ------------------------------------------------------------------ *)

type reason =
  | Runaway of string
  | Overloaded of string
  | Rate_limited of string
  | Deadline_exceeded of string

type outcome = Executed of string | Cache_hit of string | Rejected of reason

let reason_message = function
  | Runaway m | Overloaded m | Rate_limited m | Deadline_exceeded m -> m

let reason_label = function
  | Runaway _ -> "runaway"
  | Overloaded _ -> "overloaded"
  | Rate_limited _ -> "rate_limited"
  | Deadline_exceeded _ -> "deadline"

let outcome_output = function
  | Executed out | Cache_hit out -> out
  | Rejected r -> "error: " ^ reason_message r

(* ------------------------------------------------------------------ *)
(* content-addressed result cache                                      *)
(* ------------------------------------------------------------------ *)

(* The dominant MOOC workload is many participants uploading the same
   homework input; every tool is a pure function of its input text, so
   (tool, input) -> output is cached globally across sessions. Bounded
   LRU: eviction scans for the stalest entry, O(capacity), which is dwarfed
   by any tool execution.

   Domain safety: the table, the recency tick and the capacity share one
   mutex, held only around table operations - two domains may both miss
   on the same key and execute the tool twice, but the tool is pure so
   either result is correct and the LRU bound always holds. Hit/miss/
   eviction statistics live in the cache's own atomics so they stay in
   lock-step with [cache_size] even across [Telemetry.reset]; the
   [portal.cache.*] Telemetry counters are kept as mirrors for the
   /metrics exposition. *)

module T = Vc_util.Telemetry

type cache_entry = { output : string; mutable last_used : int }

let cache_mu = Mutex.create ()
let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 1024
let capacity = ref 512
let tick = ref 0
let stat_hits = Atomic.make 0
let stat_misses = Atomic.make 0
let stat_evictions = Atomic.make 0

let cache_key tool_name input = Digest.string (tool_name ^ "\x00" ^ input)

(* call with cache_mu held *)
let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stalest) when stalest.last_used <= e.last_used -> acc
        | Some _ | None -> Some (k, e))
      cache None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove cache k;
    Atomic.incr stat_evictions;
    T.incr "portal.cache.evictions"
  | None -> ()

let set_cache_capacity n =
  if n < 0 then invalid_arg "Portal.set_cache_capacity: negative capacity";
  Mutex.protect cache_mu (fun () ->
      capacity := n;
      while Hashtbl.length cache > n do
        evict_lru ()
      done)

let cache_capacity () = Mutex.protect cache_mu (fun () -> !capacity)
let cache_size () = Mutex.protect cache_mu (fun () -> Hashtbl.length cache)

let clear_cache () =
  Mutex.protect cache_mu (fun () -> Hashtbl.reset cache);
  Atomic.set stat_hits 0;
  Atomic.set stat_misses 0;
  Atomic.set stat_evictions 0

let cache_stats () = (Atomic.get stat_hits, Atomic.get stat_misses)
let cache_evictions () = Atomic.get stat_evictions

let cache_find key =
  Mutex.protect cache_mu (fun () ->
      match Hashtbl.find_opt cache key with
      | Some e ->
        incr tick;
        e.last_used <- !tick;
        Some e.output
      | None -> None)

let cache_add key output =
  Mutex.protect cache_mu (fun () ->
      if !capacity > 0 then begin
        incr tick;
        if (not (Hashtbl.mem cache key)) && Hashtbl.length cache >= !capacity
        then evict_lru ();
        Hashtbl.replace cache key { output; last_used = !tick }
      end)

(* ------------------------------------------------------------------ *)
(* instrumented submission                                             *)
(* ------------------------------------------------------------------ *)

module J = Vc_util.Journal

let submit_result session tool input =
  let pre = "portal." ^ tool.tool_name in
  T.define_histogram (pre ^ ".latency");
  T.incr (pre ^ ".submits");
  let t0 = T.now () in
  let outcome =
    T.time (pre ^ ".latency") (fun () ->
        let lines = List.length (String.split_on_char '\n' input) in
        if lines > tool.max_input_lines then begin
          T.incr (pre ^ ".rejected");
          Rejected
            (Runaway
               (Printf.sprintf "input too large (%d lines; portal limit %d)"
                  lines tool.max_input_lines))
        end
        else begin
          let key = cache_key tool.tool_name input in
          match cache_find key with
          | Some out ->
            Atomic.incr stat_hits;
            T.incr (pre ^ ".cache_hits");
            T.incr "portal.cache.hits";
            Cache_hit out
          | None ->
            Atomic.incr stat_misses;
            T.incr "portal.cache.misses";
            T.incr (pre ^ ".executions");
            let out =
              T.with_span ~attrs:[ ("tool", tool.tool_name) ] "portal.execute"
                (fun () -> tool.execute input)
            in
            cache_add key out;
            Executed out
        end)
  in
  (* one journal event per submission; a runaway rejection is an Error
     and triggers the flight-recorder dump so the operator sees the
     trailing window of activity that led up to it *)
  let latency_s = Float.max 0.0 (T.now () -. t0) in
  let outcome_name, reject_reason =
    match outcome with
    | Executed _ -> ("executed", None)
    | Cache_hit _ -> ("cache_hit", None)
    | Rejected r -> ("rejected", Some (reason_message r))
  in
  J.emit
    ~severity:(match outcome with Rejected _ -> J.Error | _ -> J.Info)
    ~component:"portal"
    ~attrs:
      ([
         ("tool", tool.tool_name);
         ("digest", Digest.to_hex (cache_key tool.tool_name input));
         ("outcome", outcome_name);
         ("latency_s", Printf.sprintf "%.6f" latency_s);
       ]
      @ match reject_reason with
        | Some r -> [ ("reason", r) ]
        | None -> [])
    "submission";
  T.set_gauge "portal.cache.size" (float_of_int (cache_size ()));
  (match reject_reason with
  | Some reason ->
    J.dump_flight_recorder
      ~reason:
        (Printf.sprintf "portal runaway rejection: %s: %s" tool.tool_name
           reason)
      ()
  | None -> ());
  let output = outcome_output outcome in
  Mutex.protect session.s_mu (fun () ->
      let log =
        match Hashtbl.find_opt session.s_history tool.tool_name with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add session.s_history tool.tool_name l;
          l
      in
      log := (input, output) :: !log);
  outcome

let submit session tool input = outcome_output (submit_result session tool input)

let history session tool =
  Mutex.protect session.s_mu (fun () ->
      match Hashtbl.find_opt session.s_history tool.tool_name with
      | Some l -> List.rev !l
      | None -> [])
