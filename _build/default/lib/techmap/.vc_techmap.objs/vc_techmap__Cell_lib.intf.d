lib/techmap/cell_lib.mli:
