lib/place/netgen.ml: Array Hashtbl List Pnet Printf Vc_util
