module Bdd = Vc_bdd.Bdd
module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube

type engine = Bdd_engine | Sat_engine

type verdict =
  | Equivalent
  | Different of (string * bool) list * string

let output_bdds m t =
  let values = Hashtbl.create 64 in
  let value_of s =
    if List.mem s (Network.inputs t) then Bdd.var m s
    else Hashtbl.find values s
  in
  let build name =
    match Network.find_node t name with
    | None -> failwith ("Equiv: undefined signal " ^ name)
    | Some node ->
      let fanin_bdds = List.map value_of node.Network.fanins in
      let fanins = Array.of_list fanin_bdds in
      let cube_bdd c =
        let acc = ref Bdd.one in
        Array.iteri
          (fun i f ->
            match Cube.get c i with
            | Cube.Pos -> acc := Bdd.mk_and m !acc f
            | Cube.Neg -> acc := Bdd.mk_and m !acc (Bdd.mk_not m f)
            | Cube.Both -> ()
            | Cube.Empty -> acc := Bdd.zero)
          fanins;
        !acc
      in
      let f =
        List.fold_left
          (fun acc c -> Bdd.mk_or m acc (cube_bdd c))
          Bdd.zero node.Network.func.Cover.cubes
      in
      Hashtbl.replace values name f
  in
  List.iter build (Network.topological_order t);
  List.map (fun o -> (o, value_of o)) (Network.outputs t)

let same_interface a b =
  List.sort compare (Network.inputs a) = List.sort compare (Network.inputs b)
  && List.sort compare (Network.outputs a)
     = List.sort compare (Network.outputs b)

let check_bdd a b =
  let m = Bdd.create () in
  (* declare inputs first so both networks share variables *)
  List.iter (fun i -> ignore (Bdd.var m i)) (Network.inputs a);
  let fa = output_bdds m a and fb = output_bdds m b in
  let rec compare_all = function
    | [] -> Equivalent
    | (name, f) :: rest -> begin
      let g = List.assoc name fb in
      if f = g then compare_all rest
      else begin
        let diff = Bdd.mk_xor m f g in
        match Bdd.any_sat m diff with
        | None -> assert false
        | Some partial ->
          let assignment =
            List.map
              (fun input ->
                let idx =
                  match Bdd.var_index m input with
                  | Some i -> i
                  | None -> assert false
                in
                (input, List.assoc_opt idx partial = Some true))
              (Network.inputs a)
          in
          Different (assignment, name)
      end
    end
  in
  compare_all fa

let check_sat a b =
  (* collapse each output cone to an expression; miter via Tseitin *)
  let rec compare_all = function
    | [] -> Equivalent
    | name :: rest -> begin
      let ea = Network.output_expr a name in
      let eb = Network.output_expr b name in
      match Vc_sat.Tseitin.counterexample ea eb with
      | None -> compare_all rest
      | Some cex ->
        let assignment =
          List.map
            (fun input ->
              (input, Option.value ~default:false (List.assoc_opt input cex)))
            (Network.inputs a)
        in
        Different (assignment, name)
    end
  in
  compare_all (Network.outputs a)

let check ?(engine = Bdd_engine) a b =
  if not (same_interface a b) then
    invalid_arg "Equiv.check: networks have different interfaces";
  match engine with Bdd_engine -> check_bdd a b | Sat_engine -> check_sat a b

let equivalent ?engine a b =
  match check ?engine a b with Equivalent -> true | Different _ -> false
