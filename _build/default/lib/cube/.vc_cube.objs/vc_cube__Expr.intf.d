lib/cube/expr.mli:
