module Network = Vc_network.Network

type mode = Min_area | Min_delay

type gate = {
  g_cell : Cell_lib.cell;
  g_inputs : int list;
  g_output : int;
}

type mapping = {
  gates : gate list;
  area : float;
  delay : float;
  subject : Subject.t;
  mode : mode;
}

(* Match [pattern] rooted at subject node [id].  Internal pattern nodes may
   only absorb single-fanout subject nodes (multi-fanout nodes are covering
   boundaries and must bind to pattern leaves). Returns the leaf binding
   (slot -> subject id) or None. [root] is exempt from the fanout rule. *)
let match_at (s : Subject.t) pattern root =
  let exception No_match in
  let bindings = Hashtbl.create 8 in
  let rec go pattern id ~is_root =
    match pattern with
    | Cell_lib.P_leaf slot -> begin
      match Hashtbl.find_opt bindings slot with
      | Some bound when bound <> id -> raise No_match
      | Some _ -> ()
      | None -> Hashtbl.add bindings slot id
    end
    | Cell_lib.P_inv p -> begin
      if (not is_root) && s.Subject.fanout.(id) > 1 then raise No_match;
      match s.Subject.nodes.(id) with
      | Subject.S_inv x -> go p x ~is_root:false
      | Subject.S_input _ | Subject.S_nand _ -> raise No_match
    end
    | Cell_lib.P_nand (pa, pb) -> begin
      if (not is_root) && s.Subject.fanout.(id) > 1 then raise No_match;
      match s.Subject.nodes.(id) with
      | Subject.S_nand (x, y) -> begin
        (* try both argument orders; commit to the first that matches *)
        let attempt a b =
          let saved = Hashtbl.copy bindings in
          try
            go pa a ~is_root:false;
            go pb b ~is_root:false;
            true
          with No_match ->
            Hashtbl.reset bindings;
            Hashtbl.iter (Hashtbl.add bindings) saved;
            false
        in
        if not (attempt x y || attempt y x) then raise No_match
      end
      | Subject.S_input _ | Subject.S_inv _ -> raise No_match
    end
  in
  match go pattern root ~is_root:true with
  | () ->
    let slots = List.init (Hashtbl.length bindings) (fun i -> i) in
    Some (List.map (fun slot -> Hashtbl.find bindings slot) slots)
  | exception No_match -> None
  | exception Not_found -> None

let cover ?(mode = Min_area) cells (s : Subject.t) =
  let n = Array.length s.Subject.nodes in
  let best_cost = Array.make n infinity in
  let best_gate : gate option array = Array.make n None in
  (* DP bottom-up: children have smaller ids, so a left-to-right pass sees
     leaf costs before parents. *)
  for id = 0 to n - 1 do
    match s.Subject.nodes.(id) with
    | Subject.S_input _ -> best_cost.(id) <- 0.0
    | Subject.S_inv _ | Subject.S_nand _ ->
      List.iter
        (fun (cell : Cell_lib.cell) ->
          match match_at s cell.Cell_lib.pattern id with
          | None -> ()
          | Some leaf_ids ->
            let cost =
              match mode with
              | Min_area ->
                List.fold_left
                  (fun acc l -> acc +. best_cost.(l))
                  cell.Cell_lib.area leaf_ids
              | Min_delay ->
                List.fold_left
                  (fun acc l -> max acc best_cost.(l))
                  0.0 leaf_ids
                +. cell.Cell_lib.delay
            in
            if cost < best_cost.(id) then begin
              best_cost.(id) <- cost;
              best_gate.(id) <-
                Some { g_cell = cell; g_inputs = leaf_ids; g_output = id }
            end)
        cells
  done;
  (* extract the chosen gates from the output roots down *)
  let chosen = Hashtbl.create 64 in
  let order = ref [] in
  let rec emit id =
    if not (Hashtbl.mem chosen id) then begin
      match s.Subject.nodes.(id) with
      | Subject.S_input _ -> ()
      | Subject.S_inv _ | Subject.S_nand _ -> begin
        match best_gate.(id) with
        | None -> failwith "Map.cover: uncoverable node (library too small?)"
        | Some g ->
          Hashtbl.add chosen id g;
          List.iter emit g.g_inputs;
          order := g :: !order
      end
    end
  in
  List.iter (fun (_, id) -> emit id) s.Subject.outputs;
  let gates = List.rev !order in
  (* order currently reversed-topological from the emission; fix: emit
     pushed parents after children via recursion, so !order has parents
     first; reverse gives children first *)
  let area =
    List.fold_left (fun acc g -> acc +. g.g_cell.Cell_lib.area) 0.0 gates
  in
  (* arrival-time pass for the mapped netlist *)
  let arrival = Hashtbl.create 64 in
  let arrival_of id =
    match s.Subject.nodes.(id) with
    | Subject.S_input _ -> 0.0
    | Subject.S_inv _ | Subject.S_nand _ ->
      Option.value ~default:0.0 (Hashtbl.find_opt arrival id)
  in
  List.iter
    (fun g ->
      let a =
        List.fold_left (fun acc l -> max acc (arrival_of l)) 0.0 g.g_inputs
        +. g.g_cell.Cell_lib.delay
      in
      Hashtbl.replace arrival g.g_output a)
    gates;
  let delay =
    List.fold_left
      (fun acc (_, id) -> max acc (arrival_of id))
      0.0 s.Subject.outputs
  in
  Vc_util.Journal.emit ~component:"techmap"
    ~attrs:
      [
        ("gates", string_of_int (List.length gates));
        ("area", Printf.sprintf "%g" area);
        ("delay", Printf.sprintf "%g" delay);
        ( "mode",
          match mode with Min_area -> "min_area" | Min_delay -> "min_delay" );
      ]
    "map.done";
  { gates; area; delay; subject = s; mode }

let map_network ?mode cells net = cover ?mode cells (Subject.of_network net)

let gate_count m = List.length m.gates

let simulate m env =
  let s = m.subject in
  let values = Hashtbl.create 64 in
  let value_of id =
    match s.Subject.nodes.(id) with
    | Subject.S_input name -> env name
    | Subject.S_inv _ | Subject.S_nand _ -> begin
      match Hashtbl.find_opt values id with
      | Some v -> v
      | None -> failwith "Map.simulate: gate evaluated before its inputs"
    end
  in
  let eval_gate g =
    let inputs = Array.of_list (List.map value_of g.g_inputs) in
    let rec eval_pattern = function
      | Cell_lib.P_leaf slot -> inputs.(slot)
      | Cell_lib.P_inv p -> not (eval_pattern p)
      | Cell_lib.P_nand (a, b) -> not (eval_pattern a && eval_pattern b)
    in
    Hashtbl.replace values g.g_output (eval_pattern g.g_cell.Cell_lib.pattern)
  in
  List.iter eval_gate m.gates;
  List.map (fun (name, id) -> (name, value_of id)) s.Subject.outputs

let to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "# %d gates, area %.1f, delay %.2f (%s)\n"
       (gate_count m) m.area m.delay
       (match m.mode with Min_area -> "min-area" | Min_delay -> "min-delay"));
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "n%d = %s(%s)\n" g.g_output g.g_cell.Cell_lib.cell_name
           (String.concat ", "
              (List.map (fun i -> "n" ^ string_of_int i) g.g_inputs))))
    m.gates;
  List.iter
    (fun (name, id) ->
      Buffer.add_string buf (Printf.sprintf "output %s = n%d\n" name id))
    m.subject.Subject.outputs;
  Buffer.contents buf
