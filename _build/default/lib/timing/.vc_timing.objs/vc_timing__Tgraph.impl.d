lib/timing/tgraph.ml: Array Buffer Hashtbl List Option Printf Queue String Vc_techmap
