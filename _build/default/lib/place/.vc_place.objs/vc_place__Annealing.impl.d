lib/place/annealing.ml: Array List Pnet Vc_util
