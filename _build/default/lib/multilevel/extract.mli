(** Shared-divisor extraction across a Boolean network: greedy kernel
    extraction and common-cube extraction, plus algebraic resubstitution.
    Each round evaluates candidate divisors by the exact literal-count
    delta of performing the rewrite, and applies the best one while it
    saves literals. *)

val extract_kernels :
  ?max_new_nodes:int -> ?prefix:string -> Vc_network.Network.t -> int
(** Repeatedly extract the best-saving kernel as a new node; returns how
    many nodes were created. New nodes are named [<prefix><i>] (default
    prefix ["k_"]). *)

val extract_cubes :
  ?max_new_nodes:int -> ?prefix:string -> Vc_network.Network.t -> int
(** Same, with single-cube divisors (common cube extraction). *)

val resubstitute : Vc_network.Network.t -> int
(** Try dividing every node by every other node's function; apply
    substitutions that save literals. Returns the number of rewrites. *)
