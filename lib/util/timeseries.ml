(* Fixed-capacity time series, sharded per domain like Telemetry: each
   domain appends points into its own ring cell (own mutex, uncontended
   in practice - the background sampler is normally the only writer),
   and readers merge every cell's points by timestamp on the way out,
   keeping the newest [capacity] per series. The same merge-on-read
   architecture as the telemetry cells (docs/CONCURRENCY.md), applied
   to the time dimension.

   On top of the store sits [Sampler]: a background domain that, every
   [interval] seconds, snapshots selected telemetry counters / gauges /
   timer percentiles and derives rates from counter deltas (qps, shed
   rate, cache hit-rate, per-worker utilization). Each tick also drives
   the continuous profiler (Profile.tick). The sampler registers the
   [GET /varz] and [GET /profile] routes on Metrics_server, so any
   binary running one serves the live console that vctop polls. *)

type point = { p_ts : float; p_value : float }

let default_capacity = 240

(* ------------------------------------------------------------------ *)
(* per-domain ring cells                                               *)
(* ------------------------------------------------------------------ *)

type ring = {
  r_data : point array; (* capacity-sized circular buffer *)
  mutable r_next : int; (* next write slot *)
  mutable r_len : int;
}

type cell = {
  tc_mu : Mutex.t;
  tc_rings : (string, ring) Hashtbl.t;
}

let mu = Mutex.create ()
let all_cells : cell list ref = ref []

(* per-series capacity, fixed at first definition; guarded by [mu] *)
let capacities : (string, int) Hashtbl.t = Hashtbl.create 16

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { tc_mu = Mutex.create (); tc_rings = Hashtbl.create 16 } in
      Mutex.protect mu (fun () -> all_cells := c :: !all_cells);
      c)

let define ?(capacity = default_capacity) name =
  if capacity < 1 then invalid_arg "Timeseries.define: capacity under 1";
  Mutex.protect mu (fun () ->
      if not (Hashtbl.mem capacities name) then
        Hashtbl.add capacities name capacity)

let capacity_of name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt capacities name with
      | Some c -> c
      | None ->
        Hashtbl.add capacities name default_capacity;
        default_capacity)

let record ?ts name value =
  let ts = match ts with Some t -> t | None -> Clock.now () in
  let c = Domain.DLS.get cell_key in
  Mutex.protect c.tc_mu (fun () ->
      let ring =
        match Hashtbl.find_opt c.tc_rings name with
        | Some r -> r
        | None ->
          let r =
            {
              r_data =
                Array.make (capacity_of name) { p_ts = 0.0; p_value = 0.0 };
              r_next = 0;
              r_len = 0;
            }
          in
          Hashtbl.add c.tc_rings name r;
          r
      in
      ring.r_data.(ring.r_next) <- { p_ts = ts; p_value = value };
      ring.r_next <- (ring.r_next + 1) mod Array.length ring.r_data;
      ring.r_len <- min (ring.r_len + 1) (Array.length ring.r_data))

let ring_points r =
  (* oldest first within one cell *)
  let cap = Array.length r.r_data in
  List.init r.r_len (fun i -> r.r_data.((r.r_next - r.r_len + i + cap * 2) mod cap))

let snapshot_cells () = Mutex.protect mu (fun () -> !all_cells)

let points name =
  let merged =
    List.fold_left
      (fun acc c ->
        Mutex.protect c.tc_mu (fun () ->
            match Hashtbl.find_opt c.tc_rings name with
            | Some r -> List.rev_append (ring_points r) acc
            | None -> acc))
      [] (snapshot_cells ())
    |> List.stable_sort (fun a b -> compare a.p_ts b.p_ts)
  in
  (* the aggregate bound is the same as any one cell's *)
  let cap = capacity_of name in
  let excess = List.length merged - cap in
  if excess > 0 then List.filteri (fun i _ -> i >= excess) merged else merged

let last name =
  match List.rev (points name) with [] -> None | p :: _ -> Some p

let names () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
      Mutex.protect c.tc_mu (fun () ->
          Hashtbl.iter (fun k _ -> Hashtbl.replace tbl k ()) c.tc_rings))
    (snapshot_cells ());
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let reset () =
  List.iter
    (fun c -> Mutex.protect c.tc_mu (fun () -> Hashtbl.reset c.tc_rings))
    (snapshot_cells ());
  Mutex.protect mu (fun () -> Hashtbl.reset capacities)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let series_json name =
  Json.arr
    (List.map
       (fun p -> Json.arr [ Json.num p.p_ts; Json.num p.p_value ])
       (points name))

let to_json () =
  Json.obj (List.map (fun n -> (n, series_json n)) (names ()))

let varz_json () =
  Json.obj
    [
      ("now", Json.num (Clock.now ()));
      ("telemetry", Telemetry.to_json ());
      ("series", to_json ());
      ( "profile",
        Json.obj
          [
            ("ticks", string_of_int (Profile.ticks ()));
            ("samples", string_of_int (Profile.samples ()));
            ("stacks", string_of_int (List.length (Profile.folded ())));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* sampler                                                             *)
(* ------------------------------------------------------------------ *)

(* -sample-interval / VC_SAMPLE_INTERVAL; <= 0 disables the sampler *)
let default_interval () =
  match Option.bind (Sys.getenv_opt "VC_SAMPLE_INTERVAL") float_of_string_opt with
  | Some s -> s
  | None -> 0.5

type source =
  | Gauge of string  (** series name = gauge name *)
  | Rate of { counters : string list; series : string }
      (** per-second rate of the summed counter deltas since last tick;
          a trailing ["*"] in a counter name is a prefix wildcard *)
  | Ratio of { num : string list; den : string list; series : string }
      (** delta(num)/delta(den) since last tick; skipped while the
          denominator is idle *)
  | Percentiles of string
      (** timer -> [name.p50_ms] and [name.p99_ms] series *)
  | Utilization of { prefix : string; suffix : string }
      (** every timer [prefix*suffix] -> a [<base>.util] series: the
          per-second rate of its accumulated total, i.e. busy fraction *)

let server_sources =
  [
    Gauge "server.queue_depth";
    Gauge "server.queue_depth.hwm";
    Gauge "portal.cache.size";
    Rate { counters = [ "server.submitted" ]; series = "server.qps" };
    Ratio
      {
        num = [ "server.outcome.rejected.*" ];
        den = [ "server.submitted" ];
        series = "server.shed_rate";
      };
    Ratio
      {
        num = [ "portal.cache.hits" ];
        den = [ "portal.cache.hits"; "portal.cache.misses" ];
        series = "portal.cache.hit_rate";
      };
    Percentiles "server.phase.queue";
    Percentiles "server.phase.cache";
    Percentiles "server.phase.execute";
    Percentiles "server.phase.reply";
    Utilization { prefix = "server.worker."; suffix = ".busy" };
  ]

let client_sources =
  [
    Rate
      {
        counters = [ "vcload.executed"; "vcload.cache_hit"; "vcload.rejected" ];
        series = "vcload.qps";
      };
    Ratio
      {
        num = [ "vcload.rejected" ];
        den = [ "vcload.executed"; "vcload.cache_hit"; "vcload.rejected" ];
        series = "vcload.shed_rate";
      };
  ]

type sampler = {
  sp_interval : float;
  sp_sources : source list;
  sp_profile : bool;
  sp_prev : (string, float) Hashtbl.t; (* last counter/total snapshots *)
  mutable sp_last_ts : float;
  sp_stop : bool Atomic.t;
  mutable sp_domain : unit Domain.t option;
}

let matches pat name =
  let n = String.length pat in
  if n > 0 && pat.[n - 1] = '*' then
    String.starts_with ~prefix:(String.sub pat 0 (n - 1)) name
  else pat = name

let sum_counters counts pats =
  List.fold_left
    (fun acc (name, v) ->
      if List.exists (fun p -> matches p name) pats then acc + v else acc)
    0 counts

(* snapshot keys cannot collide with series names: '#' never appears in
   a metric name *)
let snap_delta t key cur =
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.sp_prev key) in
  Hashtbl.replace t.sp_prev key cur;
  cur -. prev

let sample_sources t ~now ~dt =
  let counts = Telemetry.counters () in
  List.iter
    (fun src ->
      match src with
      | Gauge g -> (
        match Telemetry.gauge g with
        | Some v -> record ~ts:now g v
        | None -> ())
      | Rate { counters; series } ->
        let d = snap_delta t (series ^ "#n") (float_of_int (sum_counters counts counters)) in
        if dt > 0.0 then record ~ts:now series (Float.max 0.0 d /. dt)
      | Ratio { num; den; series } ->
        let dn = snap_delta t (series ^ "#n") (float_of_int (sum_counters counts num)) in
        let dd = snap_delta t (series ^ "#d") (float_of_int (sum_counters counts den)) in
        if dd > 0.0 then record ~ts:now series (Float.max 0.0 dn /. dd)
      | Percentiles name -> (
        match Telemetry.timer name with
        | None -> ()
        | Some s ->
          record ~ts:now (name ^ ".p50_ms") (1e3 *. s.Telemetry.p50_s);
          record ~ts:now (name ^ ".p99_ms") (1e3 *. s.Telemetry.p99_s))
      | Utilization { prefix; suffix } ->
        List.iter
          (fun (name, (s : Telemetry.timer_summary)) ->
            if
              String.starts_with ~prefix name
              && String.ends_with ~suffix name
              && String.length name > String.length prefix + String.length suffix
            then begin
              let d = snap_delta t (name ^ "#u") s.Telemetry.total_s in
              if dt > 0.0 then
                let base =
                  String.sub name 0 (String.length name - String.length suffix)
                in
                record ~ts:now (base ^ ".util")
                  (Float.min 1.0 (Float.max 0.0 d /. dt))
            end)
          (Telemetry.timers ()))
    t.sp_sources

let tick t =
  let now = Clock.now () in
  let dt = now -. t.sp_last_ts in
  sample_sources t ~now ~dt;
  if t.sp_profile then Profile.tick ~journal:true ();
  t.sp_last_ts <- now

let register_routes () =
  Metrics_server.register_route "/varz" (fun () ->
      {
        Metrics_server.rp_status = "200 OK";
        rp_content_type = "application/json";
        rp_body = varz_json () ^ "\n";
      });
  Metrics_server.register_route "/profile" (fun () ->
      {
        Metrics_server.rp_status = "200 OK";
        rp_content_type = "text/plain";
        rp_body = Profile.to_folded_text (Profile.folded ());
      })

let create ?(profile = true) ?(sources = server_sources) ~interval () =
  let t =
    {
      sp_interval = interval;
      sp_sources = sources;
      sp_profile = profile;
      sp_prev = Hashtbl.create 16;
      sp_last_ts = Clock.now ();
      sp_stop = Atomic.make false;
      sp_domain = None;
    }
  in
  (* prime the delta snapshots so the first tick measures "since the
     sampler started", not "since the process started" *)
  let counts = Telemetry.counters () in
  List.iter
    (fun src ->
      match src with
      | Rate { counters; series } ->
        Hashtbl.replace t.sp_prev (series ^ "#n")
          (float_of_int (sum_counters counts counters))
      | Ratio { num; den; series } ->
        Hashtbl.replace t.sp_prev (series ^ "#n")
          (float_of_int (sum_counters counts num));
        Hashtbl.replace t.sp_prev (series ^ "#d")
          (float_of_int (sum_counters counts den))
      | Gauge _ | Percentiles _ | Utilization _ -> ())
    sources;
  register_routes ();
  t

let start ?profile ?sources ~interval () =
  let t = create ?profile ?sources ~interval () in
  if interval > 0.0 then begin
    let d =
      Domain.spawn (fun () ->
          (* sleep in short slices so stop is prompt even at long
             intervals *)
          let rec sleep_until deadline =
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining > 0.0 && not (Atomic.get t.sp_stop) then begin
              Unix.sleepf (Float.min remaining 0.1);
              sleep_until deadline
            end
          in
          let rec loop () =
            if not (Atomic.get t.sp_stop) then begin
              sleep_until (Unix.gettimeofday () +. t.sp_interval);
              if not (Atomic.get t.sp_stop) then begin
                tick t;
                loop ()
              end
            end
          in
          loop ())
    in
    t.sp_domain <- Some d
  end;
  t

let stop t =
  Atomic.set t.sp_stop true;
  match t.sp_domain with
  | Some d ->
    t.sp_domain <- None;
    Domain.join d
  | None -> ()

module Sampler = struct
  type t = sampler

  let create = create
  let start = start
  let stop = stop
  let tick = tick
  let interval t = t.sp_interval
end
