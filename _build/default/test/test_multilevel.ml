open Helpers
module A = Vc_multilevel.Algebraic
module Factor = Vc_multilevel.Factor
module Extract = Vc_multilevel.Extract
module Opt = Vc_multilevel.Opt
module Script = Vc_multilevel.Script
module Network = Vc_network.Network
module Equiv = Vc_network.Equiv
module Expr = Vc_cube.Expr

(* the lecture's running example: F = adf + aef + bdf + bef + cdf + cef + g *)
let lecture_sop =
  [
    [ ("a", true); ("d", true); ("f", true) ];
    [ ("a", true); ("e", true); ("f", true) ];
    [ ("b", true); ("d", true); ("f", true) ];
    [ ("b", true); ("e", true); ("f", true) ];
    [ ("c", true); ("d", true); ("f", true) ];
    [ ("c", true); ("e", true); ("f", true) ];
    [ ("g", true) ];
  ]

(* a qcheck generator for small algebraic SOPs (positive and negative lits) *)
let arbitrary_sop =
  let gen =
    let open QCheck.Gen in
    let lit =
      pair (oneofl [ "a"; "b"; "c"; "d"; "e" ]) bool
    in
    list_size (int_range 1 6) (list_size (int_range 1 3) lit)
    >|= A.normalize
  in
  QCheck.make ~print:A.to_string gen

let sop_equal_semantically s1 s2 =
  Expr.equivalent (Factor.sop_to_expr s1) (Factor.sop_to_expr s2)

let algebraic_tests =
  [
    tc "normalize dedupes and drops contradictions" (fun () ->
        let s =
          A.normalize
            [
              [ ("b", true); ("a", true); ("a", true) ];
              [ ("a", true); ("b", true) ];
              [ ("a", true); ("a", false) ];
            ]
        in
        check Alcotest.string "a.b only" "a.b" (A.to_string s));
    tc "division: lecture example" (fun () ->
        let q, r = A.divide lecture_sop [ [ ("d", true) ]; [ ("e", true) ] ] in
        check Alcotest.string "quotient" "a.f + b.f + c.f" (A.to_string q);
        check Alcotest.string "remainder" "g" (A.to_string r));
    tc "division by non-divisor" (fun () ->
        let q, r = A.divide [ [ ("a", true) ] ] [ [ ("z", true) ] ] in
        check Alcotest.bool "no quotient" true (q = []);
        check Alcotest.string "all remainder" "a" (A.to_string r));
    prop ~count:300 "division invariant f = q*d + r"
      (QCheck.pair arbitrary_sop arbitrary_sop)
      (fun (f, d) ->
        let q, r = A.divide f d in
        let product =
          List.concat_map
            (fun qc -> List.map (fun dc -> List.sort_uniq compare (qc @ dc)) d)
            q
        in
        sop_equal_semantically f (A.normalize (product @ r)));
    tc "kernels of the lecture example" (fun () ->
        let ks = A.kernels lecture_sop in
        let kernel_strings = List.map (fun (_, k) -> A.to_string k) ks in
        check Alcotest.bool "d+e found" true (List.mem "d + e" kernel_strings);
        check Alcotest.bool "a+b+c found" true
          (List.mem "a + b + c" kernel_strings));
    prop ~count:150 "kernels are cube-free quotients" arbitrary_sop (fun f ->
        List.for_all
          (fun (_, k) -> List.length k < 2 || A.common_cube k = [])
          (A.kernels f));
    tc "common cube" (fun () ->
        let s = [ [ ("a", true); ("b", true) ]; [ ("a", true); ("c", true) ] ] in
        check Alcotest.string "a" "a" (A.cube_to_string (A.common_cube s)));
    tc "make_cube_free" (fun () ->
        let s =
          [ [ ("a", true); ("b", true) ]; [ ("a", true); ("c", true) ] ]
        in
        let c, cf = A.make_cube_free s in
        check Alcotest.string "factor a" "a" (A.cube_to_string c);
        check Alcotest.string "b + c" "b + c" (A.to_string cf));
    tc "most common literal" (fun () ->
        check Alcotest.bool "a" true
          (A.most_common_literal
             [ [ ("a", true); ("b", true) ]; [ ("a", true) ]; [ ("c", true) ] ]
          = Some ("a", true)));
    prop ~count:100 "of_node / to_cover round trip" arbitrary_sop (fun s ->
        let fanins = A.support s in
        if fanins = [] then true
        else begin
          let cover = A.to_cover ~fanins s in
          let t =
            Network.create ~inputs:fanins ~outputs:[ "o" ] ()
          in
          Network.add_node t ~name:"o" ~fanins ~func:cover;
          match Network.find_node t "o" with
          | Some node -> sop_equal_semantically s (A.of_node node)
          | None -> false
        end);
  ]

let factor_tests =
  [
    tc "lecture factorization" (fun () ->
        let form = Factor.factor lecture_sop in
        check Alcotest.int "7 literals" 7 (Factor.literal_count form);
        check Alcotest.bool "equivalent" true
          (Expr.equivalent (Factor.to_expr form)
             (Factor.sop_to_expr lecture_sop)));
    tc "constants" (fun () ->
        check Alcotest.string "false" "0" (Factor.to_string (Factor.factor []));
        check Alcotest.string "true" "1" (Factor.to_string (Factor.factor [ [] ])));
    tc "single cube stays flat" (fun () ->
        let form = Factor.factor [ [ ("a", true); ("b", false) ] ] in
        check Alcotest.int "2 literals" 2 (Factor.literal_count form));
    prop ~count:300 "factoring preserves the function" arbitrary_sop (fun s ->
        Expr.equivalent
          (Factor.to_expr (Factor.factor s))
          (Factor.sop_to_expr s));
    prop ~count:300 "factoring never adds literals" arbitrary_sop (fun s ->
        Factor.literal_count (Factor.factor s) <= A.literal_count s);
  ]

(* small multi-node network with extractable structure *)
let sharing_network () =
  Network.of_exprs ~name:"sharing" ~inputs:[ "a"; "b"; "c"; "d"; "e" ]
    [
      ("x", Expr.parse "a c + a d + b c + b d");
      ("y", Expr.parse "a c e + a d e + e b c");
      ("z", Expr.parse "a + b");
    ]

let extract_tests =
  [
    tc "kernel extraction reduces literals and preserves function" (fun () ->
        let t = sharing_network () in
        let before = Network.literal_count t in
        let reference = Network.copy t in
        let created = Extract.extract_kernels t in
        check Alcotest.bool "created nodes" true (created > 0);
        check Alcotest.bool "fewer literals" true
          (Network.literal_count t < before);
        check Alcotest.bool "equivalent" true (Equiv.equivalent reference t));
    tc "cube extraction preserves function" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b"; "c"; "d" ]
            [
              ("x", Expr.parse "a b c");
              ("y", Expr.parse "a b d");
              ("z", Expr.parse "a b c d");
            ]
        in
        let reference = Network.copy t in
        ignore (Extract.extract_cubes t);
        check Alcotest.bool "equivalent" true (Equiv.equivalent reference t));
    tc "resubstitution uses existing nodes" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("s", Expr.parse "a + b"); ("f", Expr.parse "a c + b c") ]
        in
        let reference = Network.copy t in
        let rewrites = Extract.resubstitute t in
        check Alcotest.bool "rewrote" true (rewrites > 0);
        check Alcotest.bool "equivalent" true (Equiv.equivalent reference t);
        (* f should now reference s *)
        match Network.find_node t "f" with
        | Some node -> check Alcotest.bool "uses s" true
                         (List.mem "s" node.Network.fanins)
        | None -> Alcotest.fail "f missing");
    prop ~count:40 "extraction pipeline preserves random networks"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let t = random_network seed in
        let reference = Network.copy t in
        ignore (Extract.extract_kernels t);
        ignore (Extract.extract_cubes t);
        ignore (Extract.resubstitute t);
        Equiv.equivalent reference t);
  ]

let opt_tests =
  [
    tc "sweep removes dead and constant logic" (fun () ->
        let t =
          Network.create ~inputs:[ "a"; "b" ] ~outputs:[ "f" ] ()
        in
        Network.add_node t ~name:"dead" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "1" ]);
        Network.add_node t ~name:"const1" ~fanins:[]
          ~func:(Vc_cube.Cover.top 0);
        Network.add_node t ~name:"f" ~fanins:[ "a"; "const1"; "b" ]
          ~func:(Vc_cube.Cover.of_strings 3 [ "11-"; "--1" ]);
        let removed = Opt.sweep t in
        check Alcotest.bool "removed some" true (removed >= 2);
        check Alcotest.bool "const gone from fanins" true
          (match Network.find_node t "f" with
          | Some node -> not (List.mem "const1" node.Network.fanins)
          | None -> false);
        (* behaviour preserved: f = a | b *)
        let env a b = function "a" -> a | "b" -> b | _ -> false in
        check Alcotest.bool "sim" true
          (List.assoc "f" (Network.simulate t (env true false))));
    tc "sweep inlines inverter wires" (fun () ->
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"inv" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
        Network.add_node t ~name:"f" ~fanins:[ "inv" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
        ignore (Opt.sweep t);
        (* f = NOT (NOT a) = a *)
        let env v = v = "a" in
        check Alcotest.bool "double negation" true
          (List.assoc "f" (Network.simulate t env)));
    tc "simplify reduces redundant node covers" (fun () ->
        let t = Network.create ~inputs:[ "a"; "b" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"f" ~fanins:[ "a"; "b" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "11"; "10"; "01"; "1-" ]);
        let saved = Opt.simplify t in
        check Alcotest.bool "saved literals" true (saved > 0);
        let env a b = function "a" -> a | "b" -> b | _ -> false in
        check Alcotest.bool "f = a|b" true
          (List.assoc "f" (Network.simulate t (env false true))));
    tc "eliminate collapses cheap nodes" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("f", Expr.parse "a & b | c") ]
        in
        (* introduce a helper used once: value <= 0 *)
        Network.add_node t ~name:"h" ~fanins:[ "a"; "b" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "11" ]);
        Network.add_node t ~name:"f" ~fanins:[ "h"; "c" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "1-"; "-1" ]);
        let reference = Network.copy t in
        let collapsed = Opt.eliminate ~threshold:0 t in
        check Alcotest.bool "collapsed h" true (collapsed >= 1);
        check Alcotest.bool "equivalent" true (Equiv.equivalent reference t));
    tc "collapse_node refuses outputs" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a" ] [ ("f", Expr.parse "!a") ]
        in
        check Alcotest.bool "refused" false (Opt.collapse_node t "f"));
    prop ~count:40 "sweep/simplify/eliminate preserve random networks"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let t = random_network seed in
        let reference = Network.copy t in
        ignore (Opt.sweep t);
        ignore (Opt.simplify t);
        ignore (Opt.eliminate ~threshold:0 t);
        ignore (Opt.sweep t);
        Equiv.equivalent reference t);
  ]

let script_tests =
  [
    tc "rugged script on the sharing network" (fun () ->
        let t = sharing_network () in
        let before = Network.literal_count t in
        let report = Script.run t Script.script_rugged in
        let after = Network.literal_count report.Script.network in
        check Alcotest.bool "improved" true (after < before);
        check Alcotest.bool "equivalent" true
          (Equiv.equivalent t report.Script.network));
    tc "unknown commands reported, execution continues" (fun () ->
        let t = sharing_network () in
        let report = Script.run t "bogus\nsweep\nprint_stats" in
        check Alcotest.int "three log lines" 3 (List.length report.Script.log);
        check Alcotest.bool "error logged" true
          (List.exists
             (fun l -> String.length l >= 6 && String.sub l 0 6 = "error:")
             report.Script.log));
    tc "print_factor output" (fun () ->
        let t = sharing_network () in
        let report = Script.run t "print_factor x" in
        match report.Script.log with
        | [ line ] ->
          check Alcotest.bool "mentions x" true
            (String.length line > 2 && String.sub line 0 2 = "x ")
        | _ -> Alcotest.fail "one line");
    tc "original network untouched" (fun () ->
        let t = sharing_network () in
        let before = Network.literal_count t in
        ignore (Script.run t Script.script_rugged);
        check Alcotest.int "unchanged" before (Network.literal_count t));
  ]

let () =
  Alcotest.run "multilevel"
    [
      ("algebraic", algebraic_tests);
      ("factor", factor_tests);
      ("extract", extract_tests);
      ("opt", opt_tests);
      ("script", script_tests);
    ]
