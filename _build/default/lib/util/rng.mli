(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the toolkit (annealing placer, cohort
    simulator, netlist generator, qcheck-independent fuzz inputs) draws from
    an explicit [Rng.t] so that experiments are reproducible from a seed,
    independent of the global [Stdlib.Random] state. *)

type t

val create : int -> t
(** [create seed] is a generator determined entirely by [seed]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** [choose_weighted t items] picks proportionally to the (positive) weights.
    Requires a non-empty list with positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] is a new generator seeded from [t]'s stream, advancing [t];
    streams of the parent and child are independent for practical purposes. *)
