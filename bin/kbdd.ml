(* kbdd: the BDD calculator portal tool as a command-line filter.
   Usage: kbdd [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [script-file]
   (stdin when no file is given) *)

let read_input argv =
  match argv with
  | [| _ |] -> In_channel.input_all stdin
  | [| _; path |] -> In_channel.with_open_text path In_channel.input_all
  | _ ->
    prerr_endline "usage: kbdd [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [script-file]";
    exit 2

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let script = read_input argv in
  let out =
    Vc_util.Telemetry.timed_span "kbdd" (fun () ->
        Vc_bdd.Bdd_script.run_script script)
  in
  List.iter print_endline out
