type problem = {
  top : int array;
  bottom : int array;
}

type assignment = {
  tracks : (int * int) list;
  num_tracks : int;
}

let parse text =
  let rows =
    Vc_util.Tok.logical_lines ~comment:'#' text
    |> List.filter_map (fun line ->
           match Vc_util.Tok.split_words line with
           | "top" :: vals -> Some (`Top, vals)
           | "bottom" :: vals -> Some (`Bottom, vals)
           | [] -> None
           | toks -> failwith ("channel: malformed line: " ^ String.concat " " toks))
  in
  let ints vals =
    Array.of_list (List.map (Vc_util.Tok.parse_int ~context:"channel pin") vals)
  in
  match
    ( List.assoc_opt `Top rows |> Option.map ints,
      List.assoc_opt `Bottom rows |> Option.map ints )
  with
  | Some top, Some bottom ->
    if Array.length top <> Array.length bottom then
      failwith "channel: top and bottom rows differ in length";
    { top; bottom }
  | _ -> failwith "channel: need one 'top' and one 'bottom' row"

let to_string p =
  let row name arr =
    name ^ " "
    ^ String.concat " " (Array.to_list (Array.map string_of_int arr))
  in
  row "top" p.top ^ "\n" ^ row "bottom" p.bottom ^ "\n"

let columns p = Array.length p.top

(* net id -> (leftmost column, rightmost column) *)
let spans p =
  let table = Hashtbl.create 16 in
  let note net col =
    if net > 0 then begin
      match Hashtbl.find_opt table net with
      | None -> Hashtbl.add table net (col, col)
      | Some (lo, hi) -> Hashtbl.replace table net (min lo col, max hi col)
    end
  in
  Array.iteri (fun c net -> note net c) p.top;
  Array.iteri (fun c net -> note net c) p.bottom;
  table

let density p =
  let sp = spans p in
  let best = ref 0 in
  for c = 0 to columns p - 1 do
    let crossing = ref 0 in
    Hashtbl.iter (fun _ (lo, hi) -> if lo <= c && c <= hi then incr crossing) sp;
    best := max !best !crossing
  done;
  !best

(* vertical constraint graph: top net must be above bottom net *)
let vcg p =
  let edges = Hashtbl.create 16 in
  for c = 0 to columns p - 1 do
    let t = p.top.(c) and b = p.bottom.(c) in
    if t > 0 && b > 0 && t <> b then Hashtbl.replace edges (t, b) ()
  done;
  Hashtbl.fold (fun e () acc -> e :: acc) edges []

let has_cycle nets edges =
  let state = Hashtbl.create 16 in
  (* 1 = visiting, 2 = done *)
  let succ n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec visit n =
    match Hashtbl.find_opt state n with
    | Some 1 -> true
    | Some _ -> false
    | None ->
      Hashtbl.replace state n 1;
      let cyclic = List.exists visit (succ n) in
      Hashtbl.replace state n 2;
      cyclic
  in
  List.exists visit nets

let route p =
  match spans p with
  | exception Failure msg -> Error msg
  | sp ->
    let nets = Hashtbl.fold (fun n _ acc -> n :: acc) sp [] in
    let edges = vcg p in
    if has_cycle nets edges then
      Error "cyclic vertical constraints (doglegs not supported)"
    else begin
      let span n = Hashtbl.find sp n in
      let unplaced =
        ref (List.sort (fun a b -> compare (fst (span a)) (fst (span b))) nets)
      in
      let placed = Hashtbl.create 16 in
      let tracks = ref [] in
      let track = ref 0 in
      while !unplaced <> [] do
        (* fill the current track left to right *)
        let last_right = ref min_int in
        let remaining = ref [] in
        List.iter
          (fun n ->
            let lo, hi = span n in
            let predecessors_done =
              (* predecessors must sit on a strictly earlier (higher) track *)
              List.for_all
                (fun (a, b) ->
                  b <> n
                  ||
                  match Hashtbl.find_opt placed a with
                  | Some ta -> ta < !track
                  | None -> false)
                edges
            in
            if lo > !last_right && predecessors_done then begin
              tracks := (n, !track) :: !tracks;
              Hashtbl.replace placed n !track;
              last_right := hi
            end
            else remaining := n :: !remaining)
          !unplaced;
        let next = List.rev !remaining in
        if List.length next = List.length !unplaced then
          (* no progress: cannot happen with an acyclic VCG, but guard *)
          failwith "channel: internal stall";
        unplaced := next;
        incr track
      done;
      Ok { tracks = List.rev !tracks; num_tracks = !track }
    end

let check p a =
  let sp = spans p in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* each net placed exactly once *)
  Hashtbl.iter
    (fun n _ ->
      match List.filter (fun (m, _) -> m = n) a.tracks with
      | [ _ ] -> ()
      | [] -> err "net %d not placed" n
      | _ -> err "net %d placed twice" n)
    sp;
  (* horizontal constraints *)
  List.iter
    (fun (n1, t1) ->
      List.iter
        (fun (n2, t2) ->
          if n1 < n2 && t1 = t2 then begin
            let lo1, hi1 = Hashtbl.find sp n1 and lo2, hi2 = Hashtbl.find sp n2 in
            if lo1 <= hi2 && lo2 <= hi1 then
              err "nets %d and %d overlap on track %d" n1 n2 t1
          end)
        a.tracks)
    a.tracks;
  (* vertical constraints *)
  for c = 0 to columns p - 1 do
    let t = p.top.(c) and b = p.bottom.(c) in
    if t > 0 && b > 0 && t <> b then begin
      match (List.assoc_opt t a.tracks, List.assoc_opt b a.tracks) with
      | Some tt, Some tb ->
        if tt >= tb then err "column %d: net %d not above net %d" c t b
      | _ -> ()
    end
  done;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let net_char n =
  let alphabet = "123456789abcdefghijklmnopqrstuvwxyz" in
  alphabet.[(n - 1) mod String.length alphabet]

let render p a =
  let cols = columns p in
  let sp = spans p in
  let buf = Buffer.create 256 in
  let pin_row arr =
    String.init cols (fun c -> if arr.(c) > 0 then net_char arr.(c) else '.')
  in
  Buffer.add_string buf ("top    " ^ pin_row p.top ^ "\n");
  for t = 0 to a.num_tracks - 1 do
    let row = Bytes.make cols ' ' in
    List.iter
      (fun (n, tn) ->
        if tn = t then begin
          let lo, hi = Hashtbl.find sp n in
          for c = lo to hi do
            Bytes.set row c (if c = lo || c = hi then net_char n else '-')
          done
        end)
      a.tracks;
    Buffer.add_string buf (Printf.sprintf "trk %2d %s\n" t (Bytes.to_string row))
  done;
  Buffer.add_string buf ("bottom " ^ pin_row p.bottom ^ "\n");
  Buffer.contents buf
