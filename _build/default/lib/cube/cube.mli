(** Positional cube notation (PCN), exactly as taught in the course's URP
    lectures and required by software project 1.

    A cube over [n] variables stores one 2-bit field per variable:

    - [11] — the variable does not appear (don't care);
    - [10] — the variable appears in true form (x);
    - [01] — the variable appears complemented (x');
    - [00] — empty: the cube denotes the empty set.

    Cube intersection is bitwise AND of the fields; a cube is empty as soon
    as any field is [00]. *)

type field = Empty | Neg | Pos | Both
(** One variable's 2-bit field; [Both] is don't-care. *)

type t
(** A cube; immutable from the outside. *)

val universe : int -> t
(** [universe n] is the cube over [n] variables with every field [Both],
    i.e. the constant-1 function. *)

val num_vars : t -> int

val get : t -> int -> field

val set : t -> int -> field -> t
(** Functional update: a copy of the cube with variable [i]'s field set. *)

val of_literals : int -> (int * bool) list -> t
(** [of_literals n lits] has variable [i] in true form for [(i, true)] and
    complemented for [(i, false)]; later bindings for the same variable are
    intersected (so [(i,true); (i,false)] yields an empty field). *)

val of_string : string -> t
(** One character per variable: ['1'] true form, ['0'] complemented,
    ['-'] or ['x'] don't care. @raise Failure on other characters. *)

val to_string : t -> string
(** Inverse of {!of_string}; empty fields print as ['@']. *)

val is_empty : t -> bool
(** True if any field is [Empty] (the cube denotes no minterms). *)

val intersect : t -> t -> t
(** Bitwise AND per field. The result may be empty. *)

val contains : t -> t -> bool
(** [contains a b] is true when cube [b]'s minterms are a subset of [a]'s
    (fieldwise: every field of [b] is included in [a]'s). Both non-empty. *)

val cofactor : t -> var:int -> value:bool -> t option
(** [cofactor c ~var ~value] is the Shannon cofactor of the single cube:
    [None] if the cube vanishes (its literal conflicts with [value]),
    otherwise the cube with [var]'s field forced to don't-care. *)

val literal_count : t -> int
(** Number of [Pos]/[Neg] fields. *)

val minterm_count : t -> int
(** Number of minterms covered: 2^(number of don't-care fields), or 0 for an
    empty cube. Requires [num_vars <= 62]. *)

val eval : t -> bool array -> bool
(** [eval c point] is true when [point] (one bool per variable) lies in [c]. *)

val complement_literals : t -> t list
(** De Morgan over a single cube: a list with one single-literal cube per
    literal of [c], whose union is the complement of [c]. Empty cube maps to
    [[universe]]; the universe maps to []. *)

val compare : t -> t -> int
(** Total order (for sorting and sets); not semantically meaningful. *)

val equal : t -> t -> bool
