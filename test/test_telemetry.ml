open Helpers
module T = Vc_util.Telemetry
module Portal = Vc_mooc.Portal

(* Probes register at module-initialization time, which happens when the
   kernel's compilation unit is linked; reference each one so this test
   binary links all four. *)
let () =
  ignore Vc_sat.Solver.stats;
  ignore Vc_bdd.Bdd.stats;
  ignore Vc_route.Maze.stats;
  ignore Vc_place.Annealing.stats

(* The renderer output is validated against the shared strict parser
   (Vc_util.Json), which is itself exercised in test_util.ml. *)
module Json = Vc_util.Json
module Journal = Vc_util.Journal
module Regress = Vc_util.Regress

let parse_json = Json.parse
let obj_field = Json.member

(* Install a clock returning the given readings in order (then repeating
   the last one), run [f], and restore the wall clock. *)
let with_fake_clock readings f =
  let remaining = ref readings and last = ref 0.0 in
  T.set_clock (fun () ->
      match !remaining with
      | [] -> !last
      | t :: rest ->
        remaining := rest;
        last := t;
        t);
  Fun.protect ~finally:(fun () -> T.set_clock Unix.gettimeofday) f

(* ------------------------------------------------------------------ *)
(* telemetry core                                                      *)
(* ------------------------------------------------------------------ *)

let telemetry_tests =
  [
    tc "counters create, add and read back" (fun () ->
        T.reset ();
        check Alcotest.int "absent is 0" 0 (T.counter "t.c");
        T.incr "t.c";
        T.incr ~by:4 "t.c";
        check Alcotest.int "1 + 4" 5 (T.counter "t.c");
        check Alcotest.bool "listed" true (List.mem_assoc "t.c" (T.counters ())));
    tc "timers summarize samples" (fun () ->
        T.reset ();
        check Alcotest.bool "absent" true (T.timer "t.t" = None);
        T.observe "t.t" 0.010;
        T.observe "t.t" 0.020;
        T.observe "t.t" 0.030;
        match T.timer "t.t" with
        | None -> Alcotest.fail "timer vanished"
        | Some s ->
          check Alcotest.int "count" 3 s.T.count;
          check (Alcotest.float 1e-9) "total" 0.060 s.T.total_s;
          check (Alcotest.float 1e-9) "p50" 0.020 s.T.p50_s;
          check (Alcotest.float 1e-9) "max" 0.030 s.T.max_s);
    tc "time records one sample per call and returns the value" (fun () ->
        T.reset ();
        let v = T.time "t.f" (fun () -> 41 + 1) in
        check Alcotest.int "value" 42 v;
        ignore (T.time "t.f" (fun () -> 0));
        match T.timer "t.f" with
        | Some s -> check Alcotest.int "two samples" 2 s.T.count
        | None -> Alcotest.fail "no samples");
    tc "time records the sample even when f raises" (fun () ->
        T.reset ();
        (try T.time "t.boom" (fun () -> failwith "boom") with Failure _ -> ());
        match T.timer "t.boom" with
        | Some s -> check Alcotest.int "one sample" 1 s.T.count
        | None -> Alcotest.fail "no sample");
    tc "spans nest into a tree" (fun () ->
        T.reset ();
        let v =
          T.with_span "outer" (fun () ->
              ignore (T.with_span "inner1" (fun () -> 1));
              ignore (T.with_span "inner2" (fun () -> 2));
              7)
        in
        check Alcotest.int "value" 7 v;
        match T.spans () with
        | [ s ] ->
          check Alcotest.string "root" "outer" s.T.span_name;
          check
            Alcotest.(list string)
            "children in order" [ "inner1"; "inner2" ]
            (List.map (fun c -> c.T.span_name) s.T.children)
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "a raising span is recorded with an error attribute" (fun () ->
        T.reset ();
        (try T.with_span "bad" (fun () -> failwith "oops") with Failure _ -> ());
        match T.spans () with
        | [ s ] ->
          check Alcotest.bool "error attr" true (List.mem_assoc "error" s.T.attrs)
        | _ -> Alcotest.fail "expected exactly one root span");
    tc "probes are pulled at render time" (fun () ->
        let v = ref 1 in
        T.register_probe "test.probe" (fun () -> [ ("v", !v) ]);
        let read () = List.assoc "test.probe" (T.probes ()) in
        check Alcotest.(list (pair string int)) "initial" [ ("v", 1) ] (read ());
        v := 5;
        check Alcotest.(list (pair string int)) "updated" [ ("v", 5) ] (read ()));
    tc "kernel probes are registered" (fun () ->
        let names = List.map fst (T.probes ()) in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "sat.solver"; "bdd"; "route.maze"; "place.annealing" ]);
    tc "report mentions counters, timers and probes" (fun () ->
        T.reset ();
        T.incr "report.counter";
        T.observe "report.timer" 0.001;
        let r = T.report () in
        let contains needle =
          let nl = String.length needle and hl = String.length r in
          let rec go i = i + nl <= hl && (String.sub r i nl = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (contains needle))
          [ "report.counter"; "report.timer"; "sat.solver" ]);
    tc "reset clears counters, timers and spans but keeps probes" (fun () ->
        T.incr "gone";
        T.observe "gone.t" 1.0;
        ignore (T.with_span "gone.s" (fun () -> ()));
        T.reset ();
        check Alcotest.int "counter" 0 (T.counter "gone");
        check Alcotest.bool "timer" true (T.timer "gone.t" = None);
        check Alcotest.int "spans" 0 (List.length (T.spans ()));
        check Alcotest.bool "probes kept" true (T.probes () <> []));
  ]

(* ------------------------------------------------------------------ *)
(* JSON renderers                                                      *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    tc "to_json parses and carries the counters" (fun () ->
        T.reset ();
        T.incr ~by:3 "j.count";
        T.observe "j.timer" 0.002;
        let j = parse_json (T.to_json ()) in
        (match obj_field "counters" j with
        | Some (Json.Obj cs) ->
          check Alcotest.bool "counter present" true
            (match List.assoc_opt "j.count" cs with
            | Some (Json.Num 3.0) -> true
            | _ -> false)
        | _ -> Alcotest.fail "no counters object");
        match obj_field "timers" j with
        | Some (Json.Obj ts) ->
          check Alcotest.bool "timer has count" true
            (match List.assoc_opt "j.timer" ts with
            | Some t -> obj_field "count" t = Some (Json.Num 1.0)
            | None -> false)
        | _ -> Alcotest.fail "no timers object");
    tc "spans_to_json parses with nesting and attrs" (fun () ->
        T.reset ();
        ignore
          (T.with_span ~attrs:[ ("k", "v\"quoted\"") ] "root" (fun () ->
               T.with_span "child" (fun () -> ())));
        let j = parse_json (T.spans_to_json ()) in
        match obj_field "spans" j with
        | Some (Json.Arr [ root ]) ->
          check Alcotest.bool "name" true
            (obj_field "name" root = Some (Json.Str "root"));
          (match obj_field "attrs" root with
          | Some (Json.Obj [ ("k", Json.Str s) ]) ->
            check Alcotest.string "escaped attr round-trips" "v\"quoted\"" s
          | _ -> Alcotest.fail "attrs");
          (match obj_field "children" root with
          | Some (Json.Arr [ child ]) ->
            check Alcotest.bool "child name" true
              (obj_field "name" child = Some (Json.Str "child"))
          | _ -> Alcotest.fail "children")
        | _ -> Alcotest.fail "expected one root span");
    tc "cli_parse strips the flags and leaves the rest" (fun () ->
        let argv, stats, trace, journal =
          T.cli_parse
            [|
              "prog"; "--stats"; "input.txt"; "--trace"; "t.json";
              "--journal"; "j.jsonl"; "-x";
            |]
        in
        check
          Alcotest.(array string)
          "filtered"
          [| "prog"; "input.txt"; "-x" |]
          argv;
        check Alcotest.bool "stats seen" true stats;
        check Alcotest.(option string) "trace file" (Some "t.json") trace;
        check Alcotest.(option string) "journal file" (Some "j.jsonl") journal);
    tc "cli_parse without flags requests nothing" (fun () ->
        let argv, stats, trace, journal =
          T.cli_parse [| "prog"; "input.txt" |]
        in
        check Alcotest.(array string) "untouched" [| "prog"; "input.txt" |] argv;
        check Alcotest.bool "no stats" false stats;
        check Alcotest.(option string) "no trace" None trace;
        check Alcotest.(option string) "no journal" None journal);
  ]

(* ------------------------------------------------------------------ *)
(* clock clamping (the wall clock is not monotonic)                    *)
(* ------------------------------------------------------------------ *)

let clock_tests =
  [
    tc "a normal forward clock measures the difference" (fun () ->
        with_fake_clock [ 10.0; 10.5 ] (fun () ->
            T.reset ();
            ignore (T.time "clk.fwd" (fun () -> ()));
            match T.timer "clk.fwd" with
            | Some s -> check (Alcotest.float 1e-9) "0.5s" 0.5 s.T.total_s
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps timer samples to zero" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            ignore (T.time "clk.back" (fun () -> ()));
            match T.timer "clk.back" with
            | Some s ->
              check (Alcotest.float 0.0) "clamped" 0.0 s.T.total_s;
              check Alcotest.bool "non-negative" true (s.T.max_s >= 0.0)
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps even when the body raises" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            (try T.time "clk.raise" (fun () -> failwith "boom")
             with Failure _ -> ());
            match T.timer "clk.raise" with
            | Some s -> check (Alcotest.float 0.0) "clamped" 0.0 s.T.total_s
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps span durations to zero" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            ignore (T.with_span "clk.span" (fun () -> ()));
            match T.spans () with
            | [ s ] ->
              check Alcotest.bool "duration non-negative" true
                (s.T.duration_s >= 0.0);
              check (Alcotest.float 0.0) "clamped" 0.0 s.T.duration_s
            | l -> Alcotest.fail (Printf.sprintf "%d spans" (List.length l))));
    tc "journal timestamps come from the same injectable clock" (fun () ->
        with_fake_clock [ 42.0 ] (fun () ->
            Journal.clear ();
            Journal.emit ~component:"test" "tick";
            match Journal.events () with
            | [ e ] -> check (Alcotest.float 0.0) "ts" 42.0 e.Journal.ev_ts
            | l -> Alcotest.fail (Printf.sprintf "%d events" (List.length l))));
  ]

(* ------------------------------------------------------------------ *)
(* journal core: ring buffer, sinks, JSONL                             *)
(* ------------------------------------------------------------------ *)

let journal_tests =
  [
    tc "emit appends in order with monotone sequence numbers" (fun () ->
        Journal.clear ();
        Journal.emit ~component:"a" "first";
        Journal.emit ~severity:Journal.Warn
          ~attrs:[ ("k", "v") ]
          ~component:"b" "second";
        (match Journal.events () with
        | [ e1; e2 ] ->
          check Alcotest.bool "seq increases" true
            (e2.Journal.ev_seq > e1.Journal.ev_seq);
          check Alcotest.string "component" "b" e2.Journal.ev_component;
          check Alcotest.string "name" "second" e2.Journal.ev_name;
          check
            Alcotest.(list (pair string string))
            "attrs" [ ("k", "v") ] e2.Journal.ev_attrs;
          check Alcotest.string "severity" "WARN"
            (Journal.severity_to_string e2.Journal.ev_severity)
        | l -> Alcotest.fail (Printf.sprintf "%d events" (List.length l)));
        check Alcotest.int "count" 2 (Journal.event_count ()));
    tc "the ring keeps only the newest events" (fun () ->
        Journal.clear ();
        let saved = Journal.ring_capacity () in
        Journal.set_ring_capacity 4;
        for i = 1 to 10 do
          Journal.emit ~component:"ring" (Printf.sprintf "e%d" i)
        done;
        let names = List.map (fun e -> e.Journal.ev_name) (Journal.events ()) in
        check
          Alcotest.(list string)
          "last four, oldest first"
          [ "e7"; "e8"; "e9"; "e10" ]
          names;
        check Alcotest.int "total count unaffected" 10 (Journal.event_count ());
        Journal.set_ring_capacity saved);
    tc "set_ring_capacity rejects negatives" (fun () ->
        check Alcotest.bool "raises" true
          (match Journal.set_ring_capacity (-1) with
          | () -> false
          | exception Invalid_argument _ -> true));
    tc "clear empties the ring and resets the count" (fun () ->
        Journal.emit ~component:"x" "pre";
        Journal.clear ();
        check Alcotest.int "no events" 0 (List.length (Journal.events ()));
        check Alcotest.int "count reset" 0 (Journal.event_count ()));
    tc "event_to_json round-trips through the parser" (fun () ->
        Journal.clear ();
        Journal.emit ~severity:Journal.Error
          ~attrs:[ ("why", "quote \" and newline \n") ]
          ~component:"portal" "submission";
        let e = List.hd (Journal.events ()) in
        let j = parse_json (Journal.event_to_json e) in
        check Alcotest.bool "seq" true
          (obj_field "seq" j = Some (Json.Num (float_of_int e.Journal.ev_seq)));
        check Alcotest.bool "severity" true
          (obj_field "severity" j = Some (Json.Str "ERROR"));
        check Alcotest.bool "component" true
          (obj_field "component" j = Some (Json.Str "portal"));
        check Alcotest.bool "event" true
          (obj_field "event" j = Some (Json.Str "submission"));
        match obj_field "attrs" j with
        | Some (Json.Obj [ ("why", Json.Str s) ]) ->
          check Alcotest.string "escaped attr round-trips"
            "quote \" and newline \n" s
        | _ -> Alcotest.fail "attrs");
    tc "to_jsonl emits one parseable line per event" (fun () ->
        Journal.clear ();
        Journal.emit ~component:"a" "one";
        Journal.emit ~component:"a" "two";
        let lines =
          String.split_on_char '\n' (Journal.to_jsonl ())
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "two lines" 2 (List.length lines);
        List.iter (fun l -> ignore (parse_json l)) lines);
    tc "sinks see every event and can be removed" (fun () ->
        Journal.clear ();
        let seen = ref [] in
        Journal.add_sink "test" (fun e -> seen := e.Journal.ev_name :: !seen);
        Journal.emit ~component:"s" "visible";
        Journal.remove_sink "test";
        Journal.emit ~component:"s" "invisible";
        check Alcotest.(list string) "one delivery" [ "visible" ] !seen);
    tc "a raising sink is dropped instead of breaking emit" (fun () ->
        Journal.clear ();
        Journal.add_sink "bad" (fun _ -> failwith "disk full");
        Journal.emit ~component:"s" "first";
        (* the sink raised once and was removed; emit keeps working *)
        Journal.emit ~component:"s" "second";
        check Alcotest.int "both recorded" 2 (Journal.event_count ()));
    tc "open_jsonl streams events to the file as JSON lines" (fun () ->
        Journal.clear ();
        let file = Filename.temp_file "journal" ".jsonl" in
        Journal.open_jsonl file;
        Journal.emit ~component:"f" ~attrs:[ ("n", "1") ] "flushed";
        Journal.remove_sink ("jsonl:" ^ file);
        let text = In_channel.with_open_text file In_channel.input_all in
        Sys.remove file;
        let lines =
          String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "one line" 1 (List.length lines);
        let j = parse_json (List.hd lines) in
        check Alcotest.bool "event name" true
          (obj_field "event" j = Some (Json.Str "flushed")));
    tc "dump_flight_recorder formats the trailing window" (fun () ->
        Journal.clear ();
        for i = 1 to 40 do
          Journal.emit ~component:"loop" (Printf.sprintf "it%d" i)
        done;
        let captured = Buffer.create 256 in
        Journal.set_dump_printer (Buffer.add_string captured);
        Fun.protect
          ~finally:(fun () -> Journal.set_dump_printer prerr_string)
          (fun () -> Journal.dump_flight_recorder ~limit:5 ~reason:"unit test" ());
        let text = Buffer.contents captured in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "reason present" true (contains "unit test");
        check Alcotest.bool "newest event present" true (contains "it40");
        check Alcotest.bool "window start present" true (contains "it36");
        check Alcotest.bool "older events excluded" false (contains "it35"));
  ]

(* ------------------------------------------------------------------ *)
(* regression gating (bench compare)                                   *)
(* ------------------------------------------------------------------ *)

let telemetry_dump ~mean ~hits =
  Printf.sprintf
    {|{"counters":{"portal.kbdd.cache_hits":%d,"portal.kbdd.submits":10},
       "timers":{"portal.kbdd.latency":{"count":10,"total_s":%f,"mean_s":%f,
                 "p50_s":%f,"p90_s":%f,"max_s":%f}},
       "probes":{},"spans":0}|}
    hits (10.0 *. mean) mean mean mean mean

let qor_dump ~latency ~wirelength =
  Printf.sprintf
    {|{"stages":[{"stage":"routing","latency_s":%f,
       "metrics":{"wirelength":%f,"nets_routed":4.0}}],"total_latency_s":%f}|}
    latency wirelength latency

let regress_tests =
  [
    tc "identical telemetry dumps pass the gate" (fun () ->
        let j = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let v = Regress.compare_json ~baseline:j ~current:j () in
        check Alcotest.(list string) "no regressions" [] v.Regress.regressions;
        check Alcotest.bool "compared something" true (v.Regress.compared > 0));
    tc "a 2x latency regression trips the gate" (fun () ->
        let base = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.020 ~hits:9) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "regression flagged" true
          (v.Regress.regressions <> []));
    tc "latency deltas under the noise floor are ignored" (fun () ->
        (* 2x relative but only 10us absolute: below the 0.1ms floor *)
        let base = parse_json (telemetry_dump ~mean:0.00001 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.00002 ~hits:9) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.(list string) "no regressions" [] v.Regress.regressions);
    tc "fewer cache hits is a QoR regression" (fun () ->
        let base = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.010 ~hits:4) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "regression flagged" true
          (v.Regress.regressions <> []));
    tc "flow QoR reports gate on per-stage metrics" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let same = Regress.compare_json ~baseline:base ~current:base () in
        check Alcotest.(list string) "identical passes" []
          same.Regress.regressions;
        let worse = parse_json (qor_dump ~latency:0.010 ~wirelength:34.0) in
        let v = Regress.compare_json ~baseline:base ~current:worse () in
        check Alcotest.bool "wirelength regression flagged" true
          (v.Regress.regressions <> []);
        let better = parse_json (qor_dump ~latency:0.010 ~wirelength:10.0) in
        let v2 = Regress.compare_json ~baseline:base ~current:better () in
        check Alcotest.(list string) "improvement is not a regression" []
          v2.Regress.regressions;
        check Alcotest.bool "improvement reported" true
          (v2.Regress.improvements <> []));
    tc "a doubled stage latency trips the gate" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let cur = parse_json (qor_dump ~latency:0.020 ~wirelength:17.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "latency regression flagged" true
          (v.Regress.regressions <> []));
    tc "render summarizes the verdict" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let cur = parse_json (qor_dump ~latency:0.030 ~wirelength:17.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        let text = Regress.render v in
        check Alcotest.bool "mentions REGRESSIONS" true
          (String.length text > 0
          &&
          let rec find i =
            i + 11 <= String.length text
            && (String.sub text i 11 = "REGRESSIONS" || find (i + 1))
          in
          find 0));
  ]

(* ------------------------------------------------------------------ *)
(* portal cache + counters                                             *)
(* ------------------------------------------------------------------ *)

(* Each test resets the global telemetry + cache so counts are exact. *)
let fresh () =
  T.reset ();
  Portal.clear_cache ();
  Portal.set_cache_capacity 512;
  Portal.create_session ()

let submits tool = T.counter ("portal." ^ tool ^ ".submits")
let executions tool = T.counter ("portal." ^ tool ^ ".executions")
let hits tool = T.counter ("portal." ^ tool ^ ".cache_hits")

let portal_tests =
  [
    tc "repeat submission is a cache hit with byte-identical output" (fun () ->
        let s = fresh () in
        let input = "boolean a b\nf = a & b\nsatcount f" in
        let out1 = Portal.submit s Portal.kbdd input in
        check Alcotest.int "one execution" 1 (executions "kbdd");
        check Alcotest.int "no hit yet" 0 (hits "kbdd");
        let out2 = Portal.submit s Portal.kbdd input in
        check Alcotest.string "byte-identical" out1 out2;
        check Alcotest.int "still one execution" 1 (executions "kbdd");
        check Alcotest.int "one hit" 1 (hits "kbdd");
        check Alcotest.bool "global stats agree" true
          (Portal.cache_stats () = (1, 1)));
    tc "cache is keyed by tool as well as input" (fun () ->
        let s = fresh () in
        let input = "not a valid anything" in
        ignore (Portal.submit s Portal.kbdd input);
        ignore (Portal.submit s Portal.espresso input);
        check Alcotest.int "kbdd executed" 1 (executions "kbdd");
        check Alcotest.int "espresso executed too" 1 (executions "espresso"));
    tc "counters are monotone across submits" (fun () ->
        let s = fresh () in
        let prev = ref (-1) in
        for i = 1 to 5 do
          ignore
            (Portal.submit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i));
          let now = submits "axb" in
          check Alcotest.bool "monotone" true (now > !prev);
          check Alcotest.int "equals submit count" i now;
          prev := now
        done;
        match T.timer "portal.axb.latency" with
        | Some t -> check Alcotest.int "latency sampled per submit" 5 t.T.count
        | None -> Alcotest.fail "no latency timer");
    tc "runaway rejection counts but does not execute or cache" (fun () ->
        let s = fresh () in
        let big = String.concat "\n" (List.init 3000 (fun _ -> "x")) in
        let out = Portal.submit s Portal.kbdd big in
        check Alcotest.bool "error text" true
          (String.length out >= 5 && String.sub out 0 5 = "error");
        check Alcotest.int "rejected" 1 (T.counter "portal.kbdd.rejected");
        check Alcotest.int "not executed" 0 (executions "kbdd");
        check Alcotest.int "not cached" 0 (Portal.cache_size ()));
    tc "LRU eviction respects the capacity bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 2));
        ignore (Portal.submit s Portal.axb (input 3));
        (* capacity held; input 1 was the stalest and got evicted *)
        check Alcotest.int "bounded" 2 (Portal.cache_size ());
        check Alcotest.int "one eviction" 1
          (T.counter "portal.cache.evictions");
        ignore (Portal.submit s Portal.axb (input 3));
        check Alcotest.int "3 still cached" 1 (hits "axb");
        ignore (Portal.submit s Portal.axb (input 1));
        check Alcotest.int "1 was re-executed" 4 (executions "axb"));
    tc "LRU refreshes recency on hit" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 2));
        ignore (Portal.submit s Portal.axb (input 1));
        (* touch 1 *)
        ignore (Portal.submit s Portal.axb (input 3));
        (* evicts 2, not 1 *)
        ignore (Portal.submit s Portal.axb (input 1));
        check Alcotest.int "1 stayed cached" 2 (hits "axb");
        ignore (Portal.submit s Portal.axb (input 2));
        check Alcotest.int "2 was re-executed" 4 (executions "axb"));
    tc "capacity 0 disables caching" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 0;
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (Portal.submit s Portal.axb input);
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "executed twice" 2 (executions "axb");
        check Alcotest.int "nothing cached" 0 (Portal.cache_size ()));
    tc "shrinking the capacity evicts down to the bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 8;
        for i = 1 to 6 do
          ignore
            (Portal.submit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i))
        done;
        check Alcotest.int "six cached" 6 (Portal.cache_size ());
        Portal.set_cache_capacity 3;
        check Alcotest.int "evicted to bound" 3 (Portal.cache_size ()));
    tc "cache hits still append to the session history" (fun () ->
        let s = fresh () in
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (Portal.submit s Portal.axb input);
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "two history entries" 2
          (List.length (Portal.history s Portal.axb)));
    tc "submit opens a portal.execute span on miss only" (fun () ->
        let s = fresh () in
        let input = "boolean a\nf = a\nsize f" in
        ignore (Portal.submit s Portal.kbdd input);
        ignore (Portal.submit s Portal.kbdd input);
        let roots = T.spans () in
        check Alcotest.int "one span" 1 (List.length roots);
        match roots with
        | [ sp ] ->
          check Alcotest.string "named" "portal.execute" sp.T.span_name;
          check Alcotest.bool "tool attr" true
            (List.assoc_opt "tool" sp.T.attrs = Some "kbdd")
        | _ -> ());
    tc "counters stay monotone with the cache disabled" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 0;
        let input = "n 1\nrow 2\nrhs 4" in
        let prev = ref (-1) in
        for i = 1 to 4 do
          ignore (Portal.submit s Portal.axb input);
          let now = submits "axb" in
          check Alcotest.bool "monotone" true (now > !prev);
          check Alcotest.int "submits" i now;
          check Alcotest.int "every submit executes" i (executions "axb");
          prev := now
        done;
        check Alcotest.int "never a hit" 0 (hits "axb");
        check Alcotest.int "nothing cached" 0 (Portal.cache_size ()));
    tc "clear_cache mid-session forces re-execution, counters keep" (fun () ->
        let s = fresh () in
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (Portal.submit s Portal.axb input);
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "one hit before clearing" 1 (hits "axb");
        Portal.clear_cache ();
        check Alcotest.int "cache emptied" 0 (Portal.cache_size ());
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "re-executed after clear" 2 (executions "axb");
        check Alcotest.int "hit counter kept its history" 1 (hits "axb");
        check Alcotest.int "history intact" 3
          (List.length (Portal.history s Portal.axb)));
  ]

(* ------------------------------------------------------------------ *)
(* portal <-> journal integration                                      *)
(* ------------------------------------------------------------------ *)

let journal_outcomes () =
  List.filter_map
    (fun e ->
      if e.Journal.ev_component = "portal" && e.Journal.ev_name = "submission"
      then List.assoc_opt "outcome" e.Journal.ev_attrs
      else None)
    (Journal.events ())

let portal_journal_tests =
  [
    tc "each submission emits one journal event with its outcome" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let input = "boolean a b\nf = a & b\nsatcount f" in
        ignore (Portal.submit s Portal.kbdd input);
        ignore (Portal.submit s Portal.kbdd input);
        check
          Alcotest.(list string)
          "executed then cache_hit"
          [ "executed"; "cache_hit" ]
          (journal_outcomes ());
        (match Journal.events () with
        | e :: _ ->
          check Alcotest.bool "tool attr" true
            (List.assoc_opt "tool" e.Journal.ev_attrs = Some "kbdd");
          check Alcotest.bool "digest attr" true
            (match List.assoc_opt "digest" e.Journal.ev_attrs with
            | Some d -> String.length d = 32
            | None -> false);
          check Alcotest.bool "latency attr" true
            (List.mem_assoc "latency_s" e.Journal.ev_attrs)
        | [] -> Alcotest.fail "no events"));
    tc "journal cache_hit events agree with the telemetry counter" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 2));
        ignore (Portal.submit s Portal.axb (input 1));
        let hit_events =
          List.length
            (List.filter (fun o -> o = "cache_hit") (journal_outcomes ()))
        in
        check Alcotest.int "counter agrees" (hits "axb") hit_events;
        check Alcotest.int "four events total" 4
          (List.length (journal_outcomes ())));
    tc "a runaway rejection logs an Error and dumps the recorder" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let captured = Buffer.create 256 in
        Journal.set_dump_printer (Buffer.add_string captured);
        let out =
          Fun.protect
            ~finally:(fun () -> Journal.set_dump_printer prerr_string)
            (fun () ->
              Portal.submit s Portal.kbdd
                (String.concat "\n" (List.init 3000 (fun _ -> "x"))))
        in
        check Alcotest.bool "rejected" true
          (String.length out >= 5 && String.sub out 0 5 = "error");
        (* the submission event is there, marked Error, with a reason *)
        let ev =
          List.find
            (fun e -> e.Journal.ev_name = "submission")
            (Journal.events ())
        in
        check Alcotest.string "severity" "ERROR"
          (Journal.severity_to_string ev.Journal.ev_severity);
        check Alcotest.bool "outcome rejected" true
          (List.assoc_opt "outcome" ev.Journal.ev_attrs = Some "rejected");
        check Alcotest.bool "reason recorded" true
          (List.mem_assoc "reason" ev.Journal.ev_attrs);
        (* and the flight recorder dumped the trailing window *)
        let text = Buffer.contents captured in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "dump happened" true (String.length text > 0);
        check Alcotest.bool "names the runaway guard" true (contains "runaway");
        check Alcotest.bool "names the tool" true (contains "kbdd");
        check Alcotest.bool "window includes the flight recorder header" true
          (contains "flight recorder"));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("telemetry", telemetry_tests);
      ("json", json_tests);
      ("clock", clock_tests);
      ("journal", journal_tests);
      ("regress", regress_tests);
      ("portal-cache", portal_tests);
      ("portal-journal", portal_journal_tests);
    ]
