module Map = Vc_techmap.Map
module Subject = Vc_techmap.Subject
module Cell_lib = Vc_techmap.Cell_lib

type waveform = (float * bool) list

type stimulus = (string * waveform) list

type event = { e_time : float; e_seq : int; e_node : int; e_value : bool }

let transitions w = max 0 (List.length w - 1)

let value_at w t =
  let rec go current = function
    | [] -> current
    | (time, v) :: rest -> if time <= t then go v rest else current
  in
  match w with [] -> false | (_, v0) :: rest -> go v0 rest

let glitches w =
  match w with
  | [] | [ _ ] -> 0
  | (_, first) :: rest ->
    let final = List.fold_left (fun _ (_, v) -> v) first rest in
    let needed = if first = final then 0 else 1 in
    max 0 (transitions w - needed)

let eval_gate (g : Map.gate) inputs =
  let rec eval_pattern = function
    | Cell_lib.P_leaf slot -> inputs.(slot)
    | Cell_lib.P_inv p -> not (eval_pattern p)
    | Cell_lib.P_nand (a, b) -> not (eval_pattern a && eval_pattern b)
  in
  eval_pattern g.Map.g_cell.Cell_lib.pattern

let simulate ?(horizon = 1e6) (m : Map.mapping) stimulus =
  let s = m.Map.subject in
  let n = Array.length s.Subject.nodes in
  (* validate stimulus names *)
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name s.Subject.inputs) then
        failwith ("Eventsim.simulate: unknown input " ^ name))
    stimulus;
  let initial_input name =
    match List.assoc_opt name stimulus with
    | Some ((_, v) :: _) -> v
    | Some [] | None -> false
  in
  (* steady state for the time-0 input values *)
  let value = Subject.eval s initial_input in
  let gates_of_input = Array.make n [] in
  List.iter
    (fun (g : Map.gate) ->
      List.iter
        (fun input ->
          gates_of_input.(input) <- g :: gates_of_input.(input))
        g.Map.g_inputs)
    m.Map.gates;
  let waveforms = Array.make n [] in
  Array.iteri (fun i v -> waveforms.(i) <- [ (0.0, v) ]) value;
  let cmp a b =
    match compare a.e_time b.e_time with
    | 0 -> compare a.e_seq b.e_seq
    | c -> c
  in
  let queue = Vc_util.Heap.create ~cmp in
  let seq = ref 0 in
  let schedule time node v =
    if time <= horizon then begin
      incr seq;
      Vc_util.Heap.push queue
        { e_time = time; e_seq = !seq; e_node = node; e_value = v }
    end
  in
  (* prime with the stimulus transitions *)
  List.iter
    (fun (name, w) ->
      let node = List.assoc name s.Subject.inputs in
      match w with
      | [] -> ()
      | _ :: transitions_ ->
        List.iter (fun (t, v) -> schedule t node v) transitions_)
    stimulus;
  (* main loop *)
  let rec run () =
    match Vc_util.Heap.pop queue with
    | None -> ()
    | Some ev ->
      if value.(ev.e_node) <> ev.e_value then begin
        value.(ev.e_node) <- ev.e_value;
        waveforms.(ev.e_node) <- (ev.e_time, ev.e_value) :: waveforms.(ev.e_node);
        (* re-evaluate every gate fed by this node *)
        List.iter
          (fun (g : Map.gate) ->
            let inputs =
              Array.of_list (List.map (fun i -> value.(i)) g.Map.g_inputs)
            in
            let out = eval_gate g inputs in
            schedule
              (ev.e_time +. g.Map.g_cell.Cell_lib.delay)
              g.Map.g_output out)
          gates_of_input.(ev.e_node)
      end;
      run ()
  in
  run ();
  List.map
    (fun (name, id) -> (name, List.rev waveforms.(id)))
    s.Subject.outputs
