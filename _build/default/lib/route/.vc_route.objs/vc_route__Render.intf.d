lib/route/render.mli: Grid Router
