lib/bdd/bdd.ml: Array Buffer Float Hashtbl List Printf Vc_cube
