(** The multicore portal service: a pool of OCaml 5 worker domains
    draining a bounded submission queue of {!Portal} jobs, with the
    admission control a MOOC-scale deployment needs - the paper's
    operations story ("the server must survive the homework-deadline
    stampede") turned into code.

    {b Admission control.} A submission is rejected {e immediately} -
    the caller never blocks - when the bounded queue is full
    ({!Portal.Overloaded}) or the session's token bucket is empty
    ({!Portal.Rate_limited}). An admitted job that waits in queue past
    the configured deadline is rejected at dequeue time
    ({!Portal.Deadline_exceeded}) without running the tool - lazy
    expiration: stale work is shed by the worker, not by a timer.
    Oversized inputs keep being rejected inside the portal itself
    ({!Portal.Runaway}). Every rejection path has its own outcome
    constructor, its own [server.outcome.rejected.*] counter and its
    own journal event, so saturation, abuse, staleness and oversized
    uploads are distinguishable on a dashboard.

    {b Observability.} The server maintains the [server.queue_depth]
    gauge, the [server.queue_wait] and [server.phase.*] latency
    histograms, the [server.submitted] / [server.outcome.*] counters,
    and emits [server.start] / [server.stop] / [job.rejected.*] journal
    events - all exported over [/metrics] with the [vc_] prefix (see
    [docs/SERVER.md] and [docs/OBSERVABILITY.md]).

    {b Request tracing.} Every submission gets a {!Vc_util.Trace_ctx}:
    the caller's trace id when one was supplied (the wire layer's
    [TRACE] operand), else a server-minted one. The request's lifecycle
    is journaled as [request.admitted] -> [request.dequeued] ->
    [request.replied] events carrying a [trace_id] attr, with the
    replied event also carrying the per-phase timeline
    ([phase.queue] / [phase.cache] / [phase.execute] / [phase.reply]
    attrs, seconds) whose aggregates feed the [server.phase.<name>]
    histograms. [vcstat request] joins these against a [vcload] client
    journal by trace id.

    {b Wake-up discipline.} The queue tracks how many workers are
    blocked idle; each admitted job signals {e one} idle worker
    ([Condition.signal]) instead of broadcasting to all of them, so an
    enqueue under load does not stampede the whole pool through the
    lock. Shutdown broadcasts so every worker observes the stop flag.
    See [docs/CONCURRENCY.md].

    {b Clocking.} All timestamps come from the injectable {!Vc_util.Clock}
    shared with telemetry and the journal, so rate-limit and deadline
    behaviour is unit-testable deterministically. *)

(** {1 Token bucket}

    The per-session rate limiter: a bucket holds up to [burst] tokens,
    refills at [rate] tokens per second, and each submission takes one.
    Exposed for deterministic unit tests; the server manages one bucket
    per session internally. *)

module Token_bucket : sig
  type t

  val create : rate:float -> burst:float -> now:float -> t
  (** A full bucket. [rate] is tokens per second ([0.] means the bucket
      never refills), [burst] the capacity.
      @raise Invalid_argument if [rate < 0.] or [burst <= 0.]. *)

  val try_take : t -> now:float -> bool
  (** Refill according to the elapsed time, then take one token if at
      least one is available. Not thread-safe on its own; the server
      serializes takes under its lock. *)

  val available : t -> now:float -> float
  (** Tokens that would be available at [now], without mutating. *)
end

val deadline_expired : enqueued:float -> deadline_s:float -> now:float -> bool
(** [true] when a job enqueued at [enqueued] has waited [deadline_s] or
    longer at [now] ([deadline_s = infinity] never expires;
    [deadline_s = 0.] always does - the deterministic test hook).
    Negative clock skew counts as zero wait. *)

(** {1 Configuration} *)

type config = {
  workers : int;  (** Worker domains; at least 1. *)
  queue_capacity : int;
      (** Maximum queued (not yet running) jobs; a submission arriving
          on a full queue is rejected [Overloaded] immediately. [0]
          rejects everything - useful in tests. *)
  deadline_s : float;
      (** Maximum queue wait; a job dequeued later than this is
          rejected [Deadline_exceeded] without running.
          [Float.infinity] disables the check. *)
  rate_limit : (float * float) option;
      (** [(rate, burst)] token-bucket parameters applied per session;
          [None] disables rate limiting. *)
}

val default_config : config
(** 4 workers, queue capacity 64, no deadline, no rate limit. *)

(** {1 Lifecycle} *)

type t

val start : ?config:config -> unit -> t
(** Spawn the worker domains and return the running server. Defines the
    [server.queue_wait] histogram, zeroes the [server.queue_depth]
    gauge and emits a [server.start] journal event.
    @raise Invalid_argument on [workers < 1] or a negative
    [queue_capacity]. *)

val stop : t -> unit
(** Graceful shutdown: stop admitting, let the workers drain every
    already-queued job, join them, then emit a [server.stop] journal
    event carrying the final outcome counters. Idempotent; subsequent
    {!submit} calls are rejected [Overloaded "server is shutting down"]. *)

(** {1 Submission} *)

val submit : t -> Portal.request -> Portal.outcome
(** Submit one {!Portal.request} (sessions are created on first use
    from [req_session] and hold the portal history plus the rate-limit
    bucket). Returns immediately with a rejection when rate-limited or
    the queue is full; otherwise blocks until a worker completes the
    job and returns its outcome. Increments [server.submitted] on every
    call and exactly one [server.outcome.*] counter per outcome. Safe
    to call from any number of client domains concurrently.

    [req_trace] is the client-supplied trace id; when absent or invalid
    ({!Vc_util.Trace_ctx.is_valid_id}) the server mints one. Either
    way the request's [request.*] journal events carry it as
    [trace_id]. *)

val session : t -> string -> Portal.session
(** The portal session behind [session_id] (created on first use) -
    gives callers access to {!Portal.history}. *)

val queue_depth : t -> int
(** Jobs currently queued (admitted, not yet picked up by a worker). *)
