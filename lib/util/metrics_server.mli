(** A zero-dependency, single-threaded HTTP metrics exporter built on the
    [Unix] library shipped with the compiler - the live read side of the
    observability layer.

    The server owns one listening TCP socket and answers two routes:

    - [GET /metrics] - the Prometheus text exposition produced by the
      [metrics] thunk given to {!start} (every binary passes
      [Telemetry.to_prometheus]);
    - [GET /healthz] - ["ok\n"], for load-balancer liveness checks.

    Anything else is a 404; non-GET methods are a 405. Connections are
    served one at a time on the caller's thread ([Connection: close], no
    keep-alive), which matches the single-threaded worker model of the
    rest of the repository: a scrape is a few kilobytes of text, so a
    serving loop keeps up with any reasonable scrape interval.

    Every binary under [bin/] exposes this through the
    [--metrics-port N] flag of {!Telemetry.cli}: the socket is bound (and
    the bound address announced on stderr) before the tool's main work
    starts, scrape connections queue in the listen backlog while it runs,
    and at exit the process stays alive serving [/metrics] until killed.
    Port [0] asks the kernel for an ephemeral port - the announcement is
    how a test harness learns which one. *)

type t
(** A bound, listening exporter. *)

val start :
  ?addr:string ->
  ?announce:bool ->
  ?on_request:(string -> unit) ->
  metrics:(unit -> string) ->
  port:int ->
  unit ->
  t
(** [start ~metrics ~port ()] binds a listening socket on
    [addr] (default ["127.0.0.1"]) at [port] ([0] = kernel-assigned
    ephemeral port) and returns without serving anything yet. [metrics]
    is re-evaluated on every [GET /metrics], so scrapes always see
    current values. [on_request] (default: nothing) is called with the
    request path before routing - {!Telemetry.cli} uses it to count
    scrapes. Unless [announce] is [false], the bound address is printed
    to stderr as [metrics: serving http://ADDR:PORT/metrics] so the
    ephemeral port is discoverable. Also ignores [SIGPIPE] so a scraper
    hanging up mid-response cannot kill the process.
    @raise Unix.Unix_error if the bind fails (port in use, privileged
    port). *)

val port : t -> int
(** The actually-bound port - the resolved one when {!start} was given
    port [0]. *)

val handle_client : t -> Unix.file_descr -> unit
(** Serve one already-connected socket: read the request head, route it,
    write the response, and close the descriptor (always, even on a
    malformed request or client error). Exposed so tests can drive the
    routing logic over a [socketpair] without real TCP accept loops. *)

val serve : ?max_requests:int -> t -> unit
(** Accept-and-serve loop. With [max_requests] it returns after that
    many connections; without it it loops until {!stop} closes the
    socket from another context (or forever). [EINTR] is retried;
    per-connection handler errors are reported to stderr and do not
    stop the loop. *)

val serve_forever : t -> 'a
(** {!serve} without a bound; never returns normally. This is what the
    [--metrics-port] at-exit hook runs. *)

val stop : t -> unit
(** Close the listening socket. Idempotent. *)
