examples/project_placement.ml: Array Out_channel Printf Sys Vc_mooc Vc_place Vc_route
