type config = {
  use_learning : bool;
  use_vsids : bool;
  use_restarts : bool;
  use_phase_saving : bool;
  max_conflicts : int option;
}

let default_config =
  {
    use_learning = true;
    use_vsids = true;
    use_restarts = true;
    use_phase_saving = true;
    max_conflicts = None;
  }

type result = Sat of bool array | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

(* A growable int-array vector for the clause database and watch lists. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let cap = max 8 (2 * Array.length v.data) in
      let data = Array.make cap x in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
end

type clause = {
  lits : int array; (* positions 0 and 1 are the watched literals *)
  learnt : bool;
  mutable act : float;
  mutable deleted : bool;
}

type solver = {
  cfg : config;
  nvars : int;
  clauses : clause Vec.t;
  (* watches.(lit_idx l) = clauses currently watching literal l *)
  watches : clause Vec.t array;
  assign : int array; (* by var: 0 unassigned / 1 true / -1 false *)
  level : int array; (* by var *)
  reason : clause option array; (* by var *)
  trail : int Vec.t; (* literals, assignment order *)
  trail_lim : int Vec.t; (* trail length at each decision *)
  mutable qhead : int;
  activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  polarity : bool array; (* saved phase *)
  seen : bool array; (* scratch for conflict analysis *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt : int;
  mutable max_learnts : float;
}

let lit_idx l = if l > 0 then 2 * l else (2 * -l) + 1

let lit_value s l =
  let v = s.assign.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let decision_level s = Vec.len s.trail_lim

let create cfg (f : Cnf.t) =
  let n = f.Cnf.num_vars in
  {
    cfg;
    nvars = n;
    clauses = Vec.create ();
    watches = Array.init ((2 * n) + 2) (fun _ -> Vec.create ());
    assign = Array.make (n + 1) 0;
    level = Array.make (n + 1) 0;
    reason = Array.make (n + 1) None;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    activity = Array.make (n + 1) 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    polarity = Array.make (n + 1) false;
    seen = Array.make (n + 1) false;
    n_decisions = 0;
    n_conflicts = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_learnt = 0;
    max_learnts = max 100.0 (float_of_int (Cnf.num_clauses f) /. 3.0);
  }

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to Vec.len s.clauses - 1 do
      let d = Vec.get s.clauses i in
      d.act <- d.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* Assign literal [l] true, recording the implication reason. *)
let enqueue s l reason =
  let v = abs l in
  assert (s.assign.(v) = 0);
  s.assign.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

(* Attach a clause of length >= 2 to the watch lists of its first two
   literals. *)
let attach s c =
  Vec.push s.watches.(lit_idx c.lits.(0)) c;
  Vec.push s.watches.(lit_idx c.lits.(1)) c

(* Two-watched-literal Boolean constraint propagation.  Returns the
   conflicting clause, if any. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < Vec.len s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    (* literal ~p just became false: scan clauses watching ~p *)
    let false_lit = -p in
    let ws = s.watches.(lit_idx false_lit) in
    let kept = ref 0 in
    let i = ref 0 in
    let n = Vec.len ws in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if c.deleted then () (* drop lazily *)
      else if !conflict <> None then begin
        (* conflict found earlier in this list: keep remaining watches *)
        Vec.set ws !kept c;
        incr kept
      end
      else begin
        (* ensure the false literal is at position 1 *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_value s first = 1 then begin
          (* satisfied: keep watching *)
          Vec.set ws !kept c;
          incr kept
        end
        else begin
          (* look for a new literal to watch *)
          let moved = ref false in
          let k = ref 2 in
          let len = Array.length c.lits in
          while (not !moved) && !k < len do
            if lit_value s c.lits.(!k) <> -1 then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- false_lit;
              Vec.push s.watches.(lit_idx c.lits.(1)) c;
              moved := true
            end;
            incr k
          done;
          if !moved then ()
          else begin
            (* clause is unit or conflicting under current assignment *)
            Vec.set ws !kept c;
            incr kept;
            if lit_value s first = -1 then conflict := Some c
            else enqueue s first (Some c)
          end
        end
      end
    done;
    Vec.shrink ws !kept
  done;
  !conflict

let backtrack s target_level =
  if decision_level s > target_level then begin
    let bound = Vec.get s.trail_lim target_level in
    for i = Vec.len s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = abs l in
      if s.cfg.use_phase_saving then s.polarity.(v) <- l > 0;
      s.assign.(v) <- 0;
      s.reason.(v) <- None
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim target_level;
    s.qhead <- Vec.len s.trail
  end

(* First-UIP conflict analysis.  Returns (learnt clause lits with the
   asserting literal first, backtrack level). *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let confl = ref (Some confl) in
  let trail_idx = ref (Vec.len s.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c =
      match !confl with
      | Some c -> c
      | None -> assert false (* a UIP always exists on the trail *)
    in
    if c.learnt then cla_bump s c;
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = abs q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else begin
              learnt := q :: !learnt;
              btlevel := max !btlevel s.level.(v)
            end
          end
        end)
      c.lits;
    (* walk the trail back to the next marked literal *)
    let rec find_next () =
      let l = Vec.get s.trail !trail_idx in
      decr trail_idx;
      if s.seen.(abs l) then l else find_next ()
    in
    p := find_next ();
    s.seen.(abs !p) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else confl := s.reason.(abs !p)
  done;
  let lits = -(!p) :: !learnt in
  (* clear seen marks *)
  List.iter (fun l -> s.seen.(abs l) <- false) !learnt;
  (Array.of_list lits, !btlevel)

(* Naive learning for the ablation: the negation of all current decisions. *)
let analyze_decisions s =
  let lits = ref [] in
  for d = 0 to decision_level s - 1 do
    let l = Vec.get s.trail (Vec.get s.trail_lim d) in
    lits := -l :: !lits
  done;
  let lits = !lits in
  let btlevel = max 0 (decision_level s - 1) in
  (* asserting literal (negated most recent decision) must come first *)
  match lits with
  | [] -> ([||], 0)
  | asserting :: rest -> (Array.of_list (asserting :: List.rev rest), btlevel)

let record_learnt s lits =
  if Array.length lits = 1 then begin
    backtrack s 0;
    if lit_value s lits.(0) = 0 then enqueue s lits.(0) None
  end
  else begin
    (* watch the asserting literal and a literal from the backtrack level *)
    let c = { lits; learnt = true; act = 0.0; deleted = false } in
    (* position 1 must hold the highest-level literal among lits.(1..) *)
    let best = ref 1 in
    for i = 2 to Array.length lits - 1 do
      if s.level.(abs lits.(i)) > s.level.(abs lits.(!best)) then best := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    Vec.push s.clauses c;
    s.n_learnt <- s.n_learnt + 1;
    attach s c;
    cla_bump s c;
    enqueue s lits.(0) (Some c)
  end

let reduce_db s =
  (* drop the least active half of the non-reason long learned clauses *)
  let learnts = ref [] in
  for i = 0 to Vec.len s.clauses - 1 do
    let c = Vec.get s.clauses i in
    if c.learnt && not c.deleted then learnts := c :: !learnts
  done;
  let arr = Array.of_list !learnts in
  Array.sort (fun a b -> compare a.act b.act) arr;
  let is_reason c =
    let v = abs c.lits.(0) in
    match s.reason.(v) with Some r -> r == c | None -> false
  in
  let target = Array.length arr / 2 in
  let removed = ref 0 in
  Array.iter
    (fun c ->
      if !removed < target && Array.length c.lits > 2 && not (is_reason c)
      then begin
        c.deleted <- true;
        s.n_learnt <- s.n_learnt - 1;
        incr removed
      end)
    arr

let pick_branch_var s =
  if s.cfg.use_vsids then begin
    let best = ref 0 and best_act = ref neg_infinity in
    for v = 1 to s.nvars do
      if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
        best := v;
        best_act := s.activity.(v)
      end
    done;
    if !best = 0 then None else Some !best
  end
  else begin
    let rec scan v =
      if v > s.nvars then None
      else if s.assign.(v) = 0 then Some v
      else scan (v + 1)
    in
    scan 1
  end

(* Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* Simplify the clause list at creation: drop tautologies, dedupe lits. *)
let preprocess (f : Cnf.t) =
  let simplify_clause c =
    let lits = Array.to_list c in
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    if taut then None else Some lits
  in
  List.filter_map simplify_clause f.Cnf.clauses

(* Process-wide cumulative counters across every [solve] call, for the
   Telemetry probe (per-call numbers stay in the returned [stats]). *)
let g_solves = ref 0
let g_decisions = ref 0
let g_conflicts = ref 0
let g_propagations = ref 0
let g_restarts = ref 0

let accumulate (st : stats) =
  Stdlib.incr g_solves;
  g_decisions := !g_decisions + st.decisions;
  g_conflicts := !g_conflicts + st.conflicts;
  g_propagations := !g_propagations + st.propagations;
  g_restarts := !g_restarts + st.restarts

let solve ?(config = default_config) (f : Cnf.t) =
  let s = create config f in
  let stats () =
    {
      decisions = s.n_decisions;
      conflicts = s.n_conflicts;
      propagations = s.n_propagations;
      restarts = s.n_restarts;
      learned = s.n_learnt;
    }
  in
  let exception Finished of result in
  try
    (* load clauses *)
    let load lits =
      match lits with
      | [] -> raise (Finished Unsat)
      | [ l ] ->
        if lit_value s l = -1 then raise (Finished Unsat)
        else if lit_value s l = 0 then enqueue s l None
      | l0 :: l1 :: _ ->
        ignore l0;
        ignore l1;
        let c =
          { lits = Array.of_list lits; learnt = false; act = 0.0;
            deleted = false }
        in
        Vec.push s.clauses c;
        attach s c
    in
    List.iter load (preprocess f);
    if propagate s <> None then raise (Finished Unsat);
    let conflicts_until_restart = ref (100 * luby 0) in
    let restart_count = ref 0 in
    while true do
      match propagate s with
      | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        (match config.max_conflicts with
        | Some budget when s.n_conflicts > budget -> raise (Finished Unknown)
        | Some _ | None -> ());
        if decision_level s = 0 then raise (Finished Unsat);
        let lits, btlevel =
          if config.use_learning then analyze s confl else analyze_decisions s
        in
        if Array.length lits = 0 then raise (Finished Unsat);
        backtrack s btlevel;
        record_learnt s lits;
        var_decay s;
        cla_decay s;
        if float_of_int s.n_learnt > s.max_learnts then begin
          reduce_db s;
          s.max_learnts <- s.max_learnts *. 1.5
        end;
        decr conflicts_until_restart
      | None ->
        if config.use_restarts && !conflicts_until_restart <= 0 then begin
          incr restart_count;
          s.n_restarts <- s.n_restarts + 1;
          conflicts_until_restart := 100 * luby !restart_count;
          backtrack s 0
        end
        else begin
          match pick_branch_var s with
          | None ->
            (* complete assignment: build the model *)
            let model = Array.make (s.nvars + 1) false in
            for v = 1 to s.nvars do
              model.(v) <- s.assign.(v) = 1
            done;
            raise (Finished (Sat model))
          | Some v ->
            s.n_decisions <- s.n_decisions + 1;
            Vec.push s.trail_lim (Vec.len s.trail);
            let phase = if config.use_phase_saving then s.polarity.(v) else false in
            enqueue s (if phase then v else -v) None
        end
    done;
    assert false
  with Finished r ->
    let st = stats () in
    accumulate st;
    (r, st)

let is_sat f =
  match solve f with
  | Sat _, _ -> true
  | Unsat, _ -> false
  | Unknown, _ -> assert false

let stats () =
  [
    ("solves", !g_solves);
    ("decisions", !g_decisions);
    ("conflicts", !g_conflicts);
    ("propagations", !g_propagations);
    ("restarts", !g_restarts);
  ]

let () = Vc_util.Telemetry.register_probe "sat.solver" stats
