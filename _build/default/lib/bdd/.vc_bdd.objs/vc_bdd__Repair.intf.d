lib/bdd/repair.mli: Bdd Vc_cube
