(* Global instrumentation state. Everything lives in plain hashtables
   keyed by flat names; renderers sort on the way out.

   Domain safety: all shared tables sit behind one mutex ([mu]) with
   short critical sections - an increment or a sample push, never a tool
   execution. The trace-span stack is domain-local ([Domain.DLS]) so
   concurrent spans from different domains build independent trees;
   completed top-level spans merge into the shared forest under the same
   mutex. Lock ordering: callers may hold their own locks (the portal
   cache, the server queue) when calling in here, but nothing in this
   module ever calls back out, so the telemetry mutex is always
   innermost and cannot deadlock. *)

let set_clock = Clock.set
let now = Clock.now

let mu = Mutex.create ()
let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64

let incr ?(by = 1) name =
  locked (fun () ->
      match Hashtbl.find_opt counter_tbl name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add counter_tbl name (ref by))

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0)

let counters () =
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counter_tbl [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  max_s : float;
  stddev_s : float;
}

(* raw samples, newest first; summarized lazily by the renderers *)
let timer_tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 64

(* ------------------------------------------------------------------ *)
(* histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Fixed-bucket histograms exist for the Prometheus exposition: a scrape
   wants pre-bucketed counts, not the raw sample list. A histogram is an
   upgrade of a timer - [define_histogram name] makes every subsequent
   (and prior) [observe name] also land in buckets, while the raw-sample
   timer keeps answering exact percentiles for the offline renderers. *)

type hist = {
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_counts : int array; (* per-bucket (non-cumulative); no +Inf slot *)
  mutable h_sum : float;
  mutable h_count : int; (* total observations incl. over-range *)
}

type hist_summary = {
  buckets : (float * int) list; (* (upper bound, cumulative count) *)
  hist_sum : float;
  hist_count : int;
}

(* Latency-oriented: the portal tools answer in microseconds to tens of
   milliseconds; the full flow runs for seconds on big designs. *)
let default_buckets =
  [
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  ]

let hist_tbl : (string, hist) Hashtbl.t = Hashtbl.create 16

let hist_observe h v =
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  let n = Array.length h.h_bounds in
  (* first bucket whose upper bound contains v; linear scan is fine for
     ~20 buckets on paths that just ran a whole tool *)
  let rec place i =
    if i >= n then () (* over-range: counted only in h_count (+Inf) *)
    else if v <= h.h_bounds.(i) then h.h_counts.(i) <- h.h_counts.(i) + 1
    else place (i + 1)
  in
  place 0

let define_histogram ?(buckets = default_buckets) name =
  (match buckets with
  | [] -> invalid_arg "Telemetry.define_histogram: no buckets"
  | _ ->
    List.iter2
      (fun a b ->
        if b <= a then
          invalid_arg "Telemetry.define_histogram: buckets not increasing")
      (List.filteri (fun i _ -> i < List.length buckets - 1) buckets)
      (List.tl buckets));
  locked (fun () ->
      if not (Hashtbl.mem hist_tbl name) then begin
        let h =
          {
            h_bounds = Array.of_list buckets;
            h_counts = Array.make (List.length buckets) 0;
            h_sum = 0.0;
            h_count = 0;
          }
        in
        (* backfill samples the timer already recorded, so "converting" a
           live timer mid-run loses nothing *)
        (match Hashtbl.find_opt timer_tbl name with
        | Some l -> List.iter (hist_observe h) (List.rev !l)
        | None -> ());
        Hashtbl.add hist_tbl name h
      end)

let hist_summarize h =
  let cum = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           cum := !cum + h.h_counts.(i);
           (bound, !cum))
         h.h_bounds)
  in
  { buckets; hist_sum = h.h_sum; hist_count = h.h_count }

let histogram name =
  locked (fun () ->
      Option.map hist_summarize (Hashtbl.find_opt hist_tbl name))

let histograms () =
  locked (fun () ->
      Hashtbl.fold (fun k h acc -> (k, hist_summarize h) :: acc) hist_tbl [])
  |> List.sort compare

let observe name dt =
  locked (fun () ->
      (match Hashtbl.find_opt timer_tbl name with
      | Some l -> l := dt :: !l
      | None -> Hashtbl.add timer_tbl name (ref [ dt ]));
      match Hashtbl.find_opt hist_tbl name with
      | Some h -> hist_observe h dt
      | None -> ())

(* ------------------------------------------------------------------ *)
(* gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauge_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16

let set_gauge name v =
  locked (fun () ->
      match Hashtbl.find_opt gauge_tbl name with
      | Some r -> r := v
      | None -> Hashtbl.add gauge_tbl name (ref v))

let gauge name =
  locked (fun () -> Option.map ( ! ) (Hashtbl.find_opt gauge_tbl name))

let gauges () =
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauge_tbl [])
  |> List.sort compare

(* The clock is wall time, not monotonic: an NTP step mid-measurement can
   make [now () -. t0] negative, so computed durations clamp at zero. *)
let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let time name f =
  let t0 = now () in
  match f () with
  | v ->
    observe name (elapsed_since t0);
    v
  | exception e ->
    observe name (elapsed_since t0);
    raise e

(* All descriptive statistics come from Vc_util.Stats - the one
   percentile/stddev implementation shared with Journal_query and the
   bench report printers. *)
let summarize samples =
  {
    count = List.length samples;
    total_s = List.fold_left ( +. ) 0.0 samples;
    mean_s = Stats.mean samples;
    p50_s = Stats.percentile samples 50.0;
    p90_s = Stats.percentile samples 90.0;
    p99_s = Stats.percentile samples 99.0;
    max_s = Stats.maximum samples;
    stddev_s = Stats.stddev samples;
  }

(* Snapshot the (immutable) sample lists under the lock, summarize
   outside it - the summaries walk each list several times. *)
let timer name =
  locked (fun () -> Option.map ( ! ) (Hashtbl.find_opt timer_tbl name))
  |> Option.map summarize

let timers () =
  locked (fun () -> Hashtbl.fold (fun k l acc -> (k, !l) :: acc) timer_tbl [])
  |> List.map (fun (k, l) -> (k, summarize l))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* trace spans                                                         *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * string) list;
  children : span list;
}

type open_span = {
  o_name : string;
  o_start : float;
  o_attrs : (string * string) list;
  mutable o_children : span list; (* newest first *)
}

(* Each domain nests spans on its own stack; only a completed top-level
   span crosses into the shared forest (under [mu]). *)
let span_stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let root_spans : span list ref = ref [] (* newest first; guarded by mu *)

let with_span ?(attrs = []) name f =
  let span_stack = Domain.DLS.get span_stack_key in
  let o = { o_name = name; o_start = now (); o_attrs = attrs; o_children = [] } in
  span_stack := o :: !span_stack;
  let finish extra =
    (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
    let s =
      {
        span_name = o.o_name;
        start_s = o.o_start;
        duration_s = elapsed_since o.o_start;
        attrs = o.o_attrs @ extra;
        children = List.rev o.o_children;
      }
    in
    match !span_stack with
    | parent :: _ -> parent.o_children <- s :: parent.o_children
    | [] -> locked (fun () -> root_spans := s :: !root_spans)
  in
  match f () with
  | v ->
    finish [];
    v
  | exception e ->
    finish [ ("error", Printexc.to_string e) ];
    raise e

let timed_span ?attrs name f = time name (fun () -> with_span ?attrs name f)

let spans () = List.rev (locked (fun () -> !root_spans))

(* ------------------------------------------------------------------ *)
(* probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe_tbl : (string, unit -> (string * int) list) Hashtbl.t =
  Hashtbl.create 16

let register_probe name f =
  locked (fun () -> Hashtbl.replace probe_tbl name f)

(* Snapshot the registry under the lock, but read each probe outside it:
   probe thunks belong to other subsystems and must be free to take
   their own locks. *)
let probes () =
  locked (fun () -> Hashtbl.fold (fun k f acc -> (k, f) :: acc) probe_tbl [])
  |> List.map (fun (k, f) -> (k, f ()))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* renderers                                                           *)
(* ------------------------------------------------------------------ *)

let report () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== telemetry report ==\n";
  let cs = counters () in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10d\n" k v))
      cs
  end;
  let gs = gauges () in
  if gs <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10g\n" k v))
      gs
  end;
  let ts = timers () in
  if ts <> [] then begin
    Buffer.add_string b
      "timers (count / total ms / mean ms / p50 ms / p90 ms / p99 ms / max \
       ms / stddev ms):\n";
    List.iter
      (fun (k, s) ->
        Buffer.add_string b
          (Printf.sprintf
             "  %-40s %6d %9.2f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" k
             s.count (1e3 *. s.total_s) (1e3 *. s.mean_s) (1e3 *. s.p50_s)
             (1e3 *. s.p90_s) (1e3 *. s.p99_s) (1e3 *. s.max_s)
             (1e3 *. s.stddev_s)))
      ts
  end;
  let ps = probes () in
  if ps <> [] then begin
    Buffer.add_string b "kernel probes:\n";
    List.iter
      (fun (name, kvs) ->
        Buffer.add_string b (Printf.sprintf "  %s:\n" name);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b (Printf.sprintf "    %-36s %10d\n" k v))
          kvs)
      ps
  end;
  Buffer.add_string b
    (Printf.sprintf "trace spans recorded: %d\n"
       (List.length (locked (fun () -> !root_spans))));
  Buffer.contents b

(* JSON text is built through the shared Vc_util.Json emitters, so the
   layer stays free of third-party dependencies. *)
let jstr = Json.str
let jfloat = Json.num
let jobj = Json.obj
let jarr = Json.arr

let summary_json s =
  jobj
    [
      ("count", string_of_int s.count);
      ("total_s", jfloat s.total_s);
      ("mean_s", jfloat s.mean_s);
      ("p50_s", jfloat s.p50_s);
      ("p90_s", jfloat s.p90_s);
      ("p99_s", jfloat s.p99_s);
      ("max_s", jfloat s.max_s);
      ("stddev_s", jfloat s.stddev_s);
    ]

let hist_json h =
  jobj
    [
      ( "buckets",
        jarr
          (List.map
             (fun (le, c) ->
               jobj [ ("le", jfloat le); ("cumulative", string_of_int c) ])
             h.buckets) );
      ("sum", jfloat h.hist_sum);
      ("count", string_of_int h.hist_count);
    ]

let to_json () =
  jobj
    [
      ( "counters",
        jobj (List.map (fun (k, v) -> (k, string_of_int v)) (counters ())) );
      ("gauges", jobj (List.map (fun (k, v) -> (k, jfloat v)) (gauges ())));
      ("timers", jobj (List.map (fun (k, s) -> (k, summary_json s)) (timers ())));
      ( "histograms",
        jobj (List.map (fun (k, h) -> (k, hist_json h)) (histograms ())) );
      ( "probes",
        jobj
          (List.map
             (fun (name, kvs) ->
               (name, jobj (List.map (fun (k, v) -> (k, string_of_int v)) kvs)))
             (probes ())) );
      ("spans", string_of_int (List.length (locked (fun () -> !root_spans))));
    ]

let rec span_json s =
  jobj
    [
      ("name", jstr s.span_name);
      ("start_s", jfloat s.start_s);
      ("duration_s", jfloat s.duration_s);
      ("attrs", jobj (List.map (fun (k, v) -> (k, jstr v)) s.attrs));
      ("children", jarr (List.map span_json s.children));
    ]

let spans_to_json () = jobj [ ("spans", jarr (List.map span_json (spans ()))) ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Exposition format 0.0.4: one family per metric, HELP/TYPE comments,
   histogram families with _bucket{le=...}/_sum/_count series. Metric
   names come from the dotted telemetry names with a vc_ prefix. *)

let prom_name s =
  "vc_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      s

(* %.9g keeps full useful precision while rendering round bucket bounds
   as short, stable le labels (0.0001, not 0.000100000) *)
let prom_float f = Printf.sprintf "%.9g" f

let to_prometheus () =
  let b = Buffer.create 4096 in
  let family name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun (k, v) ->
      let n = prom_name k ^ "_total" in
      family n "counter" (Printf.sprintf "Telemetry counter %s." k);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    (counters ());
  List.iter
    (fun (probe, kvs) ->
      List.iter
        (fun (k, v) ->
          let n = prom_name (probe ^ "." ^ k) ^ "_total" in
          family n "counter"
            (Printf.sprintf "Kernel probe %s, cumulative %s." probe k);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
        kvs)
    (probes ());
  let n = "vc_journal_events_total" in
  family n "counter" "Structured journal events emitted since start.";
  Buffer.add_string b (Printf.sprintf "%s %d\n" n (Journal.event_count ()));
  List.iter
    (fun (k, v) ->
      let n = prom_name k in
      family n "gauge" (Printf.sprintf "Telemetry gauge %s." k);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (prom_float v)))
    (gauges ());
  let hists = histograms () in
  List.iter
    (fun (k, h) ->
      let n = prom_name k ^ "_seconds" in
      family n "histogram" (Printf.sprintf "Histogram %s (seconds)." k);
      List.iter
        (fun (le, c) ->
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float le) c))
        h.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.hist_count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float h.hist_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.hist_count))
    hists;
  (* timers that were not upgraded to histograms still appear, as
     summaries with exact quantiles off the raw samples *)
  List.iter
    (fun (k, s) ->
      if not (List.mem_assoc k hists) then begin
        let n = prom_name k ^ "_seconds" in
        family n "summary" (Printf.sprintf "Timer %s (seconds)." k);
        List.iter
          (fun (q, v) ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (prom_float v)))
          [ ("0.5", s.p50_s); ("0.9", s.p90_s); ("0.99", s.p99_s) ];
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float s.total_s));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.count)
      end)
    (timers ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* control / CLI                                                       *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.reset counter_tbl;
      Hashtbl.reset timer_tbl;
      Hashtbl.reset hist_tbl;
      Hashtbl.reset gauge_tbl;
      root_spans := []);
  (* only the calling domain's open-span stack can be cleared - other
     domains own theirs *)
  Domain.DLS.get span_stack_key := []

type cli_options = {
  cli_argv : string array;
  cli_stats : bool;
  cli_trace : string option;
  cli_journal : string option;
  cli_metrics_port : int option;
}

let cli_parse argv =
  let stats = ref false
  and trace = ref None
  and journal = ref None
  and metrics_port = ref None in
  let missing flag what =
    Printf.eprintf "error: %s requires a %s argument\n" flag what;
    exit 2
  in
  let rec strip acc = function
    | [] -> List.rev acc
    | "--stats" :: rest ->
      stats := true;
      strip acc rest
    | [ "--trace" ] -> missing "--trace" "FILE"
    | "--trace" :: file :: rest ->
      trace := Some file;
      strip acc rest
    | [ "--journal" ] -> missing "--journal" "FILE"
    | "--journal" :: file :: rest ->
      journal := Some file;
      strip acc rest
    | [ "--metrics-port" ] -> missing "--metrics-port" "PORT"
    | "--metrics-port" :: port :: rest -> begin
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 ->
        metrics_port := Some p;
        strip acc rest
      | Some _ | None ->
        Printf.eprintf "error: --metrics-port: bad port %S (0-65535)\n" port;
        exit 2
    end
    | a :: rest -> strip (a :: acc) rest
  in
  match Array.to_list argv with
  | [] ->
    {
      cli_argv = argv;
      cli_stats = false;
      cli_trace = None;
      cli_journal = None;
      cli_metrics_port = None;
    }
  | prog :: args ->
    let kept = strip [] args in
    {
      cli_argv = Array.of_list (prog :: kept);
      cli_stats = !stats;
      cli_trace = !trace;
      cli_journal = !journal;
      cli_metrics_port = !metrics_port;
    }

let cli argv =
  let o = cli_parse argv in
  (* Registered before the stats/trace hooks: at_exit runs LIFO, and the
     serving loop must be the last thing the process does - it keeps the
     tool alive answering /metrics until the operator kills it. *)
  (match o.cli_metrics_port with
  | Some port ->
    let srv =
      Metrics_server.start ~port
        ~on_request:(fun _path -> incr "metrics.http_requests")
        ~metrics:(fun () -> to_prometheus ())
        ()
    in
    set_gauge "metrics.port" (float_of_int (Metrics_server.port srv));
    at_exit (fun () -> Metrics_server.serve_forever srv)
  | None -> ());
  Journal.install_crash_handler ();
  if o.cli_stats then at_exit (fun () -> prerr_string (report ()));
  (match o.cli_trace with
  | Some file ->
    at_exit (fun () ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (spans_to_json ())))
  | None -> ());
  (match o.cli_journal with Some file -> Journal.open_jsonl file | None -> ());
  o.cli_argv
