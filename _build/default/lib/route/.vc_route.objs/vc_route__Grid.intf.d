lib/route/grid.mli:
