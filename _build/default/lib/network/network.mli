(** Combinational Boolean networks: a DAG of single-output nodes, each
    computing a sum-of-products over its fanins. The shared representation
    between logic synthesis (SIS-style scripts operate on it), technology
    mapping (consumes it) and verification (checks it).

    Node functions are {!Vc_cube.Cover.t} values whose variable [i] is the
    node's [i]-th fanin. *)

type node = {
  name : string;
  fanins : string list;
  func : Vc_cube.Cover.t;  (** SOP over [fanins], same order. *)
}

type t

val create :
  ?name:string -> inputs:string list -> outputs:string list -> unit -> t
(** An empty network; outputs must eventually be defined by nodes (or be
    inputs). *)

val name : t -> string

val inputs : t -> string list

val outputs : t -> string list

val add_node : t -> name:string -> fanins:string list -> func:Vc_cube.Cover.t -> unit
(** Define (or redefine) the node driving signal [name].
    @raise Invalid_argument if [name] is a primary input, or the function
    width differs from the fanin count. *)

val remove_node : t -> string -> unit

val find_node : t -> string -> node option

val node_names : t -> string list
(** All defined internal node names, unspecified order. *)

val node_count : t -> int

val literal_count : t -> int
(** Total SOP literals over all nodes: the course's (and SIS's) cost
    metric for multi-level logic. *)

val topological_order : t -> string list
(** Internal node names, fanins before fanouts.
    @raise Failure on a combinational cycle or an undefined signal. *)

val fanouts : t -> string -> string list
(** Internal nodes that use signal [name] as a fanin. *)

val depth : t -> int
(** Longest input-to-output path, counting nodes. *)

val simulate : t -> (string -> bool) -> (string * bool) list
(** Evaluate all outputs under an input assignment. *)

val output_expr : t -> string -> Vc_cube.Expr.t
(** Collapse an output's cone to an expression over primary inputs.
    Exponential in the worst case; meant for verification at course
    scale. *)

val copy : t -> t

val of_exprs :
  ?name:string -> inputs:string list -> (string * Vc_cube.Expr.t) list -> t
(** A network with one node per (output, expression) pair; each node's SOP
    is Espresso-minimized on construction. Expression support must stay
    small (<= 20 variables per output). *)

val check : t -> (string, string) result
(** Structural sanity: acyclic, all signals defined, widths consistent. *)
