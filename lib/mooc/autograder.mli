(** Cloud auto-grading (Figs. 4-6): projects are decomposed into gradable
    units so benchmarks test individual aspects of a submission and
    partial credit is assignable - "exactly like building a large
    regression suite for a commercial EDA tool".

    A grader is a list of unit tests, each mapping the student's uploaded
    text to pass/fail plus a message. This module provides the framework
    and the submission validators shared by the project graders in
    {!Projects}. *)

type unit_test = {
  ut_name : string;
  ut_points : int;
  ut_check : string -> bool * string;  (** Must not raise. *)
}

type unit_result = {
  ur_name : string;
  ur_passed : bool;
  ur_points : int;  (** Earned. *)
  ur_max : int;
  ur_message : string;
}

type grade = {
  earned : int;
  possible : int;
  units : unit_result list;
}

val make_test :
  name:string -> points:int -> (string -> bool * string) -> unit_test
(** Wraps the check so exceptions become failed units, never crashes. *)

val grade : unit_test list -> string -> grade
(** Runs every unit against the submission. Each gradable unit emits one
    {!Vc_util.Journal} event (component ["autograder"], name
    ["unit.graded"], severity [Warn] when failed) with the unit's name
    and earned/possible points - the Fig. 6 per-unit partial-credit
    record - followed by one ["grade.done"] summary event. *)

val render : grade -> string
(** The web-page text a participant sees. *)

(* -------------------- submission validators -------------------- *)

type routing_check = {
  rc_wirelength : int;  (** Occupied cells, vias excluded. *)
  rc_vias : int;
}

val validate_routing :
  Vc_route.Router.problem -> string -> (routing_check, string) result
(** Parse a project-4 upload ([net]/[<layer> <x> <y>]/[break]/[endnet])
    and check every net: path contiguity, all pins connected, bounds,
    obstacles, and disjointness between nets. *)

val validate_placement :
  Vc_place.Pnet.t ->
  max_overlaps:int ->
  string ->
  (float, string) result
(** Parse a project-3 upload and check legality; returns the HPWL. *)
