(* moocsim: regenerate the paper's figures from the cohort model.
   Usage: moocsim [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [seed] *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let seed = match argv with [| _; s |] -> int_of_string s | _ -> 2013 in
  let ps =
    Vc_util.Telemetry.timed_span "moocsim.simulate" (fun () ->
        Vc_mooc.Cohort.simulate ~seed Vc_mooc.Cohort.paper_params)
  in
  print_string (Vc_mooc.Concept_map.render_fig1 ());
  print_newline ();
  print_string (Vc_mooc.Syllabus.render_fig2 ());
  print_newline ();
  print_string (Vc_mooc.Cohort.render_fig8 (Vc_mooc.Cohort.funnel_of ps));
  print_newline ();
  print_string (Vc_mooc.Cohort.render_fig9 (Vc_mooc.Cohort.viewers_per_video ps));
  print_newline ();
  let people =
    Vc_mooc.Demographics.sample ~seed:(seed + 1)
      (Vc_mooc.Cohort.funnel_of ps).Vc_mooc.Cohort.watched_video
  in
  let summary = Vc_mooc.Demographics.summarize people in
  print_string (Vc_mooc.Demographics.render_stats summary);
  print_newline ();
  print_string (Vc_mooc.Demographics.render_fig10 summary);
  print_newline ();
  let responses = Vc_mooc.Survey.generate_responses ~seed:(seed + 2) 400 in
  print_string (Vc_mooc.Survey.render_fig11 (Vc_mooc.Survey.word_frequencies responses))
