(* axb: the linear-system portal tool.
   Usage: axb [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [system-file] *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let text =
    match argv with
    | [| _ |] -> In_channel.input_all stdin
    | [| _; path |] -> In_channel.with_open_text path In_channel.input_all
    | _ ->
      prerr_endline "usage: axb [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [system-file]";
      exit 2
  in
  print_endline (Vc_util.Telemetry.timed_span "axb" (fun () -> Vc_linalg.Axb.run text))
