lib/timing/eventsim.mli: Vc_techmap
