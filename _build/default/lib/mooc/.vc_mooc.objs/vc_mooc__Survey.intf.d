lib/mooc/survey.mli:
