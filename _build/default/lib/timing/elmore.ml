type tree = {
  resistance : float;
  capacitance : float;
  label : string;
  children : tree list;
}

let node ?(label = "") ~r ~c children =
  { resistance = r; capacitance = c; label; children }

let rec downstream_capacitance t =
  List.fold_left
    (fun acc child -> acc +. downstream_capacitance child)
    t.capacitance t.children

let delays ?(driver_resistance = 0.0) t =
  let out = ref [] in
  (* accumulate sum of R_k * C_down(k) along the path from the root *)
  let rec walk upstream node =
    let here = upstream +. (node.resistance *. downstream_capacitance node) in
    if node.label <> "" then out := (node.label, here) :: !out;
    List.iter (walk here) node.children
  in
  let base = driver_resistance *. downstream_capacitance t in
  walk base { t with resistance = 0.0 };
  (* the root's own resistance is folded away: the driver resistance models
     the source; re-add the root segment if it had one *)
  if t.resistance <> 0.0 then begin
    let shifted = t.resistance *. downstream_capacitance t in
    out := List.map (fun (l, d) -> (l, d +. shifted)) !out
  end;
  List.rev !out

let delay_to ?driver_resistance t label =
  match List.assoc_opt label (delays ?driver_resistance t) with
  | Some d -> d
  | None -> raise Not_found

type wire_params = {
  r_per_unit : float;
  c_per_unit : float;
  via_r : float;
  via_c : float;
  load_c : float;
}

let default_wire =
  { r_per_unit = 0.1; c_per_unit = 0.2; via_r = 2.0; via_c = 0.1; load_c = 1.0 }

(* Mutable scaffolding while stitching paths into a tree. *)
type mnode = {
  mutable m_r : float;
  mutable m_c : float;
  mutable m_label : string;
  mutable m_children : Vc_route.Grid.point list;
}

let of_route ?(params = default_wire) paths =
  match paths with
  | [] | [] :: _ -> invalid_arg "Elmore.of_route: empty route"
  | (root_pt :: _) :: _ ->
    let table : (Vc_route.Grid.point, mnode) Hashtbl.t = Hashtbl.create 64 in
    let get pt =
      match Hashtbl.find_opt table pt with
      | Some n -> n
      | None ->
        let n = { m_r = 0.0; m_c = 0.0; m_label = ""; m_children = [] } in
        Hashtbl.add table pt n;
        n
    in
    let root = get root_pt in
    root.m_c <- params.c_per_unit;
    let sink_id = ref 0 in
    let add_segment a b =
      if not (Hashtbl.mem table b) then begin
        let n = get b in
        let via = a.Vc_route.Grid.layer <> b.Vc_route.Grid.layer in
        n.m_r <- (if via then params.via_r else params.r_per_unit);
        n.m_c <- (if via then params.via_c else params.c_per_unit);
        (get a).m_children <- b :: (get a).m_children
      end
    in
    List.iter
      (fun path ->
        let rec walk = function
          | a :: (b :: _ as rest) ->
            add_segment a b;
            walk rest
          | [ last ] ->
            let n = get last in
            n.m_c <- n.m_c +. params.load_c;
            if n.m_label = "" then begin
              n.m_label <- Printf.sprintf "sink%d" !sink_id;
              incr sink_id
            end
          | [] -> ()
        in
        walk path)
      paths;
    let rec freeze pt =
      let m = Hashtbl.find table pt in
      {
        resistance = m.m_r;
        capacitance = m.m_c;
        label = m.m_label;
        children = List.map freeze m.m_children;
      }
    in
    freeze root_pt
