bin/minisat.mli:
