lib/timing/eventsim.ml: Array List Vc_techmap Vc_util
