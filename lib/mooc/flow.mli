(** The push-button "logic to layout" flow the course name promises:
    multi-level synthesis -> technology mapping -> quadratic placement ->
    legalization -> two-layer maze routing -> static timing with Elmore
    wire delays. One call, one report - the integration the examples and
    Fig. 7 bench drive. *)

type options = {
  mode : Vc_techmap.Map.mode;
  synth_script : string;  (** {!Vc_multilevel.Script} commands. *)
  seed : int;
  cell_spacing : int;  (** Routing grid pitch per placement slot (>= 2). *)
}

val default_options : options

type stage_qor = {
  sq_stage : string;
      (** ["synthesis"], ["mapping"], ["placement"], ["routing"] or
          ["timing"]. *)
  sq_latency_s : float;  (** Wall-clock stage latency, clamped >= 0. *)
  sq_metrics : (string * float) list;
      (** The stage's quality-of-result numbers, e.g. [literals_after],
          [area], [hpwl], [wirelength], [overflow], [total_delay]. *)
}

type report = {
  network : Vc_network.Network.t;  (** After synthesis. *)
  literals_before : int;
  literals_after : int;
  mapping : Vc_techmap.Map.mapping;
  pnet : Vc_place.Pnet.t;  (** Derived placement netlist. *)
  placement : Vc_place.Pnet.placement;  (** Legalized. *)
  hpwl : float;
  routing : Vc_route.Router.result;
  gate_delay : float;  (** Critical path, cell delays only. *)
  total_delay : float;  (** Gate delay plus Elmore wire delay along it. *)
  equivalent : bool;  (** Synthesized network vs the input network. *)
  stages : stage_qor list;  (** One entry per stage, in flow order. *)
}

val run : ?options:options -> Vc_network.Network.t -> report
(** @raise Failure if the network is malformed. Designs of a few hundred
    gates route in seconds; the routing grid scales with the placement.

    Each stage is bracketed by {!Vc_util.Journal} [stage.begin] /
    [stage.end] events (component ["flow"]) whose end event carries the
    stage's QoR metrics and latency; the latency is also recorded on the
    ["flow.<stage>"] {!Vc_util.Telemetry} timer. A raising stage emits a
    [stage.error] event before the exception propagates. *)

val qor_to_json : ?design:string -> report -> string
(** The machine-readable QoR report behind [bin/flow --report FILE]: a
    JSON object with optional ["design"], a ["stages"] array (one
    [{stage, latency_s, metrics}] object per stage, in flow order) and
    ["total_latency_s"]. [bench/main.exe compare] understands this shape
    and gates on both metrics and latencies. *)

val pnet_of_mapping :
  Vc_techmap.Map.mapping -> Vc_place.Pnet.t
(** Placement netlist of a mapped design: one movable cell per gate, one
    pad per primary input/output, one net per gate output and input
    signal. Exposed for the benches. *)

val routing_problem_of :
  Vc_place.Pnet.t -> Vc_place.Pnet.placement -> int -> Vc_route.Router.problem
(** The placed design as a routing problem: [spacing] routing tracks per
    placement unit, one distinct grid cell per net pin near its cell/pad.
    Exposed for the benches. *)

val report_to_string : report -> string
