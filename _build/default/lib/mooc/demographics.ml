type degree = No_degree_yet | Bachelors | Masters_or_phd

type person = {
  age : int;
  gender : [ `Male | `Female ];
  degree : degree;
  country : string;
}

(* Fig. 10's map shows the US and India in the top band, visible
   concentrations in China, Brazil, Egypt and across Europe. Shares below
   reproduce that banding. *)
let country_shares =
  [
    ("United States", 0.185);
    ("India", 0.155);
    ("China", 0.052);
    ("Brazil", 0.040);
    ("Egypt", 0.031);
    ("United Kingdom", 0.030);
    ("Germany", 0.029);
    ("Russia", 0.028);
    ("Spain", 0.026);
    ("Canada", 0.025);
    ("Greece", 0.018);
    ("Pakistan", 0.017);
    ("Iran", 0.016);
    ("Vietnam", 0.014);
    ("Mexico", 0.013);
    ("France", 0.013);
    ("Taiwan", 0.012);
    ("South Korea", 0.012);
    ("Singapore", 0.010);
    ("Other", 0.274);
  ]

let () =
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 country_shares in
  assert (abs_float (total -. 1.0) < 1e-9)

let sample ?(seed = 1729) n =
  let rng = Vc_util.Rng.create seed in
  let person _ =
    (* age: gaussian bulk around 29 with a small uniform senior tail, so
       the sample reproduces the paper's mean 30 / min 15 / max 75 *)
    let age =
      if Vc_util.Rng.bernoulli rng 0.015 then 55 + Vc_util.Rng.int rng 21
      else begin
        let a = Vc_util.Rng.gaussian rng ~mu:29.0 ~sigma:8.0 in
        let a = int_of_float (Float.round a) in
        max 15 (min 75 (if a < 15 then 15 + Vc_util.Rng.int rng 10 else a))
      end
    in
    let gender = if Vc_util.Rng.bernoulli rng 0.88 then `Male else `Female in
    let degree =
      let u = Vc_util.Rng.float rng 1.0 in
      if u < 0.30 then Bachelors
      else if u < 0.59 then Masters_or_phd
      else No_degree_yet
    in
    let country = Vc_util.Rng.choose_weighted rng country_shares in
    { age; gender; degree; country }
  in
  List.init n person

type summary = {
  n : int;
  mean_age : float;
  min_age : int;
  max_age : int;
  pct_bachelors : float;
  pct_ms_phd : float;
  pct_male : float;
  pct_female : float;
  by_country : (string * int) list;
}

let summarize people =
  let n = List.length people in
  if n = 0 then invalid_arg "Demographics.summarize: empty";
  let fn = float_of_int n in
  let pct f = 100.0 *. float_of_int (List.length (List.filter f people)) /. fn in
  let counts = Hashtbl.create 32 in
  List.iter
    (fun p ->
      Hashtbl.replace counts p.country
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.country)))
    people;
  {
    n;
    mean_age =
      List.fold_left (fun acc p -> acc +. float_of_int p.age) 0.0 people /. fn;
    min_age = List.fold_left (fun acc p -> min acc p.age) max_int people;
    max_age = List.fold_left (fun acc p -> max acc p.age) 0 people;
    pct_bachelors = pct (fun p -> p.degree = Bachelors);
    pct_ms_phd = pct (fun p -> p.degree = Masters_or_phd);
    pct_male = pct (fun p -> p.gender = `Male);
    pct_female = pct (fun p -> p.gender = `Female);
    by_country =
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
  }

let fig10_band pct =
  if pct <= 0.0 then "0%"
  else if pct <= 1.0 then "0.01 - 1%"
  else if pct <= 2.5 then "1.01 - 2.5%"
  else if pct <= 5.0 then "2.51 - 5%"
  else if pct <= 10.0 then "5.01 - 10%"
  else "10.01 - 30%"

let render_fig10 s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Fig. 10: participation by country (share bands)\n";
  List.iter
    (fun (c, k) ->
      let pct = 100.0 *. float_of_int k /. float_of_int s.n in
      Buffer.add_string buf
        (Printf.sprintf "  %-15s %6d  %5.2f%%  band %s\n" c k pct
           (fig10_band pct)))
    s.by_country;
  Buffer.contents buf

let render_stats s =
  String.concat "\n"
    [
      "Section 4 demographics:";
      Printf.sprintf "  average age: %.0f. min age: %d. max age: %d." s.mean_age
        s.min_age s.max_age;
      Printf.sprintf "  have a bachelor's degree: %.0f%%. have MS/PhD: %.0f%%."
        s.pct_bachelors s.pct_ms_phd;
      Printf.sprintf "  male: %.0f%%. female: %.0f%%." s.pct_male s.pct_female;
      "";
    ]
