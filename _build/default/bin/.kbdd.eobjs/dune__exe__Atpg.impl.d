bin/atpg.ml: Array In_channel List Printf String Sys Vc_network
