(** Union-find (disjoint sets) over the integers [0 .. n-1], with path
    compression and union by rank.

    Used for connectivity checks in routed layouts and for net clustering
    during placement partitioning. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets [{0}, {1}, ..., {n-1}]. *)

val find : t -> int -> int
(** [find t i] is the canonical representative of [i]'s set. *)

val union : t -> int -> int -> unit
(** [union t i j] merges the sets containing [i] and [j]. *)

val same : t -> int -> int -> bool

val count : t -> int
(** [count t] is the current number of disjoint sets. *)
