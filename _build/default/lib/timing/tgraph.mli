(** Logic-level static timing analysis (week 8): a weighted timing DAG,
    forward arrival-time and backward required-time propagation, slacks,
    and the critical path. *)

type t

val create : unit -> t

val add_edge : t -> src:string -> dst:string -> delay:float -> unit
(** Nodes are created on first mention. *)

val set_input_arrival : t -> string -> float -> unit
(** Arrival time at a primary input (default 0 for sources). *)

val nodes : t -> string list

type report = {
  arrival : (string * float) list;
  required : (string * float) list;
  slack : (string * float) list;
  critical_path : string list;  (** Input-to-output node chain. *)
  worst_arrival : float;  (** The design delay. *)
  worst_slack : float;
}

val analyze : ?required_time:float -> t -> report
(** Required time applies at every sink (node without fanout); when
    omitted it defaults to the worst arrival, making the critical path's
    slack exactly zero.
    @raise Failure on cyclic graphs. *)

val of_mapping : Vc_techmap.Map.mapping -> t
(** Timing graph of a mapped netlist: one edge per gate pin with the
    cell's delay; node names are ["n<subject id>"] with primary inputs
    keeping their signal names. *)

val report_to_string : report -> string
