(* vcserve: the multicore portal service behind a line protocol.

   Usage: vcserve [--stats] [--trace FILE] [--journal FILE]
                  [--journal-segments BYTES] [--metrics-port N]
                  [-workers N] [-queue N] [-deadline S] [-rate R]
                  [-burst B] [-cache-shards N] [-cache-dir DIR]
                  [-sample-interval S] [-listen PORT] [script-file]

   Without -listen, requests are read from the script file (stdin when
   absent); with -listen PORT the same protocol is served over TCP
   (port 0 picks an ephemeral port, announced on stderr) to any number
   of concurrent connections - one handler domain each, all funneling
   into the shared worker pool. See Mooc.Wire for the protocol:

     TOOL <name> [<session>] [TRACE <id>]
                              submit the following lines to a tool
     <input lines>            terminated by a line containing only "."
     SESSION <id>             switch the sticky client session
     LIST                     list the available tools
     HELLO <version>          negotiate the protocol version
     PING                     liveness probe (proto >= 2)
     SHUTDOWN                 stop the whole server (drain first)
     QUIT                     close this connection (EOF works too)

   Responses are one status line (OK executed / OK cache_hit /
   ERR <label> <msg>), an optional dot-stuffed body, and a "." line;
   a traced request's status line ends in trace=<id>, and its journal
   events carry the id as a trace_id attr (join them against a vcload
   client journal with vcstat request).

   With --metrics-port the exporter serves live for the whole run:
   GET /metrics, /healthz, /readyz (503 draining once shutdown starts),
   /varz (the JSON console snapshot vctop polls) and /profile (folded
   stacks). A background sampler feeds /varz every -sample-interval
   seconds (default VC_SAMPLE_INTERVAL or 0.5; <= 0 disables) and
   drives the continuous profiler.

   Shutdown is always graceful: on SHUTDOWN, SIGINT or SIGTERM the
   server stops admitting, drains queued jobs, and flushes the journal
   and telemetry sinks before exiting - the tail of a replay run is
   never lost. *)

module Portal = Vc_mooc.Portal
module Server = Vc_mooc.Server
module Wire = Vc_mooc.Wire
module Timeseries = Vc_util.Timeseries

let usage () =
  prerr_endline
    "usage: vcserve [--stats] [--trace FILE] [--journal FILE] \
     [--journal-segments BYTES]\n\
    \               [--metrics-port N] [-workers N] [-queue N] [-deadline S] \
     [-rate R]\n\
    \               [-burst B] [-cache-shards N] [-cache-dir DIR]\n\
    \               [-sample-interval S] [-listen PORT] [script-file]";
  exit 2

let parse_args argv =
  let config = ref Server.default_config in
  let file = ref None in
  let rate = ref None in
  let burst = ref 5.0 in
  let listen_port = ref None in
  let cache_dir = ref (Sys.getenv_opt "VC_CACHE_DIR") in
  let sample_interval = ref (Timeseries.default_interval ()) in
  let int_of s = match int_of_string_opt s with Some n -> n | None -> usage () in
  let float_of s =
    match float_of_string_opt s with Some f -> f | None -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "-workers" :: n :: rest ->
      config := { !config with Server.workers = int_of n };
      go rest
    | "-queue" :: n :: rest ->
      config := { !config with Server.queue_capacity = int_of n };
      go rest
    | "-deadline" :: s :: rest ->
      config := { !config with Server.deadline_s = float_of s };
      go rest
    | "-rate" :: r :: rest ->
      rate := Some (float_of r);
      go rest
    | "-burst" :: b :: rest ->
      burst := float_of b;
      go rest
    | "-cache-shards" :: n :: rest ->
      (* result-cache shard count; VC_CACHE_SHARDS sets the default *)
      let n = int_of n in
      if n < 1 then usage ();
      Portal.set_cache_shards n;
      go rest
    | "-cache-dir" :: dir :: rest ->
      (* durable spill tier under the memory shards; warm-starts from
         whatever a previous run left behind *)
      cache_dir := Some dir;
      go rest
    | "-sample-interval" :: s :: rest ->
      sample_interval := float_of s;
      go rest
    | "-listen" :: p :: rest ->
      listen_port := Some (int_of p);
      go rest
    | [ path ] when !file = None && String.length path > 0 && path.[0] <> '-'
      ->
      file := Some path
    | _ -> usage ()
  in
  go (List.tl (Array.to_list argv));
  (match !rate with
  | Some r -> config := { !config with Server.rate_limit = Some (r, !burst) }
  | None -> ());
  (* open (and warm-start from) the spill directory before any traffic *)
  Option.iter Portal.set_cache_dir !cache_dir;
  (!config, !file, !listen_port, !sample_interval)

(* /readyz flips to 503 the moment any shutdown path begins, so a load
   balancer stops routing to a draining replica before the socket
   actually closes *)
let draining = Atomic.make false

let start_console sample_interval =
  Vc_util.Metrics_server.set_ready_probe (fun () -> not (Atomic.get draining));
  Timeseries.Sampler.start ~interval:sample_interval
    ~sources:Timeseries.server_sources ()

(* Graceful drain shared by every exit path: stop admitting, let the
   workers finish the queue, stop the sampler, then force the buffered
   journal batches to the sinks - the fix for losing the tail of a run
   to a SIGINT. *)
let drain_and_exit sampler server =
  Atomic.set draining true;
  Server.stop server;
  Timeseries.Sampler.stop sampler;
  Vc_util.Journal.flush ();
  exit 0

let serve_script config sample_interval file =
  let ic =
    match file with
    | None -> stdin
    | Some path -> (
      try In_channel.open_text path
      with Sys_error msg ->
        prerr_endline ("vcserve: " ^ msg);
        exit 2)
  in
  let server = Server.start ~config () in
  let sampler = start_console sample_interval in
  Printf.eprintf "vcserve: %d worker(s), queue capacity %d\n%!"
    config.Server.workers config.Server.queue_capacity;
  (* SIGINT/SIGTERM: close the input so the protocol loop sees EOF and
     the normal drain path runs *)
  let fd = Unix.descr_of_in_channel ic in
  let on_signal _ =
    Atomic.set draining true;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (try
     ignore
       (Wire.session_loop ~input:ic ~output:stdout
          ~submit:(Server.submit server) ())
   with Sys_error _ -> ());
  drain_and_exit sampler server

let serve_tcp config sample_interval port =
  let server = Server.start ~config () in
  let sampler = start_console sample_interval in
  let listener = Wire.listen ~port () in
  (* the test harness and vcload parse this line for the bound port *)
  Printf.eprintf "vcserve: listening on %s:%d (%d worker(s), queue %d)\n%!"
    (Wire.addr listener) (Wire.port listener) config.Server.workers
    config.Server.queue_capacity;
  (* Wire.shutdown is async-signal-safe: atomics and closes only *)
  let on_signal _ =
    Atomic.set draining true;
    Wire.shutdown listener
  in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  Wire.serve listener ~submit:(Server.submit server);
  (* accept loop has exited (SHUTDOWN verb or signal): drain the worker
     queue so in-flight connections get their responses, give their
     handler domains a moment to finish writing, then flush *)
  Atomic.set draining true;
  Server.stop server;
  if not (Wire.drain_connections listener) then
    prerr_endline "vcserve: timed out waiting for connections to close";
  Timeseries.Sampler.stop sampler;
  Vc_util.Journal.flush ();
  exit 0

let () =
  let argv = Vc_util.Telemetry.cli ~server:true Sys.argv in
  let config, file, listen_port, sample_interval = parse_args argv in
  match listen_port with
  | Some port -> serve_tcp config sample_interval port
  | None -> serve_script config sample_interval file
