lib/multilevel/extract.ml: Algebraic Array Hashtbl List Option Printf String Vc_network
