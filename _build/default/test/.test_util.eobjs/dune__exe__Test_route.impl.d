test/test_route.ml: Alcotest Helpers List Printf String Vc_mooc Vc_route
