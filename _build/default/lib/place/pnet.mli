(** Placement netlists: movable cells, fixed pads on the core boundary, and
    multi-pin nets - the input of software project 3. *)

type pin =
  | Cell of int  (** Movable cell index. *)
  | Pad of int  (** Fixed pad index. *)

type net = { net_name : string; pins : pin list }

type t = {
  name : string;
  num_cells : int;
  cell_names : string array;
  pads : (string * float * float) array;  (** Name and fixed position. *)
  nets : net array;
  width : float;  (** Core region [0,width] x [0,height]. *)
  height : float;
}

type placement = { xs : float array; ys : float array }
(** Cell coordinates, indexed like [cell_names]. *)

val make :
  ?name:string ->
  cell_names:string array ->
  pads:(string * float * float) array ->
  nets:net array ->
  width:float ->
  height:float ->
  unit ->
  t
(** @raise Invalid_argument on out-of-range pins or empty nets. *)

val pin_position : t -> placement -> pin -> float * float

val hpwl_net : t -> placement -> net -> float
(** Half-perimeter wirelength of one net. *)

val hpwl : t -> placement -> float
(** Total HPWL - the course's placement quality metric. *)

val clique_wirelength : t -> placement -> float
(** Sum of squared pairwise clique distances with 1/(k-1) weights: the
    objective the quadratic placer actually minimizes. *)

val center_placement : t -> placement
(** Every cell at the core center (the trivial initial placement). *)

val random_placement : seed:int -> t -> placement

val parse : string -> t
(** Course text format:
    {v
    design <name> <width> <height>
    cell <name>
    pad <name> <x> <y>
    net <name> <pin> <pin> ...   (pins reference cell/pad names)
    v} *)

val to_string : t -> string

val placement_to_string : t -> placement -> string
(** One [place <cell> <x> <y>] line per cell - the format students upload
    to the auto-grader. *)

val parse_placement : t -> string -> placement
(** @raise Failure on unknown cells or missing coordinates. *)
