(** Two-layer routing grids with preferred directions, obstacles, vias and
    per-net occupancy - the playing field of software project 4 (Fig. 6).

    Layer 0 prefers horizontal wires, layer 1 vertical; routing against
    the preferred direction costs extra. Pins live on layer 0. *)

type point = { layer : int; x : int; y : int }

type cost_params = {
  step : int;  (** Unit edge cost. *)
  bend : int;  (** Added when the direction changes on a layer. *)
  via : int;  (** Layer change at the same (x, y). *)
  wrong_way : int;  (** Added per step against the preferred direction. *)
}

val default_costs : cost_params

type t

val create : ?costs:cost_params -> width:int -> height:int -> unit -> t

val width : t -> int

val height : t -> int

val costs : t -> cost_params

val in_bounds : t -> point -> bool

val add_obstacle : t -> point -> unit

val is_obstacle : t -> point -> bool

val occupant : t -> point -> int option
(** Net id currently using the cell, if any. *)

val occupy : t -> int -> point -> unit
(** Claim a cell for a net. @raise Invalid_argument on obstacles or cells
    owned by another net. *)

val release_net : t -> int -> unit
(** Free every cell owned by the net. *)

val free_for : t -> int -> point -> bool
(** Usable by this net: in bounds, not an obstacle, not owned by another
    net. *)

val copy : t -> t
