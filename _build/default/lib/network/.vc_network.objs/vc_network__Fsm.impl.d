lib/network/fsm.ml: Buffer Hashtbl List Network Printf Queue String Vc_cube Vc_util
