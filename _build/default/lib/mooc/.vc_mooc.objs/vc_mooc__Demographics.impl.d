lib/mooc/demographics.ml: Buffer Float Hashtbl List Option Printf String Vc_util
