(* Consistent hashing with virtual nodes. A node's i-th virtual point
   is the MD5 digest of "name#i"; the 16 raw digest bytes compare
   uniformly as strings, so the sorted point array is the ring and a
   key's owner is found by binary search for the first point >= the
   key's own digest (wrapping to point 0 past the top). Rings are
   immutable values - membership changes build a new ring - so a router
   can hold the current one in an Atomic and swap it on transitions
   while lookups stay lock-free. *)

type 'a t = {
  r_replicas : int;
  r_nodes : (string * 'a) list; (* sorted by name *)
  r_points : (string * int) array; (* (digest, node index), sorted *)
  r_slots : (string * 'a) array; (* node index -> (name, node) *)
}

let point name i = Digest.string (Printf.sprintf "%s#%d" name i)

let build replicas nodes =
  let slots = Array.of_list nodes in
  let points =
    Array.init
      (Array.length slots * replicas)
      (fun k ->
        let idx = k / replicas in
        (point (fst slots.(idx)) (k mod replicas), idx))
  in
  Array.sort compare points;
  { r_replicas = replicas; r_nodes = nodes; r_points = points; r_slots = slots }

let make ?(replicas = 64) pairs =
  if replicas < 1 then invalid_arg "Hashring.make: replicas under 1";
  (* last pair wins on a duplicate name, then sort by name so the slot
     layout (and therefore the ring) is independent of argument order *)
  let dedup =
    List.fold_left
      (fun acc (name, v) -> (name, v) :: List.remove_assoc name acc)
      [] pairs
  in
  build replicas (List.sort (fun (a, _) (b, _) -> compare a b) dedup)

let replicas t = t.r_replicas
let size t = Array.length t.r_slots
let is_empty t = Array.length t.r_slots = 0
let nodes t = t.r_nodes
let mem t name = List.mem_assoc name t.r_nodes

let find t key =
  let n = Array.length t.r_points in
  if n = 0 then None
  else begin
    let h = Digest.string key in
    (* first index with point digest >= h; n when none (wraps to 0) *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.r_points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let idx = if !lo = n then 0 else !lo in
    Some t.r_slots.(snd t.r_points.(idx))
  end

let add t name v = build t.r_replicas
    (List.sort
       (fun (a, _) (b, _) -> compare a b)
       ((name, v) :: List.remove_assoc name t.r_nodes))

let remove t name = build t.r_replicas (List.remove_assoc name t.r_nodes)
