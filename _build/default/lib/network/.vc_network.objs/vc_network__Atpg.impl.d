lib/network/atpg.ml: Equiv Hashtbl List Network Option Printf Vc_cube
