lib/mooc/concept_map.ml: Buffer List Printf String
