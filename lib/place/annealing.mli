(** Simulated-annealing placement, the other algorithm of the placement
    week and the quality baseline the quadratic placer is compared
    against: cells live in grid slots, moves swap cells (or move a cell to
    an empty slot), cost is exact HPWL, acceptance follows Metropolis with
    a geometric cooling schedule. *)

type params = {
  seed : int;
  initial_temp : float;  (** Scaled by the initial average move cost. *)
  cooling : float;  (** Temperature multiplier per stage, e.g. 0.95. *)
  moves_per_cell : int;  (** Attempted moves per cell per stage. *)
  min_temp : float;  (** Stop threshold (relative to initial temp). *)
}

val default_params : params

type stats = {
  stages : int;
  attempted : int;
  accepted : int;
  initial_hpwl : float;
  final_hpwl : float;
}

val place : ?params:params -> Pnet.t -> Pnet.placement * stats
(** Anneal from a random slot assignment on a [ceil(sqrt n)]-square grid
    scaled to the core. The result is legal by construction (one cell per
    slot). *)

val greedy : ?seed:int -> Pnet.t -> Pnet.placement * stats
(** Zero-temperature descent (only improving moves): the ablation
    baseline showing why annealing needs hill climbing. *)

val stats : unit -> (string * int) list
(** Process-wide cumulative counters summed over every {!place} /
    {!greedy} run: [runs], [stages], [moves_attempted],
    [moves_accepted]. Registered as the {!Vc_util.Telemetry} probe
    ["place.annealing"]. *)
