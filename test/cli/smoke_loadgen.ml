(* smoke_loadgen: end-to-end check of the replay loop and the live
   operations console - vcserve over TCP, vcload as the client, vctop
   against /varz mid-replay, SIGINT as the shutdown path.
   Usage: smoke_loadgen VCSERVE_EXE VCLOAD_EXE VCSTAT_EXE VCTOP_EXE

   Starts `VCSERVE_EXE -listen 0 --metrics-port 0` as a child with a
   journal and a fast sampler, learns both ephemeral ports from the
   stderr announcements, and replays a short cohort-derived trace with
   `VCLOAD_EXE` in the background. While the replay is running it
   fetches GET /readyz (must answer 200 ok) and runs `VCTOP_EXE -once`
   against the metrics port, dumping the raw /varz body - the live
   console the dune rule then schema-checks (non-zero qps over >= 3
   sampler ticks, a positive queue high-water mark, per-phase p99
   rows). After the replay it interrupts the server with a single
   SIGINT and requires it to exit 0 promptly. The journal must contain
   the full lifecycle - accepted connections, portal submissions,
   profile.sample ticks, server.stop and listener.stop - which proves
   the graceful-drain path flushed the buffered batches. Finally
   `VCSTAT_EXE request` joins the client and server journals by trace
   id into smoke_loadgen_request.json and `VCSTAT_EXE flame` renders
   the continuous-profile flamegraph SVG, both schema-checked by the
   dune rule. Exits non-zero with a message on the first failure;
   children are always killed. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("smoke_loadgen: " ^ s);
      exit 1)
    fmt

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let read_all file =
  try In_channel.with_open_text file In_channel.input_all
  with Sys_error _ -> ""

(* Wait (up to ~10s) for MARKER followed by a port number in the
   server's stderr file. *)
let wait_for_port ~marker stderr_file =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec poll () =
    let text = read_all stderr_file in
    if contains text marker then begin
      let rec find i =
        if String.sub text i (String.length marker) = marker then i
        else find (i + 1)
      in
      let start = find 0 + String.length marker in
      let rec digits i =
        if i < String.length text && text.[i] >= '0' && text.[i] <= '9' then
          digits (i + 1)
        else i
      in
      let stop = digits start in
      int_of_string (String.sub text start (stop - start))
    end
    else if Unix.gettimeofday () > deadline then
      die "timed out waiting for %S in %s" marker stderr_file
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* Reap PID, polling up to [timeout_s]; Some status, or None on timeout. *)
let wait_with_timeout pid timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.05;
        poll ()
      end
    | _, status -> Some status
  in
  poll ()

let spawn exe args ~stdout_file ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let openw f =
    Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let out = openw stdout_file and err = openw stderr_file in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) devnull out err in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let run_to_file exe args ~stdout_file ~stderr_file ~timeout_s ~what =
  let pid = spawn exe args ~stdout_file ~stderr_file in
  match wait_with_timeout pid timeout_s with
  | Some (Unix.WEXITED 0) -> ()
  | Some status ->
    let s =
      match status with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
      | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
    in
    die "%s failed (%s):\n%s" what s (read_all stderr_file)
  | None ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    die "%s did not finish within %.0fs" what timeout_s

let () =
  let vcserve_exe, vcload_exe, vcstat_exe, vctop_exe =
    match Sys.argv with
    | [| _; serve; load; stat; top |] -> (serve, load, stat, top)
    | _ -> die "usage: smoke_loadgen VCSERVE_EXE VCLOAD_EXE VCSTAT_EXE VCTOP_EXE"
  in
  let journal = "smoke_loadgen_journal.jsonl" in
  let client_journal = "smoke_loadgen_client.jsonl" in
  let report = "smoke_loadgen_report.json" in
  let server_pid =
    spawn vcserve_exe
      [
        "-listen"; "0"; "-workers"; "2"; "--journal"; journal;
        "--metrics-port"; "0"; "-sample-interval"; "0.15";
      ]
      ~stdout_file:"smoke_loadgen_server_out.txt"
      ~stderr_file:"smoke_loadgen_server_err.txt"
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [ Unix.WNOHANG ] server_pid
         with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
    (fun () ->
      let err_file = "smoke_loadgen_server_err.txt" in
      let port = wait_for_port ~marker:"listening on 127.0.0.1:" err_file in
      let metrics_port =
        wait_for_port ~marker:"serving http://127.0.0.1:" err_file
      in
      (* a short but real replay: ~2s, two client domains, the default
         deadline spike, report written for the schema check. Runs in
         the background so the console can be sampled mid-replay. *)
      let load_pid =
        spawn vcload_exe
          [
            "--journal"; client_journal;
            "-port"; string_of_int port; "-clients"; "2"; "-rps"; "300";
            "-duration"; "2"; "-participants"; "20000"; "-report"; report;
          ]
          ~stdout_file:"smoke_loadgen_load_out.txt"
          ~stderr_file:"smoke_loadgen_load_err.txt"
      in
      (* give the sampler a handful of in-traffic ticks (0.15s interval
         over a 2s replay), then snapshot the live console *)
      Unix.sleepf 1.2;
      (match Vc_util.Metrics_server.fetch ~port:metrics_port "/readyz" with
      | status, body when contains status "200" && contains body "ok" -> ()
      | status, body -> die "/readyz answered %S %S mid-run" status body
      | exception Unix.Unix_error (e, _, _) ->
        die "cannot reach /readyz: %s" (Unix.error_message e));
      run_to_file vctop_exe
        [
          "-once"; "-port"; string_of_int metrics_port;
          "-dump"; "smoke_loadgen_varz.json";
        ]
        ~stdout_file:"smoke_loadgen_vctop.txt"
        ~stderr_file:"smoke_loadgen_vctop_err.txt" ~timeout_s:30.0
        ~what:"vctop -once";
      (match wait_with_timeout load_pid 60.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some status ->
        let s =
          match status with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
        in
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "vcload failed (%s):\n%s" s
          (read_all "smoke_loadgen_load_err.txt")
      | None ->
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "vcload did not finish within 60s");
      let summary = read_all "smoke_loadgen_load_out.txt" in
      if not (contains summary "replayed ") then
        die "vcload printed no replay summary:\n%s" summary;
      if not (contains summary "cache_hit") then
        die "vcload summary has no outcome breakdown:\n%s" summary;
      (* one SIGINT must shut the server down promptly and exit 0 - the
         graceful-drain path, not a crash *)
      Unix.kill server_pid Sys.sigint;
      (match wait_with_timeout server_pid 10.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some (Unix.WEXITED n) -> die "server exited %d after SIGINT" n
      | Some (Unix.WSIGNALED n) -> die "server killed by signal %d" n
      | Some (Unix.WSTOPPED _) -> die "server stopped unexpectedly"
      | None -> die "server still running 10s after SIGINT");
      (* the journal must have been flushed on the way out: lifecycle
         events from both ends of the run, the submissions the replay
         generated, and the continuous profiler's sample ticks *)
      let text = read_all journal in
      List.iter
        (fun needle ->
          if not (contains text needle) then
            die "journal %s missing %S after graceful shutdown" journal
              needle)
        [
          "listener.start"; "conn.accepted"; "\"submission\"";
          "\"component\":\"profile\""; "server.stop"; "listener.stop";
        ];
      (* join the two journals by trace id: every vcload submission
         carried a TRACE operand, so the server-side phase timeline
         must line up with the client-side latency samples *)
      run_to_file vcstat_exe
        [ "request"; "--format"; "json"; client_journal; journal ]
        ~stdout_file:"smoke_loadgen_request.json"
        ~stderr_file:"smoke_loadgen_stat_err.txt" ~timeout_s:30.0
        ~what:"vcstat request";
      let join = read_all "smoke_loadgen_request.json" in
      if not (contains join "\"match_rate\"") then
        die "vcstat request produced no join document:\n%s" join;
      (* the same journal feeds the offline flamegraph *)
      run_to_file vcstat_exe [ "flame"; journal ]
        ~stdout_file:"smoke_loadgen_flame.svg"
        ~stderr_file:"smoke_loadgen_flame_err.txt" ~timeout_s:30.0
        ~what:"vcstat flame";
      print_endline "smoke_loadgen: ok")
