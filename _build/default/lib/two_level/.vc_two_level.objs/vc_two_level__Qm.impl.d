lib/two_level/qm.ml: Array Hashtbl List Vc_cube
