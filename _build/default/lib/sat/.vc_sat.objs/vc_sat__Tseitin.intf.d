lib/sat/tseitin.mli: Cnf Vc_cube
