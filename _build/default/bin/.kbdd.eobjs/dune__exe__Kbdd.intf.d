bin/kbdd.mli:
