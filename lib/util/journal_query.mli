(** Offline analytics over {!Journal} JSONL files - the read side of
    [--journal FILE], and the engine behind [bin/vcstat].

    Every tool under [bin/] can stream its event log to disk; this
    module parses those files back into {!Journal.event} values and
    answers the three operator questions the paper's portal team needed
    at 17,000-participant scale: {e what happened} ({!summarize} -
    per-component/per-event counts, error rate, latency percentiles,
    slowest events), {e where did the time go} ({!spans_of} - a span
    forest reconstructed from [*.begin]/[*.end] event pairs, rendered as
    a text flamegraph) and {e how far did participants get}
    ({!funnel_of} - the Fig. 8 participation funnel over
    [Mooc.Cohort]'s ["funnel.stage"] events).

    All analytics are pure functions over event lists; only
    {!load_file}/{!load_files} touch the filesystem. *)

(** {1 Loading} *)

type load = {
  events : Journal.event list;  (** Decoded events, file order. *)
  malformed : (int * string) list;
      (** Lines that failed to decode: 1-based line number (per file)
          and the parse error. Blank lines are skipped silently. *)
}

val parse_line : string -> (Journal.event, string) result
(** Decode one JSONL line (the {!Journal.event_to_json} schema: [seq],
    [ts], [severity], [component], [event], [attrs]). Non-string attr
    values are dropped; a missing/invalid required field is an
    [Error]. *)

val load_file : string -> load
(** Parse one journal file, keeping going past malformed lines.
    @raise Sys_error if the file cannot be opened. *)

val load_files : string list -> load
(** {!load_file} over several files, events concatenated in argument
    order. *)

val expand_segments : string list -> string list
(** Resolve journal arguments to concrete files, in order: an argument
    containing ['*'] or ['?'] is globbed in-process against its
    directory (basename only, sorted); an existing file passes through;
    a missing file that names the {e base} of a rotated segment set
    (see {!Journal.open_jsonl}'s [segment_bytes]) expands to its
    [FILE.00000.jsonl]-style segments in index order. Anything else
    passes through untouched so {!load_file} reports the miss. Every
    [vcstat] subcommand applies this to its file arguments, so rotated
    journals are read by their base name transparently. *)

val glob_match : string -> string -> bool
(** [glob_match pattern name]: the tiny glob {!expand_segments} uses -
    ['*'] matches any (possibly empty) run, ['?'] exactly one
    character, everything else literally. *)

(** {1 Summary} *)

val latency_of : Journal.event -> float option
(** The event's ["latency_s"] attribute as seconds, if present and
    numeric - carried by portal ["submission"] and flow ["stage.end"]
    events. *)

type latency_stats = {
  l_count : int;
  l_mean_s : float;
  l_p50_s : float;  (** Nearest-rank ({!Stats.percentile}). *)
  l_p90_s : float;
  l_p99_s : float;
  l_max_s : float;
}

val latency_stats_of : float list -> latency_stats option
(** Aggregate raw latency samples (seconds); [None] on the empty list.
    The shared percentile path: [vcstat summary] and the [vcload]
    replay report both go through this, so their numbers agree by
    construction. *)

type summary = {
  s_total : int;
  s_by_component : (string * int) list;  (** Sorted by name. *)
  s_by_event : (string * int) list;
      (** Keyed [component.event], sorted. *)
  s_by_severity : (string * int) list;  (** Only present severities. *)
  s_errors : int;
  s_error_rate : float;  (** [ERROR] events / total events; 0 if empty. *)
  s_seq_min : int;  (** Smallest sequence number seen; 0 when empty. *)
  s_seq_max : int;  (** Largest sequence number seen; 0 when empty. *)
  s_seq_distinct : int;  (** Distinct sequence numbers seen. *)
  s_seq_gaps : int;
      (** Sequence numbers missing within [[s_seq_min .. s_seq_max]].
          Writers assign seqs contiguously (restarting at 1 after a
          restart), so over any union of a run's segments this is 0;
          a positive value means part of the journal is missing - the
          lost-segment detector behind the crash-recovery smoke
          check. *)
  s_latency : latency_stats option;
      (** Across every latency-bearing event; [None] if there are
          none. *)
  s_latency_by_event : (string * latency_stats) list;
      (** Per [component.event], sorted. *)
  s_latency_by_outcome : (string * latency_stats) list;
      (** Per ["outcome"] attribute value ([executed] / [cache_hit] /
          [rejected]), over latency-bearing events that carry one -
          portal submissions and vcload replay requests. Sorted. *)
  s_slowest : (Journal.event * float) list;
      (** The [top] slowest latency-bearing events, slowest first. *)
}

val summarize : ?top:int -> Journal.event list -> summary
(** Aggregate an event list ([top] slowest events kept, default 5). *)

(** {1 Spans} *)

type qspan = {
  q_name : string;
      (** [component/stage-attr], or [component/prefix] when the events
          carry no ["stage"] attribute. *)
  q_start_s : float;  (** Timestamp of the [.begin] event. *)
  q_duration_s : float;  (** End minus begin timestamp, clamped >= 0. *)
  q_children : qspan list;  (** Oldest first. *)
}

val spans_of : Journal.event list -> qspan list
(** Reconstruct the span forest from [*.begin]/[*.end] event pairs
    (matched on component, name prefix and the ["stage"] attribute when
    present). Events are first partitioned into independent streams -
    keyed by the [trace_id] attribute when present, else the [domain]
    attribute, else the component - so the interleaved output of
    concurrent requests in a multi-domain journal cannot mis-nest.
    Within a stream: a begin inside an open span nests under it, an end
    with no matching open span is ignored, and spans left open at the
    end of the log are closed at that stream's last seen timestamp.
    Roots across streams are ordered by start time. *)

(** {1 Request timelines (trace-id join)} *)

type request_timeline = {
  rt_trace : string;  (** The joining [trace_id]. *)
  rt_tool : string option;
  rt_session : string option;
  rt_outcome : string option;
      (** Server outcome when known (it distinguishes reject labels),
          else the client's. *)
  rt_client_s : float option;
      (** Client-observed latency ([vcload]'s coordinated-omission-
          corrected [latency_s]). *)
  rt_server_s : float option;  (** Server [total_s]: admit to reply. *)
  rt_wire_s : float option;
      (** Client minus server time, clamped [>= 0] - transport,
          serialization and scheduling overhead outside the server. *)
  rt_phases : (string * float) list;
      (** Server-side phase durations ([queue], [cache], [execute],
          [reply], ...), oldest first. *)
  rt_client : bool;  (** Seen in a client journal. *)
  rt_server : bool;  (** Seen in a server journal. *)
}

type request_join = {
  rj_timelines : request_timeline list;  (** First-appearance order. *)
  rj_client_total : int;
  rj_server_total : int;
  rj_matched : int;  (** Timelines seen on both sides. *)
  rj_match_rate : float;
      (** [matched / client_total]; [1.0] when there are no client
          events (a server-only journal is vacuously joined). *)
}

val join_requests : Journal.event list -> request_join
(** Join client- and server-side events by their [trace_id] attr - feed
    it [load_files [client.jsonl; server.jsonl]]. Client side: [vcload]
    ["replay.request"] events. Server side: ["request.replied"] events
    (with [total_s] and [phase.*] attrs), plus ["request.admitted"] /
    ["request.dequeued"] / ["job.rejected.*"] so shed or half-finished
    requests still join. *)

val phase_breakdown : request_join -> (string * latency_stats) list
(** Aggregate percentiles per phase across all timelines, in canonical
    order: the server phases ([queue], [cache], [execute], [reply]),
    then the derived [server] / [wire] / [client] end-to-end rows, then
    any unknown phases alphabetically. *)

(** {1 Funnel} *)

type funnel_stage = { f_stage : string; f_count : int }

val funnel_of : Journal.event list -> funnel_stage list
(** The ["funnel.stage"] events (attributes [stage], [count]) in log
    order - what [Mooc.Cohort.simulate] emits, echoing the paper's
    Fig. 8 participation funnel. *)

(** {1 Renderers}

    Text renderers produce human-readable reports; the [_to_json]
    renderers produce machine-readable documents through {!Json} (these
    are what [vcstat --format json] prints). *)

val render_latency_line : string -> latency_stats -> string
(** One aligned [name count p50 p90 p99 max] row (milliseconds) - the
    row format shared by {!render_summary} and the vcload replay
    report. *)

val render_summary : summary -> string
val render_spans : qspan list -> string
(** Indented text flamegraph: one line per span with duration and an
    ASCII bar scaled to the total of the root spans. *)

val render_funnel : funnel_stage list -> string
(** One line per stage with the count, percent-of-start,
    percent-of-previous and a proportional bar. *)

val summary_to_json : summary -> string
(** Fields [events], [errors], [error_rate], [seq] (an object with
    [min]/[max]/[distinct]/[gaps]), [by_component],
    [by_event], [by_severity], [latency] (an object keyed ["all"] plus
    one entry per [component.event], each with
    [count]/[mean_s]/[p50_s]/[p90_s]/[p99_s]/[max_s]),
    [latency_by_outcome] (same stats objects keyed by outcome) and
    [slowest]. *)

val spans_to_json : qspan list -> string
val funnel_to_json : funnel_stage list -> string

val render_requests : ?top:int -> request_join -> string
(** Join counts, the per-phase latency table, and the [top] (default 5)
    slowest request timelines - what [vcstat request] prints. *)

val requests_to_json : ?top:int -> request_join -> string
(** Fields [client_requests], [server_requests], [matched],
    [match_rate], [phases] (one {!latency_stats} object per phase, keys
    as in {!phase_breakdown}) and [slowest] (per-request timelines with
    [trace_id], [tool], [outcome], [client_s]/[server_s]/[wire_s] and a
    [phases] object). *)

val profile_folded : Journal.event list -> int * (string * int) list
(** Rebuild the continuous profiler's folded-stack aggregate from its
    [profile.sample] journal events ({!Profile.tick} with
    [journal:true]): the number of distinct sampler ticks seen, and the
    stacks with their total sample counts, most samples first (then by
    name). What [vcstat flame] renders. *)
