(** Demographic model of the participant population, calibrated to
    Section 4: average age 30 (range 15-75), 30% Bachelor's / 29% MS-PhD,
    88% / 12% gender split, and a country mix led by the US and India
    (Fig. 10). *)

type degree = No_degree_yet | Bachelors | Masters_or_phd

type person = {
  age : int;
  gender : [ `Male | `Female ];
  degree : degree;
  country : string;
}

val country_shares : (string * float) list
(** Share of participants per country, descending; includes an explicit
    "Other" bucket; sums to 1. *)

val sample : ?seed:int -> int -> person list

type summary = {
  n : int;
  mean_age : float;
  min_age : int;
  max_age : int;
  pct_bachelors : float;
  pct_ms_phd : float;
  pct_male : float;
  pct_female : float;
  by_country : (string * int) list;  (** Descending count. *)
}

val summarize : person list -> summary

val fig10_band : float -> string
(** The Fig. 10 legend band for a country's percentage share:
    "0%", "0.01 - 1%", "1.01 - 2.5%", "2.51 - 5%", "5.01 - 10%",
    "10.01 - 30%". *)

val render_fig10 : summary -> string

val render_stats : summary -> string
(** The Section 4 bullet list (age / degrees / gender). *)
