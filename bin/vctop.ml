(* vctop: live operations console for a running vcserve (or vcload).

   Usage: vctop -port N [-host H] [-interval S] [-once] [-dump FILE]

   Polls GET /varz on the tool's --metrics-port exporter (the JSON
   snapshot the Timeseries sampler maintains) and renders the operator
   view of the paper's portal: offered/achieved qps, queue depth with
   its high-water mark, shed rate, cache hit-rate, per-phase
   (queue/cache/execute/reply) p50/p99 latency, the per-tool submission
   mix, per-worker utilization sparklines and the continuous profiler's
   sample counts.

   By default it redraws every -interval seconds until interrupted;
   -once prints a single snapshot and exits (the deterministic mode CI
   and the smoke tests drive), and -dump FILE also writes the raw /varz
   body for offline checks. Every row is "label key value ..." pairs,
   so the output greps as well as it reads. *)

module Json = Vc_util.Json

let usage () =
  prerr_endline
    "usage: vctop -port N [-host H] [-interval S] [-once] [-dump FILE]";
  exit 2

type options = {
  host : string;
  port : int option;
  interval : float;
  once : bool;
  dump : string option;
}

let parse_args argv =
  let int_of s = match int_of_string_opt s with Some n -> n | None -> usage () in
  let float_of s =
    match float_of_string_opt s with Some f -> f | None -> usage ()
  in
  let rec go o = function
    | [] -> o
    | "-host" :: h :: rest -> go { o with host = h } rest
    | "-port" :: p :: rest -> go { o with port = Some (int_of p) } rest
    | "-interval" :: s :: rest -> go { o with interval = float_of s } rest
    | "-once" :: rest -> go { o with once = true } rest
    | "-dump" :: f :: rest -> go { o with dump = Some f } rest
    | _ -> usage ()
  in
  go
    { host = "127.0.0.1"; port = None; interval = 1.0; once = false;
      dump = None }
    (List.tl (Array.to_list argv))

(* ------------------------------------------------------------------ *)
(* /varz accessors                                                     *)
(* ------------------------------------------------------------------ *)

let mem path root =
  List.fold_left (fun j k -> Option.bind j (Json.member k)) (Some root) path

let series root name =
  match mem [ "series"; name ] root with
  | Some (Json.Arr pts) ->
    List.filter_map
      (function Json.Arr [ _; v ] -> Json.to_num v | _ -> None)
      pts
  | _ -> []

let series_names root =
  match Json.member "series" root with
  | Some (Json.Obj fields) -> List.map fst fields
  | _ -> []

let counters root =
  match mem [ "telemetry"; "counters" ] root with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, int_of_float n)) (Json.to_num v))
      fields
  | _ -> []

let gauge root name =
  Option.bind (mem [ "telemetry"; "gauges"; name ] root) Json.to_num

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let spark values =
  let ramp = " .:-=+*#" in
  let hi = List.fold_left Float.max 0.0 values in
  if values = [] then ""
  else
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if hi <= 0.0 then 0
             else
               min
                 (String.length ramp - 1)
                 (int_of_float (v /. hi *. float_of_int (String.length ramp - 1)))
           in
           String.make 1 ramp.[max 0 i])
         values)

(* sparklines show the trailing window; keep rows terminal-width *)
let tail n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let stats values =
  match values with
  | [] -> None
  | vs ->
    let n = List.length vs in
    let sum = List.fold_left ( +. ) 0.0 vs in
    let max_v = List.fold_left Float.max neg_infinity vs in
    let now = List.nth vs (n - 1) in
    Some (now, sum /. float_of_int n, max_v, n)

let series_row b root ?extra label name =
  match stats (series root name) with
  | None -> ()
  | Some (now, mean, max_v, n) ->
    Buffer.add_string b
      (Printf.sprintf "%-16s now %10.3f  mean %10.3f  max %10.3f  ticks %d%s  %s\n"
         label now mean max_v n
         (match extra with Some s -> "  " ^ s | None -> "")
         (spark (tail 32 (series root name))))

let phase_row b root phase =
  let p50 = series root (Printf.sprintf "server.phase.%s.p50_ms" phase) in
  let p99 = series root (Printf.sprintf "server.phase.%s.p99_ms" phase) in
  match stats p99 with
  | None -> ()
  | Some (p99_now, _, _, n) ->
    let p50_now = match stats p50 with Some (v, _, _, _) -> v | None -> 0.0 in
    Buffer.add_string b
      (Printf.sprintf "phase %-10s p50 %9.3f ms  p99 %9.3f ms  ticks %d  %s\n"
         phase p50_now p99_now n
         (spark (tail 32 p99)))

let render root =
  let b = Buffer.create 2048 in
  let now =
    match Option.bind (Json.member "now" root) Json.to_num with
    | Some t -> t
    | None -> 0.0
  in
  Buffer.add_string b (Printf.sprintf "vctop  now %.3f\n" now);
  let hwm =
    match gauge root "server.queue_depth.hwm" with
    | Some v -> Printf.sprintf "hwm %.0f" v
    | None -> ""
  in
  (* the server-side console; the same rows render for a vcload /varz
     because absent series are simply skipped *)
  series_row b root "qps" "server.qps";
  series_row b root "qps" "vcload.qps";
  series_row b root ~extra:hwm "queue_depth" "server.queue_depth";
  series_row b root "shed_rate" "server.shed_rate";
  series_row b root "shed_rate" "vcload.shed_rate";
  series_row b root "cache_hit_rate" "portal.cache.hit_rate";
  series_row b root "cache_size" "portal.cache.size";
  List.iter (phase_row b root) [ "queue"; "cache"; "execute"; "reply" ];
  (* per-tool submission mix, from the run-cumulative counters *)
  let submits =
    List.filter_map
      (fun (name, v) ->
        if
          String.starts_with ~prefix:"portal." name
          && String.ends_with ~suffix:".submits" name
        then
          Some (String.sub name 7 (String.length name - 15), v)
        else None)
      (counters root)
  in
  let total_submits = List.fold_left (fun a (_, v) -> a + v) 0 submits in
  List.iter
    (fun (tool, v) ->
      Buffer.add_string b
        (Printf.sprintf "tool %-12s submits %8d  %5.1f%%\n" tool v
           (if total_submits = 0 then 0.0
            else 100.0 *. float_of_int v /. float_of_int total_submits)))
    (List.sort (fun (_, a) (_, b) -> compare b a) submits);
  (* per-worker utilization sparklines *)
  List.iter
    (fun name ->
      if
        String.starts_with ~prefix:"server.worker." name
        && String.ends_with ~suffix:".util" name
      then
        match stats (series root name) with
        | None -> ()
        | Some (now, mean, _, _) ->
          let id = String.sub name 14 (String.length name - 19) in
          Buffer.add_string b
            (Printf.sprintf "worker %-4s util %5.2f  mean %5.2f  %s\n" id now
               mean
               (spark (tail 32 (series root name)))))
    (series_names root);
  (match
     ( Option.bind (mem [ "profile"; "ticks" ] root) Json.to_num,
       Option.bind (mem [ "profile"; "samples" ] root) Json.to_num,
       Option.bind (mem [ "profile"; "stacks" ] root) Json.to_num )
   with
  | Some t, Some s, Some k ->
    Buffer.add_string b
      (Printf.sprintf "profile ticks %.0f  samples %.0f  stacks %.0f\n" t s k)
  | _ -> ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* main loop                                                           *)
(* ------------------------------------------------------------------ *)

let fetch_varz ~host ~port =
  match Vc_util.Metrics_server.fetch ~host ~port "/varz" with
  | status, body when String.length status >= 12 && String.sub status 9 3 = "200"
    ->
    body
  | status, _ ->
    Printf.eprintf "vctop: %s:%d/varz answered %S\n" host port status;
    exit 1
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "vctop: cannot reach %s:%d: %s\n" host port
      (Unix.error_message e);
    exit 1

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let o = parse_args argv in
  let port = match o.port with Some p -> p | None -> usage () in
  let snapshot () =
    let body = fetch_varz ~host:o.host ~port in
    (match o.dump with
    | None -> ()
    | Some file ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc body));
    match Json.parse body with
    | root -> render root
    | exception Failure msg ->
      Printf.eprintf "vctop: /varz is not valid JSON: %s\n" msg;
      exit 1
  in
  if o.once then print_string (snapshot ())
  else begin
    (* plain ANSI clear-and-home per frame; ^C exits *)
    let continue = ref true in
    (try
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> continue := false))
     with Invalid_argument _ | Sys_error _ -> ());
    while !continue do
      let frame = snapshot () in
      print_string "\027[2J\027[H";
      print_string frame;
      flush stdout;
      Unix.sleepf (Float.max 0.05 o.interval)
    done
  end
