lib/network/blif.mli: Network
