(* Quickstart: a ten-minute tour of the toolkit's public API, following
   the course's own arc - Boolean algebra, BDDs, SAT, two-level and
   multi-level synthesis, mapping, and timing. Run with:

     dune exec examples/quickstart.exe
*)

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  section "Week 1: computational Boolean algebra";
  let f = Vc_cube.Expr.parse "a & b | !a & c" in
  Printf.printf "f        = %s\n" (Vc_cube.Expr.to_string f);
  Printf.printf "df/da    = %s\n"
    (Vc_cube.Expr.to_string (Vc_cube.Expr.boolean_difference "a" f));
  Printf.printf "exists a = %s\n"
    (Vc_cube.Expr.to_string (Vc_cube.Expr.exists "a" f));
  let cover = Vc_cube.Cover.of_expr [ "a"; "b"; "c" ] f in
  Printf.printf "URP tautology(f)? %b; complement has %d cubes\n"
    (Vc_cube.Urp.tautology cover)
    (Vc_cube.Cover.num_cubes (Vc_cube.Urp.complement cover));

  section "Week 2: BDDs and SAT";
  let m = Vc_bdd.Bdd.create () in
  let fb = Vc_bdd.Bdd.of_expr m f in
  Printf.printf "BDD size %d, %g satisfying assignments over 3 vars\n"
    (Vc_bdd.Bdd.size m fb)
    (Vc_bdd.Bdd.sat_count m fb ~nvars:3);
  let g = Vc_cube.Expr.parse "(a | c) & (!a | b)" in
  Printf.printf "f == g (by SAT miter)? %b\n" (Vc_sat.Tseitin.equivalent f g);

  section "Week 3: two-level minimization";
  let on = Vc_cube.Cover.of_strings 3 [ "110"; "111"; "011"; "010" ] in
  let minimized = Vc_two_level.Espresso.minimize ~dc:(Vc_cube.Cover.empty 3) on in
  Printf.printf "espresso: %d cubes -> %d cube(s): %s\n"
    (Vc_cube.Cover.num_cubes on)
    (Vc_cube.Cover.num_cubes minimized)
    (String.concat " + " (Vc_cube.Cover.to_strings minimized));

  section "Week 4: multi-level synthesis";
  let net =
    Vc_network.Network.of_exprs ~name:"demo" ~inputs:[ "a"; "b"; "c"; "d"; "e" ]
      [
        ("x", Vc_cube.Expr.parse "a d + a e + b d + b e + c d + c e");
        ("y", Vc_cube.Expr.parse "a b + a c");
      ]
  in
  let before = Vc_network.Network.literal_count net in
  let report = Vc_multilevel.Script.run net Vc_multilevel.Script.script_rugged in
  let optimized = report.Vc_multilevel.Script.network in
  Printf.printf "script.rugged: %d -> %d literals (equivalent: %b)\n" before
    (Vc_network.Network.literal_count optimized)
    (Vc_network.Equiv.equivalent net optimized);

  section "Week 5: technology mapping";
  let mapping =
    Vc_techmap.Map.map_network (Vc_techmap.Cell_lib.standard ()) optimized
  in
  Printf.printf "%d gates, area %.1f, delay %.2f\n"
    (Vc_techmap.Map.gate_count mapping)
    mapping.Vc_techmap.Map.area mapping.Vc_techmap.Map.delay;

  section "Weeks 6-8: place, route, time (push-button flow)";
  let flow = Vc_mooc.Flow.run net in
  print_string (Vc_mooc.Flow.report_to_string flow);

  section "The MOOC itself";
  Printf.printf
    "concept map: %d concepts / %d slides; syllabus: %d videos, %.1f h\n"
    Vc_mooc.Concept_map.total_concepts Vc_mooc.Concept_map.total_slides
    Vc_mooc.Syllabus.total_videos
    (float_of_int Vc_mooc.Syllabus.total_minutes /. 60.0);
  let funnel =
    Vc_mooc.Cohort.funnel_of
      (Vc_mooc.Cohort.simulate Vc_mooc.Cohort.paper_params)
  in
  Printf.printf "simulated funnel: %d -> %d -> %d -> %d/%d -> %d\n"
    funnel.Vc_mooc.Cohort.registered funnel.Vc_mooc.Cohort.watched_video
    funnel.Vc_mooc.Cohort.did_homework funnel.Vc_mooc.Cohort.tried_software
    funnel.Vc_mooc.Cohort.took_final funnel.Vc_mooc.Cohort.certificates
