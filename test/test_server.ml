(* The multicore portal service: token bucket, deadline predicate, tool
   resolution, the structured outcome API, every admission-control
   rejection path, graceful shutdown, and the multi-domain stress test
   whose outputs must be byte-identical to a sequential oracle. *)

open Helpers
module T = Vc_util.Telemetry
module Journal = Vc_util.Journal
module Portal = Vc_mooc.Portal
module Server = Vc_mooc.Server

let fresh () =
  T.reset ();
  Journal.clear ();
  Portal.clear_cache ();
  Portal.set_cache_shards 16;
  Portal.set_cache_capacity 512

(* a synthetic tool: pure, fast, no kernel dependency *)
let echo =
  {
    Portal.tool_name = "echo";
    description = "test tool";
    max_input_lines = 3;
    execute = (fun s -> "echo: " ^ s);
  }

(* ------------------------------------------------------------------ *)
(* token bucket + deadline predicate (injected clocks, no sleeping)    *)
(* ------------------------------------------------------------------ *)

let token_bucket_tests =
  [
    tc "burst is honoured, then the bucket runs dry" (fun () ->
        let b = Server.Token_bucket.create ~rate:1.0 ~burst:2.0 ~now:0.0 in
        check Alcotest.bool "1st" true (Server.Token_bucket.try_take b ~now:0.0);
        check Alcotest.bool "2nd" true (Server.Token_bucket.try_take b ~now:0.0);
        check Alcotest.bool "3rd is dry" false
          (Server.Token_bucket.try_take b ~now:0.0));
    tc "tokens refill with elapsed time, capped at burst" (fun () ->
        let b = Server.Token_bucket.create ~rate:2.0 ~burst:2.0 ~now:0.0 in
        ignore (Server.Token_bucket.try_take b ~now:0.0);
        ignore (Server.Token_bucket.try_take b ~now:0.0);
        check Alcotest.bool "dry" false (Server.Token_bucket.try_take b ~now:0.0);
        (* 0.5 s at 2 tokens/s refills exactly one *)
        check Alcotest.bool "refilled" true
          (Server.Token_bucket.try_take b ~now:0.5);
        check Alcotest.bool "only one" false
          (Server.Token_bucket.try_take b ~now:0.5);
        (* a long idle period caps at burst, not rate * dt *)
        check (Alcotest.float 1e-9) "capped" 2.0
          (Server.Token_bucket.available b ~now:1000.0));
    tc "rate 0 never refills" (fun () ->
        let b = Server.Token_bucket.create ~rate:0.0 ~burst:1.0 ~now:0.0 in
        check Alcotest.bool "take" true (Server.Token_bucket.try_take b ~now:0.0);
        check Alcotest.bool "never again" false
          (Server.Token_bucket.try_take b ~now:1e12));
    tc "clock going backwards does not refund tokens" (fun () ->
        let b = Server.Token_bucket.create ~rate:1.0 ~burst:1.0 ~now:100.0 in
        ignore (Server.Token_bucket.try_take b ~now:100.0);
        check Alcotest.bool "no refund" false
          (Server.Token_bucket.try_take b ~now:50.0));
    tc "create validates parameters" (fun () ->
        check Alcotest.bool "negative rate" true
          (match Server.Token_bucket.create ~rate:(-1.0) ~burst:1.0 ~now:0.0 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check Alcotest.bool "zero burst" true
          (match Server.Token_bucket.create ~rate:1.0 ~burst:0.0 ~now:0.0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    tc "deadline predicate" (fun () ->
        let exp = Server.deadline_expired in
        check Alcotest.bool "infinite never expires" false
          (exp ~enqueued:0.0 ~deadline_s:Float.infinity ~now:1e18);
        check Alcotest.bool "zero always expires" true
          (exp ~enqueued:10.0 ~deadline_s:0.0 ~now:10.0);
        check Alcotest.bool "before the deadline" false
          (exp ~enqueued:10.0 ~deadline_s:5.0 ~now:14.9);
        check Alcotest.bool "at the deadline" true
          (exp ~enqueued:10.0 ~deadline_s:5.0 ~now:15.0);
        check Alcotest.bool "clock skew counts as zero wait" false
          (exp ~enqueued:10.0 ~deadline_s:5.0 ~now:3.0));
  ]

(* ------------------------------------------------------------------ *)
(* tool resolution                                                     *)
(* ------------------------------------------------------------------ *)

let resolve_tests =
  [
    tc "resolution is case-insensitive and trims whitespace" (fun () ->
        List.iter
          (fun (typed, expect) ->
            match Portal.find_tool typed with
            | Some t ->
              check Alcotest.string typed expect t.Portal.tool_name
            | None -> Alcotest.failf "%S did not resolve" typed)
          [
            ("kbdd", "kbdd"); ("KBDD", "kbdd"); (" Espresso ", "espresso");
            ("MiniSAT", "minisat"); ("sis", "sis"); ("AXB", "axb");
          ]);
    tc "colloquial aliases resolve" (fun () ->
        check Alcotest.string "bdd" "kbdd"
          (Portal.canonical_name "bdd");
        check Alcotest.string "sat" "minisat"
          (Portal.canonical_name " SAT ");
        check Alcotest.bool "alias finds the tool" true
          (match Portal.find_tool "BDD" with
          | Some t -> t.Portal.tool_name = "kbdd"
          | None -> false));
    tc "near-miss gets a suggestion, garbage does not" (fun () ->
        let contains ~sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        (match Portal.resolve_tool "kbddd" with
        | Ok _ -> Alcotest.fail "kbddd resolved"
        | Error msg ->
          check Alcotest.bool "lists tools" true
            (contains ~sub:"available: kbdd, espresso, sis, minisat, axb" msg);
          check Alcotest.bool "suggests kbdd" true
            (String.ends_with ~suffix:"did you mean kbdd?" msg));
        match Portal.resolve_tool "zzzzzz" with
        | Ok _ -> Alcotest.fail "zzzzzz resolved"
        | Error msg ->
          check Alcotest.bool "no suggestion" false
            (String.ends_with ~suffix:"?" msg));
    tc "every canonical name resolves to itself" (fun () ->
        List.iter
          (fun t ->
            match Portal.resolve_tool t.Portal.tool_name with
            | Ok t' ->
              check Alcotest.string t.Portal.tool_name t.Portal.tool_name
                t'.Portal.tool_name
            | Error e -> Alcotest.fail e)
          Portal.all_tools);
  ]

(* ------------------------------------------------------------------ *)
(* structured outcome API                                              *)
(* ------------------------------------------------------------------ *)

let outcome_tests =
  [
    tc "execute, then cache hit, with matching payloads" (fun () ->
        fresh ();
        let s = Portal.create_session () in
        (match Portal.submit_result s echo "hello" with
        | Portal.Executed out -> check Alcotest.string "payload" "echo: hello" out
        | _ -> Alcotest.fail "expected Executed");
        match Portal.submit_result s echo "hello" with
        | Portal.Cache_hit out -> check Alcotest.string "payload" "echo: hello" out
        | _ -> Alcotest.fail "expected Cache_hit");
    tc "runaway rejection carries its reason" (fun () ->
        fresh ();
        let s = Portal.create_session () in
        match Portal.submit_result s echo "a\nb\nc\nd\ne" with
        | Portal.Rejected (Portal.Runaway msg) ->
          check Alcotest.string "label" "runaway"
            (Portal.reason_label (Portal.Runaway msg));
          check Alcotest.bool "mentions the limit" true
            (String.ends_with ~suffix:"portal limit 3)" msg)
        | _ -> Alcotest.fail "expected Rejected Runaway");
    tc "outcome_output collapses outcomes to display strings" (fun () ->
        fresh ();
        let s = Portal.create_session () in
        let submit_str input =
          Portal.outcome_output (Portal.submit_result s echo input)
        in
        check Alcotest.string "executed" "echo: x" (submit_str "x");
        check Alcotest.string "cache hit" "echo: x" (submit_str "x");
        let rejected = submit_str "a\nb\nc\nd" in
        check Alcotest.bool "error text" true
          (String.starts_with ~prefix:"error: " rejected));
    tc "reason labels are distinct and stable" (fun () ->
        let labels =
          List.map Portal.reason_label
            [
              Portal.Runaway "m"; Portal.Overloaded "m";
              Portal.Rate_limited "m"; Portal.Deadline_exceeded "m";
            ]
        in
        check
          Alcotest.(list string)
          "labels"
          [ "runaway"; "overloaded"; "rate_limited"; "deadline" ]
          labels;
        check Alcotest.int "all distinct" 4
          (List.length (List.sort_uniq compare labels)));
    tc "cache stats survive a telemetry reset" (fun () ->
        fresh ();
        let s = Portal.create_session () in
        ignore (Portal.submit_result s echo "x");
        ignore (Portal.submit_result s echo "x");
        T.reset ();
        (* the mirrors are gone but the cache's own atomics are not *)
        check Alcotest.int "mirror reset" 0 (T.counter "portal.cache.hits");
        check
          Alcotest.(pair int int)
          "stats intact" (1, 1) (Portal.cache_stats ()));
  ]

(* ------------------------------------------------------------------ *)
(* server admission control                                            *)
(* ------------------------------------------------------------------ *)

let reject_counter label = T.counter ("server.outcome.rejected." ^ label)

let has_journal_event name =
  List.exists
    (fun e -> e.Journal.ev_component = "server" && e.Journal.ev_name = name)
    (Journal.events ())

let server_tests =
  [
    tc "zero-capacity queue rejects Overloaded immediately" (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:
              { Server.default_config with Server.workers = 1; queue_capacity = 0 }
            ()
        in
        (match Server.submit srv (Portal.request ~session:"s" echo "x") with
        | Portal.Rejected (Portal.Overloaded _) -> ()
        | _ -> Alcotest.fail "expected Overloaded");
        Server.stop srv;
        check Alcotest.int "counter" 1 (reject_counter "overloaded");
        check Alcotest.bool "journal event" true
          (has_journal_event "job.rejected.overloaded"));
    tc "empty token bucket rejects Rate_limited per session" (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:
              {
                Server.default_config with
                Server.workers = 1;
                rate_limit = Some (0.0, 1.0);
              }
            ()
        in
        (match Server.submit srv (Portal.request ~session:"a" echo "x") with
        | Portal.Executed _ -> ()
        | _ -> Alcotest.fail "first submission should execute");
        (match Server.submit srv (Portal.request ~session:"a" echo "y") with
        | Portal.Rejected (Portal.Rate_limited _) -> ()
        | _ -> Alcotest.fail "expected Rate_limited");
        (* a different session has its own bucket *)
        (match Server.submit srv (Portal.request ~session:"b" echo "z") with
        | Portal.Executed _ -> ()
        | _ -> Alcotest.fail "fresh session should execute");
        Server.stop srv;
        check Alcotest.int "counter" 1 (reject_counter "rate_limited");
        check Alcotest.bool "journal event" true
          (has_journal_event "job.rejected.rate_limited"));
    tc "zero deadline rejects Deadline_exceeded at dequeue" (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:
              { Server.default_config with Server.workers = 1; deadline_s = 0.0 }
            ()
        in
        (match Server.submit srv (Portal.request ~session:"s" echo "x") with
        | Portal.Rejected (Portal.Deadline_exceeded _) -> ()
        | _ -> Alcotest.fail "expected Deadline_exceeded");
        Server.stop srv;
        check Alcotest.int "counter" 1 (reject_counter "deadline");
        check Alcotest.bool "journal event" true
          (has_journal_event "job.rejected.deadline");
        check Alcotest.bool "queue wait was still recorded" true
          (T.histogram "server.queue_wait" <> None));
    tc "runaway inputs reach the portal guard through the server" (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:{ Server.default_config with Server.workers = 1 }
            ()
        in
        (match Server.submit srv (Portal.request ~session:"s" echo "a\nb\nc\nd") with
        | Portal.Rejected (Portal.Runaway _) -> ()
        | _ -> Alcotest.fail "expected Runaway");
        Server.stop srv;
        check Alcotest.int "counter" 1 (reject_counter "runaway"));
    tc "stop is graceful and idempotent; submissions after stop bounce"
      (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:{ Server.default_config with Server.workers = 2 }
            ()
        in
        (match Server.submit srv (Portal.request ~session:"s" echo "x") with
        | Portal.Executed _ -> ()
        | _ -> Alcotest.fail "expected Executed");
        Server.stop srv;
        Server.stop srv;
        (match Server.submit srv (Portal.request ~session:"s" echo "y") with
        | Portal.Rejected (Portal.Overloaded msg) ->
          check Alcotest.string "message" "server is shutting down" msg
        | _ -> Alcotest.fail "expected Overloaded after stop");
        check Alcotest.int "drained" 0 (Server.queue_depth srv);
        check Alcotest.bool "start event" true (has_journal_event "server.start");
        check Alcotest.bool "stop event" true (has_journal_event "server.stop"));
    tc "sessions persist across submissions and keep history" (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:{ Server.default_config with Server.workers = 1 }
            ()
        in
        ignore (Server.submit srv (Portal.request ~session:"s" echo "one"));
        ignore (Server.submit srv (Portal.request ~session:"s" echo "two"));
        Server.stop srv;
        let h = Portal.history (Server.session srv "s") echo in
        check Alcotest.int "two entries" 2 (List.length h);
        check
          Alcotest.(list (pair string string))
          "ordered oldest first"
          [ ("one", "echo: one"); ("two", "echo: two") ]
          h);
  ]

(* ------------------------------------------------------------------ *)
(* wire protocol: the TRACE operand round-trips                        *)
(* ------------------------------------------------------------------ *)

module Wire = Vc_mooc.Wire

(* Drive session_loop over temp-file channels with a stub submit that
   records what reached it; returns (captured submissions, raw output). *)
let run_wire_script script =
  let in_file = Filename.temp_file "wire_in" ".txt" in
  let out_file = Filename.temp_file "wire_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_file;
      Sys.remove out_file)
    (fun () ->
      Out_channel.with_open_text in_file (fun oc ->
          Out_channel.output_string oc script);
      let captured = ref [] in
      let submit (req : Portal.request) =
        captured :=
          (req.Portal.req_session, req.Portal.req_trace, req.Portal.req_input)
          :: !captured;
        Portal.Executed ("ran: " ^ req.Portal.req_input)
      in
      In_channel.with_open_text in_file (fun input ->
          Out_channel.with_open_text out_file (fun output ->
              ignore (Wire.session_loop ~input ~output ~submit ())));
      (List.rev !captured, In_channel.with_open_text out_file In_channel.input_all))

let wire_tests =
  [
    tc "TRACE operand reaches submit and is echoed on the status line"
      (fun () ->
        let captured, out =
          run_wire_script
            "TOOL axb TRACE deadbeef\nhi\n.\nTOOL axb s9 TRACE \
             00c0ffee00c0ffee\nhi\n.\nTOOL axb\nhi\n.\nQUIT\n"
        in
        check
          Alcotest.(list (triple string (option string) string))
          "captured submissions"
          [
            ("default", Some "deadbeef", "hi");
            ("s9", Some "00c0ffee00c0ffee", "hi");
            ("default", None, "hi");
          ]
          captured;
        check Alcotest.string "responses"
          "OK executed trace=deadbeef\nran: hi\n.\nOK executed \
           trace=00c0ffee00c0ffee\nran: hi\n.\nOK executed\nran: hi\n.\n"
          out);
    tc "invalid TRACE id is rejected without calling submit or desyncing"
      (fun () ->
        let captured, out =
          run_wire_script
            "TOOL axb TRACE NotHex!\nignored\n.\nTOOL axb TRACE \
             abc\nignored\n.\nTOOL axb\nhi\n.\nQUIT\n"
        in
        (* the bad uploads' bodies were consumed, so the follow-up
           request still parsed cleanly *)
        check
          Alcotest.(list (triple string (option string) string))
          "only the valid request got through"
          [ ("default", None, "hi") ]
          captured;
        check Alcotest.string "responses"
          "ERR trace invalid trace id (4-64 lowercase hex chars)\n.\n\
           ERR trace invalid trace id (4-64 lowercase hex chars)\n.\n\
           OK executed\nran: hi\n.\n"
          out);
    tc "trace_of_status parses the echo, absent on untraced lines"
      (fun () ->
        check
          Alcotest.(option string)
          "executed" (Some "deadbeef")
          (Wire.trace_of_status "OK executed trace=deadbeef");
        check
          Alcotest.(option string)
          "error lines echo too" (Some "00c0ffee")
          (Wire.trace_of_status "ERR unknown no such tool; did you mean \
                                 kbdd? trace=00c0ffee");
        check
          Alcotest.(option string)
          "untraced" None
          (Wire.trace_of_status "OK executed");
        check
          Alcotest.(option string)
          "empty" None (Wire.trace_of_status ""));
    tc "end-to-end over TCP: client trace id lands in the journal"
      (fun () ->
        fresh ();
        let srv =
          Server.start
            ~config:{ Server.default_config with Server.workers = 2 }
            ()
        in
        let listener = Wire.listen ~port:0 () in
        let acceptor =
          Domain.spawn (fun () ->
              Wire.serve listener ~submit:(Server.submit srv))
        in
        let conn = Wire.Client.connect ~port:(Wire.port listener) () in
        let status, _body =
          Wire.Client.submit conn ~trace:"f00dfeedf00dfeed" ~tool:"axb"
            "n 1\nrow 2\nrhs 4"
        in
        check
          Alcotest.(option string)
          "echoed back" (Some "f00dfeedf00dfeed")
          (Wire.trace_of_status status);
        Wire.Client.close conn;
        Wire.shutdown listener;
        Domain.join acceptor;
        ignore (Wire.drain_connections listener);
        Server.stop srv;
        let traced name =
          List.exists
            (fun e ->
              e.Journal.ev_name = name
              && List.assoc_opt "trace_id" e.Journal.ev_attrs
                 = Some "f00dfeedf00dfeed")
            (Journal.events ())
        in
        List.iter
          (fun name ->
            check Alcotest.bool (name ^ " carries the trace id") true
              (traced name))
          [ "request.admitted"; "request.dequeued"; "request.replied" ]);
  ]

(* ------------------------------------------------------------------ *)
(* sharded result cache                                                *)
(* ------------------------------------------------------------------ *)

(* distinct inputs that never collide: "x 0", "x 1", ... *)
let distinct_input i = Printf.sprintf "x %d" i

let shard_tests =
  [
    tc "per-shard LRU bound holds and sums to the aggregate" (fun () ->
        fresh ();
        Portal.set_cache_shards 4;
        Portal.set_cache_capacity 8;
        let s = Portal.create_session () in
        (* 40 distinct inputs: every shard overflows its slice *)
        for i = 0 to 39 do
          ignore (Portal.submit_result s echo (distinct_input i))
        done;
        let sizes = Portal.cache_shard_sizes () in
        check Alcotest.int "four shards" 4 (List.length sizes);
        List.iteri
          (fun i n ->
            check Alcotest.bool
              (Printf.sprintf "shard %d within its slice (%d <= 2)" i n)
              true (n <= 2))
          sizes;
        check Alcotest.int "sizes sum to cache_size"
          (Portal.cache_size ())
          (List.fold_left ( + ) 0 sizes);
        check Alcotest.bool "aggregate bound" true (Portal.cache_size () <= 8);
        check Alcotest.bool "evictions happened" true
          (Portal.cache_evictions () > 0));
    tc "uneven capacities still sum exactly to the aggregate" (fun () ->
        fresh ();
        Portal.set_cache_shards 4;
        Portal.set_cache_capacity 10;
        (* caps are 3,3,2,2: fill far past them and check the global bound *)
        let s = Portal.create_session () in
        for i = 0 to 99 do
          ignore (Portal.submit_result s echo (distinct_input i))
        done;
        check Alcotest.bool "size <= 10" true (Portal.cache_size () <= 10);
        check Alcotest.bool "cache is well used" true
          (Portal.cache_size () >= 8));
    tc "clear_cache empties every shard and zeroes the stats" (fun () ->
        fresh ();
        Portal.set_cache_shards 8;
        let s = Portal.create_session () in
        for i = 0 to 19 do
          ignore (Portal.submit_result s echo (distinct_input i))
        done;
        ignore (Portal.submit_result s echo (distinct_input 0));
        check Alcotest.bool "cache populated" true (Portal.cache_size () > 0);
        Portal.clear_cache ();
        check Alcotest.int "empty" 0 (Portal.cache_size ());
        List.iter
          (fun n -> check Alcotest.int "shard empty" 0 n)
          (Portal.cache_shard_sizes ());
        check Alcotest.(pair int int) "stats zeroed" (0, 0)
          (Portal.cache_stats ());
        check Alcotest.int "evictions zeroed" 0 (Portal.cache_evictions ()));
    tc "shrinking the capacity evicts down across shards" (fun () ->
        fresh ();
        Portal.set_cache_shards 4;
        Portal.set_cache_capacity 16;
        let s = Portal.create_session () in
        for i = 0 to 15 do
          ignore (Portal.submit_result s echo (distinct_input i))
        done;
        Portal.set_cache_capacity 4;
        check Alcotest.bool "evicted down" true (Portal.cache_size () <= 4);
        List.iter
          (fun n -> check Alcotest.bool "shard slice" true (n <= 1))
          (Portal.cache_shard_sizes ());
        (* capacity 0 disables caching entirely *)
        Portal.set_cache_capacity 0;
        check Alcotest.int "disabled empties" 0 (Portal.cache_size ());
        ignore (Portal.submit_result s echo (distinct_input 100));
        ignore (Portal.submit_result s echo (distinct_input 100));
        check Alcotest.int "nothing cached at 0" 0 (Portal.cache_size ()));
    tc "set_cache_shards validates and reconfigures" (fun () ->
        fresh ();
        check Alcotest.bool "zero shards rejected" true
          (match Portal.set_cache_shards 0 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Portal.set_cache_shards 3;
        check Alcotest.int "shard count" 3 (Portal.cache_shards ());
        check Alcotest.int "three slots" 3
          (List.length (Portal.cache_shard_sizes ()));
        (* reconfiguring drops entries but keeps the hit/miss stats *)
        let s = Portal.create_session () in
        ignore (Portal.submit_result s echo "kept stats");
        ignore (Portal.submit_result s echo "kept stats");
        Portal.set_cache_shards 5;
        check Alcotest.int "entries dropped" 0 (Portal.cache_size ());
        check Alcotest.(pair int int) "stats preserved" (1, 1)
          (Portal.cache_stats ()));
    tc "cache stats stay monotone under an 8-domain hammer" (fun () ->
        fresh ();
        Portal.set_cache_shards 16;
        Portal.set_cache_capacity 32;
        let hammers =
          List.init 8 (fun c ->
              Domain.spawn (fun () ->
                  let s = Portal.create_session () in
                  for k = 0 to 399 do
                    ignore
                      (Portal.submit_result s echo
                         (distinct_input ((c + (7 * k)) mod 64)))
                  done))
        in
        (* sample concurrently from this domain until every submission
           is accounted for: totals never go backwards, the size bound
           never breaks *)
        let violations = ref 0 in
        let last = ref (0, 0, 0) in
        let running = ref true in
        while !running do
          let h, m = Portal.cache_stats () in
          let e = Portal.cache_evictions () in
          let lh, lm, le = !last in
          if h < lh || m < lm || e < le then incr violations;
          if Portal.cache_size () > 32 then incr violations;
          last := (h, m, e);
          if h + m >= 3200 then running := false
        done;
        List.iter Domain.join hammers;
        check Alcotest.int "no monotonicity or bound violations" 0 !violations;
        let h, m = Portal.cache_stats () in
        check Alcotest.int "every submission counted" 3200 (h + m));
  ]

(* ------------------------------------------------------------------ *)
(* telemetry per-domain cells merge exactly                            *)
(* ------------------------------------------------------------------ *)

let merge_tests =
  [
    tc "per-domain counter increments sum exactly to the global report"
      (fun () ->
        fresh ();
        (* domain d increments the shared counter (d+1) * 100 times and
           its private counter d times; both must merge exactly, and the
           counts must survive the domains terminating *)
        let domains =
          List.init 8 (fun d ->
              Domain.spawn (fun () ->
                  for _ = 1 to (d + 1) * 100 do
                    T.incr "merge.shared"
                  done;
                  T.incr ~by:d (Printf.sprintf "merge.private.%d" d);
                  T.observe "merge.timer" 0.001))
        in
        List.iter Domain.join domains;
        T.incr "merge.shared";
        (* 100+200+...+800 from the workers, +1 from this domain *)
        check Alcotest.int "shared counter sums" 3601
          (T.counter "merge.shared");
        for d = 1 to 7 do
          check Alcotest.int
            (Printf.sprintf "private counter %d" d)
            d
            (T.counter (Printf.sprintf "merge.private.%d" d))
        done;
        (* counters () sees the merged view too *)
        check Alcotest.bool "merged listing agrees" true
          (List.assoc "merge.shared" (T.counters ()) = 3601);
        (* timer samples from every domain are merged *)
        match T.timer "merge.timer" with
        | Some s -> check Alcotest.int "eight samples" 8 s.T.count
        | None -> Alcotest.fail "merged timer missing");
    tc "reset clears every domain's cells" (fun () ->
        fresh ();
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () -> T.incr "merge.reset.me"))
        in
        List.iter Domain.join domains;
        check Alcotest.int "visible before reset" 4
          (T.counter "merge.reset.me");
        T.reset ();
        check Alcotest.int "gone after reset" 0 (T.counter "merge.reset.me"));
  ]

(* ------------------------------------------------------------------ *)
(* multi-domain stress: parallel outputs byte-identical to sequential  *)
(* ------------------------------------------------------------------ *)

let stress_inputs =
  (* 25 distinct jobs cycling through three kernels, so concurrent
     submissions mix cache hits, misses and LRU evictions *)
  List.concat
    (List.init 8 (fun i ->
         [
           ( Portal.kbdd,
             Printf.sprintf
               "boolean a b c\nf = a & b | c\ng = f ^ a\nsatcount g\nprint g\n# %d"
               i );
           ( Portal.axb,
             Printf.sprintf "n 2\nrow %d 1\nrow 1 %d\nrhs %d %d" (i + 4)
               (i + 6) (i + 1) (i + 2) );
           ( Portal.espresso,
             Printf.sprintf ".i 3\n.o 1\n1%d0 1\n111 1\n011 1\n.e" (i mod 2) );
         ]))
  @ [ (Portal.minisat, "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0") ]

let stress_tests =
  [
    tc "8 domains x 200 submissions match the sequential oracle" (fun () ->
        fresh ();
        Portal.set_cache_capacity 16;
        (* sequential oracle: tools are pure, so expected output is the
           tool run directly on the input *)
        let oracle =
          List.map
            (fun (tool, input) -> ((tool.Portal.tool_name, input), tool.Portal.execute input))
            stress_inputs
        in
        let expect tool input =
          List.assoc (tool.Portal.tool_name, input) oracle
        in
        let jobs = Array.of_list stress_inputs in
        let srv =
          Server.start
            ~config:
              {
                Server.default_config with
                Server.workers = 4;
                queue_capacity = 128;
              }
            ()
        in
        let mismatches = Atomic.make 0 and rejections = Atomic.make 0 in
        let clients =
          List.init 8 (fun c ->
              Domain.spawn (fun () ->
                  for k = 0 to 199 do
                    let tool, input =
                      jobs.((c + (3 * k)) mod Array.length jobs)
                    in
                    match
                      Server.submit srv
                        (Portal.request
                           ~session:(Printf.sprintf "stress-%d" c)
                           tool input)
                    with
                    | Portal.Executed out | Portal.Cache_hit out ->
                      if out <> expect tool input then Atomic.incr mismatches
                    | Portal.Rejected _ -> Atomic.incr rejections
                  done))
        in
        List.iter Domain.join clients;
        Server.stop srv;
        check Alcotest.int "no mismatched outputs" 0 (Atomic.get mismatches);
        check Alcotest.int "no rejections" 0 (Atomic.get rejections);
        (* counter consistency: every submission is accounted for exactly
           once, and the books balance across layers *)
        let executed = T.counter "server.outcome.executed" in
        let cache_hit = T.counter "server.outcome.cache_hit" in
        check Alcotest.int "submitted" 1600 (T.counter "server.submitted");
        check Alcotest.int "outcomes balance" 1600 (executed + cache_hit);
        check Alcotest.bool "both paths exercised" true
          (executed > 0 && cache_hit > 0);
        let hits, misses = Portal.cache_stats () in
        check Alcotest.int "cache stats balance" 1600 (hits + misses);
        let portal_submits =
          List.fold_left
            (fun acc tool ->
              acc + T.counter ("portal." ^ tool.Portal.tool_name ^ ".submits"))
            0 Portal.all_tools
        in
        check Alcotest.int "portal submits balance" 1600 portal_submits;
        check Alcotest.bool "cache bound holds under concurrency" true
          (Portal.cache_size () <= 16);
        check Alcotest.int "queue drained" 0 (Server.queue_depth srv));
  ]

let () =
  Alcotest.run "server"
    [
      ("token-bucket", token_bucket_tests);
      ("resolve", resolve_tests);
      ("outcomes", outcome_tests);
      ("admission", server_tests);
      ("wire-trace", wire_tests);
      ("cache-shards", shard_tests);
      ("telemetry-merge", merge_tests);
      ("stress", stress_tests);
    ]
