lib/mooc/portal.ml: Array Hashtbl List Printf String Vc_bdd Vc_linalg Vc_multilevel Vc_network Vc_sat Vc_two_level
