(* smoke_metrics: end-to-end check of the live metrics exporter.
   Usage: smoke_metrics FLOW_EXE DESIGN.blif

   Starts `FLOW_EXE --metrics-port 0 DESIGN.blif` as a child process,
   learns the ephemeral port from the stderr announcement, scrapes
   GET /metrics and GET /healthz with a hand-rolled HTTP client over the
   stdlib Unix socket API, and asserts the exposition carries at least
   one counter, one gauge and one histogram family (with _bucket/_sum/
   _count series). Exits non-zero with a message on the first failure;
   the child is always killed. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("smoke_metrics: " ^ s);
      exit 1)
    fmt

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* Wait (up to ~10s) for the "metrics: serving http://127.0.0.1:PORT"
   announcement to land in the child's stderr file. *)
let wait_for_port stderr_file =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let marker = "http://127.0.0.1:" in
  let rec poll () =
    let text =
      try In_channel.with_open_text stderr_file In_channel.input_all
      with Sys_error _ -> ""
    in
    if contains text marker then begin
      let rec find i =
        if String.sub text i (String.length marker) = marker then i
        else find (i + 1)
      in
      let start = find 0 + String.length marker in
      let rec digits i =
        if i < String.length text && text.[i] >= '0' && text.[i] <= '9' then
          digits (i + 1)
        else i
      in
      let stop = digits start in
      int_of_string (String.sub text start (stop - start))
    end
    else if Unix.gettimeofday () > deadline then
      die "timed out waiting for the metrics announcement in %s" stderr_file
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* Minimal HTTP GET over a fresh connection; returns the whole response
   (head + body) once the server closes the socket. *)
let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let addr =
        Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)
      in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec connect () =
        match Unix.connect sock addr with
        | () -> ()
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _)
          when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.05;
          connect ()
      in
      connect ();
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
          path
      in
      let b = Bytes.of_string req in
      ignore (Unix.write sock b 0 (Bytes.length b));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      (try drain () with
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      Buffer.contents buf)

let () =
  let flow_exe, design =
    match Sys.argv with
    | [| _; exe; design |] -> (exe, design)
    | _ -> die "usage: smoke_metrics FLOW_EXE DESIGN.blif"
  in
  let stderr_file = "smoke_metrics_stderr.txt" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let errfd =
    Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process flow_exe
      [| flow_exe; "--metrics-port"; "0"; design |]
      Unix.stdin devnull errfd
  in
  Unix.close devnull;
  Unix.close errfd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
    (fun () ->
      let port = wait_for_port stderr_file in
      let health = http_get port "/healthz" in
      if not (contains health "200 OK" && contains health "ok") then
        die "/healthz did not answer ok:\n%s" health;
      let resp = http_get port "/metrics" in
      if not (contains resp "200 OK") then die "/metrics not 200:\n%s" resp;
      if not (contains resp "text/plain; version=0.0.4") then
        die "/metrics missing the exposition content type";
      List.iter
        (fun needle ->
          if not (contains resp needle) then
            die "/metrics missing %S in:\n%s" needle resp)
        [
          (* one family of each kind, with the full histogram series *)
          "# TYPE vc_journal_events_total counter";
          "# TYPE vc_metrics_port gauge";
          " histogram\n";
          "_seconds_bucket{le=\"";
          "_bucket{le=\"+Inf\"}";
          "_seconds_sum";
          "_seconds_count";
        ];
      print_endline "smoke_metrics: ok")
