let to_grid (t : Pnet.t) (p : Pnet.placement) =
  let n = t.Pnet.num_cells in
  if n = 0 then { Pnet.xs = [||]; Pnet.ys = [||] }
  else begin
    let rows = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
    let per_row = (n + rows - 1) / rows in
    let xs = Array.copy p.Pnet.xs and ys = Array.copy p.Pnet.ys in
    let order = Array.init n (fun i -> i) in
    (* bucket into rows by y, then order within a row by x *)
    Array.sort
      (fun a b ->
        match compare p.Pnet.ys.(a) p.Pnet.ys.(b) with
        | 0 -> compare p.Pnet.xs.(a) p.Pnet.xs.(b)
        | c -> c)
      order;
    let row_height = t.Pnet.height /. float_of_int rows in
    Array.iteri
      (fun rank cell ->
        let row = rank / per_row in
        let row_cells = min per_row (n - (row * per_row)) in
        ignore row_cells;
        ys.(cell) <- (float_of_int row +. 0.5) *. row_height)
      order;
    (* within each row, spread by x order *)
    for row = 0 to rows - 1 do
      let start = row * per_row in
      let stop = min n (start + per_row) in
      if stop > start then begin
        let members = Array.sub order start (stop - start) in
        Array.sort (fun a b -> compare p.Pnet.xs.(a) p.Pnet.xs.(b)) members;
        let k = Array.length members in
        let pitch = t.Pnet.width /. float_of_int k in
        Array.iteri
          (fun i cell -> xs.(cell) <- (float_of_int i +. 0.5) *. pitch)
          members
      end
    done;
    { Pnet.xs; Pnet.ys }
  end

let default_min_sep (t : Pnet.t) =
  let n = max 1 t.Pnet.num_cells in
  let pitch = t.Pnet.width /. ceil (sqrt (float_of_int n)) in
  0.5 *. pitch

let overlap_count ?min_sep (t : Pnet.t) (p : Pnet.placement) =
  let sep = match min_sep with Some s -> s | None -> default_min_sep t in
  let n = t.Pnet.num_cells in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        abs_float (p.Pnet.xs.(i) -. p.Pnet.xs.(j)) < sep
        && abs_float (p.Pnet.ys.(i) -. p.Pnet.ys.(j)) < sep
      then incr count
    done
  done;
  !count

let inside_core (t : Pnet.t) (p : Pnet.placement) =
  let ok = ref true in
  for i = 0 to t.Pnet.num_cells - 1 do
    if
      p.Pnet.xs.(i) < 0.0
      || p.Pnet.xs.(i) > t.Pnet.width
      || p.Pnet.ys.(i) < 0.0
      || p.Pnet.ys.(i) > t.Pnet.height
    then ok := false
  done;
  !ok

(* Detailed placement: swap two cells' positions when that lowers HPWL.
   Candidate pairs: cells sharing a net, and slot-order neighbours. *)
let refine ?(max_passes = 4) (t : Pnet.t) (p : Pnet.placement) =
  let xs = Array.copy p.Pnet.xs and ys = Array.copy p.Pnet.ys in
  let current = { Pnet.xs; ys } in
  let nets_of_cell = Array.make t.Pnet.num_cells [] in
  Array.iteri
    (fun ni (net : Pnet.net) ->
      List.iter
        (fun pin ->
          match pin with
          | Pnet.Cell c -> nets_of_cell.(c) <- ni :: nets_of_cell.(c)
          | Pnet.Pad _ -> ())
        net.Pnet.pins)
    t.Pnet.nets;
  let cost_around cells =
    let nets =
      List.sort_uniq compare (List.concat_map (fun c -> nets_of_cell.(c)) cells)
    in
    List.fold_left
      (fun acc ni -> acc +. Pnet.hpwl_net t current t.Pnet.nets.(ni))
      0.0 nets
  in
  let swap a b =
    let tx = xs.(a) and ty = ys.(a) in
    xs.(a) <- xs.(b);
    ys.(a) <- ys.(b);
    xs.(b) <- tx;
    ys.(b) <- ty
  in
  (* candidate pairs *)
  let pairs = Hashtbl.create 256 in
  Array.iter
    (fun (net : Pnet.net) ->
      let cells =
        List.filter_map
          (fun pin -> match pin with Pnet.Cell c -> Some c | Pnet.Pad _ -> None)
          net.Pnet.pins
      in
      List.iter
        (fun a ->
          List.iter
            (fun b -> if a < b then Hashtbl.replace pairs (a, b) ())
            cells)
        cells)
    t.Pnet.nets;
  let order = Array.init t.Pnet.num_cells (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare ys.(a) ys.(b) with 0 -> compare xs.(a) xs.(b) | c -> c)
    order;
  Array.iteri
    (fun k a ->
      if k + 1 < Array.length order then begin
        let b = order.(k + 1) in
        Hashtbl.replace pairs (min a b, max a b) ()
      end)
    order;
  let swaps = ref 0 in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    Hashtbl.iter
      (fun (a, b) () ->
        let before = cost_around [ a; b ] in
        swap a b;
        let after = cost_around [ a; b ] in
        if after < before -. 1e-12 then begin
          incr swaps;
          improved := true
        end
        else swap a b)
      pairs
  done;
  (current, !swaps)
