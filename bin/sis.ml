(* sis: multi-level logic optimization scripts over BLIF networks.
   Usage: sis [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif> [script-file]
   Without a script file the canned rugged script runs. The optimized
   network is written to stdout as BLIF after the script log. *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  match argv with
  | [| _; blif_path |] | [| _; blif_path; _ |] -> begin
    let blif = In_channel.with_open_text blif_path In_channel.input_all in
    let script =
      match argv with
      | [| _; _; script_path |] ->
        In_channel.with_open_text script_path In_channel.input_all
      | _ -> Vc_multilevel.Script.script_rugged
    in
    match Vc_network.Blif.parse blif with
    | exception Failure msg ->
      prerr_endline ("sis: " ^ msg);
      exit 1
    | net ->
      let report =
        Vc_util.Telemetry.timed_span "sis" (fun () ->
            Vc_multilevel.Script.run net script)
      in
      List.iter print_endline report.Vc_multilevel.Script.log;
      print_newline ();
      print_string (Vc_network.Blif.to_string report.Vc_multilevel.Script.network);
      (* verify the transformation before letting it out the door *)
      if not (Vc_network.Equiv.equivalent net report.Vc_multilevel.Script.network)
      then begin
        prerr_endline "sis: INTERNAL ERROR - output not equivalent to input";
        exit 3
      end
  end
  | _ ->
    prerr_endline "usage: sis [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif> [script-file]";
    exit 2
