lib/sat/dpll.ml: Array Cnf Hashtbl List Solver
