(* atpg: stuck-at test generation for a BLIF design (omitted-topic
   extension). Usage: atpg [-compact] [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif> *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let compact = ref false and path = ref None in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "-compact" -> compact := true
        | _ -> path := Some arg)
    argv;
  match !path with
  | None ->
    prerr_endline "usage: atpg [-compact] [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif>";
    exit 2
  | Some blif_path -> begin
    let blif = In_channel.with_open_text blif_path In_channel.input_all in
    match Vc_network.Blif.parse blif with
    | exception Failure msg ->
      prerr_endline ("atpg: " ^ msg);
      exit 1
    | net ->
      let report =
        Vc_util.Telemetry.timed_span "atpg" (fun () ->
            Vc_network.Atpg.generate_all net)
      in
      Printf.printf
        "faults %d, detected %d, redundant %d, coverage %.1f%%\n"
        report.Vc_network.Atpg.total report.Vc_network.Atpg.detected
        report.Vc_network.Atpg.redundant
        (100.0 *. Vc_network.Atpg.coverage report);
      let print_vector v =
        String.concat " "
          (List.map
             (fun (n, b) -> Printf.sprintf "%s=%d" n (if b then 1 else 0))
             v)
      in
      if !compact then begin
        let vectors = Vc_network.Atpg.compact net report in
        Printf.printf "compacted test set: %d vector(s)\n" (List.length vectors);
        List.iter (fun v -> print_endline ("  " ^ print_vector v)) vectors
      end
      else
        List.iter
          (fun (fault, v) ->
            Printf.printf "%-12s %s\n"
              (Vc_network.Atpg.fault_to_string fault)
              (print_vector v))
          report.Vc_network.Atpg.vectors
  end
