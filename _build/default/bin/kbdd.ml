(* kbdd: the BDD calculator portal tool as a command-line filter.
   Usage: kbdd [script-file]   (stdin when no file is given) *)

let read_input () =
  match Sys.argv with
  | [| _ |] -> In_channel.input_all stdin
  | [| _; path |] -> In_channel.with_open_text path In_channel.input_all
  | _ ->
    prerr_endline "usage: kbdd [script-file]";
    exit 2

let () =
  let script = read_input () in
  List.iter print_endline (Vc_bdd.Bdd_script.run_script script)
