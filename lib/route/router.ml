type net_spec = { rn_name : string; rn_pins : (int * int) list }

type problem = {
  grid_width : int;
  grid_height : int;
  cost_params : Grid.cost_params;
  obstacles : Grid.point list;
  net_specs : net_spec list;
}

type routed = {
  r_name : string;
  r_paths : Maze.path list;
  r_ok : bool;
}

type result = {
  routed : routed list;
  grid : Grid.t;
  completed : int;
  total : int;
  wirelength : int;
  vias : int;
}

let parse_problem text =
  let width = ref 0 and height = ref 0 in
  let cp = ref Grid.default_costs in
  let obstacles = ref [] and nets = ref [] in
  let int_ ctx v = Vc_util.Tok.parse_int ~context:ctx v in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "grid"; w; h ] ->
      width := int_ "grid width" w;
      height := int_ "grid height" h
    | [ "cost"; s; b; v; ww ] ->
      cp :=
        {
          Grid.step = int_ "cost step" s;
          bend = int_ "cost bend" b;
          via = int_ "cost via" v;
          wrong_way = int_ "cost wrong_way" ww;
        }
    | [ "obstacle"; l; x; y ] ->
      obstacles :=
        { Grid.layer = int_ "obstacle layer" l;
          x = int_ "obstacle x" x;
          y = int_ "obstacle y" y }
        :: !obstacles
    | "net" :: name :: coords when List.length coords >= 2 ->
      if List.length coords mod 2 <> 0 then
        failwith ("route: odd pin coordinates for net " ^ name);
      let rec pair = function
        | x :: y :: rest -> (int_ "pin x" x, int_ "pin y" y) :: pair rest
        | [ _ ] -> assert false
        | [] -> []
      in
      nets := { rn_name = name; rn_pins = pair coords } :: !nets
    | toks -> failwith ("route: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle (Vc_util.Tok.logical_lines ~comment:'#' text);
  if !width <= 0 || !height <= 0 then failwith "route: missing grid directive";
  {
    grid_width = !width;
    grid_height = !height;
    cost_params = !cp;
    obstacles = List.rev !obstacles;
    net_specs = List.rev !nets;
  }

let problem_to_string p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "grid %d %d\n" p.grid_width p.grid_height);
  Buffer.add_string buf
    (Printf.sprintf "cost %d %d %d %d\n" p.cost_params.Grid.step
       p.cost_params.Grid.bend p.cost_params.Grid.via
       p.cost_params.Grid.wrong_way);
  List.iter
    (fun (o : Grid.point) ->
      Buffer.add_string buf
        (Printf.sprintf "obstacle %d %d %d\n" o.Grid.layer o.Grid.x o.Grid.y))
    p.obstacles;
  List.iter
    (fun n ->
      Buffer.add_string buf ("net " ^ n.rn_name);
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf " %d %d" x y))
        n.rn_pins;
      Buffer.add_char buf '\n')
    p.net_specs;
  Buffer.contents buf

let bbox pins =
  List.fold_left
    (fun (x0, y0, x1, y1) (x, y) -> (min x0 x, min y0 y, max x1 x, max y1 y))
    (max_int, max_int, min_int, min_int)
    pins

let boxes_intersect (ax0, ay0, ax1, ay1) (bx0, by0, bx1, by1) =
  ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1

let net_span n =
  let x0, y0, x1, y1 = bbox n.rn_pins in
  x1 - x0 + (y1 - y0)

let route ?(order = `Short_first) ?(rip_up_passes = 2) p =
  let g =
    Grid.create ~costs:p.cost_params ~width:p.grid_width ~height:p.grid_height
      ()
  in
  List.iter (Grid.add_obstacle g) p.obstacles;
  let specs = Array.of_list p.net_specs in
  let ids = List.init (Array.length specs) (fun i -> i) in
  let ordered =
    match order with
    | `Given -> ids
    | `Short_first ->
      List.sort (fun a b -> compare (net_span specs.(a)) (net_span specs.(b))) ids
    | `Long_first ->
      List.sort (fun a b -> compare (net_span specs.(b)) (net_span specs.(a))) ids
  in
  let results : Maze.path list option array =
    Array.make (Array.length specs) None
  in
  (* reserve every net's pin cells up front so no other net's wire can
     cover an unrouted pin; failed routes release their cells, so the
     reservation is re-established after each attempt *)
  let reserve id =
    List.iter
      (fun (x, y) ->
        let p = { Grid.layer = 0; x; y } in
        match Grid.occupy g id p with
        | () -> ()
        | exception Invalid_argument _ -> () (* conflicting problem spec *))
      specs.(id).rn_pins
  in
  let try_route id =
    match Maze.route_net g ~net:id ~pins:specs.(id).rn_pins with
    | Some paths -> results.(id) <- Some paths
    | None ->
      results.(id) <- None;
      reserve id
  in
  List.iter reserve ids;
  List.iter try_route ordered;
  (* rip-up and reroute *)
  let rec ripup pass =
    let failed = List.filter (fun id -> results.(id) = None) ordered in
    if pass > 0 && failed <> [] then begin
      List.iter
        (fun fid ->
          if results.(fid) = None then begin
            let fbox = bbox specs.(fid).rn_pins in
            (* rip up routed nets whose pin bbox intersects *)
            let victims =
              List.filter
                (fun id ->
                  id <> fid
                  && results.(id) <> None
                  && boxes_intersect fbox (bbox specs.(id).rn_pins))
                ordered
            in
            List.iter
              (fun id ->
                Grid.release_net g id;
                results.(id) <- None;
                reserve id)
              victims;
            (* route the failed net first, then the victims *)
            try_route fid;
            List.iter try_route victims
          end)
        failed;
      ripup (pass - 1)
    end
  in
  ripup rip_up_passes;
  let routed =
    List.map
      (fun id ->
        match results.(id) with
        | Some paths -> { r_name = specs.(id).rn_name; r_paths = paths; r_ok = true }
        | None -> { r_name = specs.(id).rn_name; r_paths = []; r_ok = false })
      ids
  in
  let wirelength = ref 0 and vias = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun path ->
          let rec count = function
            | (a : Grid.point) :: (b :: _ as rest) ->
              if a.Grid.layer <> b.Grid.layer then incr vias else incr wirelength;
              count rest
            | [ _ ] | [] -> ()
          in
          count path)
        r.r_paths)
    routed;
  let result =
    {
      routed;
      grid = g;
      completed = List.length (List.filter (fun r -> r.r_ok) routed);
      total = List.length routed;
      wirelength = !wirelength;
      vias = !vias;
    }
  in
  Vc_util.Journal.emit ~component:"route"
    ~attrs:
      [
        ("nets", string_of_int result.total);
        ("routed", string_of_int result.completed);
        ("overflow", string_of_int (result.total - result.completed));
        ("wirelength", string_of_int result.wirelength);
        ("vias", string_of_int result.vias);
      ]
    "route.done";
  result

let solution_to_string result =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      if r.r_ok then begin
        Buffer.add_string buf ("net " ^ r.r_name ^ "\n");
        List.iter
          (fun path ->
            List.iter
              (fun (pt : Grid.point) ->
                Buffer.add_string buf
                  (Printf.sprintf "%d %d %d\n" pt.Grid.layer pt.Grid.x pt.Grid.y))
              path;
            Buffer.add_string buf "break\n")
          r.r_paths;
        Buffer.add_string buf "endnet\n"
      end)
    result.routed;
  Buffer.contents buf
