lib/two_level/espresso.ml: Array List Pla Vc_cube
