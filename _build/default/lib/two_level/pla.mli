(** Berkeley PLA files, the input format of Espresso and of the course's
    two-level portal. Supported directives: [.i], [.o], [.p], [.ilb],
    [.ob], [.type fr|fd|f], [.e]. Output plane characters: ['1'] ON-set,
    ['-'/'2'] don't-care set, ['0'/'~'] OFF/unspecified. *)

type t = {
  num_inputs : int;
  num_outputs : int;
  input_names : string list;  (** Defaults to [x0, x1, ...]. *)
  output_names : string list;  (** Defaults to [f0, f1, ...]. *)
  on_sets : Vc_cube.Cover.t array;  (** Per output. *)
  dc_sets : Vc_cube.Cover.t array;  (** Per output. *)
}

val parse : string -> t
(** @raise Failure on malformed input. *)

val to_string : t -> string
(** Canonical PLA text: the union of cubes across outputs, one row per
    distinct input cube, with ['1'], ['-'], ['0'] output plane. *)

val single_output : num_inputs:int -> on:Vc_cube.Cover.t -> dc:Vc_cube.Cover.t -> t

val cube_count : t -> int
(** Number of distinct input cubes over all planes (the PLA's row count). *)

val literal_count : t -> int
(** Total input-plane literal count over all on/dc cubes. *)

val semantics_equal : t -> t -> bool
(** Same completely-specified behaviour on every output: equal ON-sets and
    equal DC-sets as Boolean functions (truth-table comparison; inputs
    <= 20). *)
