bin/sis.mli:
