lib/cube/cube.mli:
