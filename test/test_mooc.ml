open Helpers
module M = Vc_mooc

let concept_tests =
  [
    tc "paper invariants: 102 concepts, 948 slides" (fun () ->
        check Alcotest.int "concepts" 102 M.Concept_map.total_concepts;
        check Alcotest.int "slides" 948 M.Concept_map.total_slides);
    tc "MOOC keeps 50-60% of the material" (fun () ->
        let f = M.Concept_map.kept_slide_fraction in
        check Alcotest.bool (Printf.sprintf "%.2f in range" f) true
          (f >= 0.5 && f <= 0.62));
    tc "fig1 covers the BDD-and-Boolean-algebra areas" (fun () ->
        let rows = M.Concept_map.fig1_rows in
        check Alcotest.bool "URP present" true
          (List.mem_assoc "Unate recursive paradigm" rows);
        check Alcotest.bool "biggest first" true
          (match rows with
          | (_, a) :: (_, b) :: _ -> a >= b
          | _ -> false));
    tc "areas partition the concepts" (fun () ->
        let total =
          List.fold_left
            (fun acc a -> acc + List.length (M.Concept_map.by_area a))
            0 M.Concept_map.areas
        in
        check Alcotest.int "every concept in an area" 102 total);
    tc "fig1 renders" (fun () ->
        check Alcotest.bool "non-empty" true
          (String.length (M.Concept_map.render_fig1 ()) > 100));
  ]

let syllabus_tests =
  [
    tc "paper invariants: 69 videos, ~17h, 615 slides" (fun () ->
        check Alcotest.int "videos" 69 M.Syllabus.total_videos;
        check Alcotest.int "minutes" 1020 M.Syllabus.total_minutes;
        check Alcotest.int "slides" 615 M.Syllabus.total_slides;
        check Alcotest.bool "avg ~15min" true
          (abs_float (M.Syllabus.average_minutes -. 15.0) < 1.0));
    tc "eight topic weeks plus tutorials" (fun () ->
        check Alcotest.int "nine groups" 9 (List.length M.Syllabus.week_titles);
        List.iter
          (fun w ->
            check Alcotest.bool
              (Printf.sprintf "week %d non-empty" w)
              true
              (M.Syllabus.by_week w <> []))
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
    tc "video lengths plausible for download" (fun () ->
        List.iter
          (fun v ->
            check Alcotest.bool "8..28 minutes" true
              (v.M.Syllabus.minutes >= 8 && v.M.Syllabus.minutes <= 28))
          M.Syllabus.videos);
    tc "fig2 renders" (fun () ->
        check Alcotest.bool "non-empty" true
          (String.length (M.Syllabus.render_fig2 ()) > 500));
  ]

let within pct reference value =
  let r = float_of_int reference and v = float_of_int value in
  abs_float (v -. r) <= pct /. 100.0 *. r

let cohort_tests =
  [
    tc "funnel matches the paper within sampling noise" (fun () ->
        let f =
          M.Cohort.funnel_of (M.Cohort.simulate ~seed:1 M.Cohort.paper_params)
        in
        let p = M.Cohort.paper_funnel in
        check Alcotest.int "registered exactly" p.M.Cohort.registered
          f.M.Cohort.registered;
        check Alcotest.bool "watched" true
          (within 5.0 p.M.Cohort.watched_video f.M.Cohort.watched_video);
        check Alcotest.bool "homework" true
          (within 10.0 p.M.Cohort.did_homework f.M.Cohort.did_homework);
        check Alcotest.bool "software" true
          (within 20.0 p.M.Cohort.tried_software f.M.Cohort.tried_software);
        check Alcotest.bool "final" true
          (within 15.0 p.M.Cohort.took_final f.M.Cohort.took_final);
        check Alcotest.bool "certs" true
          (within 20.0 p.M.Cohort.certificates f.M.Cohort.certificates));
    tc "funnel is monotone" (fun () ->
        let f =
          M.Cohort.funnel_of (M.Cohort.simulate ~seed:2 M.Cohort.paper_params)
        in
        check Alcotest.bool "ordering" true
          (f.M.Cohort.registered >= f.M.Cohort.watched_video
          && f.M.Cohort.watched_video >= f.M.Cohort.did_homework
          && f.M.Cohort.did_homework >= f.M.Cohort.tried_software
          && f.M.Cohort.did_homework >= f.M.Cohort.took_final
          && f.M.Cohort.took_final >= f.M.Cohort.certificates));
    tc "viewer curve matches Fig. 9's anchors" (fun () ->
        let ps = M.Cohort.simulate ~seed:3 M.Cohort.paper_params in
        let v = M.Cohort.viewers_per_video ps in
        check Alcotest.int "69 videos" 69 (Array.length v);
        check Alcotest.bool "v1 ~ 7000" true (v.(0) > 6700 && v.(0) < 7700);
        check Alcotest.bool "mid ~ 5000" true (v.(9) > 4400 && v.(9) < 5800);
        check Alcotest.bool "v69 ~ 2000" true (v.(68) > 1700 && v.(68) < 2600));
    tc "viewer curve never increases" (fun () ->
        let v =
          M.Cohort.viewers_per_video
            (M.Cohort.simulate ~seed:4 M.Cohort.paper_params)
        in
        for i = 0 to 67 do
          if v.(i) < v.(i + 1) then Alcotest.failf "increase at %d" i
        done);
    tc "deterministic for a seed" (fun () ->
        let a = M.Cohort.simulate ~seed:5 M.Cohort.paper_params in
        let b = M.Cohort.simulate ~seed:5 M.Cohort.paper_params in
        check Alcotest.bool "identical" true
          (M.Cohort.funnel_of a = M.Cohort.funnel_of b));
    tc "participant journeys are internally consistent" (fun () ->
        let ps = M.Cohort.simulate ~seed:6 M.Cohort.paper_params in
        List.iter
          (fun (p : M.Cohort.participant) ->
            if p.M.Cohort.did_homework && p.M.Cohort.watched = 0 then
              Alcotest.fail "homework without watching";
            if p.M.Cohort.tried_software && not p.M.Cohort.did_homework then
              Alcotest.fail "software without homework";
            if p.M.Cohort.certificate && not p.M.Cohort.took_final then
              Alcotest.fail "certificate without final")
          ps);
    tc "renders" (fun () ->
        let ps = M.Cohort.simulate ~seed:7 M.Cohort.paper_params in
        check Alcotest.bool "fig8" true
          (String.length (M.Cohort.render_fig8 (M.Cohort.funnel_of ps)) > 50);
        check Alcotest.bool "fig9" true
          (String.length (M.Cohort.render_fig9 (M.Cohort.viewers_per_video ps))
          > 500));
  ]

let demographics_tests =
  [
    tc "summary matches the paper's bullets" (fun () ->
        let s = M.Demographics.summarize (M.Demographics.sample ~seed:1 17_500) in
        check Alcotest.bool "mean age ~30" true
          (s.M.Demographics.mean_age > 28.0 && s.M.Demographics.mean_age < 31.5);
        check Alcotest.int "min age" 15 s.M.Demographics.min_age;
        check Alcotest.bool "max age ~75" true (s.M.Demographics.max_age >= 70);
        check Alcotest.bool "30% bachelors" true
          (abs_float (s.M.Demographics.pct_bachelors -. 30.0) < 2.0);
        check Alcotest.bool "29% ms/phd" true
          (abs_float (s.M.Demographics.pct_ms_phd -. 29.0) < 2.0);
        check Alcotest.bool "88% male" true
          (abs_float (s.M.Demographics.pct_male -. 88.0) < 2.0));
    tc "US and India in the top band, as in Fig. 10" (fun () ->
        let s = M.Demographics.summarize (M.Demographics.sample ~seed:2 17_500) in
        let pct c =
          100.0
          *. float_of_int (List.assoc c s.M.Demographics.by_country)
          /. float_of_int s.M.Demographics.n
        in
        check Alcotest.string "US top band" "10.01 - 30%"
          (M.Demographics.fig10_band (pct "United States"));
        check Alcotest.string "India top band" "10.01 - 30%"
          (M.Demographics.fig10_band (pct "India"));
        check Alcotest.string "Brazil mid band" "2.51 - 5%"
          (M.Demographics.fig10_band (pct "Brazil")));
    tc "band edges" (fun () ->
        check Alcotest.string "zero" "0%" (M.Demographics.fig10_band 0.0);
        check Alcotest.string "tiny" "0.01 - 1%" (M.Demographics.fig10_band 0.5);
        check Alcotest.string "edge 2.5" "1.01 - 2.5%"
          (M.Demographics.fig10_band 2.5);
        check Alcotest.string "big" "10.01 - 30%" (M.Demographics.fig10_band 29.7));
    tc "shares sum to one" (fun () ->
        let total =
          List.fold_left (fun acc (_, s) -> acc +. s) 0.0
            M.Demographics.country_shares
        in
        check (Alcotest.float 1e-9) "normalized" 1.0 total);
    tc "renders" (fun () ->
        let s = M.Demographics.summarize (M.Demographics.sample ~seed:3 2000) in
        check Alcotest.bool "fig10" true
          (String.length (M.Demographics.render_fig10 s) > 100);
        check Alcotest.bool "stats" true
          (String.length (M.Demographics.render_stats s) > 50));
  ]

let survey_tests =
  [
    tc "mined words reflect the Fig. 11 themes" (fun () ->
        let freqs =
          M.Survey.word_frequencies (M.Survey.generate_responses ~seed:1 600)
        in
        let words = List.map fst freqs in
        List.iter
          (fun w ->
            check Alcotest.bool (w ^ " present") true (List.mem w words))
          [ "verilog"; "timing"; "design"; "synthesis"; "power"; "test" ]);
    tc "stopwords filtered" (fun () ->
        let freqs =
          M.Survey.word_frequencies (M.Survey.generate_responses ~seed:2 100)
        in
        List.iter
          (fun (w, _) ->
            if List.mem w M.Survey.stopwords then
              Alcotest.failf "stopword %s leaked" w)
          freqs);
    tc "frequencies are sorted descending" (fun () ->
        let freqs =
          M.Survey.word_frequencies (M.Survey.generate_responses ~seed:3 200)
        in
        let rec sorted = function
          | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
          | [ _ ] | [] -> true
        in
        check Alcotest.bool "sorted" true (sorted freqs));
    tc "punctuation and case normalized" (fun () ->
        let freqs = M.Survey.word_frequencies [ "FPGA, fpga! (fpga)" ] in
        check Alcotest.(option int) "merged" (Some 3)
          (List.assoc_opt "fpga" freqs));
    tc "render caps at top words" (fun () ->
        let freqs =
          M.Survey.word_frequencies (M.Survey.generate_responses ~seed:4 300)
        in
        let s = M.Survey.render_fig11 ~top:5 freqs in
        (* header + 5 rows *)
        check Alcotest.int "six lines" 6
          (List.length
             (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))));
  ]

(* submit and collapse to the display string - these tests assert on
   output text, not on the outcome constructors *)
let psubmit s tool input =
  M.Portal.outcome_output (M.Portal.submit_result s tool input)

let portal_tests =
  [
    tc "all five paper tools are deployed" (fun () ->
        check Alcotest.int "five" 5 (List.length M.Portal.all_tools);
        List.iter
          (fun name ->
            check Alcotest.bool name true (M.Portal.find_tool name <> None))
          [ "kbdd"; "espresso"; "sis"; "minisat"; "axb" ]);
    tc "kbdd portal runs scripts" (fun () ->
        let s = M.Portal.create_session () in
        let out = psubmit s M.Portal.kbdd "boolean a b\nf = a & b\nsize f" in
        check Alcotest.bool "answers" true (String.length out > 0));
    tc "espresso portal minimizes and round-trips" (fun () ->
        let s = M.Portal.create_session () in
        let out =
          psubmit s M.Portal.espresso
            ".i 2\n.o 1\n11 1\n10 1\n01 1\n00 1\n.e\n"
        in
        let pla = Vc_two_level.Pla.parse out in
        check Alcotest.int "tautology is one row" 1
          (Vc_cube.Cover.num_cubes pla.Vc_two_level.Pla.on_sets.(0)));
    tc "espresso portal enforces the runaway guard" (fun () ->
        let s = M.Portal.create_session () in
        let out =
          psubmit s M.Portal.espresso ".i 20\n.o 1\n11111111111111111111 1\n.e\n"
        in
        check Alcotest.bool "rejected" true
          (String.length out >= 6 && String.sub out 0 6 = "error:"));
    tc "sis portal optimizes BLIF with a script" (fun () ->
        let s = M.Portal.create_session () in
        let input =
          ".model m\n.inputs a b c d\n.outputs x\n.names a b c d x\n\
           11-- 1\n1-1- 1\n%script\nsweep\nsimplify\nprint_stats\n"
        in
        let out = psubmit s M.Portal.sis input in
        check Alcotest.bool "produced a log and a BLIF" true
          (String.length out > 0);
        (* the output's BLIF section must reparse to an equivalent network *)
        let blif_start =
          let lines = String.split_on_char '\n' out in
          let rec from = function
            | [] -> []
            | l :: rest ->
              if String.length l >= 6 && String.sub l 0 6 = ".model" then l :: rest
              else from rest
          in
          String.concat "\n" (from lines)
        in
        let reparsed = Vc_network.Blif.parse blif_start in
        check Alcotest.int "one output" 1
          (List.length (Vc_network.Network.outputs reparsed)));
    tc "minisat portal solves" (fun () ->
        let s = M.Portal.create_session () in
        let out = psubmit s M.Portal.minisat "p cnf 1 2\n1 0\n-1 0\n" in
        check Alcotest.bool "unsat" true
          (String.length out >= 13 && String.sub out 0 13 = "UNSATISFIABLE"));
    tc "axb portal solves" (fun () ->
        let s = M.Portal.create_session () in
        let out = psubmit s M.Portal.axb "n 1\nrow 2\nrhs 6\n" in
        check Alcotest.bool "x0 = 3" true
          (String.length out > 5 && String.sub out 0 6 = "x0 = 3"));
    tc "errors come back as text, never exceptions" (fun () ->
        let s = M.Portal.create_session () in
        List.iter
          (fun tool ->
            let out = psubmit s tool "complete nonsense $$$" in
            check Alcotest.bool "text" true (String.length out > 0))
          M.Portal.all_tools);
    tc "history accumulates per tool" (fun () ->
        let s = M.Portal.create_session () in
        ignore (psubmit s M.Portal.axb "n 1\nrow 1\nrhs 1\n");
        ignore (psubmit s M.Portal.axb "n 1\nrow 2\nrhs 2\n");
        ignore (psubmit s M.Portal.kbdd "boolean a\n");
        check Alcotest.int "two axb runs" 2
          (List.length (M.Portal.history s M.Portal.axb));
        check Alcotest.int "one kbdd run" 1
          (List.length (M.Portal.history s M.Portal.kbdd));
        check Alcotest.int "sis untouched" 0
          (List.length (M.Portal.history s M.Portal.sis)));
    tc "oversized input rejected with the limit in the message" (fun () ->
        let s = M.Portal.create_session () in
        let big = String.concat "\n" (List.init 3000 (fun _ -> "boolean a")) in
        let out = psubmit s M.Portal.kbdd big in
        check Alcotest.bool "rejected" true
          (String.length out >= 6 && String.sub out 0 6 = "error:"));
  ]

let grader_tests =
  [
    tc "reference solutions earn full credit" (fun () ->
        List.iter
          (fun p ->
            let g =
              M.Autograder.grade p.M.Projects.p_grader (p.M.Projects.p_reference ())
            in
            check Alcotest.int
              (Printf.sprintf "project %d" p.M.Projects.p_id)
              g.M.Autograder.possible g.M.Autograder.earned)
          M.Projects.all);
    tc "empty submissions earn zero" (fun () ->
        List.iter
          (fun p ->
            let g = M.Autograder.grade p.M.Projects.p_grader "" in
            check Alcotest.int
              (Printf.sprintf "project %d" p.M.Projects.p_id)
              0 g.M.Autograder.earned)
          M.Projects.all);
    tc "graders never raise on malformed input" (fun () ->
        List.iter
          (fun p ->
            List.iter
              (fun garbage ->
                ignore (M.Autograder.grade p.M.Projects.p_grader garbage))
              [ "%$#@!"; "complement\nend"; "net\n0 0"; "place x"; "repair" ])
          M.Projects.all);
    tc "project 1 rejects a wrong complement" (fun () ->
        let wrong = "complement and2\n--\nend\n" in
        let g = M.Autograder.grade M.Projects.project1.M.Projects.p_grader wrong in
        let unit_ =
          List.find
            (fun u -> u.M.Autograder.ur_name = "complement(and2)")
            g.M.Autograder.units
        in
        check Alcotest.bool "failed" false unit_.M.Autograder.ur_passed);
    tc "project 1 tautology answers are graded" (fun () ->
        let g =
          M.Autograder.grade M.Projects.project1.M.Projects.p_grader
            "tautology t_yes yes\ntautology t_no yes\n"
        in
        let passed name =
          (List.find (fun u -> u.M.Autograder.ur_name = name) g.M.Autograder.units)
            .M.Autograder.ur_passed
        in
        check Alcotest.bool "t_yes ok" true (passed "tautology(t_yes)");
        check Alcotest.bool "t_no wrong" false (passed "tautology(t_no)"));
    tc "project 2 distinguishes NONE correctly" (fun () ->
        let g =
          M.Autograder.grade M.Projects.project2.M.Projects.p_grader
            "repair gate_or NONE\nrepair no_fix NONE\n"
        in
        let passed name =
          (List.find (fun u -> u.M.Autograder.ur_name = name) g.M.Autograder.units)
            .M.Autograder.ur_passed
        in
        check Alcotest.bool "gate_or has a repair" false (passed "repair(gate_or)");
        check Alcotest.bool "no_fix really has none" true (passed "repair(no_fix)"));
    tc "project 3 catches overlapping placements" (fun () ->
        (* all cells at the same point: must fail the legality unit *)
        let tiny = Vc_place.Netgen.generate ~seed:101 Vc_place.Netgen.tiny in
        let stacked = Vc_place.Pnet.center_placement tiny in
        let body = Vc_place.Pnet.placement_to_string tiny stacked in
        let submission = "design tiny\n" ^ body in
        let g = M.Autograder.grade M.Projects.project3.M.Projects.p_grader submission in
        let legal_unit =
          List.find
            (fun u -> u.M.Autograder.ur_name = "legal(tiny)")
            g.M.Autograder.units
        in
        check Alcotest.bool "overlap detected" false legal_unit.M.Autograder.ur_passed);
    tc "project 4 catches discontiguous paths" (fun () ->
        let broken = "problem short_horizontal\nnet a\n0 1 1\n0 4 1\n0 6 1\nendnet\n" in
        let g = M.Autograder.grade M.Projects.project4.M.Projects.p_grader broken in
        let legal_unit =
          List.find
            (fun u -> u.M.Autograder.ur_name = "legal(short_horizontal)")
            g.M.Autograder.units
        in
        check Alcotest.bool "rejected" false legal_unit.M.Autograder.ur_passed);
    tc "project 4 catches overlapping nets" (fun () ->
        (* both nets of two_nets_cross routed straight on layer 0: they
           collide at (4,4) *)
        let straight name y_fixed =
          let cells =
            List.init 7 (fun i -> Printf.sprintf "0 %d %d"
                            (if y_fixed then i + 1 else 4)
                            (if y_fixed then 4 else i + 1))
          in
          "net " ^ name ^ "\n" ^ String.concat "\n" cells ^ "\nendnet\n"
        in
        let submission =
          "problem two_nets_cross\n" ^ straight "a" true ^ straight "b" false
        in
        let g = M.Autograder.grade M.Projects.project4.M.Projects.p_grader submission in
        let legal_unit =
          List.find
            (fun u -> u.M.Autograder.ur_name = "legal(two_nets_cross)")
            g.M.Autograder.units
        in
        check Alcotest.bool "overlap detected" false legal_unit.M.Autograder.ur_passed);
    tc "partial credit accumulates unit by unit" (fun () ->
        let p = M.Projects.project2 in
        let g = M.Autograder.grade p.M.Projects.p_grader "repair gate_or OR\n" in
        check Alcotest.int "one unit's points" 5 g.M.Autograder.earned;
        check Alcotest.int "out of all" 20 g.M.Autograder.possible);
    tc "renderings mention pass and fail" (fun () ->
        let p = M.Projects.project2 in
        let g = M.Autograder.grade p.M.Projects.p_grader "repair gate_or OR\n" in
        let text = M.Autograder.render g in
        check Alcotest.bool "has PASS" true
          (String.length text > 0);
        check Alcotest.bool "score line" true
          (String.sub text 0 6 = "score:"));
    tc "fig5 and fig6 render" (fun () ->
        check Alcotest.bool "fig5" true (String.length (M.Projects.render_fig5 ()) > 100);
        check Alcotest.bool "fig6" true (String.length (M.Projects.render_fig6 ()) > 500));
  ]

let flow_tests =
  [
    tc "full flow on a small design" (fun () ->
        let net =
          Vc_network.Network.of_exprs ~inputs:[ "a"; "b"; "c"; "d" ]
            [
              ("x", Vc_cube.Expr.parse "a b + c d");
              ("y", Vc_cube.Expr.parse "a ^ c");
            ]
        in
        let r = M.Flow.run net in
        check Alcotest.bool "equivalent" true r.M.Flow.equivalent;
        check Alcotest.int "fully routed" r.M.Flow.routing.Vc_route.Router.total
          r.M.Flow.routing.Vc_route.Router.completed;
        check Alcotest.bool "wires slow things down" true
          (r.M.Flow.total_delay >= r.M.Flow.gate_delay);
        check Alcotest.bool "synthesis helped or tied" true
          (r.M.Flow.literals_after <= r.M.Flow.literals_before));
    tc "pnet_of_mapping wires gates to pads" (fun () ->
        let net =
          Vc_network.Network.of_exprs ~inputs:[ "a"; "b" ]
            [ ("f", Vc_cube.Expr.parse "a & b") ]
        in
        let m = Vc_techmap.Map.map_network (Vc_techmap.Cell_lib.standard ()) net in
        let pnet = M.Flow.pnet_of_mapping m in
        check Alcotest.bool "cells exist" true (pnet.Vc_place.Pnet.num_cells > 0);
        (* pads: 2 inputs + 1 output *)
        check Alcotest.int "pads" 3 (Array.length pnet.Vc_place.Pnet.pads));
    tc "report renders" (fun () ->
        let net =
          Vc_network.Network.of_exprs ~inputs:[ "a"; "b" ]
            [ ("f", Vc_cube.Expr.parse "a | b") ]
        in
        let r = M.Flow.run net in
        check Alcotest.bool "text" true
          (String.length (M.Flow.report_to_string r) > 100));
    tc "QoR JSON report has one entry per stage" (fun () ->
        let module Json = Vc_util.Json in
        let net =
          Vc_network.Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("f", Vc_cube.Expr.parse "a b + c") ]
        in
        let r = M.Flow.run net in
        let j = Json.parse (M.Flow.qor_to_json ~design:"unit" r) in
        check Alcotest.bool "design" true
          (Json.member "design" j = Some (Json.Str "unit"));
        (match Json.member "total_latency_s" j with
        | Some (Json.Num t) -> check Alcotest.bool "total >= 0" true (t >= 0.0)
        | _ -> Alcotest.fail "no total_latency_s");
        let stages =
          match Json.member "stages" j with
          | Some (Json.Arr l) -> l
          | _ -> Alcotest.fail "no stages array"
        in
        let expected =
          [
            ("synthesis", "literals_after");
            ("mapping", "area");
            ("placement", "hpwl");
            ("routing", "wirelength");
            ("timing", "total_delay");
          ]
        in
        check
          Alcotest.(list string)
          "stage names in flow order" (List.map fst expected)
          (List.map
             (fun s ->
               match Json.member "stage" s with
               | Some (Json.Str n) -> n
               | _ -> Alcotest.fail "stage without a name")
             stages);
        List.iter2
          (fun (name, metric) s ->
            (match Json.member "latency_s" s with
            | Some (Json.Num l) ->
              check Alcotest.bool (name ^ " latency >= 0") true (l >= 0.0)
            | _ -> Alcotest.fail (name ^ ": no latency_s"));
            match Json.member "metrics" s with
            | Some (Json.Obj ms) ->
              check Alcotest.bool (name ^ " carries " ^ metric) true
                (List.mem_assoc metric ms)
            | _ -> Alcotest.fail (name ^ ": no metrics object"))
          expected stages;
        (* the numbers in the report and the record agree *)
        let routing = List.nth stages 3 in
        match
          Option.bind (Json.member "metrics" routing) (Json.member "wirelength")
        with
        | Some wl ->
          check Alcotest.bool "wirelength agrees" true
            (match Json.to_num wl with
            | Some w ->
              int_of_float w = r.M.Flow.routing.Vc_route.Router.wirelength
            | None -> false)
        | None -> Alcotest.fail "no routing wirelength metric");
  ]

let () =
  Alcotest.run "mooc"
    [
      ("concept_map", concept_tests);
      ("syllabus", syllabus_tests);
      ("cohort", cohort_tests);
      ("demographics", demographics_tests);
      ("survey", survey_tests);
      ("portal", portal_tests);
      ("grader", grader_tests);
      ("flow", flow_tests);
    ]
