type video = {
  week : int;
  index : int;
  title : string;
  minutes : int;
  slides : int;
}

let v week index title minutes slides = { week; index; title; minutes; slides }

let videos =
  [
    v 1 1 "Why EDA? The logic-to-layout landscape" 15 9;
    v 1 2 "Boolean functions and Shannon cofactors" 9 9;
    v 1 3 "Boolean difference and sensitivity" 18 7;
    v 1 4 "Quantification: exists and forall" 18 8;
    v 1 5 "Positional cube notation" 11 10;
    v 1 6 "The unate recursive paradigm" 10 10;
    v 1 7 "URP tautology checking" 8 5;
    v 1 8 "URP complement and applications" 13 9;
    v 2 1 "Decision diagrams and reduction rules" 17 11;
    v 2 2 "ROBDDs: canonicity and variable order" 16 6;
    v 2 3 "Building BDDs: the ITE operator" 18 6;
    v 2 4 "ITE implementation: unique and computed tables" 9 7;
    v 2 5 "BDD applications: equivalence and satisfiability" 9 8;
    v 2 6 "CNF, DIMACS and the SAT problem" 13 12;
    v 2 7 "DPLL search and unit propagation" 17 10;
    v 2 8 "Modern CDCL solvers: learning, VSIDS, restarts" 15 8;
    v 3 1 "Two-level forms, implicants and primes" 21 10;
    v 3 2 "Exact minimization: Quine-McCluskey flavor" 10 9;
    v 3 3 "The covering problem" 16 12;
    v 3 4 "Espresso: the EXPAND step" 20 9;
    v 3 5 "Espresso: IRREDUNDANT and essential primes" 14 12;
    v 3 6 "Espresso: REDUCE and iteration" 9 12;
    v 3 7 "Multi-output PLAs" 15 6;
    v 3 8 "Two-level wrap-up and tool demo" 11 11;
    v 4 1 "Boolean networks and literal cost" 16 12;
    v 4 2 "The algebraic model" 15 12;
    v 4 3 "Weak division" 21 7;
    v 4 4 "Kernels and co-kernels" 10 11;
    v 4 5 "Extraction: kernels and cubes" 19 9;
    v 4 6 "Factoring SOPs" 14 11;
    v 4 7 "Node simplification with don't cares" 12 8;
    v 4 8 "A complete multi-level script" 19 11;
    v 5 1 "From networks to gates: the mapping problem" 16 10;
    v 5 2 "Cell libraries and pattern trees" 13 8;
    v 5 3 "Subject graphs in the NAND2/INV basis" 15 6;
    v 5 4 "Tree covering by dynamic programming" 17 8;
    v 5 5 "Min-area mapping worked example" 11 10;
    v 5 6 "Min-delay mapping and the area/delay trade" 14 11;
    v 5 7 "DAGs, fanout and tree boundaries" 11 11;
    v 5 8 "Mapping wrap-up" 11 8;
    v 6 1 "The placement problem and wirelength" 19 6;
    v 6 2 "Half-perimeter wirelength and nets" 15 12;
    v 6 3 "Placement by simulated annealing" 19 8;
    v 6 4 "Annealing moves and schedules" 13 6;
    v 6 5 "Quadratic placement: the clique model" 9 9;
    v 6 6 "Solving the placement equations: Ax=b" 14 12;
    v 6 7 "Recursive bipartition legalization" 9 6;
    v 6 8 "Placement wrap-up and benchmarks" 20 11;
    v 7 1 "The routing problem and grids" 12 10;
    v 7 2 "Lee's algorithm: wavefront expansion" 21 11;
    v 7 3 "Non-unit costs: bends, vias, wrong-way" 20 10;
    v 7 4 "Two-layer routing and preferred directions" 16 11;
    v 7 5 "Multi-point nets: routing trees" 21 6;
    v 7 6 "Net ordering, rip-up and reroute" 20 10;
    v 7 7 "Detailed vs global routing" 15 8;
    v 7 8 "Routing wrap-up" 14 8;
    v 8 1 "Timing graphs and arrival times" 20 6;
    v 8 2 "Required times and slack" 19 7;
    v 8 3 "Critical paths and false paths" 21 11;
    v 8 4 "Logic-level STA worked example" 21 6;
    v 8 5 "Interconnect: RC trees" 10 7;
    v 8 6 "The Elmore delay" 16 7;
    v 8 7 "Wire delay in the flow" 15 8;
    v 8 8 "Course wrap-up: logic to layout" 10 6;
    v 9 1 "Tutorial: the kbdd Boolean calculator" 14 8;
    v 9 2 "Tutorial: espresso on PLA files" 10 8;
    v 9 3 "Tutorial: SIS scripts for multi-level logic" 16 7;
    v 9 4 "Tutorial: miniSAT and DIMACS" 10 12;
    v 9 5 "Tutorial: the Ax=b solver and placement homework" 15 9;
  ]

let week_titles =
  [
    (1, "Computational Boolean Algebra");
    (2, "Formal Verification: BDDs and SAT");
    (3, "Logic Synthesis I: Two-Level");
    (4, "Logic Synthesis II: Multi-Level");
    (5, "Technology Mapping");
    (6, "Placement");
    (7, "Routing");
    (8, "Timing Analysis");
    (9, "Tool Tutorials");
  ]

let total_videos = List.length videos

let total_minutes = List.fold_left (fun acc x -> acc + x.minutes) 0 videos

let total_slides = List.fold_left (fun acc x -> acc + x.slides) 0 videos

let average_minutes = float_of_int total_minutes /. float_of_int total_videos

let by_week w = List.filter (fun x -> x.week = w) videos

let render_fig2 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Fig. 2: week-by-week video lectures (minutes per video)\n";
  List.iter
    (fun (w, title) ->
      Buffer.add_string buf (Printf.sprintf "-- week %d: %s\n" w title);
      List.iter
        (fun x ->
          Buffer.add_string buf
            (Printf.sprintf "  %d.%-2d %2d min %s %s\n" x.week x.index
               x.minutes
               (String.make x.minutes '#')
               x.title))
        (by_week w))
    week_titles;
  Buffer.add_string buf
    (Printf.sprintf
       "total: %d videos, %d minutes (%.1f h), avg %.1f min, %d slides\n"
       total_videos total_minutes
       (float_of_int total_minutes /. 60.0)
       average_minutes total_slides);
  Buffer.contents buf
