(** A kbdd-style Boolean calculator: the scripting language of the course's
    BDD tool portal. Text in, text out (Fig. 4 architecture).

    Commands, one per line ([#] comments):
    {v
    boolean a b c        declare variables, in BDD order
    f = a & b | !c       define a function (may use earlier functions)
    print f              SOP cubes of f
    size f               node count
    sat f                one satisfying assignment
    satcount f           number of satisfying assignments (over declared vars)
    tautology f          is f identically 1?
    equal f g            are two functions the same node?
    support f            variables f depends on
    dot f                graphviz dump of f's DAG
    cofactor g f x 1     g := f with x forced to 1 (or 0)
    exists g f x y       g := exists x,y . f
    forall g f x y       g := forall x,y . f
    compose g f x h      g := f with function h substituted for variable x
    v} *)

type state

val create : unit -> state

val manager : state -> Bdd.man

val lookup : state -> string -> Bdd.t option
(** Defined function by name. *)

val exec_line : state -> string -> string list
(** Execute one command; returns its output lines.
    @raise Failure with a user-facing message on bad commands. *)

val run : state -> string -> string list
(** Execute a whole script; failures are reported inline as
    ["error: ..."] lines and execution continues (portal behaviour). *)

val run_script : string -> string list
(** [run_script text] on a fresh state. *)
