lib/cube/urp.mli: Cover Cube
