let is_blank c = c = ' ' || c = '\t' || c = '\r'

let split_words s =
  let n = String.length s in
  let rec skip i = if i < n && is_blank s.[i] then skip (i + 1) else i in
  let rec word i = if i < n && not (is_blank s.[i]) then word (i + 1) else i in
  let rec loop i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else begin
      let j = word i in
      loop j (String.sub s i (j - i) :: acc)
    end
  in
  loop 0 []

let strip_comment ~comment line =
  match String.index_opt line comment with
  | None -> line
  | Some i -> String.sub line 0 i

let ends_with_backslash s =
  let s = String.trim s in
  String.length s > 0 && s.[String.length s - 1] = '\\'

let drop_backslash s =
  let s = String.trim s in
  String.trim (String.sub s 0 (String.length s - 1))

let logical_lines ?(comment = '#') ?(continuation = true) text =
  let raw = String.split_on_char '\n' text in
  let stripped = List.map (strip_comment ~comment) raw in
  let rec join acc pending = function
    | [] ->
      let acc = match pending with None -> acc | Some p -> p :: acc in
      List.rev acc
    | line :: rest ->
      let line =
        match pending with None -> line | Some p -> p ^ " " ^ line
      in
      if continuation && ends_with_backslash line then
        join acc (Some (drop_backslash line)) rest
      else join (line :: acc) None rest
  in
  join [] None stripped
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

let parse_int ~context s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: expected integer, got %S" context s)

let parse_float ~context s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: expected number, got %S" context s)
