(** Kernighan-Lin bipartitioning: the traditional course's other min-cut
    algorithm, here on the clique-expanded placement netlist (each k-pin
    net contributes weight 1/(k-1) edges between its cells).

    KL swaps *pairs* and needs equal-sized sides, which is why the course
    presents FM as its practical successor; both are provided so the bench
    can compare them. *)

type result = {
  side : bool array;  (** [false] left, [true] right. *)
  cut : int;  (** Hyperedge cut (same metric as {!Fm.cut_size}). *)
  edge_cut : float;  (** Weighted clique-model cut KL actually minimized. *)
  passes : int;
}

val bipartition : ?seed:int -> ?max_passes:int -> Pnet.t -> result
(** Random balanced start, KL passes (best-prefix of a full pairwise swap
    sequence) until no pass improves. Odd cell counts leave one unpaired
    cell on the left. *)
