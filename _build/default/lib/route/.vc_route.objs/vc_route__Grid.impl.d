lib/route/grid.ml: Array
