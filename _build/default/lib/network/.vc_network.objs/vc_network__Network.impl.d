lib/network/network.ml: Array Hashtbl List Option String Vc_cube Vc_two_level
