lib/techmap/subject.ml: Array Hashtbl List Vc_multilevel Vc_network
