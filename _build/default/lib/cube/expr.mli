(** Boolean expressions: the front door of the computational Boolean algebra
    week. An AST with a small concrete syntax, evaluation, truth tables, and
    the Shannon-expansion operators (cofactor, Boolean difference,
    quantification) defined directly on expressions.

    Concrete syntax accepted by {!parse}:
    - variables: identifiers ([a], [x1], [sel_n]);
    - constants [0] and [1];
    - negation: prefix [!] or [~], or postfix ['] ([a'] is NOT a);
    - conjunction: [&] or [*];
    - disjunction: [|] or [+];
    - exclusive or: [^];
    - parentheses.

    Precedence (tightest first): negation, AND, XOR, OR. *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val to_string : t -> string
(** Fully parenthesised round-trippable rendering. *)

val vars : t -> string list
(** Variables in first-appearance order (deterministic). *)

val eval : (string -> bool) -> t -> bool
(** [eval env e] evaluates [e]; [env] must be defined on all of [vars e]. *)

val truth_table : string list -> t -> bool array
(** [truth_table order e] lists [e]'s value for all assignments to [order];
    index [i]'s bit [k] (MSB = first variable of [order]) gives the value of
    variable [k]. Requires [vars e] to be a subset of [order] and
    [List.length order <= 20].
    @raise Invalid_argument otherwise. *)

val equivalent : t -> t -> bool
(** Semantic equivalence over the union of both variable sets. *)

val cofactor : string -> bool -> t -> t
(** [cofactor x v e] is the Shannon cofactor e|_{x=v}, simplified. *)

val boolean_difference : string -> t -> t
(** d e / d x = e|x=1 XOR e|x=0 : true exactly when [e] is sensitive to x. *)

val exists : string -> t -> t
(** Existential quantification (smoothing): e|x=1 OR e|x=0. *)

val forall : string -> t -> t
(** Universal quantification (consensus): e|x=1 AND e|x=0. *)

val simplify : t -> t
(** Constant propagation and local identities; semantics-preserving. *)

val of_minterms : string list -> int list -> t
(** [of_minterms order ms] is the canonical sum of the given minterm indices
    (indexing as in {!truth_table}); [Const false] for the empty list. *)
