(* check_obs: validate the machine-readable observability outputs the
   CLI golden tests produce (trace JSON, journal JSONL, QoR reports,
   --stats text). Exits non-zero with a message on the first violation,
   so a dune (run ...) action can gate on it. *)

module Json = Vc_util.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("check_obs: " ^ s); exit 1) fmt

let read file =
  try In_channel.with_open_text file In_channel.input_all
  with Sys_error msg -> die "%s" msg

let parse file text =
  match Json.parse_result text with
  | Ok v -> v
  | Error msg -> die "%s: %s" file msg

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let jsonl_events file =
  read file
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map (parse file)

(* FILE must contain NEEDLE (used on captured --stats stderr). *)
let check_contains file needle =
  if not (contains (read file) needle) then
    die "%s: expected to find %S" file needle

(* FILE must be a spans_to_json dump with at least one completed span. *)
let check_trace file =
  match Json.member "spans" (parse file (read file)) with
  | Some (Json.Arr (_ :: _)) -> ()
  | Some (Json.Arr []) -> die "%s: no spans recorded" file
  | _ -> die "%s: no spans array" file

(* Every line of FILE must parse as a JSON object (empty file is fine). *)
let check_jsonl file =
  List.iter
    (function Json.Obj _ -> () | _ -> die "%s: line is not an object" file)
    (jsonl_events file)

(* FILE must be a flow journal: per-stage begin/end events present. *)
let check_journal file =
  let events = jsonl_events file in
  if events = [] then die "%s: journal is empty" file;
  let stage_events name =
    List.filter_map
      (fun e ->
        match (Json.member "event" e, Json.member "attrs" e) with
        | Some (Json.Str ev), Some attrs when ev = name ->
          Option.bind (Json.member "stage" attrs) Json.to_str
        | _ -> None)
      events
  in
  let stages = [ "synthesis"; "mapping"; "placement"; "routing"; "timing" ] in
  List.iter
    (fun s ->
      if not (List.mem s (stage_events "stage.begin")) then
        die "%s: missing stage.begin for %s" file s;
      if not (List.mem s (stage_events "stage.end")) then
        die "%s: missing stage.end for %s" file s)
    stages;
  (* sequence numbers must be strictly increasing *)
  let seqs =
    List.filter_map (fun e -> Option.bind (Json.member "seq" e) Json.to_num) events
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | [ _ ] | [] -> true
  in
  if not (monotone seqs) then die "%s: seq numbers not increasing" file

(* FILE must be a flow QoR report: the five stages in order, each with a
   non-negative latency and a non-empty metrics object. *)
let check_qor file =
  let j = parse file (read file) in
  (match Json.member "total_latency_s" j with
  | Some (Json.Num t) when t >= 0.0 -> ()
  | _ -> die "%s: bad total_latency_s" file);
  let stages =
    match Json.member "stages" j with
    | Some (Json.Arr l) -> l
    | _ -> die "%s: no stages array" file
  in
  let expected = [ "synthesis"; "mapping"; "placement"; "routing"; "timing" ] in
  if List.length stages <> List.length expected then
    die "%s: expected %d stages, found %d" file (List.length expected)
      (List.length stages);
  List.iter2
    (fun name s ->
      (match Json.member "stage" s with
      | Some (Json.Str n) when n = name -> ()
      | _ -> die "%s: stage out of order, expected %s" file name);
      (match Json.member "latency_s" s with
      | Some (Json.Num l) when l >= 0.0 -> ()
      | _ -> die "%s: %s: bad latency_s" file name);
      match Json.member "metrics" s with
      | Some (Json.Obj (_ :: _)) -> ()
      | _ -> die "%s: %s: empty metrics" file name)
    expected stages

(* FILE must be a journal with at least one event from COMPONENT. *)
let check_component file component =
  let found =
    List.exists
      (fun e ->
        match Json.member "component" e with
        | Some (Json.Str c) -> c = component
        | _ -> false)
      (jsonl_events file)
  in
  if not found then die "%s: no event from component %S" file component

(* FILE must be a `vcstat summary --format json` document over a
   non-empty journal: positive event total, per-component counts, and
   p50/p90/p99 latency fields under latency.all. *)
let check_vcstat_summary file =
  let j = parse file (read file) in
  (match Json.member "events" j with
  | Some (Json.Num n) when n > 0.0 -> ()
  | _ -> die "%s: bad or zero \"events\"" file);
  (match Json.member "error_rate" j with
  | Some (Json.Num r) when r >= 0.0 && r <= 1.0 -> ()
  | _ -> die "%s: bad \"error_rate\"" file);
  (match Json.member "by_component" j with
  | Some (Json.Obj ((_ :: _) as fields)) ->
    List.iter
      (fun (k, v) ->
        match v with
        | Json.Num n when n > 0.0 -> ()
        | _ -> die "%s: by_component.%s is not a positive count" file k)
      fields
  | _ -> die "%s: no per-component counts" file);
  match Json.member "latency" j with
  | Some lat -> (
    match Json.member "all" lat with
    | Some all ->
      List.iter
        (fun field ->
          match Json.member field all with
          | Some (Json.Num v) when v >= 0.0 -> ()
          | _ -> die "%s: latency.all.%s missing or negative" file field)
        [ "p50_s"; "p90_s"; "p99_s" ]
    | None -> die "%s: no latency.all object" file)
  | None -> die "%s: no latency object" file

(* FILE must be a `vcload -report` document from a clean replay: at
   least one request, no rejections or transport errors, and the full
   latency percentile surface under latency.all. *)
let check_vcload_report file =
  let j = parse file (read file) in
  (match Json.member "total" j with
  | Some (Json.Num n) when n > 0.0 -> ()
  | _ -> die "%s: bad or zero \"total\"" file);
  List.iter
    (fun field ->
      match Json.member field j with
      | Some (Json.Num 0.0) -> ()
      | _ -> die "%s: %S must be 0 in a clean replay" file field)
    [ "rejected"; "errors" ];
  (match Json.member "shed_rate" j with
  | Some (Json.Num r) when r >= 0.0 && r <= 1.0 -> ()
  | _ -> die "%s: bad \"shed_rate\"" file);
  match Json.member "latency" j with
  | Some lat -> (
    match Json.member "all" lat with
    | Some all ->
      List.iter
        (fun field ->
          match Json.member field all with
          | Some (Json.Num v) when v >= 0.0 -> ()
          | _ -> die "%s: latency.all.%s missing or negative" file field)
        [ "p50_s"; "p90_s"; "p99_s"; "max_s" ]
    | None -> die "%s: no latency.all object" file)
  | None -> die "%s: no latency object" file

(* FILE must be a `vcstat request --format json` document from a real
   client+server join: at least one matched request, >= 99% of client
   requests matched by trace id, and a per-phase breakdown carrying the
   queue/cache/execute/reply/wire phases with well-formed percentile
   fields. *)
let check_vcstat_request file =
  let j = parse file (read file) in
  (match Json.member "client_requests" j with
  | Some (Json.Num n) when n > 0.0 -> ()
  | _ -> die "%s: bad or zero \"client_requests\"" file);
  (match Json.member "matched" j with
  | Some (Json.Num n) when n > 0.0 -> ()
  | _ -> die "%s: bad or zero \"matched\"" file);
  (match Json.member "match_rate" j with
  | Some (Json.Num r) when r >= 0.99 && r <= 1.0 -> ()
  | Some (Json.Num r) -> die "%s: match_rate %.4f below the 0.99 floor" file r
  | _ -> die "%s: bad \"match_rate\"" file);
  (match Json.member "phases" j with
  | Some phases ->
    List.iter
      (fun phase ->
        match Json.member phase phases with
        | Some st ->
          List.iter
            (fun field ->
              match Json.member field st with
              | Some (Json.Num v) when v >= 0.0 -> ()
              | _ ->
                die "%s: phases.%s.%s missing or negative" file phase field)
            [ "count"; "p50_s"; "p90_s"; "p99_s"; "max_s" ]
        | None -> die "%s: no phases.%s breakdown" file phase)
      [ "queue"; "cache"; "execute"; "reply"; "wire" ]
  | None -> die "%s: no phases object" file);
  match Json.member "slowest" j with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> die "%s: no slowest timelines" file

(* FILE must be a `vcstat funnel --format json` document with the six
   Fig. 8 stages in order, counts bounded by the first stage. *)
let check_vcstat_funnel file =
  let j = parse file (read file) in
  let stages =
    match Json.member "funnel" j with
    | Some (Json.Arr l) -> l
    | _ -> die "%s: no funnel array" file
  in
  let expected =
    [ "registered"; "watched_video"; "did_homework"; "tried_software";
      "took_final"; "certificates" ]
  in
  if List.length stages <> List.length expected then
    die "%s: expected %d funnel stages, found %d" file (List.length expected)
      (List.length stages);
  let first = ref 0.0 in
  List.iter2
    (fun name s ->
      (match Json.member "stage" s with
      | Some (Json.Str n) when n = name -> ()
      | _ -> die "%s: funnel stage out of order, expected %s" file name);
      match Json.member "count" s with
      | Some (Json.Num c) when c >= 0.0 ->
        if !first = 0.0 then first := c
        else if c > !first then
          die "%s: stage %s count exceeds registered" file name
      | _ -> die "%s: %s: bad count" file name)
    expected stages

(* FILE must be a `vcstat summary --format json` document whose seq
   object reports zero gaps - the lost-segment detector: over the union
   of a run's rotated journal segments the writer's sequence numbers
   are contiguous, so a positive gap count means a segment went
   missing. *)
let check_seq_gaps file =
  let j = parse file (read file) in
  match Json.member "seq" j with
  | Some seq -> (
    (match Json.member "distinct" seq with
    | Some (Json.Num n) when n > 0.0 -> ()
    | _ -> die "%s: seq.distinct missing or zero" file);
    match Json.member "gaps" seq with
    | Some (Json.Num 0.0) -> ()
    | Some (Json.Num g) -> die "%s: %.0f missing journal seq(s)" file g
    | _ -> die "%s: no seq.gaps field" file)
  | None -> die "%s: no seq object" file

(* FILE must be a /varz snapshot from a live, sampled vcserve: valid
   JSON, a telemetry object, and the console's load-bearing series -
   qps with >= 3 points and the queue/reply phase p99s with >= 2. *)
let check_varz file =
  let j = parse file (read file) in
  (match Json.member "telemetry" j with
  | Some (Json.Obj _) -> ()
  | _ -> die "%s: no telemetry object" file);
  let series name =
    match Option.bind (Json.member "series" j) (Json.member name) with
    | Some (Json.Arr pts) -> pts
    | _ -> die "%s: no series %S" file name
  in
  let require name floor =
    let n = List.length (series name) in
    if n < floor then die "%s: series %S has %d point(s), need >= %d" file name n floor
  in
  require "server.qps" 3;
  require "server.phase.queue.p99_ms" 2;
  require "server.phase.reply.p99_ms" 2;
  List.iter
    (fun p ->
      match p with
      | Json.Arr [ Json.Num ts; Json.Num v ] ->
        if ts <= 0.0 || v < 0.0 then die "%s: bad qps point" file
      | _ -> die "%s: malformed series point" file)
    (series "server.qps")

(* FILE must be a `vctop -once` snapshot captured mid-replay: a qps row
   whose max is positive over >= 3 ticks, a queue_depth row with a
   positive high-water mark, and at least one phase row with >= 3
   ticks. *)
let check_vctop file =
  let lines = String.split_on_char '\n' (read file) in
  let tokens l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let field toks key =
    let rec go = function
      | k :: v :: _ when k = key -> float_of_string_opt v
      | _ :: rest -> go rest
      | [] -> None
    in
    go toks
  in
  let row prefix =
    List.find_opt (fun l -> String.starts_with ~prefix l) lines
    |> Option.map tokens
  in
  (match row "qps" with
  | None -> die "%s: no qps row" file
  | Some toks ->
    (match field toks "max" with
    | Some v when v > 0.0 -> ()
    | _ -> die "%s: qps max is not positive" file);
    (match field toks "ticks" with
    | Some n when n >= 3.0 -> ()
    | _ -> die "%s: qps row has fewer than 3 ticks" file));
  (match row "queue_depth" with
  | None -> die "%s: no queue_depth row" file
  | Some toks -> (
    match field toks "hwm" with
    | Some v when v > 0.0 -> ()
    | _ -> die "%s: queue_depth high-water mark is not positive" file));
  let phase_ok =
    List.exists
      (fun l ->
        String.starts_with ~prefix:"phase " l
        &&
        let toks = tokens l in
        (match field toks "p99" with Some v -> v >= 0.0 | None -> false)
        && match field toks "ticks" with Some n -> n >= 3.0 | None -> false)
      lines
  in
  if not phase_ok then die "%s: no phase row with p99 and >= 3 ticks" file

(* FILE must be a `vcstat flame` SVG over a sampled server journal:
   well-formed framing, at least one frame rectangle, and root frames
   covering >= 95%% of sampled ticks (the flamegraph metadata
   comment). *)
let check_flame file =
  let text = read file in
  if not (String.starts_with ~prefix:"<svg" text) then
    die "%s: does not start with <svg" file;
  if not (contains text "</svg>") then die "%s: unterminated svg" file;
  if not (contains text "<rect") then die "%s: no frame rectangles" file;
  let meta_re = "<!-- flamegraph samples=" in
  if not (contains text meta_re) then die "%s: no flamegraph metadata" file;
  (* parse "samples=N root_samples=N ticks=T" out of the comment *)
  let int_after key =
    let kl = String.length key and tl = String.length text in
    let rec find i =
      if i + kl > tl then die "%s: no %s in metadata" file key
      else if String.sub text i kl = key then i + kl
      else find (i + 1)
    in
    let start = find 0 in
    let rec stop i =
      if i < tl && text.[i] >= '0' && text.[i] <= '9' then stop (i + 1) else i
    in
    let e = stop start in
    if e = start then die "%s: empty %s in metadata" file key;
    int_of_string (String.sub text start (e - start))
  in
  let root_samples = int_after "root_samples=" in
  let ticks = int_after "ticks=" in
  if ticks <= 0 then die "%s: flamegraph has no sampled ticks" file;
  if root_samples <= 0 then die "%s: flamegraph has no root samples" file;
  if float_of_int root_samples < 0.95 *. float_of_int ticks then
    die "%s: root frames cover %d sample(s) over %d tick(s), below 95%%" file
      root_samples ticks

let () =
  match Array.to_list Sys.argv with
  | [ _; "contains"; file; needle ] -> check_contains file needle
  | [ _; "trace"; file ] -> check_trace file
  | [ _; "jsonl"; file ] -> check_jsonl file
  | [ _; "journal"; file ] -> check_journal file
  | [ _; "qor"; file ] -> check_qor file
  | [ _; "component"; file; name ] -> check_component file name
  | [ _; "vcstat-summary"; file ] -> check_vcstat_summary file
  | [ _; "seq-gaps"; file ] -> check_seq_gaps file
  | [ _; "vcstat-funnel"; file ] -> check_vcstat_funnel file
  | [ _; "vcstat-request"; file ] -> check_vcstat_request file
  | [ _; "vcload-report"; file ] -> check_vcload_report file
  | [ _; "varz"; file ] -> check_varz file
  | [ _; "vctop"; file ] -> check_vctop file
  | [ _; "flame"; file ] -> check_flame file
  | _ ->
    prerr_endline
      "usage: check_obs {contains FILE NEEDLE | trace FILE | jsonl FILE | \
       journal FILE | qor FILE | component FILE NAME | vcstat-summary FILE \
       | seq-gaps FILE | vcstat-funnel FILE | vcstat-request FILE \
       | vcload-report FILE | varz FILE | vctop FILE | flame FILE}";
    exit 2
