module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover
module Urp = Vc_cube.Urp

type implicant = {
  cube : Cube.t;
  mask : bool array;
}

type cover = {
  num_inputs : int;
  num_outputs : int;
  implicants : implicant list;
}

let of_pla (pla : Pla.t) =
  let table : (string, bool array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun j (on : Cover.t) ->
      List.iter
        (fun c ->
          let key = Cube.to_string c in
          let mask =
            match Hashtbl.find_opt table key with
            | Some m -> m
            | None ->
              let m = Array.make pla.Pla.num_outputs false in
              Hashtbl.add table key m;
              order := key :: !order;
              m
          in
          mask.(j) <- true)
        on.Cover.cubes)
    pla.Pla.on_sets;
  {
    num_inputs = pla.Pla.num_inputs;
    num_outputs = pla.Pla.num_outputs;
    implicants =
      List.rev_map
        (fun key -> { cube = Cube.of_string key; mask = Hashtbl.find table key })
        !order;
  }

let output_cover cover j =
  Cover.make cover.num_inputs
    (List.filter_map
       (fun imp -> if imp.mask.(j) then Some imp.cube else None)
       cover.implicants)

let to_pla (pla : Pla.t) cover =
  let on_sets =
    Array.init cover.num_outputs (fun j -> output_cover cover j)
  in
  { pla with Pla.on_sets }

let check (pla : Pla.t) cover =
  let ok = ref true in
  for j = 0 to cover.num_outputs - 1 do
    let asserted = output_cover cover j in
    let on = pla.Pla.on_sets.(j) and dc = pla.Pla.dc_sets.(j) in
    if
      (not (Urp.cover_contains (Cover.union asserted dc) on))
      || not (Urp.cover_contains (Cover.union on dc) asserted)
    then ok := false
  done;
  !ok

let cube_count cover = List.length cover.implicants

let literal_cost cover =
  List.fold_left
    (fun acc imp ->
      acc + Cube.literal_count imp.cube
      + Array.fold_left (fun a b -> if b then a + 1 else a) 0 imp.mask)
    0 cover.implicants

(* ------------------------------------------------------------------ *)
(* the joint loop                                                       *)
(* ------------------------------------------------------------------ *)

let disjoint_from (off : Cover.t) c =
  List.for_all (fun r -> Cube.is_empty (Cube.intersect c r)) off.Cover.cubes

let expand_implicant offs imp =
  let n = Cube.num_vars imp.cube in
  (* raise input literals while every asserted output stays legal *)
  let feasible c =
    Array.for_all (fun x -> x)
      (Array.mapi
         (fun j asserted -> (not asserted) || disjoint_from offs.(j) c)
         imp.mask)
  in
  let rec raise_inputs c i =
    if i >= n then c
    else begin
      match Cube.get c i with
      | Cube.Both | Cube.Empty -> raise_inputs c (i + 1)
      | Cube.Pos | Cube.Neg ->
        let candidate = Cube.set c i Cube.Both in
        if feasible candidate then raise_inputs candidate (i + 1)
        else raise_inputs c (i + 1)
    end
  in
  let cube = raise_inputs imp.cube 0 in
  (* raise output bits where the expanded cube fits *)
  let mask =
    Array.mapi
      (fun j asserted -> asserted || disjoint_from offs.(j) cube)
      imp.mask
  in
  { cube; mask }

let absorbs a b =
  Cube.contains a.cube b.cube
  && Array.for_all (fun x -> x)
       (Array.mapi (fun j bj -> (not bj) || a.mask.(j)) b.mask)

let expand offs cover =
  let ordered =
    List.sort
      (fun a b -> compare (Cube.literal_count a.cube) (Cube.literal_count b.cube))
      cover.implicants
  in
  let rec go remaining kept =
    match remaining with
    | [] -> List.rev kept
    | imp :: rest ->
      let e = expand_implicant offs imp in
      let rest = List.filter (fun d -> not (absorbs e d)) rest in
      let kept = List.filter (fun d -> not (absorbs e d)) kept in
      go rest (e :: kept)
  in
  { cover with implicants = go ordered [] }

let irredundant (pla : Pla.t) cover =
  (* lower output bits whose cube is covered elsewhere for that output *)
  let arr = Array.of_list cover.implicants in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let imp = arr.(i) in
    for j = 0 to cover.num_outputs - 1 do
      if imp.mask.(j) then begin
        let others =
          List.filter_map
            (fun k ->
              if k <> i && arr.(k).mask.(j) then Some arr.(k).cube else None)
            (List.init n (fun k -> k))
        in
        let context =
          Cover.union (Cover.make cover.num_inputs others) pla.Pla.dc_sets.(j)
        in
        if Urp.cube_in_cover imp.cube context then begin
          let mask = Array.copy imp.mask in
          mask.(j) <- false;
          arr.(i) <- { imp with mask }
        end
      end
    done
  done;
  {
    cover with
    implicants =
      List.filter
        (fun imp -> Array.exists (fun b -> b) imp.mask)
        (Array.to_list arr);
  }

let supercube_of num_inputs cubes =
  match cubes with
  | [] -> None
  | first :: rest ->
    let merged = Array.init num_inputs (fun k -> Cube.get first k) in
    List.iter
      (fun c ->
        for k = 0 to num_inputs - 1 do
          merged.(k) <-
            (match (merged.(k), Cube.get c k) with
            | Cube.Empty, x | x, Cube.Empty -> x
            | Cube.Both, _ | _, Cube.Both -> Cube.Both
            | Cube.Pos, Cube.Pos -> Cube.Pos
            | Cube.Neg, Cube.Neg -> Cube.Neg
            | Cube.Pos, Cube.Neg | Cube.Neg, Cube.Pos -> Cube.Both)
        done)
      rest;
    let lits =
      List.filter_map
        (fun k ->
          match merged.(k) with
          | Cube.Pos -> Some (k, true)
          | Cube.Neg -> Some (k, false)
          | Cube.Both | Cube.Empty -> None)
        (List.init num_inputs (fun k -> k))
    in
    Some (Cube.of_literals num_inputs lits)

(* Sequential reduce: each implicant shrinks against the CURRENT cover, so
   two implicants never abandon a mutually-covered region simultaneously. *)
let reduce (pla : Pla.t) cover =
  let rec go processed = function
    | [] -> List.rev processed
    | imp :: rest ->
      let context_for j =
        let others =
          List.filter_map
            (fun other -> if other.mask.(j) then Some other.cube else None)
            (processed @ rest)
        in
        Cover.union (Cover.make cover.num_inputs others) pla.Pla.dc_sets.(j)
      in
      (* the part only this implicant provides, over its asserted outputs *)
      let needed = ref [] in
      for j = 0 to cover.num_outputs - 1 do
        if imp.mask.(j) then begin
          let own =
            Urp.intersect
              (Cover.make cover.num_inputs [ imp.cube ])
              (Urp.complement (context_for j))
          in
          needed := own.Cover.cubes @ !needed
        end
      done;
      begin
        match supercube_of cover.num_inputs !needed with
        | None -> go processed rest (* fully redundant: drop *)
        | Some cube -> go ({ imp with cube } :: processed) rest
      end
  in
  { cover with implicants = go [] cover.implicants }

let minimize (pla : Pla.t) =
  let offs =
    Array.init pla.Pla.num_outputs (fun j ->
        Urp.complement (Cover.union pla.Pla.on_sets.(j) pla.Pla.dc_sets.(j)))
  in
  let cost c = (cube_count c, literal_cost c) in
  let step c = irredundant pla (expand offs c) in
  let rec loop best iters =
    if iters >= 12 then best
    else begin
      let candidate = step (reduce pla best) in
      if cost candidate < cost best then loop candidate (iters + 1) else best
    end
  in
  let joint = loop (step (of_pla pla)) 0 in
  (* both heuristics are incomparable in general: also run per-output
     Espresso, regroup its rows, and keep whichever costs less *)
  let per_output = step (of_pla (Espresso.minimize_pla pla)) in
  if cost per_output < cost joint then per_output else joint
