lib/place/netgen.mli: Pnet
