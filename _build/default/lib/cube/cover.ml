type t = { num_vars : int; cubes : Cube.t list }

let make n cubes =
  let check c =
    if Cube.num_vars c <> n then
      invalid_arg "Cover.make: cube width mismatch"
  in
  List.iter check cubes;
  { num_vars = n; cubes = List.filter (fun c -> not (Cube.is_empty c)) cubes }

let empty n = { num_vars = n; cubes = [] }

let top n = { num_vars = n; cubes = [ Cube.universe n ] }

let of_strings n strs = make n (List.map Cube.of_string strs)

let to_strings f = List.map Cube.to_string f.cubes

let num_cubes f = List.length f.cubes

let is_empty f = f.cubes = []

let eval f point = List.exists (fun c -> Cube.eval c point) f.cubes

let union a b =
  if a.num_vars <> b.num_vars then invalid_arg "Cover.union: width mismatch";
  { a with cubes = a.cubes @ b.cubes }

let add_cube f c =
  if Cube.num_vars c <> f.num_vars then
    invalid_arg "Cover.add_cube: width mismatch";
  if Cube.is_empty c then f else { f with cubes = c :: f.cubes }

let cofactor f ~var ~value =
  let cubes = List.filter_map (fun c -> Cube.cofactor c ~var ~value) f.cubes in
  { f with cubes }

let cofactor_cube f c =
  let n = f.num_vars in
  let rec apply f i =
    if i >= n then f
    else
      match Cube.get c i with
      | Cube.Pos -> apply (cofactor f ~var:i ~value:true) (i + 1)
      | Cube.Neg -> apply (cofactor f ~var:i ~value:false) (i + 1)
      | Cube.Both -> apply f (i + 1)
      | Cube.Empty -> empty n
  in
  apply f 0

type polarity = Unate_pos | Unate_neg | Binate | Absent

let var_polarity f i =
  let has_pos = ref false and has_neg = ref false in
  let scan c =
    match Cube.get c i with
    | Cube.Pos -> has_pos := true
    | Cube.Neg -> has_neg := true
    | Cube.Both | Cube.Empty -> ()
  in
  List.iter scan f.cubes;
  match (!has_pos, !has_neg) with
  | true, true -> Binate
  | true, false -> Unate_pos
  | false, true -> Unate_neg
  | false, false -> Absent

let is_unate f =
  let rec check i =
    i >= f.num_vars || (var_polarity f i <> Binate && check (i + 1))
  in
  check 0

let most_binate_var f =
  (* count pos/neg literal occurrences per variable in one pass *)
  let pos = Array.make f.num_vars 0 and neg = Array.make f.num_vars 0 in
  let scan c =
    for i = 0 to f.num_vars - 1 do
      match Cube.get c i with
      | Cube.Pos -> pos.(i) <- pos.(i) + 1
      | Cube.Neg -> neg.(i) <- neg.(i) + 1
      | Cube.Both | Cube.Empty -> ()
    done
  in
  List.iter scan f.cubes;
  let best = ref None in
  for i = 0 to f.num_vars - 1 do
    if pos.(i) > 0 && neg.(i) > 0 then begin
      let total = pos.(i) + neg.(i) in
      let balance = -abs (pos.(i) - neg.(i)) in
      let key = (total, balance) in
      match !best with
      | Some (best_key, _) when best_key >= key -> ()
      | _ -> best := Some (key, i)
    end
  done;
  Option.map snd !best

let has_universe_cube f =
  List.exists (fun c -> Cube.literal_count c = 0) f.cubes

let single_cube_containment f =
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let contained_elsewhere =
        List.exists (fun d -> not (Cube.equal c d) && Cube.contains d c) rest
        || List.exists (fun d -> Cube.contains d c) acc
      in
      if contained_elsewhere then keep acc rest else keep (c :: acc) rest
  in
  { f with cubes = keep [] f.cubes }

let truth_table f =
  let n = f.num_vars in
  if n > 20 then invalid_arg "Cover.truth_table: too many variables";
  let rows = 1 lsl n in
  Array.init rows (fun row ->
      let point = Array.init n (fun i -> row land (1 lsl (n - 1 - i)) <> 0) in
      eval f point)

let of_expr order e =
  let n = List.length order in
  let tt = Expr.truth_table order e in
  let cubes = ref [] in
  Array.iteri
    (fun row v ->
      if v then begin
        let lits =
          List.init n (fun i -> (i, row land (1 lsl (n - 1 - i)) <> 0))
        in
        cubes := Cube.of_literals n lits :: !cubes
      end)
    tt;
  make n (List.rev !cubes)

let to_expr order f =
  let order = Array.of_list order in
  if Array.length order <> f.num_vars then
    invalid_arg "Cover.to_expr: order length mismatch";
  let cube_expr c =
    let lits =
      List.filter_map
        (fun i ->
          match Cube.get c i with
          | Cube.Pos -> Some (Expr.Var order.(i))
          | Cube.Neg -> Some (Expr.Not (Var order.(i)))
          | Cube.Both -> None
          | Cube.Empty -> Some (Expr.Const false))
        (List.init f.num_vars (fun i -> i))
    in
    match lits with
    | [] -> Expr.Const true
    | first :: rest -> List.fold_left (fun a b -> Expr.And (a, b)) first rest
  in
  match f.cubes with
  | [] -> Expr.Const false
  | first :: rest ->
    List.fold_left
      (fun acc c -> Expr.Or (acc, cube_expr c))
      (cube_expr first) rest

let minterms f =
  let tt = truth_table f in
  let out = ref [] in
  Array.iteri (fun i v -> if v then out := i :: !out) tt;
  List.rev !out

let equivalent a b =
  a.num_vars = b.num_vars && truth_table a = truth_table b
