module JQ = Vc_util.Journal_query

type config = {
  lg_host : string;
  lg_port : int;
  lg_clients : int;
  lg_spec : Trace.spec;
  lg_time_scale : float;
}

type report = {
  rp_seed : int;
  rp_trace_scheme : string;
  rp_offered_rps : float;
  rp_achieved_rps : float;
  rp_wall_s : float;
  rp_clients : int;
  rp_total : int;
  rp_executed : int;
  rp_cache_hit : int;
  rp_rejected : int;
  rp_rejected_by_label : (string * int) list;
  rp_errors : int;
  rp_shed_rate : float;
  rp_latency : JQ.latency_stats option;
  rp_by_outcome : (string * JQ.latency_stats) list;
}

(* One client domain's tallies; merged after the join. *)
type partial = {
  mutable p_executed : float list;
  mutable p_cache_hit : float list;
  mutable p_rejected : float list;
  mutable p_labels : (string * int) list;
  mutable p_errors : int;
}

(* cons patterns, not exact lists: a traced reply's status line carries
   a trailing "trace=<id>" operand after the label *)
let classify status =
  match String.split_on_char ' ' status with
  | "OK" :: "executed" :: _ -> `Executed
  | "OK" :: "cache_hit" :: _ -> `Cache_hit
  | "ERR" :: label :: _ -> `Rejected label
  | _ -> `Rejected "protocol"

let bump_label p label =
  p.p_labels <-
    (label, 1 + Option.value ~default:0 (List.assoc_opt label p.p_labels))
    :: List.remove_assoc label p.p_labels

let journal_request ~trace ~tool ~outcome ~latency_s ?reason () =
  let attrs =
    [
      ("trace_id", trace);
      ("tool", tool);
      ("outcome", outcome);
      ("latency_s", Printf.sprintf "%.6f" latency_s);
    ]
    @ match reason with Some r -> [ ("reason", r) ] | None -> []
  in
  Vc_util.Journal.emit ~component:"vcload" ~attrs "replay.request"

(* Replay this client's share of the trace: regenerate the stream,
   skip items belonging to other clients, pace each own item to its
   scheduled wall-clock time, and measure latency from that schedule. *)
let run_client config t0 client_idx =
  let p =
    {
      p_executed = [];
      p_cache_hit = [];
      p_rejected = [];
      p_labels = [];
      p_errors = 0;
    }
  in
  let conn = Wire.Client.connect ~host:config.lg_host ~port:config.lg_port () in
  Fun.protect
    ~finally:(fun () -> Wire.Client.close conn)
    (fun () ->
      Trace.iter config.lg_spec (fun it ->
          if it.Trace.it_seq mod config.lg_clients = client_idx then begin
            let target =
              t0 +. (it.Trace.it_time_s *. config.lg_time_scale)
            in
            let delay = target -. Unix.gettimeofday () in
            if delay > 0.0 then Unix.sleepf delay;
            (* one deterministic trace id per planned submission: any
               replay with the same seed mints the same ids, so client
               and server journals stay joinable after the fact *)
            let trace =
              Vc_util.Trace_ctx.mint_deterministic
                ~seed:config.lg_spec.Trace.tr_seed ~seq:it.Trace.it_seq
            in
            match
              Wire.Client.submit conn ~session:it.Trace.it_session ~trace
                ~tool:it.Trace.it_tool it.Trace.it_input
            with
            | status, _body ->
              let latency_s = Unix.gettimeofday () -. target in
              (match classify status with
              | `Executed ->
                p.p_executed <- latency_s :: p.p_executed;
                Vc_util.Telemetry.incr "vcload.executed";
                journal_request ~trace ~tool:it.Trace.it_tool
                  ~outcome:"executed" ~latency_s ()
              | `Cache_hit ->
                p.p_cache_hit <- latency_s :: p.p_cache_hit;
                Vc_util.Telemetry.incr "vcload.cache_hit";
                journal_request ~trace ~tool:it.Trace.it_tool
                  ~outcome:"cache_hit" ~latency_s ()
              | `Rejected label ->
                p.p_rejected <- latency_s :: p.p_rejected;
                bump_label p label;
                Vc_util.Telemetry.incr "vcload.rejected";
                journal_request ~trace ~tool:it.Trace.it_tool
                  ~outcome:"rejected" ~latency_s ~reason:label ())
            | exception (Failure _ | Unix.Unix_error _ | Sys_error _) ->
              p.p_errors <- p.p_errors + 1;
              Vc_util.Telemetry.incr "vcload.errors"
          end));
  p

let run config =
  if config.lg_clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  (* a short runway so every domain is connected before the first item
     comes due *)
  let t0 = Unix.gettimeofday () +. 0.05 in
  let domains =
    List.init config.lg_clients (fun c ->
        Domain.spawn (fun () -> run_client config t0 c))
  in
  let partials = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let executed = List.concat_map (fun p -> p.p_executed) partials in
  let cache_hit = List.concat_map (fun p -> p.p_cache_hit) partials in
  let rejected = List.concat_map (fun p -> p.p_rejected) partials in
  let errors = List.fold_left (fun a p -> a + p.p_errors) 0 partials in
  let labels =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun acc (label, n) ->
            (label, n + Option.value ~default:0 (List.assoc_opt label acc))
            :: List.remove_assoc label acc)
          acc p.p_labels)
      [] partials
  in
  let n_exec = List.length executed
  and n_hit = List.length cache_hit
  and n_rej = List.length rejected in
  let total = n_exec + n_hit + n_rej in
  let all = executed @ cache_hit @ rejected in
  let by_outcome =
    List.filter_map
      (fun (key, samples) ->
        Option.map (fun s -> (key, s)) (JQ.latency_stats_of samples))
      [
        ("cache_hit", cache_hit); ("executed", executed); ("rejected", rejected);
      ]
  in
  let avg_rate =
    float_of_int (Trace.expected_items config.lg_spec)
    /. Float.max config.lg_spec.Trace.tr_duration_s 1e-9
  in
  {
    rp_seed = config.lg_spec.Trace.tr_seed;
    rp_trace_scheme = Vc_util.Trace_ctx.scheme;
    rp_offered_rps = avg_rate /. Float.max config.lg_time_scale 1e-9;
    rp_achieved_rps =
      (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    rp_wall_s = wall_s;
    rp_clients = config.lg_clients;
    rp_total = total;
    rp_executed = n_exec;
    rp_cache_hit = n_hit;
    rp_rejected = n_rej;
    rp_rejected_by_label = List.sort compare labels;
    rp_errors = errors;
    rp_shed_rate =
      (if total = 0 then 0.0 else float_of_int n_rej /. float_of_int total);
    rp_latency = JQ.latency_stats_of all;
    rp_by_outcome = by_outcome;
  }

let render_report r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "replayed %d request(s) over %d client(s) in %.2f s (offered %.0f \
        rps, achieved %.0f rps)\n"
       r.rp_total r.rp_clients r.rp_wall_s r.rp_offered_rps r.rp_achieved_rps);
  Buffer.add_string b
    (Printf.sprintf "trace ids: seed %d, %s\n" r.rp_seed r.rp_trace_scheme);
  Buffer.add_string b
    (Printf.sprintf
       "outcomes: %d executed, %d cache_hit, %d rejected (shed rate %.2f%%)\n"
       r.rp_executed r.rp_cache_hit r.rp_rejected (100.0 *. r.rp_shed_rate));
  if r.rp_rejected_by_label <> [] then begin
    Buffer.add_string b "rejections by reason:\n";
    List.iter
      (fun (label, n) ->
        Buffer.add_string b (Printf.sprintf "  %-16s %6d\n" label n))
      r.rp_rejected_by_label
  end;
  if r.rp_errors > 0 then
    Buffer.add_string b
      (Printf.sprintf "transport errors: %d\n" r.rp_errors);
  (match r.rp_latency with
  | None -> ()
  | Some all ->
    Buffer.add_string b
      "latency (count / p50 ms / p90 ms / p99 ms / max ms):\n";
    Buffer.add_string b (JQ.render_latency_line "(all)" all);
    List.iter
      (fun (k, st) -> Buffer.add_string b (JQ.render_latency_line k st))
      r.rp_by_outcome);
  Buffer.contents b

let report_to_json r =
  let module Json = Vc_util.Json in
  let latency_json (s : JQ.latency_stats) =
    Json.obj
      [
        ("count", Json.int s.JQ.l_count);
        ("mean_s", Json.num s.JQ.l_mean_s);
        ("p50_s", Json.num s.JQ.l_p50_s);
        ("p90_s", Json.num s.JQ.l_p90_s);
        ("p99_s", Json.num s.JQ.l_p99_s);
        ("max_s", Json.num s.JQ.l_max_s);
      ]
  in
  Json.obj
    [
      (* the reproducibility header: re-running with this seed mints
         the same per-submission trace ids (see trace_scheme) *)
      ("seed", Json.int r.rp_seed);
      ("trace_scheme", Json.str r.rp_trace_scheme);
      ("offered_rps", Json.num r.rp_offered_rps);
      ("achieved_rps", Json.num r.rp_achieved_rps);
      ("wall_s", Json.num r.rp_wall_s);
      ("clients", Json.int r.rp_clients);
      ("total", Json.int r.rp_total);
      ("executed", Json.int r.rp_executed);
      ("cache_hit", Json.int r.rp_cache_hit);
      ("rejected", Json.int r.rp_rejected);
      ( "rejected_by_label",
        Json.obj
          (List.map (fun (k, n) -> (k, Json.int n)) r.rp_rejected_by_label) );
      ("errors", Json.int r.rp_errors);
      ("shed_rate", Json.num r.rp_shed_rate);
      ( "latency",
        match r.rp_latency with
        | Some all ->
          Json.obj
            (("all", latency_json all)
            :: List.map (fun (k, st) -> (k, latency_json st)) r.rp_by_outcome)
        | None -> Json.obj [] );
    ]

let set_slo_gauges r =
  (match r.rp_latency with
  | Some all ->
    Vc_util.Telemetry.set_gauge "loadgen.slo.p99_ms" (1e3 *. all.JQ.l_p99_s)
  | None -> ());
  Vc_util.Telemetry.set_gauge "loadgen.slo.shed_rate" r.rp_shed_rate;
  Vc_util.Telemetry.set_gauge "loadgen.offered_rps" r.rp_offered_rps;
  Vc_util.Telemetry.set_gauge "loadgen.achieved_rps" r.rp_achieved_rps
