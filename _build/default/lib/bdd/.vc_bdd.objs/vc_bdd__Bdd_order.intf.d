lib/bdd/bdd_order.mli: Vc_cube
