(** Legalization: snap a continuous (global) placement onto non-overlapping
    grid slots, plus the overlap metric the auto-grader checks. *)

val to_grid : Pnet.t -> Pnet.placement -> Pnet.placement
(** Row-based: cells are bucketed into [ceil(sqrt n)] rows by y order, then
    spread across each row by x order at slot centers. Preserves relative
    order, guarantees one cell per slot. *)

val overlap_count : ?min_sep:float -> Pnet.t -> Pnet.placement -> int
(** Pairs of cells closer than [min_sep] (default 0.5 slot pitch) in both
    axes. 0 after {!to_grid}. *)

val inside_core : Pnet.t -> Pnet.placement -> bool

val refine : ?max_passes:int -> Pnet.t -> Pnet.placement -> Pnet.placement * int
(** Detailed placement: greedy position-swap improvement over a legalized
    placement (all cell pairs connected by a shared net, plus neighbours
    in slot order). Swapping positions keeps legality. Returns the refined
    placement and the number of improving swaps applied. *)
