(** BDD-based formal network repair (software project 2).

    The setting from the lectures: a combinational network disagrees with
    its specification, and one suspect 2-input gate has been identified.
    Replace the suspect gate by a "hole" whose truth table is four unknown
    Boolean variables d00, d01, d10, d11 (duv = output when the hole's
    inputs are u,v). Build the miter of the patched network against the
    spec, then universally quantify the primary inputs:

      Repair(d) = forall inputs . (patched(x, d) == spec(x))

    Any satisfying assignment of Repair gives a truth table - i.e. a gate -
    that fixes the network for all inputs. *)

type gate_table = {
  d00 : bool;
  d01 : bool;
  d10 : bool;
  d11 : bool;
}
(** Truth table of a 2-input gate: output at (u,v) = (0,0), (0,1), (1,0),
    (1,1). *)

val gate_name : gate_table -> string
(** Conventional name when the table is a standard gate ("AND", "NAND",
    "OR", "NOR", "XOR", "XNOR", "BUF(a)", "NOT(a)", "BUF(b)", "NOT(b)",
    "ZERO", "ONE"), or the raw table as ["TABLE:abcd"]. *)

val repair_2input :
  inputs:string list ->
  spec:Vc_cube.Expr.t ->
  build:(Bdd.man -> hole:(Bdd.t -> Bdd.t -> Bdd.t) -> Bdd.t) ->
  gate_table list
(** [repair_2input ~inputs ~spec ~build] returns every 2-input gate that
    repairs the network. [build m ~hole] must construct the suspect
    network's output in manager [m], calling [hole u v] exactly where the
    suspect gate was. [inputs] are the primary input names (shared with
    [spec]). Empty result means no single-gate repair at that location
    exists. *)

val repairable : inputs:string list -> spec:Vc_cube.Expr.t ->
  build:(Bdd.man -> hole:(Bdd.t -> Bdd.t -> Bdd.t) -> Bdd.t) -> bool
