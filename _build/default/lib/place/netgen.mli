(** Synthetic benchmark netlists with MCNC-like size profiles.

    The paper's projects used the classical MCNC standard-cell suite
    [Fig. 7]; those files are not redistributable here, so this generator
    produces deterministic netlists whose cell, net, pad and pin-count
    statistics match the published MCNC numbers, with Rent-style locality
    in the connectivity (see DESIGN.md substitution table). *)

type profile = {
  p_name : string;
  cells : int;
  nets : int;
  pads : int;
  avg_pins : float;  (** Mean pins per net (>= 2). *)
}

val mcnc_profiles : profile list
(** fract, prim1, struct, prim2, ind1 - small to extra-credit sizes. *)

val tiny : profile
(** 12 cells: homework-scale. *)

val by_name : string -> profile option

val generate : seed:int -> profile -> Pnet.t
(** Deterministic in [seed]; pads ring the core, net pins are drawn with
    locality around a randomly chosen center cell, and every cell appears
    in at least one net. *)
