lib/place/annealing.mli: Pnet
