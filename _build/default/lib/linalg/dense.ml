type t = { r : int; c : int; data : float array }

let create ~rows ~cols = { r = rows; c = cols; data = Array.make (rows * cols) 0.0 }

let of_rows arr =
  let r = Array.length arr in
  if r = 0 then invalid_arg "Dense.of_rows: empty";
  let c = Array.length arr.(0) in
  Array.iter
    (fun row -> if Array.length row <> c then invalid_arg "Dense.of_rows: ragged")
    arr;
  let m = create ~rows:r ~cols:c in
  Array.iteri (fun i row -> Array.blit row 0 m.data (i * c) c) arr;
  m

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j v = m.data.((i * m.c) + j) <- v
let copy m = { m with data = Array.copy m.data }

let mat_vec m x =
  if Array.length x <> m.c then invalid_arg "Dense.mat_vec: shape mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let transpose m =
  let t = create ~rows:m.c ~cols:m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      set t j i (get m i j)
    done
  done;
  t

let mul a b =
  if a.c <> b.r then invalid_arg "Dense.mul: shape mismatch";
  let m = create ~rows:a.r ~cols:b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.c - 1 do
          set m i j (get m i j +. (aik *. get b k j))
        done
    done
  done;
  m

let solve a b =
  if a.r <> a.c then invalid_arg "Dense.solve: matrix not square";
  if Array.length b <> a.r then invalid_arg "Dense.solve: shape mismatch";
  let n = a.r in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for i = col + 1 to n - 1 do
      if abs_float (get m i col) > abs_float (get m !pivot col) then pivot := i
    done;
    if abs_float (get m !pivot col) < 1e-12 then
      failwith "Dense.solve: singular matrix";
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    let d = get m col col in
    for i = col + 1 to n - 1 do
      let factor = get m i col /. d in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set m i j (get m i j -. (factor *. get m col j))
        done;
        x.(i) <- x.(i) -. (factor *. x.(col))
      end
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

let residual_norm a x b =
  let ax = mat_vec a x in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. ((v -. b.(i)) ** 2.0)) ax;
  sqrt !acc

let to_string m =
  let buf = Buffer.create 128 in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      Buffer.add_string buf (Printf.sprintf "%10.4f " (get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
