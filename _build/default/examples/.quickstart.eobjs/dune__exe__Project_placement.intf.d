examples/project_placement.mli:
