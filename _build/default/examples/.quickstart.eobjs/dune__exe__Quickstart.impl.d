examples/quickstart.ml: Printf String Vc_bdd Vc_cube Vc_mooc Vc_multilevel Vc_network Vc_sat Vc_techmap Vc_two_level
