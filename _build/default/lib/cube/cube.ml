type field = Empty | Neg | Pos | Both

(* Fields are packed two bits per variable in a bytes value: bit0 = "may be
   0" (complemented form allowed), bit1 = "may be 1" (true form allowed).
   Neg = 01, Pos = 10, Both = 11, Empty = 00.  We store one field per byte
   for simplicity; cubes in this toolkit are small (course-scale). *)
type t = Bytes.t

let field_to_int = function Empty -> 0 | Neg -> 1 | Pos -> 2 | Both -> 3

let field_of_int = function
  | 0 -> Empty
  | 1 -> Neg
  | 2 -> Pos
  | 3 -> Both
  | _ -> assert false

let universe n = Bytes.make n '\003'

let num_vars c = Bytes.length c

let get c i = field_of_int (Char.code (Bytes.get c i))

let set c i f =
  let c' = Bytes.copy c in
  Bytes.set c' i (Char.chr (field_to_int f));
  c'

let of_literals n lits =
  let c = Bytes.copy (universe n) in
  let add (i, positive) =
    let cur = Char.code (Bytes.get c i) in
    let mask = if positive then 2 else 1 in
    Bytes.set c i (Char.chr (cur land mask))
  in
  List.iter add lits;
  c

let of_string s =
  let n = String.length s in
  let c = Bytes.create n in
  let decode ch =
    match ch with
    | '1' -> 2
    | '0' -> 1
    | '-' | 'x' | 'X' | '2' -> 3
    | '@' -> 0
    | _ -> failwith (Printf.sprintf "Cube.of_string: bad character %C" ch)
  in
  String.iteri (fun i ch -> Bytes.set c i (Char.chr (decode ch))) s;
  c

let to_string c =
  String.init (num_vars c) (fun i ->
      match get c i with Empty -> '@' | Neg -> '0' | Pos -> '1' | Both -> '-')

let is_empty c =
  let n = num_vars c in
  let rec check i = i < n && (Bytes.get c i = '\000' || check (i + 1)) in
  check 0

let intersect a b =
  let n = num_vars a in
  assert (num_vars b = n);
  Bytes.init n (fun i ->
      Char.chr (Char.code (Bytes.get a i) land Char.code (Bytes.get b i)))

let contains a b =
  let n = num_vars a in
  assert (num_vars b = n);
  let rec check i =
    i >= n
    ||
    let fa = Char.code (Bytes.get a i) and fb = Char.code (Bytes.get b i) in
    fa land fb = fb && check (i + 1)
  in
  check 0

let cofactor c ~var ~value =
  let needed = if value then 2 else 1 in
  let f = Char.code (Bytes.get c var) in
  if f land needed = 0 then None else Some (set c var Both)

let literal_count c =
  let n = num_vars c in
  let rec count i acc =
    if i >= n then acc
    else
      match get c i with
      | Pos | Neg -> count (i + 1) (acc + 1)
      | Both | Empty -> count (i + 1) acc
  in
  count 0 0

let minterm_count c =
  if is_empty c then 0
  else begin
    let n = num_vars c in
    if n > 62 then invalid_arg "Cube.minterm_count: too many variables";
    let free = n - literal_count c in
    1 lsl free
  end

let eval c point =
  let n = num_vars c in
  assert (Array.length point = n);
  let rec check i =
    i >= n
    ||
    let ok =
      match get c i with
      | Both -> true
      | Pos -> point.(i)
      | Neg -> not point.(i)
      | Empty -> false
    in
    ok && check (i + 1)
  in
  check 0

let complement_literals c =
  let n = num_vars c in
  if is_empty c then [ universe n ]
  else begin
    let lit_cube i f =
      (* one cube per literal of c, with the literal's polarity flipped *)
      match f with
      | Pos -> Some (set (universe n) i Neg)
      | Neg -> Some (set (universe n) i Pos)
      | Both -> None
      | Empty -> assert false
    in
    List.filter_map
      (fun i -> lit_cube i (get c i))
      (List.init n (fun i -> i))
  end

let compare = Bytes.compare

let equal = Bytes.equal
