open Helpers
module T = Vc_util.Telemetry
module Portal = Vc_mooc.Portal

(* Probes register at module-initialization time, which happens when the
   kernel's compilation unit is linked; reference each one so this test
   binary links all four. *)
let () =
  ignore Vc_sat.Solver.stats;
  ignore Vc_bdd.Bdd.stats;
  ignore Vc_route.Maze.stats;
  ignore Vc_place.Annealing.stats

(* ------------------------------------------------------------------ *)
(* a minimal JSON reader, enough to validate the renderers' output     *)
(* without adding a dependency                                         *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let skip_ws () =
    while
      !pos < len
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'u' ->
          advance ();
          advance ();
          advance ();
          advance () (* 3 of 4 hex digits; 4th below *)
        | Some c -> Buffer.add_char b c
        | None -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    Num (float_of_string (String.sub text start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let obj_field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* telemetry core                                                      *)
(* ------------------------------------------------------------------ *)

let telemetry_tests =
  [
    tc "counters create, add and read back" (fun () ->
        T.reset ();
        check Alcotest.int "absent is 0" 0 (T.counter "t.c");
        T.incr "t.c";
        T.incr ~by:4 "t.c";
        check Alcotest.int "1 + 4" 5 (T.counter "t.c");
        check Alcotest.bool "listed" true (List.mem_assoc "t.c" (T.counters ())));
    tc "timers summarize samples" (fun () ->
        T.reset ();
        check Alcotest.bool "absent" true (T.timer "t.t" = None);
        T.observe "t.t" 0.010;
        T.observe "t.t" 0.020;
        T.observe "t.t" 0.030;
        match T.timer "t.t" with
        | None -> Alcotest.fail "timer vanished"
        | Some s ->
          check Alcotest.int "count" 3 s.T.count;
          check (Alcotest.float 1e-9) "total" 0.060 s.T.total_s;
          check (Alcotest.float 1e-9) "p50" 0.020 s.T.p50_s;
          check (Alcotest.float 1e-9) "max" 0.030 s.T.max_s);
    tc "time records one sample per call and returns the value" (fun () ->
        T.reset ();
        let v = T.time "t.f" (fun () -> 41 + 1) in
        check Alcotest.int "value" 42 v;
        ignore (T.time "t.f" (fun () -> 0));
        match T.timer "t.f" with
        | Some s -> check Alcotest.int "two samples" 2 s.T.count
        | None -> Alcotest.fail "no samples");
    tc "time records the sample even when f raises" (fun () ->
        T.reset ();
        (try T.time "t.boom" (fun () -> failwith "boom") with Failure _ -> ());
        match T.timer "t.boom" with
        | Some s -> check Alcotest.int "one sample" 1 s.T.count
        | None -> Alcotest.fail "no sample");
    tc "spans nest into a tree" (fun () ->
        T.reset ();
        let v =
          T.with_span "outer" (fun () ->
              ignore (T.with_span "inner1" (fun () -> 1));
              ignore (T.with_span "inner2" (fun () -> 2));
              7)
        in
        check Alcotest.int "value" 7 v;
        match T.spans () with
        | [ s ] ->
          check Alcotest.string "root" "outer" s.T.span_name;
          check
            Alcotest.(list string)
            "children in order" [ "inner1"; "inner2" ]
            (List.map (fun c -> c.T.span_name) s.T.children)
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "a raising span is recorded with an error attribute" (fun () ->
        T.reset ();
        (try T.with_span "bad" (fun () -> failwith "oops") with Failure _ -> ());
        match T.spans () with
        | [ s ] ->
          check Alcotest.bool "error attr" true (List.mem_assoc "error" s.T.attrs)
        | _ -> Alcotest.fail "expected exactly one root span");
    tc "probes are pulled at render time" (fun () ->
        let v = ref 1 in
        T.register_probe "test.probe" (fun () -> [ ("v", !v) ]);
        let read () = List.assoc "test.probe" (T.probes ()) in
        check Alcotest.(list (pair string int)) "initial" [ ("v", 1) ] (read ());
        v := 5;
        check Alcotest.(list (pair string int)) "updated" [ ("v", 5) ] (read ()));
    tc "kernel probes are registered" (fun () ->
        let names = List.map fst (T.probes ()) in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "sat.solver"; "bdd"; "route.maze"; "place.annealing" ]);
    tc "report mentions counters, timers and probes" (fun () ->
        T.reset ();
        T.incr "report.counter";
        T.observe "report.timer" 0.001;
        let r = T.report () in
        let contains needle =
          let nl = String.length needle and hl = String.length r in
          let rec go i = i + nl <= hl && (String.sub r i nl = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (contains needle))
          [ "report.counter"; "report.timer"; "sat.solver" ]);
    tc "reset clears counters, timers and spans but keeps probes" (fun () ->
        T.incr "gone";
        T.observe "gone.t" 1.0;
        ignore (T.with_span "gone.s" (fun () -> ()));
        T.reset ();
        check Alcotest.int "counter" 0 (T.counter "gone");
        check Alcotest.bool "timer" true (T.timer "gone.t" = None);
        check Alcotest.int "spans" 0 (List.length (T.spans ()));
        check Alcotest.bool "probes kept" true (T.probes () <> []));
  ]

(* ------------------------------------------------------------------ *)
(* JSON renderers                                                      *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    tc "to_json parses and carries the counters" (fun () ->
        T.reset ();
        T.incr ~by:3 "j.count";
        T.observe "j.timer" 0.002;
        let j = parse_json (T.to_json ()) in
        (match obj_field "counters" j with
        | Some (Obj cs) ->
          check Alcotest.bool "counter present" true
            (match List.assoc_opt "j.count" cs with
            | Some (Num 3.0) -> true
            | _ -> false)
        | _ -> Alcotest.fail "no counters object");
        match obj_field "timers" j with
        | Some (Obj ts) ->
          check Alcotest.bool "timer has count" true
            (match List.assoc_opt "j.timer" ts with
            | Some t -> obj_field "count" t = Some (Num 1.0)
            | None -> false)
        | _ -> Alcotest.fail "no timers object");
    tc "spans_to_json parses with nesting and attrs" (fun () ->
        T.reset ();
        ignore
          (T.with_span ~attrs:[ ("k", "v\"quoted\"") ] "root" (fun () ->
               T.with_span "child" (fun () -> ())));
        let j = parse_json (T.spans_to_json ()) in
        match obj_field "spans" j with
        | Some (Arr [ root ]) ->
          check Alcotest.bool "name" true
            (obj_field "name" root = Some (Str "root"));
          (match obj_field "attrs" root with
          | Some (Obj [ ("k", Str s) ]) ->
            check Alcotest.string "escaped attr round-trips" "v\"quoted\"" s
          | _ -> Alcotest.fail "attrs");
          (match obj_field "children" root with
          | Some (Arr [ child ]) ->
            check Alcotest.bool "child name" true
              (obj_field "name" child = Some (Str "child"))
          | _ -> Alcotest.fail "children")
        | _ -> Alcotest.fail "expected one root span");
    tc "cli_parse strips the flags and leaves the rest" (fun () ->
        let argv, stats, trace =
          T.cli_parse
            [| "prog"; "--stats"; "input.txt"; "--trace"; "t.json"; "-x" |]
        in
        check
          Alcotest.(array string)
          "filtered"
          [| "prog"; "input.txt"; "-x" |]
          argv;
        check Alcotest.bool "stats seen" true stats;
        check Alcotest.(option string) "trace file" (Some "t.json") trace);
  ]

(* ------------------------------------------------------------------ *)
(* portal cache + counters                                             *)
(* ------------------------------------------------------------------ *)

(* Each test resets the global telemetry + cache so counts are exact. *)
let fresh () =
  T.reset ();
  Portal.clear_cache ();
  Portal.set_cache_capacity 512;
  Portal.create_session ()

let submits tool = T.counter ("portal." ^ tool ^ ".submits")
let executions tool = T.counter ("portal." ^ tool ^ ".executions")
let hits tool = T.counter ("portal." ^ tool ^ ".cache_hits")

let portal_tests =
  [
    tc "repeat submission is a cache hit with byte-identical output" (fun () ->
        let s = fresh () in
        let input = "boolean a b\nf = a & b\nsatcount f" in
        let out1 = Portal.submit s Portal.kbdd input in
        check Alcotest.int "one execution" 1 (executions "kbdd");
        check Alcotest.int "no hit yet" 0 (hits "kbdd");
        let out2 = Portal.submit s Portal.kbdd input in
        check Alcotest.string "byte-identical" out1 out2;
        check Alcotest.int "still one execution" 1 (executions "kbdd");
        check Alcotest.int "one hit" 1 (hits "kbdd");
        check Alcotest.bool "global stats agree" true
          (Portal.cache_stats () = (1, 1)));
    tc "cache is keyed by tool as well as input" (fun () ->
        let s = fresh () in
        let input = "not a valid anything" in
        ignore (Portal.submit s Portal.kbdd input);
        ignore (Portal.submit s Portal.espresso input);
        check Alcotest.int "kbdd executed" 1 (executions "kbdd");
        check Alcotest.int "espresso executed too" 1 (executions "espresso"));
    tc "counters are monotone across submits" (fun () ->
        let s = fresh () in
        let prev = ref (-1) in
        for i = 1 to 5 do
          ignore
            (Portal.submit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i));
          let now = submits "axb" in
          check Alcotest.bool "monotone" true (now > !prev);
          check Alcotest.int "equals submit count" i now;
          prev := now
        done;
        match T.timer "portal.axb.latency" with
        | Some t -> check Alcotest.int "latency sampled per submit" 5 t.T.count
        | None -> Alcotest.fail "no latency timer");
    tc "runaway rejection counts but does not execute or cache" (fun () ->
        let s = fresh () in
        let big = String.concat "\n" (List.init 3000 (fun _ -> "x")) in
        let out = Portal.submit s Portal.kbdd big in
        check Alcotest.bool "error text" true
          (String.length out >= 5 && String.sub out 0 5 = "error");
        check Alcotest.int "rejected" 1 (T.counter "portal.kbdd.rejected");
        check Alcotest.int "not executed" 0 (executions "kbdd");
        check Alcotest.int "not cached" 0 (Portal.cache_size ()));
    tc "LRU eviction respects the capacity bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 2));
        ignore (Portal.submit s Portal.axb (input 3));
        (* capacity held; input 1 was the stalest and got evicted *)
        check Alcotest.int "bounded" 2 (Portal.cache_size ());
        check Alcotest.int "one eviction" 1
          (T.counter "portal.cache.evictions");
        ignore (Portal.submit s Portal.axb (input 3));
        check Alcotest.int "3 still cached" 1 (hits "axb");
        ignore (Portal.submit s Portal.axb (input 1));
        check Alcotest.int "1 was re-executed" 4 (executions "axb"));
    tc "LRU refreshes recency on hit" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (Portal.submit s Portal.axb (input 1));
        ignore (Portal.submit s Portal.axb (input 2));
        ignore (Portal.submit s Portal.axb (input 1));
        (* touch 1 *)
        ignore (Portal.submit s Portal.axb (input 3));
        (* evicts 2, not 1 *)
        ignore (Portal.submit s Portal.axb (input 1));
        check Alcotest.int "1 stayed cached" 2 (hits "axb");
        ignore (Portal.submit s Portal.axb (input 2));
        check Alcotest.int "2 was re-executed" 4 (executions "axb"));
    tc "capacity 0 disables caching" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 0;
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (Portal.submit s Portal.axb input);
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "executed twice" 2 (executions "axb");
        check Alcotest.int "nothing cached" 0 (Portal.cache_size ()));
    tc "shrinking the capacity evicts down to the bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 8;
        for i = 1 to 6 do
          ignore
            (Portal.submit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i))
        done;
        check Alcotest.int "six cached" 6 (Portal.cache_size ());
        Portal.set_cache_capacity 3;
        check Alcotest.int "evicted to bound" 3 (Portal.cache_size ()));
    tc "cache hits still append to the session history" (fun () ->
        let s = fresh () in
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (Portal.submit s Portal.axb input);
        ignore (Portal.submit s Portal.axb input);
        check Alcotest.int "two history entries" 2
          (List.length (Portal.history s Portal.axb)));
    tc "submit opens a portal.execute span on miss only" (fun () ->
        let s = fresh () in
        let input = "boolean a\nf = a\nsize f" in
        ignore (Portal.submit s Portal.kbdd input);
        ignore (Portal.submit s Portal.kbdd input);
        let roots = T.spans () in
        check Alcotest.int "one span" 1 (List.length roots);
        match roots with
        | [ sp ] ->
          check Alcotest.string "named" "portal.execute" sp.T.span_name;
          check Alcotest.bool "tool attr" true
            (List.assoc_opt "tool" sp.T.attrs = Some "kbdd")
        | _ -> ());
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("telemetry", telemetry_tests);
      ("json", json_tests);
      ("portal-cache", portal_tests);
    ]
