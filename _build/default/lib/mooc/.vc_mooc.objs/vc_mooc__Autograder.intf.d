lib/mooc/autograder.mli: Vc_place Vc_route
