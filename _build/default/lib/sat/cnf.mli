(** CNF formulas in the DIMACS convention: variables are [1..num_vars],
    a literal is a non-zero integer, negative for complement. *)

type lit = int

type clause = lit array

type t = { num_vars : int; clauses : clause list }

val make : int -> lit list list -> t
(** @raise Invalid_argument on zero literals or variables out of range. *)

val num_clauses : t -> int

val parse_dimacs : string -> t
(** Standard DIMACS CNF ([c] comments, [p cnf V C] header, 0-terminated
    clauses, possibly spanning lines).
    @raise Failure on malformed input. *)

val to_dimacs : t -> string

val eval : t -> bool array -> bool
(** [eval f a] with [a] indexed by variable (index 0 unused). *)

val lit_var : lit -> int
(** Variable of a literal (its absolute value). *)

val lit_sign : lit -> bool
(** [true] for a positive literal. *)

val random_ksat :
  seed:int -> num_vars:int -> num_clauses:int -> k:int -> t
(** Uniform random k-SAT instance (benchmark workload; the clause/variable
    ratio controls hardness, with the 3-SAT phase transition near 4.26). *)
