lib/techmap/map.ml: Array Buffer Cell_lib Hashtbl List Option Printf String Subject Vc_network
