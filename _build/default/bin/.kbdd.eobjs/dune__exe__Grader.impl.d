bin/grader.ml: In_channel List Sys Vc_mooc
