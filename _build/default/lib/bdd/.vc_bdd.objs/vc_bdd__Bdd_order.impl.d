lib/bdd/bdd_order.ml: Array Bdd List Printf Vc_cube Vc_util
