(** The Espresso-II heuristic loop taught in Logic Synthesis I:
    EXPAND (grow cubes against the OFF-set, absorbing neighbours),
    IRREDUNDANT (drop cubes covered by the rest), REDUCE (shrink cubes to
    re-open the solution space), iterated to convergence.

    Single-output per call; {!minimize_pla} handles multi-output PLAs
    output by output. For sharing-aware joint minimization see {!Multi}. *)

type cost = { cubes : int; literals : int }

val cost : Vc_cube.Cover.t -> cost

val compare_cost : cost -> cost -> int
(** Lexicographic: cube count first, then literal count. *)

val expand : off:Vc_cube.Cover.t -> Vc_cube.Cover.t -> Vc_cube.Cover.t
(** Raise each cube's literals while staying disjoint from [off]; covered
    companions are absorbed. Result cubes are prime w.r.t. [off]. *)

val irredundant : dc:Vc_cube.Cover.t -> Vc_cube.Cover.t -> Vc_cube.Cover.t
(** Greedy removal of cubes covered by the rest of the cover plus [dc]. *)

val reduce : dc:Vc_cube.Cover.t -> Vc_cube.Cover.t -> Vc_cube.Cover.t
(** Shrink each cube to the supercube of the part only it covers. *)

val essential_primes :
  primes:Vc_cube.Cover.t -> dc:Vc_cube.Cover.t -> Vc_cube.Cube.t list
(** Primes covering some minterm no other prime (nor [dc]) covers. *)

val minimize :
  ?single_pass:bool ->
  ?max_iters:int ->
  dc:Vc_cube.Cover.t ->
  Vc_cube.Cover.t ->
  Vc_cube.Cover.t
(** [minimize ~dc on] runs the full loop on the ON-set [on]. [single_pass]
    (default false) stops after the first EXPAND / IRREDUNDANT - the
    ablation baseline without REDUCE iteration. The result covers [on] and
    is contained in [on OR dc]. *)

val minimize_pla : ?single_pass:bool -> Pla.t -> Pla.t
(** Minimize every output of a PLA; DC-sets are preserved. *)

val check : on:Vc_cube.Cover.t -> dc:Vc_cube.Cover.t -> Vc_cube.Cover.t -> bool
(** Correctness predicate: [result] covers [on] and lies inside
    [on OR dc]. *)
