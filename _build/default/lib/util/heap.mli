(** Imperative binary min-heap with a caller-supplied ordering.

    Used as the priority queue behind maze-routing wavefront expansion,
    A* search, and annealing-schedule bookkeeping. Not thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element, or [None] if empty. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument if the heap is empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains [h], returning its elements smallest-first. *)
