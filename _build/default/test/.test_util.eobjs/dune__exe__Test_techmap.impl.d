test/test_techmap.ml: Alcotest Array Hashtbl Helpers List QCheck String Vc_cube Vc_network Vc_techmap
