lib/techmap/map.mli: Cell_lib Subject Vc_network
