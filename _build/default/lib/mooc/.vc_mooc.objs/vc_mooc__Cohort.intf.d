lib/mooc/cohort.mli:
