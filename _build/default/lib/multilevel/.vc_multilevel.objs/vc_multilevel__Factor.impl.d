lib/multilevel/factor.ml: Algebraic List String Vc_cube
