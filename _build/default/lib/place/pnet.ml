type pin = Cell of int | Pad of int

type net = { net_name : string; pins : pin list }

type t = {
  name : string;
  num_cells : int;
  cell_names : string array;
  pads : (string * float * float) array;
  nets : net array;
  width : float;
  height : float;
}

type placement = { xs : float array; ys : float array }

let make ?(name = "design") ~cell_names ~pads ~nets ~width ~height () =
  let num_cells = Array.length cell_names in
  let num_pads = Array.length pads in
  let check_net net =
    if net.pins = [] then invalid_arg ("Pnet.make: empty net " ^ net.net_name);
    List.iter
      (fun pin ->
        match pin with
        | Cell i ->
          if i < 0 || i >= num_cells then
            invalid_arg ("Pnet.make: bad cell pin in " ^ net.net_name)
        | Pad i ->
          if i < 0 || i >= num_pads then
            invalid_arg ("Pnet.make: bad pad pin in " ^ net.net_name))
      net.pins
  in
  Array.iter check_net nets;
  { name; num_cells; cell_names; pads; nets; width; height }

let pin_position t p pin =
  match pin with
  | Cell i -> (p.xs.(i), p.ys.(i))
  | Pad i ->
    let _, x, y = t.pads.(i) in
    (x, y)

let hpwl_net t p net =
  let xs = List.map (fun pin -> fst (pin_position t p pin)) net.pins in
  let ys = List.map (fun pin -> snd (pin_position t p pin)) net.pins in
  let min_l = List.fold_left min infinity and max_l = List.fold_left max neg_infinity in
  max_l xs -. min_l xs +. (max_l ys -. min_l ys)

let hpwl t p = Array.fold_left (fun acc net -> acc +. hpwl_net t p net) 0.0 t.nets

let clique_wirelength t p =
  let net_cost net =
    let pts = List.map (pin_position t p) net.pins in
    let k = List.length pts in
    if k < 2 then 0.0
    else begin
      let w = 1.0 /. float_of_int (k - 1) in
      let acc = ref 0.0 in
      let arr = Array.of_list pts in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let dx = fst arr.(i) -. fst arr.(j) in
          let dy = snd arr.(i) -. snd arr.(j) in
          acc := !acc +. (w *. ((dx *. dx) +. (dy *. dy)))
        done
      done;
      !acc
    end
  in
  Array.fold_left (fun acc net -> acc +. net_cost net) 0.0 t.nets

let center_placement t =
  {
    xs = Array.make t.num_cells (t.width /. 2.0);
    ys = Array.make t.num_cells (t.height /. 2.0);
  }

let random_placement ~seed t =
  let rng = Vc_util.Rng.create seed in
  {
    xs = Array.init t.num_cells (fun _ -> Vc_util.Rng.float rng t.width);
    ys = Array.init t.num_cells (fun _ -> Vc_util.Rng.float rng t.height);
  }

(* ------------------------------------------------------------------ *)
(* Text formats                                                        *)
(* ------------------------------------------------------------------ *)

let parse text =
  let lines = Vc_util.Tok.logical_lines ~comment:'#' text in
  let name = ref "design" and width = ref 100.0 and height = ref 100.0 in
  let cells = ref [] and pads = ref [] and raw_nets = ref [] in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "design"; n; w; h ] ->
      name := n;
      width := Vc_util.Tok.parse_float ~context:"design width" w;
      height := Vc_util.Tok.parse_float ~context:"design height" h
    | [ "cell"; n ] -> cells := n :: !cells
    | [ "pad"; n; x; y ] ->
      pads :=
        ( n,
          Vc_util.Tok.parse_float ~context:"pad x" x,
          Vc_util.Tok.parse_float ~context:"pad y" y )
        :: !pads
    | "net" :: n :: pins when pins <> [] -> raw_nets := (n, pins) :: !raw_nets
    | toks -> failwith ("pnet: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle lines;
  let cell_names = Array.of_list (List.rev !cells) in
  let pads = Array.of_list (List.rev !pads) in
  let cell_index = Hashtbl.create 64 and pad_index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace cell_index n i) cell_names;
  Array.iteri (fun i (n, _, _) -> Hashtbl.replace pad_index n i) pads;
  let resolve pin_name =
    match Hashtbl.find_opt cell_index pin_name with
    | Some i -> Cell i
    | None -> begin
      match Hashtbl.find_opt pad_index pin_name with
      | Some i -> Pad i
      | None -> failwith ("pnet: unknown pin " ^ pin_name)
    end
  in
  let nets =
    Array.of_list
      (List.rev_map
         (fun (n, pins) -> { net_name = n; pins = List.map resolve pins })
         !raw_nets)
  in
  make ~name:!name ~cell_names ~pads ~nets ~width:!width ~height:!height ()

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "design %s %g %g\n" t.name t.width t.height);
  Array.iter (fun n -> Buffer.add_string buf ("cell " ^ n ^ "\n")) t.cell_names;
  Array.iter
    (fun (n, x, y) -> Buffer.add_string buf (Printf.sprintf "pad %s %g %g\n" n x y))
    t.pads;
  Array.iter
    (fun net ->
      let pin_name = function
        | Cell i -> t.cell_names.(i)
        | Pad i ->
          let n, _, _ = t.pads.(i) in
          n
      in
      Buffer.add_string buf
        ("net " ^ net.net_name ^ " "
        ^ String.concat " " (List.map pin_name net.pins)
        ^ "\n"))
    t.nets;
  Buffer.contents buf

let placement_to_string t p =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "place %s %.4f %.4f\n" n p.xs.(i) p.ys.(i)))
    t.cell_names;
  Buffer.contents buf

let parse_placement t text =
  let xs = Array.make t.num_cells nan and ys = Array.make t.num_cells nan in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) t.cell_names;
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "place"; n; x; y ] -> begin
      match Hashtbl.find_opt index n with
      | None -> failwith ("placement: unknown cell " ^ n)
      | Some i ->
        xs.(i) <- Vc_util.Tok.parse_float ~context:"place x" x;
        ys.(i) <- Vc_util.Tok.parse_float ~context:"place y" y
    end
    | toks -> failwith ("placement: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle (Vc_util.Tok.logical_lines ~comment:'#' text);
  Array.iteri
    (fun i x ->
      if Float.is_nan x || Float.is_nan ys.(i) then
        failwith ("placement: cell not placed: " ^ t.cell_names.(i)))
    xs;
  { xs; ys }
