(** Network cleanup and restructuring operators in the SIS style:
    sweep (constants, buffers, dead logic), per-node two-level
    simplification, and eliminate (collapse low-value nodes). *)

val sweep : Vc_network.Network.t -> int
(** Remove dead internal nodes, propagate constant nodes, inline buffer and
    inverter nodes. Returns how many nodes were removed. Iterates to a fixed
    point. *)

val simplify : Vc_network.Network.t -> int
(** Run Espresso on every node function (no don't-cares; local-DC-aware
    simplification is listed as future work). Returns literals saved. *)

val eliminate : threshold:int -> Vc_network.Network.t -> int
(** Collapse every internal non-output node whose elimination changes the
    network literal count by at most [threshold] (SIS's value-based
    eliminate; [threshold >= 0] also removes value-0 nodes). Returns nodes
    eliminated. Nodes whose collapsed support would exceed 14 variables are
    kept. *)

val collapse_node : Vc_network.Network.t -> string -> bool
(** Force-collapse one node into all its fanouts (false if impossible:
    node is an output, missing, or support too large). *)
