lib/two_level/qm.mli: Vc_cube
