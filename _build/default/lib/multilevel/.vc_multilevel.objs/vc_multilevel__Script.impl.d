lib/multilevel/script.ml: Algebraic Dc Extract Factor List Opt Printf String Vc_network Vc_util
