(* Cross-library integration: the scenarios a course participant actually
   exercises, stitched across tools - text formats flowing between portals,
   synthesis feeding mapping feeding timing, and the engines checking each
   other. *)

open Helpers
module Expr = Vc_cube.Expr
module Network = Vc_network.Network

let carry_lookahead_bit () =
  (* g + p*cin as a BLIF design *)
  ".model cla\n.inputs a b cin\n.outputs cout\n\
   .names a b g\n11 1\n\
   .names a b p\n10 1\n01 1\n\
   .names p cin t\n11 1\n\
   .names g t cout\n1- 1\n-1 1\n.end\n"

let integration_tests =
  [
    tc "BLIF -> SIS script -> mapping -> STA pipeline" (fun () ->
        let net = Vc_network.Blif.parse (carry_lookahead_bit ()) in
        let report =
          Vc_multilevel.Script.run net Vc_multilevel.Script.script_rugged
        in
        let optimized = report.Vc_multilevel.Script.network in
        check Alcotest.bool "synthesis equivalence" true
          (Vc_network.Equiv.equivalent net optimized);
        let mapping =
          Vc_techmap.Map.map_network (Vc_techmap.Cell_lib.standard ()) optimized
        in
        let sta = Vc_timing.Tgraph.analyze (Vc_timing.Tgraph.of_mapping mapping) in
        check (Alcotest.float 1e-9) "mapper and STA agree"
          mapping.Vc_techmap.Map.delay sta.Vc_timing.Tgraph.worst_arrival);
    tc "kbdd script agrees with the Expr engine" (fun () ->
        let expr_text = "a & b | !a & c | b ^ c" in
        let script =
          Printf.sprintf "boolean a b c\nf = %s\nsatcount f" expr_text
        in
        let out = Vc_bdd.Bdd_script.run_script script in
        let tt = Expr.truth_table [ "a"; "b"; "c" ] (Expr.parse expr_text) in
        let count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 tt in
        check Alcotest.string "satcount" (string_of_int count) (List.nth out 2));
    tc "espresso portal output stays equivalent through re-parse" (fun () ->
        let session = Vc_mooc.Portal.create_session () in
        let original = ".i 4\n.o 1\n1100 1\n1101 1\n1111 1\n1110 1\n0011 1\n0111 1\n.e\n" in
        let out =
          Vc_mooc.Portal.outcome_output
            (Vc_mooc.Portal.submit_result session Vc_mooc.Portal.espresso
               original)
        in
        let before = Vc_two_level.Pla.parse original in
        let after = Vc_two_level.Pla.parse out in
        check Alcotest.bool "same function" true
          (Vc_cube.Cover.equivalent
             before.Vc_two_level.Pla.on_sets.(0)
             after.Vc_two_level.Pla.on_sets.(0)));
    tc "BDD and SAT equivalence engines agree after synthesis" (fun () ->
        for seed = 1 to 10 do
          let net = random_network seed in
          let report =
            Vc_multilevel.Script.run net Vc_multilevel.Script.script_rugged
          in
          let optimized = report.Vc_multilevel.Script.network in
          let bdd_says =
            Vc_network.Equiv.equivalent ~engine:Vc_network.Equiv.Bdd_engine net
              optimized
          in
          let sat_says =
            Vc_network.Equiv.equivalent ~engine:Vc_network.Equiv.Sat_engine net
              optimized
          in
          check Alcotest.bool "engines agree" true (bdd_says = sat_says);
          check Alcotest.bool "synthesis sound" true bdd_says
        done);
    tc "router solutions survive the grader round trip at scale" (fun () ->
        let tiny = Vc_place.Netgen.generate ~seed:77 Vc_place.Netgen.tiny in
        let qp = Vc_place.Quadratic.place tiny in
        let legal = Vc_place.Legalize.to_grid tiny qp.Vc_place.Quadratic.placement in
        let problem = Vc_mooc.Flow.routing_problem_of tiny legal 8 in
        let result = Vc_route.Router.route ~rip_up_passes:6 problem in
        check Alcotest.int "fully routed" result.Vc_route.Router.total
          result.Vc_route.Router.completed;
        match
          Vc_mooc.Autograder.validate_routing problem
            (Vc_route.Router.solution_to_string result)
        with
        | Ok c ->
          check Alcotest.int "wirelength preserved"
            result.Vc_route.Router.wirelength c.Vc_mooc.Autograder.rc_wirelength
        | Error msg -> Alcotest.fail msg);
    tc "a student could solve project 1 with the kbdd portal" (fun () ->
        (* complement of the mux benchmark computed via BDD all_sat *)
        let man = Vc_bdd.Bdd.create () in
        let names = [| "x0"; "x1"; "x2" |] in
        Array.iter (fun v -> ignore (Vc_bdd.Bdd.var man v)) names;
        let cover = Vc_cube.Cover.of_strings 3 [ "1-1"; "01-" ] in
        let f = Vc_bdd.Bdd.of_cover man ~names cover in
        let complement = Vc_bdd.Bdd.mk_not man f in
        let cubes = Vc_bdd.Bdd.all_sat man complement in
        (* translate BDD cubes to PCN and grade them via URP machinery *)
        let as_cover =
          Vc_cube.Cover.make 3
            (List.map
               (fun assignment ->
                 Vc_cube.Cube.of_literals 3 assignment)
               cubes)
        in
        check Alcotest.bool "BDD complement = URP complement" true
          (Vc_cube.Urp.equivalent as_cover (Vc_cube.Urp.complement cover)));
    tc "flow timing dominates mapping timing on every design" (fun () ->
        List.iter
          (fun bindings ->
            let inputs =
              List.sort_uniq compare
                (List.concat_map (fun (_, e) -> Expr.vars e) bindings)
            in
            let net = Network.of_exprs ~inputs bindings in
            let r = Vc_mooc.Flow.run net in
            check Alcotest.bool "wire delay nonnegative" true
              (r.Vc_mooc.Flow.total_delay >= r.Vc_mooc.Flow.gate_delay -. 1e-9))
          [
            [ ("f", Expr.parse "a b + c") ];
            [ ("f", Expr.parse "a ^ b ^ c"); ("g", Expr.parse "a b c") ];
          ]);
    tc "FSM to layout: minimize, encode, run the full flow" (fun () ->
        let machine =
          Vc_network.Fsm.of_rows ~reset:"even"
            [
              (("even", "zero"), ("even", [ false ]));
              (("even", "one"), ("odd_a", [ true ]));
              (("odd_a", "zero"), ("odd_b", [ true ]));
              (("odd_a", "one"), ("even", [ false ]));
              (("odd_b", "zero"), ("odd_a", [ true ]));
              (("odd_b", "one"), ("even", [ false ]));
            ]
        in
        let reduced, _ = Vc_network.Fsm.minimize machine in
        let logic = Vc_network.Fsm.encode reduced in
        let r = Vc_mooc.Flow.run logic in
        check Alcotest.bool "flow equivalent" true r.Vc_mooc.Flow.equivalent;
        check Alcotest.int "fully routed"
          r.Vc_mooc.Flow.routing.Vc_route.Router.total
          r.Vc_mooc.Flow.routing.Vc_route.Router.completed);
    tc "joint PLA minimization feeds the network layer" (fun () ->
        let pla =
          Vc_two_level.Pla.parse
            ".i 3\n.o 2\n.ilb a b c\n11- 11\n0-1 10\n-10 01\n.e\n"
        in
        let joint = Vc_two_level.Multi.minimize pla in
        let rebuilt = Vc_two_level.Multi.to_pla pla joint in
        (* each rebuilt output drives a network node; behaviour must match
           the original PLA's outputs *)
        let node_of (p : Vc_two_level.Pla.t) j =
          let t =
            Network.create ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "o" ] ()
          in
          Network.add_node t ~name:"o" ~fanins:[ "a"; "b"; "c" ]
            ~func:p.Vc_two_level.Pla.on_sets.(j);
          t
        in
        for j = 0 to 1 do
          check Alcotest.bool
            (Printf.sprintf "output %d equivalent" j)
            true
            (Vc_network.Equiv.equivalent (node_of pla j) (node_of rebuilt j))
        done);
    tc "CLI-style text pipeline: pla -> minimize -> blif-ish network" (fun () ->
        (* the espresso result can seed a network node directly *)
        let pla = Vc_two_level.Pla.parse ".i 3\n.o 1\n.ilb a b c\n110 1\n111 1\n011 1\n.e\n" in
        let minimized = Vc_two_level.Espresso.minimize_pla pla in
        let net = Network.create ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "f" ] () in
        Network.add_node net ~name:"f" ~fanins:[ "a"; "b"; "c" ]
          ~func:minimized.Vc_two_level.Pla.on_sets.(0);
        let reference = Network.create ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "f" ] () in
        Network.add_node reference ~name:"f" ~fanins:[ "a"; "b"; "c" ]
          ~func:pla.Vc_two_level.Pla.on_sets.(0);
        check Alcotest.bool "equivalent" true
          (Vc_network.Equiv.equivalent reference net));
  ]

let () = Alcotest.run "integration" [ ("integration", integration_tests) ]
