lib/multilevel/dc.ml: List Vc_bdd Vc_cube Vc_network Vc_two_level
