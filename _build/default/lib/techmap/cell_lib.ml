type pattern =
  | P_leaf of int
  | P_nand of pattern * pattern
  | P_inv of pattern

type cell = {
  cell_name : string;
  area : float;
  delay : float;
  arity : int;
  pattern : pattern;
}

let leaves pattern =
  let seen = Hashtbl.create 8 in
  let rec visit = function
    | P_leaf i -> Hashtbl.replace seen i ()
    | P_nand (a, b) ->
      visit a;
      visit b
    | P_inv a -> visit a
  in
  visit pattern;
  Hashtbl.length seen

let cell name area delay pattern =
  { cell_name = name; area; delay; arity = leaves pattern; pattern }

let l0 = P_leaf 0
let l1 = P_leaf 1
let l2 = P_leaf 2
let l3 = P_leaf 3

(* Gate identities in the NAND/INV basis:
   AND(a,b)  = INV (NAND (a, b))
   OR(a,b)   = NAND (INV a, INV b)
   NOR(a,b)  = INV (NAND (INV a, INV b))
   AO21      = ab + c = NAND (NAND (a,b), INV c)
   AOI21     = !(ab + c) = INV (NAND (NAND (a,b), INV c))
   OA21      = (a+b) c = INV (NAND (NAND (INV a, INV b), c))
   OAI21     = !((a+b) c) = NAND (NAND (INV a, INV b), c)
   XOR(a,b)  = NAND (NAND (a, INV b), NAND (INV a, b))
   (XOR reuses leaf slots - the matcher binds repeated slots to the same
   hash-consed subject node, which a factored XOR cone produces.)       *)
let standard () =
  [
    cell "INV" 1.0 0.40 (P_inv l0);
    cell "NAND2" 2.0 0.55 (P_nand (l0, l1));
    cell "NAND3" 3.0 0.75 (P_nand (l0, P_inv (P_nand (l1, l2))));
    cell "NAND4" 4.0 0.95
      (P_nand (P_inv (P_nand (l0, l1)), P_inv (P_nand (l2, l3))));
    cell "AND2" 3.0 0.70 (P_inv (P_nand (l0, l1)));
    cell "AND3" 4.0 0.85 (P_inv (P_nand (l0, P_inv (P_nand (l1, l2)))));
    cell "OR2" 3.0 0.70 (P_nand (P_inv l0, P_inv l1));
    cell "OR3" 4.0 0.85
      (P_nand (P_inv l0, P_inv (P_nand (P_inv l1, P_inv l2))));
    cell "NOR2" 2.0 0.60 (P_inv (P_nand (P_inv l0, P_inv l1)));
    cell "AO21" 3.5 0.85 (P_nand (P_nand (l0, l1), P_inv l2));
    cell "AOI21" 3.0 0.80 (P_inv (P_nand (P_nand (l0, l1), P_inv l2)));
    cell "AOI22" 4.0 0.95
      (P_inv (P_nand (P_nand (l0, l1), P_nand (l2, l3))));
    cell "OA21" 3.5 0.85 (P_inv (P_nand (P_nand (P_inv l0, P_inv l1), l2)));
    cell "OAI21" 3.0 0.80 (P_nand (P_nand (P_inv l0, P_inv l1), l2));
    cell "XOR2" 4.5 0.90
      (P_nand (P_nand (l0, P_inv l1), P_nand (P_inv l0, l1)));
    cell "XNOR2" 4.5 0.90
      (P_inv (P_nand (P_nand (l0, P_inv l1), P_nand (P_inv l0, l1))));
  ]

let minimal () =
  [ cell "INV" 1.0 0.40 (P_inv l0); cell "NAND2" 2.0 0.55 (P_nand (l0, l1)) ]

let find cells name = List.find_opt (fun c -> c.cell_name = name) cells
