(** Quadratic placement with recursive bipartitioning legalization, the
    PROUD-style algorithm of software project 3: minimize clique-model
    squared wirelength by solving one sparse SPD system per coordinate,
    then recursively split the region and re-solve each half with outside
    connections projected onto the region boundary. *)

type solver = Cg | Gauss_seidel

type result = {
  placement : Pnet.placement;
  solves : int;  (** Linear systems solved. *)
  iterations : int;  (** Total iterative-solver iterations. *)
}

val global : ?solver:solver -> Pnet.t -> result
(** One unconstrained QP solve: the classic "everything clumps in the
    middle" global placement (needs at least one pad per connected
    component to be well-posed; a mild regularization toward the core
    center keeps floating components solvable). *)

val place :
  ?solver:solver -> ?max_depth:int -> ?min_cells:int -> Pnet.t -> result
(** Full recursive flow. [max_depth] (default 4) region-splitting levels;
    regions with at most [min_cells] (default 4) cells stop early. *)
