type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let skip_ws () =
    while
      !pos < len
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ()
        | Some 'r' ->
          Buffer.add_char b '\r';
          advance ()
        | Some 'b' ->
          Buffer.add_char b '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char b '\012';
          advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let code =
            (hex_digit text.[!pos] lsl 12)
            lor (hex_digit text.[!pos + 1] lsl 8)
            lor (hex_digit text.[!pos + 2] lsl 4)
            lor hex_digit text.[!pos + 3]
          in
          pos := !pos + 4;
          (match Uchar.of_int code with
          | u -> Buffer.add_utf_8_uchar b u
          | exception Invalid_argument _ -> Buffer.add_char b '?')
        | Some c ->
          Buffer.add_char b c;
          advance ()
        | None -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let parse_result text =
  match parse text with v -> Ok v | exception Failure msg -> Error msg

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let num f = Printf.sprintf "%.6f" f
let int = string_of_int

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
