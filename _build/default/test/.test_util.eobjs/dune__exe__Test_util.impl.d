test/test_util.ml: Alcotest Array Helpers List QCheck String Vc_util
