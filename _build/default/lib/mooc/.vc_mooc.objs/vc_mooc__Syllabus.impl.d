lib/mooc/syllabus.ml: Buffer List Printf String
