lib/cube/cover.ml: Array Cube Expr List Option
