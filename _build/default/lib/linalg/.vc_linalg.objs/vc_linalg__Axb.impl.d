lib/linalg/axb.ml: Array Dense List Printf Sparse String Vc_util
