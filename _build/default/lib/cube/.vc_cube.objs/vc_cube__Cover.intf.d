lib/cube/cover.mli: Cube Expr
