(** The Fig. 4 architecture: tool portals that consume ASCII text and
    produce ASCII text, with per-participant run history and a runaway
    guard. The five deployed tools mirror the paper's list - kbdd,
    espresso, SIS, miniSAT, and the custom Ax=b solver - each backed by
    this repository's own implementation.

    Submissions are instrumented through {!Vc_util.Telemetry}
    (per-tool submit / execution / rejection counters and latency
    timers) and served through a process-wide content-addressed result
    cache: every tool is a pure function of its input text, so a repeat
    of an identical upload - the dominant MOOC workload - returns the
    cached output in O(1) without re-executing the tool. See
    [docs/OBSERVABILITY.md] and [docs/PORTAL.md]. *)

type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;  (** Runaway guard: larger uploads are rejected. *)
  execute : string -> string;
}

val kbdd : tool
(** BDD calculator scripts ({!Vc_bdd.Bdd_script}). *)

val espresso : tool
(** PLA in, minimized PLA out ({!Vc_two_level.Espresso}). *)

val sis : tool
(** Input is a BLIF model, then a line containing only [%script], then
    SIS commands ({!Vc_multilevel.Script}); output is the log and the
    optimized BLIF. *)

val minisat : tool
(** DIMACS in; "SATISFIABLE" plus a model line, or "UNSATISFIABLE". *)

val axb : tool
(** Linear systems ({!Vc_linalg.Axb}). *)

val all_tools : tool list

type session
(** One participant's portal state: private run history per tool. *)

val create_session : unit -> session

val submit : session -> tool -> string -> string
(** Run the tool on the uploaded text (never raises; errors come back as
    ["error: ..."] text) and append to the tool's history.

    Instrumentation per call, under the tool's name [t]:
    [portal.t.submits] always increments; then exactly one of
    [portal.t.rejected] (runaway guard tripped), [portal.t.cache_hits]
    (identical submission served from the cache, byte-for-byte the same
    output, tool not re-executed) or [portal.t.executions] (tool ran,
    result cached). Wall-clock latency is recorded on the
    [portal.t.latency] timer, and each real execution opens a
    ["portal.execute"] trace span.

    Every submission additionally emits one {!Vc_util.Journal} event
    (component ["portal"], name ["submission"]) carrying the tool name,
    the content digest, the outcome ([executed] / [cache_hit] /
    [rejected]), the latency, and - for rejections - the reason. A
    runaway rejection is emitted at [Error] severity and dumps the
    journal's flight recorder, so the trailing window of events that
    led up to it is preserved. *)

val history : session -> tool -> (string * string) list
(** (input, output) pairs, oldest first - the "older outputs available by
    scrolling" behaviour. Cache hits are logged like real runs. *)

val find_tool : string -> tool option

(** {1 Result cache}

    Global across sessions; content-addressed by a digest of
    [tool name + input]. *)

val set_cache_capacity : int -> unit
(** Bound the number of cached results (default 512), evicting
    least-recently-used entries if already over the new bound. [0]
    disables caching. *)

val cache_capacity : unit -> int

val cache_size : unit -> int
(** Number of results currently cached (always [<= cache_capacity ()]). *)

val clear_cache : unit -> unit

val cache_stats : unit -> int * int
(** [(hits, misses)] since start - reads the [portal.cache.hits] /
    [portal.cache.misses] {!Vc_util.Telemetry} counters, so
    {!Vc_util.Telemetry.reset} also resets these. Evictions are counted
    under [portal.cache.evictions]. *)
