(** Small descriptive-statistics helpers used by the cohort simulator and the
    benchmark harness report printers. *)

val mean : float list -> float
(** Mean of a non-empty list. *)

val stddev : float list -> float
(** Population standard deviation of a non-empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100]; nearest-rank on the sorted data.
    Requires a non-empty list. *)

val minimum : float list -> float

val maximum : float list -> float

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] partitions the (non-empty) data range into [bins]
    equal-width bins and returns [(lo, hi, count)] per bin. *)

val bar : width:int -> float -> float -> string
(** [bar ~width value max] is an ASCII bar proportional to [value / max],
    used by the figure printers. *)
