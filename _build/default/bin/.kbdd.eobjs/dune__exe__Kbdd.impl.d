bin/kbdd.ml: In_channel List Sys Vc_bdd
