module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover

type t = {
  num_inputs : int;
  num_outputs : int;
  input_names : string list;
  output_names : string list;
  on_sets : Cover.t array;
  dc_sets : Cover.t array;
}

let default_names prefix n = List.init n (Printf.sprintf "%s%d" prefix)

let parse text =
  let lines = Vc_util.Tok.logical_lines ~comment:'#' text in
  let ni = ref None and no = ref None in
  let ilb = ref None and ob = ref None in
  let rows = ref [] in
  let finished = ref false in
  let handle line =
    if !finished then ()
    else
      match Vc_util.Tok.split_words line with
      | [] -> ()
      | ".i" :: v :: _ -> ni := Some (Vc_util.Tok.parse_int ~context:".i" v)
      | ".o" :: v :: _ -> no := Some (Vc_util.Tok.parse_int ~context:".o" v)
      | ".p" :: _ | ".type" :: _ -> () (* row count / type: informational *)
      | ".ilb" :: names -> ilb := Some names
      | ".ob" :: names -> ob := Some names
      | [ ".e" ] | [ ".end" ] -> finished := true
      | [ inp; out ] when inp.[0] <> '.' -> rows := (inp, out) :: !rows
      | [ word ] when word.[0] <> '.' -> begin
        (* single-output PLAs sometimes glue planes: split by .i width *)
        match !ni with
        | Some n when String.length word > n ->
          rows :=
            (String.sub word 0 n, String.sub word n (String.length word - n))
            :: !rows
        | Some _ | None -> failwith ("pla: malformed row: " ^ word)
      end
      | tok :: _ when tok.[0] = '.' -> () (* ignore other directives *)
      | toks -> failwith ("pla: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle lines;
  let num_inputs =
    match !ni with Some n -> n | None -> failwith "pla: missing .i"
  in
  let num_outputs =
    match !no with Some n -> n | None -> failwith "pla: missing .o"
  in
  let on = Array.make num_outputs [] and dc = Array.make num_outputs [] in
  let add_row (inp, out) =
    if String.length inp <> num_inputs then
      failwith ("pla: input plane width mismatch: " ^ inp);
    if String.length out <> num_outputs then
      failwith ("pla: output plane width mismatch: " ^ out);
    let cube = Cube.of_string inp in
    String.iteri
      (fun j ch ->
        match ch with
        | '1' | '4' -> on.(j) <- cube :: on.(j)
        | '-' | '2' -> dc.(j) <- cube :: dc.(j)
        | '0' | '~' | '3' -> ()
        | _ -> failwith (Printf.sprintf "pla: bad output character %C" ch))
      out
  in
  List.iter add_row (List.rev !rows);
  {
    num_inputs;
    num_outputs;
    input_names =
      (match !ilb with Some n -> n | None -> default_names "x" num_inputs);
    output_names =
      (match !ob with Some n -> n | None -> default_names "f" num_outputs);
    on_sets = Array.map (fun cubes -> Cover.make num_inputs (List.rev cubes)) on;
    dc_sets = Array.map (fun cubes -> Cover.make num_inputs (List.rev cubes)) dc;
  }

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" t.num_inputs t.num_outputs);
  Buffer.add_string buf (".ilb " ^ String.concat " " t.input_names ^ "\n");
  Buffer.add_string buf (".ob " ^ String.concat " " t.output_names ^ "\n");
  (* collect rows: distinct input cube -> output plane chars *)
  let table : (string, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let row_for key =
    match Hashtbl.find_opt table key with
    | Some b -> b
    | None ->
      let b = Bytes.make t.num_outputs '0' in
      Hashtbl.add table key b;
      order := key :: !order;
      b
  in
  Array.iteri
    (fun j (cover : Cover.t) ->
      List.iter
        (fun c -> Bytes.set (row_for (Cube.to_string c)) j '1')
        cover.Cover.cubes)
    t.on_sets;
  Array.iteri
    (fun j (cover : Cover.t) ->
      List.iter
        (fun c ->
          let b = row_for (Cube.to_string c) in
          if Bytes.get b j = '0' then Bytes.set b j '-')
        cover.Cover.cubes)
    t.dc_sets;
  let rows = List.rev !order in
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (List.length rows));
  List.iter
    (fun key ->
      Buffer.add_string buf
        (key ^ " " ^ Bytes.to_string (Hashtbl.find table key) ^ "\n"))
    rows;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let single_output ~num_inputs ~on ~dc =
  {
    num_inputs;
    num_outputs = 1;
    input_names = default_names "x" num_inputs;
    output_names = [ "f" ];
    on_sets = [| on |];
    dc_sets = [| dc |];
  }

let cube_count t =
  let keys = Hashtbl.create 64 in
  let add (cover : Cover.t) =
    List.iter
      (fun c -> Hashtbl.replace keys (Cube.to_string c) ())
      cover.Cover.cubes
  in
  Array.iter add t.on_sets;
  Array.iter add t.dc_sets;
  Hashtbl.length keys

let literal_count t =
  let count (cover : Cover.t) =
    List.fold_left (fun acc c -> acc + Cube.literal_count c) 0 cover.Cover.cubes
  in
  Array.fold_left (fun acc c -> acc + count c) 0 t.on_sets
  + Array.fold_left (fun acc c -> acc + count c) 0 t.dc_sets

let semantics_equal a b =
  a.num_inputs = b.num_inputs
  && a.num_outputs = b.num_outputs
  && begin
       let ok = ref true in
       for j = 0 to a.num_outputs - 1 do
         if
           (not (Cover.equivalent a.on_sets.(j) b.on_sets.(j)))
           || not (Cover.equivalent a.dc_sets.(j) b.dc_sets.(j))
         then ok := false
       done;
       !ok
     end
