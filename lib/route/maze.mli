(** Maze routing: Dijkstra/Lee wavefront expansion over the two-layer grid
    with bend, via and wrong-way costs, multi-point nets routed by growing
    a tree (multi-source expansion from the routed tree to each remaining
    pin).

    The cost-weighted expansion is exactly the lecture's "Lee's algorithm
    with non-unit costs"; with all penalties zero it degenerates to
    classic breadth-first Lee. *)

type path = Grid.point list
(** Contiguous: consecutive points differ by one grid step on a layer, or
    by a layer change at the same (x, y). *)

val path_cost : Grid.cost_params -> path -> int

val path_contiguous : path -> bool

val route_two_pins :
  Grid.t -> net:int -> src:Grid.point -> dst:Grid.point -> path option
(** Route and claim the cells for [net] on success. Cells owned by [net]
    already cost nothing to reuse (tree sharing). *)

val route_net : Grid.t -> net:int -> pins:(int * int) list -> path list option
(** Route a multi-pin net (pins are (x, y) on layer 0) as a tree: nearest
    unconnected pin next. On failure the net's cells are released and
    [None] returned. *)

val astar : bool ref
(** When set (default false), expansion adds an admissible
    manhattan-distance lower bound (A-star search) - same path costs,
    fewer expansions; exposed as a toggle for the bench ablation. *)

val expansions : unit -> int
(** Cumulative count of wavefront pops since program start (bench
    metric). *)

val stats : unit -> (string * int) list
(** Process-wide cumulative counters: [expansions] (wavefront pops),
    [searches] (two-pin searches started) and [paths_found]. Registered
    as the {!Vc_util.Telemetry} probe ["route.maze"]. *)
