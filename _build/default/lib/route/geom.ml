type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

let rect x0 y0 x1 y1 =
  if x1 <= x0 || y1 <= y0 then invalid_arg "Geom.rect: degenerate rectangle";
  { x0; y0; x1; y1 }

let area r = (r.x1 - r.x0) * (r.y1 - r.y0)

let intersects a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let intersection a b =
  if intersects a b then
    Some
      {
        x0 = max a.x0 b.x0;
        y0 = max a.y0 b.y0;
        x1 = min a.x1 b.x1;
        y1 = min a.y1 b.y1;
      }
  else None

(* Area of union by scanline over x-events; at each slab, merge the active
   rectangles' y-intervals. *)
let union_area rects =
  match rects with
  | [] -> 0
  | _ ->
    let xs =
      List.concat_map (fun r -> [ r.x0; r.x1 ]) rects |> List.sort_uniq compare
    in
    let rec slabs acc = function
      | a :: (b :: _ as rest) ->
        let active = List.filter (fun r -> r.x0 <= a && r.x1 >= b) rects in
        let intervals =
          List.map (fun r -> (r.y0, r.y1)) active
          |> List.sort compare
        in
        let rec merged_length last_end acc = function
          | [] -> acc
          | (lo, hi) :: rest ->
            let lo = max lo last_end in
            if hi > lo then merged_length hi (acc + hi - lo) rest
            else merged_length last_end acc rest
        in
        let covered = merged_length min_int 0 intervals in
        slabs (acc + ((b - a) * covered)) rest
      | [ _ ] | [] -> acc
    in
    slabs 0 xs

let overlapping_pairs rects =
  (* sweep by x0; active list pruned by x1 *)
  let arr = Array.of_list rects in
  let order = Array.init (Array.length arr) (fun i -> i) in
  Array.sort (fun i j -> compare arr.(i).x0 arr.(j).x0) order;
  let active = ref [] and out = ref [] in
  Array.iter
    (fun i ->
      active := List.filter (fun j -> arr.(j).x1 > arr.(i).x0) !active;
      List.iter
        (fun j ->
          if intersects arr.(i) arr.(j) then
            out := (min i j, max i j) :: !out)
        !active;
      active := i :: !active)
    order;
  List.sort compare !out

let expand margin r =
  {
    x0 = r.x0 - margin;
    y0 = r.y0 - margin;
    x1 = r.x1 + margin;
    y1 = r.y1 + margin;
  }

type violation = {
  v_rule : [ `Spacing of int | `Overlap ];
  v_a : int;
  v_b : int;
}

let check_spacing ~spacing rects =
  let arr = Array.of_list rects in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if intersects arr.(i) arr.(j) then
        out := { v_rule = `Overlap; v_a = i; v_b = j } :: !out
      else if spacing > 0 && intersects (expand spacing arr.(i)) arr.(j) then
        out := { v_rule = `Spacing spacing; v_a = i; v_b = j } :: !out
    done
  done;
  List.rev !out

let wires_of_layer g layer =
  let rects = ref [] and owners = ref [] in
  for y = 0 to Grid.height g - 1 do
    let x = ref 0 in
    while !x < Grid.width g do
      match Grid.occupant g { Grid.layer; x = !x; y } with
      | None ->
        incr x
      | Some net ->
        let start = !x in
        while
          !x < Grid.width g
          && Grid.occupant g { Grid.layer; x = !x; y } = Some net
        do
          incr x
        done;
        rects := rect start y !x (y + 1) :: !rects;
        owners := net :: !owners
    done
  done;
  (List.rev !rects, List.rev !owners)

let drc_check ?(spacing = 0) (result : Router.result) =
  let g = result.Router.grid in
  let violations = ref [] and all_rects = ref [] in
  List.iter
    (fun layer ->
      let rects, owners = wires_of_layer g layer in
      let rect_arr = Array.of_list rects and owner_arr = Array.of_list owners in
      let vs = check_spacing ~spacing rects in
      (* keep only violations between different nets: a net's own strips
         may legally touch (corners, vias, adjacent rows of the same net) *)
      let cross =
        List.filter (fun v -> owner_arr.(v.v_a) <> owner_arr.(v.v_b)) vs
      in
      violations := !violations @ cross;
      all_rects := !all_rects @ Array.to_list rect_arr)
    [ 0; 1 ];
  (!violations, !all_rects)
