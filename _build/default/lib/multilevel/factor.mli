(** Factoring: rewriting a two-level SOP as a nested AND/OR form with fewer
    literals - the headline transformation of Logic Synthesis II. *)

type form =
  | Lit of Algebraic.lit
  | And of form list
  | Or of form list

val to_string : form -> string
(** Conventional notation, e.g. ["a (b + c) + d'"]. *)

val literal_count : form -> int

val to_expr : form -> Vc_cube.Expr.t

val factor : Algebraic.sop -> form
(** Quick-factor: divide by a level-0 kernel (falling back to the most
    common literal), recurse on quotient, divisor and remainder. Constants:
    the empty SOP factors to [Or []] (false) and the SOP containing the
    empty cube to [And []] (true). *)

val sop_to_expr : Algebraic.sop -> Vc_cube.Expr.t
(** The flat SOP as an expression (for verifying factorizations). *)
