let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty data")
  | _ :: _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let histogram ~bins xs =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let place x =
    let i = int_of_float ((x -. lo) /. width) in
    let i = max 0 (min (bins - 1) i) in
    counts.(i) <- counts.(i) + 1
  in
  List.iter place xs;
  Array.mapi
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. width) in
      (b_lo, b_lo +. width, c))
    counts

let bar ~width value max_value =
  if max_value <= 0.0 then ""
  else begin
    let n = int_of_float (value /. max_value *. float_of_int width) in
    let n = max 0 (min width n) in
    String.make n '#'
  end
