bin/grader.mli:
