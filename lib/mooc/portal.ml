type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;
  execute : string -> string;
}

let guard_errors f input =
  match f input with
  | output -> output
  | exception Failure msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "error: " ^ msg

let kbdd =
  {
    tool_name = "kbdd";
    description = "BDD-based Boolean calculator with a scripting language";
    max_input_lines = 2000;
    execute =
      (fun input -> String.concat "\n" (Vc_bdd.Bdd_script.run_script input));
  }

let espresso =
  {
    tool_name = "espresso";
    description = "two-level logic minimizer on PLA files";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let pla = Vc_two_level.Pla.parse input in
          if pla.Vc_two_level.Pla.num_inputs > 16 then
            failwith "espresso portal: at most 16 inputs"
          else Vc_two_level.Pla.to_string (Vc_two_level.Espresso.minimize_pla pla));
  }

let split_sis_input input =
  let lines = String.split_on_char '\n' input in
  let rec split blif = function
    | [] -> (List.rev blif, [])
    | line :: rest when String.trim line = "%script" -> (List.rev blif, rest)
    | line :: rest -> split (line :: blif) rest
  in
  let blif, script = split [] lines in
  (String.concat "\n" blif, String.concat "\n" script)

let sis =
  {
    tool_name = "sis";
    description = "multi-level logic optimization scripts on BLIF networks";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let blif_text, script_text = split_sis_input input in
          let net = Vc_network.Blif.parse blif_text in
          let script_text =
            if String.trim script_text = "" then
              Vc_multilevel.Script.script_rugged
            else script_text
          in
          let report = Vc_multilevel.Script.run net script_text in
          String.concat "\n"
            (report.Vc_multilevel.Script.log
            @ [ ""; Vc_network.Blif.to_string report.Vc_multilevel.Script.network ]));
  }

let minisat =
  {
    tool_name = "minisat";
    description = "CDCL Boolean satisfiability solver on DIMACS CNF";
    max_input_lines = 50_000;
    execute =
      guard_errors (fun input ->
          let cnf = Vc_sat.Cnf.parse_dimacs input in
          match Vc_sat.Solver.solve cnf with
          | Vc_sat.Solver.Sat model, stats ->
            let lits =
              List.init cnf.Vc_sat.Cnf.num_vars (fun i ->
                  let v = i + 1 in
                  string_of_int (if model.(v) then v else -v))
            in
            Printf.sprintf
              "SATISFIABLE\nv %s 0\nc %d conflicts, %d decisions, %d propagations"
              (String.concat " " lits)
              stats.Vc_sat.Solver.conflicts stats.Vc_sat.Solver.decisions
              stats.Vc_sat.Solver.propagations
          | Vc_sat.Solver.Unsat, stats ->
            Printf.sprintf "UNSATISFIABLE\nc %d conflicts"
              stats.Vc_sat.Solver.conflicts
          | Vc_sat.Solver.Unknown, _ -> "UNKNOWN");
  }

let axb =
  {
    tool_name = "axb";
    description = "linear system solver for quadratic-placement homeworks";
    max_input_lines = 5000;
    execute = Vc_linalg.Axb.run;
  }

let all_tools = [ kbdd; espresso; sis; minisat; axb ]

let find_tool name = List.find_opt (fun t -> t.tool_name = name) all_tools

type session = (string, (string * string) list ref) Hashtbl.t

let create_session () : session = Hashtbl.create 8

(* ------------------------------------------------------------------ *)
(* content-addressed result cache                                      *)
(* ------------------------------------------------------------------ *)

(* The dominant MOOC workload is many participants uploading the same
   homework input; every tool is a pure function of its input text, so
   (tool, input) -> output is cached globally across sessions. Bounded
   LRU: eviction scans for the stalest entry, O(capacity), which is dwarfed
   by any tool execution. *)

module T = Vc_util.Telemetry

type cache_entry = { output : string; mutable last_used : int }

let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 1024
let capacity = ref 512
let tick = ref 0

let cache_key tool_name input = Digest.string (tool_name ^ "\x00" ^ input)

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stalest) when stalest.last_used <= e.last_used -> acc
        | Some _ | None -> Some (k, e))
      cache None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove cache k;
    T.incr "portal.cache.evictions"
  | None -> ()

let set_cache_capacity n =
  if n < 0 then invalid_arg "Portal.set_cache_capacity: negative capacity";
  capacity := n;
  while Hashtbl.length cache > n do
    evict_lru ()
  done

let cache_capacity () = !capacity
let cache_size () = Hashtbl.length cache
let clear_cache () = Hashtbl.reset cache

let cache_stats () =
  (T.counter "portal.cache.hits", T.counter "portal.cache.misses")

let cache_find key =
  match Hashtbl.find_opt cache key with
  | Some e ->
    incr tick;
    e.last_used <- !tick;
    Some e.output
  | None -> None

let cache_add key output =
  if !capacity > 0 then begin
    incr tick;
    if (not (Hashtbl.mem cache key)) && Hashtbl.length cache >= !capacity then
      evict_lru ();
    Hashtbl.replace cache key { output; last_used = !tick }
  end

(* ------------------------------------------------------------------ *)
(* instrumented submission                                             *)
(* ------------------------------------------------------------------ *)

module J = Vc_util.Journal

let submit session tool input =
  let pre = "portal." ^ tool.tool_name in
  T.define_histogram (pre ^ ".latency");
  T.incr (pre ^ ".submits");
  let outcome = ref "executed" and reject_reason = ref None in
  let t0 = T.now () in
  let output =
    T.time (pre ^ ".latency") (fun () ->
        let lines = List.length (String.split_on_char '\n' input) in
        if lines > tool.max_input_lines then begin
          T.incr (pre ^ ".rejected");
          outcome := "rejected";
          let reason =
            Printf.sprintf "input too large (%d lines; portal limit %d)" lines
              tool.max_input_lines
          in
          reject_reason := Some reason;
          "error: " ^ reason
        end
        else begin
          let key = cache_key tool.tool_name input in
          match cache_find key with
          | Some out ->
            T.incr (pre ^ ".cache_hits");
            T.incr "portal.cache.hits";
            outcome := "cache_hit";
            out
          | None ->
            T.incr "portal.cache.misses";
            T.incr (pre ^ ".executions");
            let out =
              T.with_span ~attrs:[ ("tool", tool.tool_name) ] "portal.execute"
                (fun () -> tool.execute input)
            in
            cache_add key out;
            out
        end)
  in
  (* one journal event per submission; a runaway rejection is an Error
     and triggers the flight-recorder dump so the operator sees the
     trailing window of activity that led up to it *)
  let latency_s = Float.max 0.0 (T.now () -. t0) in
  J.emit
    ~severity:(if !outcome = "rejected" then J.Error else J.Info)
    ~component:"portal"
    ~attrs:
      ([
         ("tool", tool.tool_name);
         ("digest", Digest.to_hex (cache_key tool.tool_name input));
         ("outcome", !outcome);
         ("latency_s", Printf.sprintf "%.6f" latency_s);
       ]
      @ match !reject_reason with
        | Some r -> [ ("reason", r) ]
        | None -> [])
    "submission";
  T.set_gauge "portal.cache.size" (float_of_int (cache_size ()));
  (match !reject_reason with
  | Some reason ->
    J.dump_flight_recorder
      ~reason:
        (Printf.sprintf "portal runaway rejection: %s: %s" tool.tool_name
           reason)
      ()
  | None -> ());
  let log =
    match Hashtbl.find_opt session tool.tool_name with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add session tool.tool_name l;
      l
  in
  log := (input, output) :: !log;
  output

let history session tool =
  match Hashtbl.find_opt session tool.tool_name with
  | Some l -> List.rev !l
  | None -> []
