(** Minimal JSON support - a value type with a strict parser, plus the
    string-building emitter helpers the observability layer renders
    with. Kept deliberately small so the repository stays free of
    third-party dependencies: {!Telemetry} and {!Journal} emit through
    it, {!Regress} and the bench [compare] subcommand parse with it, and
    the test suite validates every renderer against it. *)

(** {1 Values and parsing} *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** Fields in source order. *)

val parse : string -> t
(** Strict parse of a complete JSON document.
    @raise Failure with a position on malformed input or trailing
    garbage. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error as a [result]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_num : t -> float option
val to_str : t -> string option

(** {1 Emission}

    Emitters build JSON {e text} directly (no intermediate tree), which
    is what the hot telemetry/journal paths want. [obj] and [arr] take
    already-rendered fragments. *)

val escape : string -> string
(** Backslash-escape for inclusion inside a JSON string literal. *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val num : float -> string
(** Fixed six-decimal rendering, matching the telemetry renderers. *)

val int : int -> string

val obj : (string * string) list -> string
(** [obj [(k, rendered_v); ...]] - keys are escaped, values are used
    verbatim. *)

val arr : string list -> string
