test/test_mooc.ml: Alcotest Array Helpers List Printf String Vc_cube Vc_mooc Vc_network Vc_place Vc_route Vc_techmap Vc_two_level
