module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover

(* Implicants during merging: (mask, value). A bit set in [mask] means
   "don't care"; [value]'s bits elsewhere give the literal polarity.
   Bit k of a minterm corresponds to variable (num_vars-1-k). *)

let cube_of_implicant num_vars (mask, value) =
  let lits =
    List.filter_map
      (fun i ->
        let bit = 1 lsl (num_vars - 1 - i) in
        if mask land bit <> 0 then None else Some (i, value land bit <> 0))
      (List.init num_vars (fun i -> i))
  in
  Cube.of_literals num_vars lits

let primes ~num_vars ~on ~dc =
  let limit = 1 lsl num_vars in
  let check m =
    if m < 0 || m >= limit then invalid_arg "Qm.primes: minterm out of range"
  in
  List.iter check on;
  List.iter check dc;
  let start =
    List.sort_uniq compare (on @ dc) |> List.map (fun m -> (0, m))
  in
  let primes_acc = ref [] in
  let rec merge_pass implicants =
    if implicants = [] then ()
    else begin
      let merged = Hashtbl.create 64 in
      let next = Hashtbl.create 64 in
      let try_pair (m1, v1) (m2, v2) =
        if m1 = m2 then begin
          let diff = v1 lxor v2 in
          (* merge if the values differ in exactly one (cared) bit *)
          if diff <> 0 && diff land (diff - 1) = 0 then begin
            Hashtbl.replace merged (m1, v1) ();
            Hashtbl.replace merged (m2, v2) ();
            Hashtbl.replace next (m1 lor diff, v1 land lnot diff) ()
          end
        end
      in
      let arr = Array.of_list implicants in
      Array.iteri
        (fun i a -> Array.iteri (fun j b -> if i < j then try_pair a b) arr)
        arr;
      List.iter
        (fun imp ->
          if not (Hashtbl.mem merged imp) then primes_acc := imp :: !primes_acc)
        implicants;
      merge_pass (Hashtbl.fold (fun imp () acc -> imp :: acc) next [])
    end
  in
  merge_pass start;
  List.sort_uniq compare !primes_acc
  |> List.map (cube_of_implicant num_vars)

(* Minimum unate covering: rows are ON-set minterms, columns are primes. *)
let min_cover num_vars on_minterms prime_cubes =
  let point_of_minterm m =
    Array.init num_vars (fun i -> m land (1 lsl (num_vars - 1 - i)) <> 0)
  in
  let primes = Array.of_list prime_cubes in
  let covers p m = Cube.eval primes.(p) (point_of_minterm m) in
  let all_cols = List.init (Array.length primes) (fun i -> i) in
  (* branch and bound with essential-column extraction and row dominance *)
  let best = ref None in
  let best_size = ref max_int in
  let rec solve rows cols chosen =
    if List.length chosen >= !best_size then ()
    else
      match rows with
      | [] ->
        best_size := List.length chosen;
        best := Some chosen
      | _ -> begin
        (* essential: a row covered by exactly one available column *)
        let essential =
          List.find_map
            (fun m ->
              match List.filter (fun p -> covers p m) cols with
              | [] -> Some None (* uncoverable: dead branch *)
              | [ p ] -> Some (Some p)
              | _ :: _ :: _ -> None)
            rows
        in
        match essential with
        | Some None -> ()
        | Some (Some p) ->
          let rows = List.filter (fun m -> not (covers p m)) rows in
          let cols = List.filter (fun q -> q <> p) cols in
          solve rows cols (p :: chosen)
        | None -> begin
          (* branch on the column covering the most remaining rows *)
          let score p = List.length (List.filter (covers p) rows) in
          let p =
            List.fold_left
              (fun acc q ->
                match acc with
                | None -> Some q
                | Some r -> if score q > score r then Some q else acc)
              None cols
          in
          match p with
          | None -> ()
          | Some p ->
            (* include p *)
            solve
              (List.filter (fun m -> not (covers p m)) rows)
              (List.filter (fun q -> q <> p) cols)
              (p :: chosen);
            (* exclude p *)
            solve rows (List.filter (fun q -> q <> p) cols) chosen
        end
      end
  in
  solve on_minterms all_cols [];
  match !best with
  | Some chosen -> List.map (fun p -> primes.(p)) chosen
  | None -> if on_minterms = [] then [] else assert false

let minimize ~num_vars ~on ~dc =
  let on = List.sort_uniq compare on in
  let dc = List.sort_uniq compare dc in
  let on = List.filter (fun m -> not (List.mem m dc)) on in
  let ps = primes ~num_vars ~on ~dc in
  min_cover num_vars on ps

let minimize_cover ~(on : Cover.t) ~(dc : Cover.t) =
  let n = on.Cover.num_vars in
  if dc.Cover.num_vars <> n then
    invalid_arg "Qm.minimize_cover: width mismatch";
  let on_ms = Cover.minterms on in
  let dc_ms = Cover.minterms dc in
  Cover.make n (minimize ~num_vars:n ~on:on_ms ~dc:dc_ms)
