type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;
  execute : string -> string;
}

let guard_errors f input =
  match f input with
  | output -> output
  | exception Failure msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "error: " ^ msg

let kbdd =
  {
    tool_name = "kbdd";
    description = "BDD-based Boolean calculator with a scripting language";
    max_input_lines = 2000;
    execute =
      (fun input -> String.concat "\n" (Vc_bdd.Bdd_script.run_script input));
  }

let espresso =
  {
    tool_name = "espresso";
    description = "two-level logic minimizer on PLA files";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let pla = Vc_two_level.Pla.parse input in
          if pla.Vc_two_level.Pla.num_inputs > 16 then
            failwith "espresso portal: at most 16 inputs"
          else Vc_two_level.Pla.to_string (Vc_two_level.Espresso.minimize_pla pla));
  }

let split_sis_input input =
  let lines = String.split_on_char '\n' input in
  let rec split blif = function
    | [] -> (List.rev blif, [])
    | line :: rest when String.trim line = "%script" -> (List.rev blif, rest)
    | line :: rest -> split (line :: blif) rest
  in
  let blif, script = split [] lines in
  (String.concat "\n" blif, String.concat "\n" script)

let sis =
  {
    tool_name = "sis";
    description = "multi-level logic optimization scripts on BLIF networks";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let blif_text, script_text = split_sis_input input in
          let net = Vc_network.Blif.parse blif_text in
          let script_text =
            if String.trim script_text = "" then
              Vc_multilevel.Script.script_rugged
            else script_text
          in
          let report = Vc_multilevel.Script.run net script_text in
          String.concat "\n"
            (report.Vc_multilevel.Script.log
            @ [ ""; Vc_network.Blif.to_string report.Vc_multilevel.Script.network ]));
  }

let minisat =
  {
    tool_name = "minisat";
    description = "CDCL Boolean satisfiability solver on DIMACS CNF";
    max_input_lines = 50_000;
    execute =
      guard_errors (fun input ->
          let cnf = Vc_sat.Cnf.parse_dimacs input in
          match Vc_sat.Solver.solve cnf with
          | Vc_sat.Solver.Sat model, stats ->
            let lits =
              List.init cnf.Vc_sat.Cnf.num_vars (fun i ->
                  let v = i + 1 in
                  string_of_int (if model.(v) then v else -v))
            in
            Printf.sprintf
              "SATISFIABLE\nv %s 0\nc %d conflicts, %d decisions, %d propagations"
              (String.concat " " lits)
              stats.Vc_sat.Solver.conflicts stats.Vc_sat.Solver.decisions
              stats.Vc_sat.Solver.propagations
          | Vc_sat.Solver.Unsat, stats ->
            Printf.sprintf "UNSATISFIABLE\nc %d conflicts"
              stats.Vc_sat.Solver.conflicts
          | Vc_sat.Solver.Unknown, _ -> "UNKNOWN");
  }

let axb =
  {
    tool_name = "axb";
    description = "linear system solver for quadratic-placement homeworks";
    max_input_lines = 5000;
    execute = Vc_linalg.Axb.run;
  }

let all_tools = [ kbdd; espresso; sis; minisat; axb ]

let find_tool name = List.find_opt (fun t -> t.tool_name = name) all_tools

type session = (string, (string * string) list ref) Hashtbl.t

let create_session () : session = Hashtbl.create 8

let submit session tool input =
  let lines = List.length (String.split_on_char '\n' input) in
  let output =
    if lines > tool.max_input_lines then
      Printf.sprintf "error: input too large (%d lines; portal limit %d)" lines
        tool.max_input_lines
    else tool.execute input
  in
  let log =
    match Hashtbl.find_opt session tool.tool_name with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add session tool.tool_name l;
      l
  in
  log := (input, output) :: !log;
  output

let history session tool =
  match Hashtbl.find_opt session tool.tool_name with
  | Some l -> List.rev !l
  | None -> []
