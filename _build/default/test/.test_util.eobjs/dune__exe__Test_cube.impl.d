test/test_cube.ml: Alcotest Array Helpers List QCheck Vc_cube
