test/test_place.ml: Alcotest Array Float Helpers List Printf Vc_place Vc_util
