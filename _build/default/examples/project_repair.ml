(* Software project 2: BDD-based formal network repair, shown both through
   the grader flow and through the Repair API directly. *)

let () =
  let p = Vc_mooc.Projects.project2 in
  print_string p.Vc_mooc.Projects.p_assignment;
  print_endline "--- solving each benchmark with Repair.repair_2input ---";
  let submission = p.Vc_mooc.Projects.p_reference () in
  print_string submission;
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader submission));

  (* the API directly: which gates repair out = G?(a,b) against spec a|b? *)
  print_endline "--- all repairs for out = G?(a, b) vs spec (a | b) ---";
  let tables =
    Vc_bdd.Repair.repair_2input ~inputs:[ "a"; "b" ]
      ~spec:(Vc_cube.Expr.parse "a | b")
      ~build:(fun m ~hole -> hole (Vc_bdd.Bdd.var m "a") (Vc_bdd.Bdd.var m "b"))
  in
  List.iter (fun t -> print_endline ("  " ^ Vc_bdd.Repair.gate_name t)) tables;

  (* a wrong answer is caught *)
  print_endline "--- grading a wrong submission ---";
  let wrong = "repair gate_or AND\nrepair mux_fix XOR\nrepair carry OR\nrepair no_fix AND\n" in
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader wrong))
