(** Quine-McCluskey exact two-level minimization: prime implicant
    generation by iterative merging, then a minimum unate cover by
    essential extraction, dominance reduction and branch-and-bound.

    Exponential; intended for functions of at most ~14 inputs as the exact
    baseline the Espresso benches compare against. *)

val primes :
  num_vars:int -> on:int list -> dc:int list -> Vc_cube.Cube.t list
(** All prime implicants of the incompletely-specified function given by
    ON-set and DC-set minterm indices (bit [num_vars-1-i] of a minterm is
    variable [i], matching {!Vc_cube.Cover.truth_table}). *)

val minimize :
  num_vars:int -> on:int list -> dc:int list -> Vc_cube.Cube.t list
(** A minimum-cardinality prime cover of the ON-set (don't-cares used
    freely, never required). *)

val minimize_cover : on:Vc_cube.Cover.t -> dc:Vc_cube.Cover.t -> Vc_cube.Cover.t
(** {!minimize} on covers (expanded through truth tables; inputs <= 20). *)
