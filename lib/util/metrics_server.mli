(** A zero-dependency, single-threaded HTTP metrics exporter built on the
    [Unix] library shipped with the compiler - the live read side of the
    observability layer.

    The server owns one listening TCP socket and answers:

    - [GET /metrics] - the Prometheus text exposition produced by the
      [metrics] thunk given to {!start} (every binary passes
      [Telemetry.to_prometheus]);
    - [GET /healthz] - ["ok\n"], for load-balancer liveness checks;
    - [GET /readyz] - ["ok\n"] (200) while the process accepts work,
      ["draining\n"] (503) once the {!set_ready_probe} probe says no -
      vcserve flips it when graceful drain starts;
    - any path installed through {!register_route} - the Timeseries
      sampler adds [GET /varz] (JSON console snapshot) and
      [GET /profile] (folded stacks) this way.

    Anything else is a 404 whose body lists the live routes; non-GET
    methods are a 405. Connections are served one at a time on the
    caller's thread ([Connection: close], no keep-alive), which matches
    the single-threaded worker model of the rest of the repository: a
    scrape is a few kilobytes of text, so a serving loop keeps up with
    any reasonable scrape interval.

    Every binary under [bin/] exposes this through the
    [--metrics-port N] flag of {!Telemetry.cli}: the socket is bound (and
    the bound address announced on stderr) before the tool's main work
    starts. Port [0] asks the kernel for an ephemeral port - the
    announcement is how a test harness learns which one. *)

type t
(** A bound, listening exporter. *)

val start :
  ?addr:string ->
  ?announce:bool ->
  ?on_request:(string -> unit) ->
  metrics:(unit -> string) ->
  port:int ->
  unit ->
  t
(** [start ~metrics ~port ()] binds a listening socket on
    [addr] (default ["127.0.0.1"]) at [port] ([0] = kernel-assigned
    ephemeral port) and returns without serving anything yet. [metrics]
    is re-evaluated on every [GET /metrics], so scrapes always see
    current values. [on_request] (default: nothing) is called with the
    request path before routing - {!Telemetry.cli} uses it to count
    scrapes. Unless [announce] is [false], the bound address is printed
    to stderr as [metrics: serving http://ADDR:PORT/metrics] so the
    ephemeral port is discoverable. Also ignores [SIGPIPE] so a scraper
    hanging up mid-response cannot kill the process.
    @raise Unix.Unix_error if the bind fails (port in use, privileged
    port). *)

val port : t -> int
(** The actually-bound port - the resolved one when {!start} was given
    port [0]. *)

val handle_client : t -> Unix.file_descr -> unit
(** Serve one already-connected socket: read the request head, route it,
    write the response, and close the descriptor (always, even on a
    malformed request or client error). Exposed so tests can drive the
    routing logic over a [socketpair] without real TCP accept loops. *)

val serve : ?max_requests:int -> t -> unit
(** Accept-and-serve loop. With [max_requests] it returns after that
    many connections; without it it loops until {!stop} closes the
    socket from another context (or forever). [EINTR] is retried;
    per-connection handler errors are reported to stderr and do not
    stop the loop. *)

val serve_forever : t -> 'a
(** {!serve} without a bound; never returns normally. This is what the
    [--metrics-port] at-exit hook runs. *)

val stop : t -> unit
(** Close the listening socket. Idempotent. *)

(** {1 Extra routes and readiness}

    A process-global registry, deliberately not tied to a {!t}:
    subsystems register their surface once and every exporter in the
    process serves it. *)

type reply = { rp_status : string; rp_content_type : string; rp_body : string }
(** What a registered handler returns, e.g.
    [{ rp_status = "200 OK"; rp_content_type = "application/json";
       rp_body = ... }]. *)

val register_route : string -> (unit -> reply) -> unit
(** [register_route path handler] serves [GET path] from [handler]
    (re-evaluated per request; an exception becomes a 500). Replaces
    any previous handler at the same path.
    @raise Invalid_argument unless [path] starts with ['/']. *)

val unregister_route : string -> unit
(** Remove a registered route (404 afterwards). Idempotent. *)

val registered_routes : unit -> string list
(** The registered paths, sorted - what the 404 body advertises beyond
    the three built-ins. *)

val set_ready_probe : (unit -> bool) -> unit
(** Install the [GET /readyz] probe. Without one, [/readyz] always
    answers 200; with one, a [false] (or raising) probe answers
    [503 draining]. *)

(** {1 Client} *)

val fetch : ?host:string -> port:int -> string -> string * string
(** [fetch ~port path] performs one blocking [GET path] against
    [host:port] (default host ["127.0.0.1"]) and returns
    [(status_line, body)], e.g. [("HTTP/1.1 200 OK", "ok\n")]. Reads to
    EOF - correct against this exporter's [Connection: close] framing.
    This is what [vctop] and the smoke harnesses poll with.
    @raise Unix.Unix_error when the connection fails. *)
