module Network = Vc_network.Network
module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube

type lit = string * bool

type acube = lit list

type sop = acube list

let lit_to_string (s, pos) = if pos then s else s ^ "'"

let cube_to_string = function
  | [] -> "1"
  | lits -> String.concat "." (List.map lit_to_string lits)

let to_string = function
  | [] -> "0"
  | cubes -> String.concat " + " (List.map cube_to_string cubes)

let normalize sop =
  let clean_cube cube =
    let cube = List.sort_uniq compare cube in
    let contradictory =
      List.exists (fun (s, p) -> List.mem (s, not p) cube) cube
    in
    if contradictory then None else Some cube
  in
  List.filter_map clean_cube sop |> List.sort_uniq compare

let of_node (node : Network.node) =
  let fanins = Array.of_list node.Network.fanins in
  let cube_of c =
    List.filter_map
      (fun i ->
        match Cube.get c i with
        | Cube.Pos -> Some (fanins.(i), true)
        | Cube.Neg -> Some (fanins.(i), false)
        | Cube.Both -> None
        | Cube.Empty -> None)
      (List.init (Array.length fanins) (fun i -> i))
  in
  normalize (List.map cube_of node.Network.func.Cover.cubes)

let to_cover ~fanins sop =
  let n = List.length fanins in
  let index = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace index s i) fanins;
  let cube_of acube =
    let lits =
      List.map
        (fun (s, pos) ->
          match Hashtbl.find_opt index s with
          | Some i -> (i, pos)
          | None -> invalid_arg ("Algebraic.to_cover: unknown signal " ^ s))
        acube
    in
    Cube.of_literals n lits
  in
  Cover.make n (List.map cube_of sop)

let support sop =
  List.concat_map (List.map fst) sop |> List.sort_uniq compare

let literal_count sop = List.fold_left (fun acc c -> acc + List.length c) 0 sop

let cube_divide c d =
  if List.for_all (fun l -> List.mem l c) d then
    Some (List.filter (fun l -> not (List.mem l d)) c)
  else None

let divide f d =
  match normalize d with
  | [] -> ([], f)
  | d ->
    (* quotient = intersection over divisor cubes of {c/di | di divides c} *)
    let quotients_per_cube =
      List.map (fun di -> List.filter_map (fun c -> cube_divide c di) f) d
    in
    let quotient =
      match quotients_per_cube with
      | [] -> []
      | first :: rest ->
        List.fold_left
          (fun acc qs -> List.filter (fun c -> List.mem c qs) acc)
          first rest
    in
    let quotient = normalize quotient in
    if quotient = [] then ([], f)
    else begin
      (* remainder = f - quotient * d *)
      let product =
        List.concat_map
          (fun q -> List.map (fun di -> List.sort_uniq compare (q @ di)) d)
          quotient
      in
      let remainder = List.filter (fun c -> not (List.mem c product)) f in
      (quotient, normalize remainder)
    end

let common_cube = function
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun acc cube -> List.filter (fun l -> List.mem l cube) acc)
      first rest

let cube_free sop =
  match sop with
  | [] | [ _ ] -> false
  | _ -> common_cube sop = []

let make_cube_free sop =
  let c = common_cube sop in
  if c = [] then ([], sop)
  else
    ( c,
      normalize
        (List.map (fun cube -> List.filter (fun l -> not (List.mem l c)) cube) sop)
    )

(* Kernel enumeration (Brayton-McMullen): recursively divide by literals,
   factoring out common cubes, pruning revisits via a literal order. *)
let kernels sop =
  let sop = normalize sop in
  let lits = List.sort_uniq compare (List.concat sop) in
  let lit_index = List.mapi (fun i l -> (l, i)) lits in
  let index_of l = List.assoc l lit_index in
  let results = ref [] in
  let add cokernel kernel =
    results := (List.sort compare cokernel, kernel) :: !results
  in
  let rec explore f cokernel min_index =
    if List.length f >= 2 && common_cube f = [] then add cokernel f;
    List.iter
      (fun l ->
        let i = index_of l in
        if i >= min_index then begin
          let with_l = List.filter (fun c -> List.mem l c) f in
          if List.length with_l >= 2 then begin
            let quotient =
              normalize
                (List.map (List.filter (fun m -> m <> l)) with_l)
            in
            let c, cube_free_q = make_cube_free quotient in
            (* skip if the factored cube contains an already-tried literal:
               that kernel was found via the earlier literal *)
            let dup = List.exists (fun m -> index_of m < i) c in
            if not dup then begin
              let cokernel' = List.sort_uniq compare ((l :: c) @ cokernel) in
              if List.length cube_free_q >= 2 then add cokernel' cube_free_q;
              explore cube_free_q cokernel' (i + 1)
            end
          end
        end)
      lits
  in
  explore sop [] 0;
  (* dedupe *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (ck, k) ->
      let key = (ck, k) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (List.rev !results)

let kernel_level0 sop =
  let ks = kernels sop in
  (* a level-0 kernel has no kernels other than itself *)
  let is_level0 k =
    List.for_all (fun (_, k') -> k' = k) (kernels k)
  in
  match List.filter (fun (_, k) -> is_level0 k) ks with
  | (_, k) :: _ -> Some k
  | [] -> None

let most_common_literal sop =
  let counts = Hashtbl.create 16 in
  List.iter
    (List.iter (fun l ->
         Hashtbl.replace counts l
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))))
    sop;
  Hashtbl.fold
    (fun l n best ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ when n >= 2 -> Some (l, n)
      | _ -> best)
    counts None
  |> Option.map fst
