lib/multilevel/dc.mli: Vc_cube Vc_network
