(** The full routing problem: a set of multi-pin nets on one grid, net
    ordering, and rip-up-and-reroute - plus the text formats the routing
    project used (problem download, solution upload). *)

type net_spec = { rn_name : string; rn_pins : (int * int) list }

type problem = {
  grid_width : int;
  grid_height : int;
  cost_params : Grid.cost_params;
  obstacles : Grid.point list;
  net_specs : net_spec list;
}

type routed = {
  r_name : string;
  r_paths : Maze.path list;  (** Empty when the net failed. *)
  r_ok : bool;
}

type result = {
  routed : routed list;
  grid : Grid.t;
  completed : int;
  total : int;
  wirelength : int;  (** Total occupied cells across routed nets. *)
  vias : int;
}

val parse_problem : string -> problem
(** Text format:
    {v
    grid <width> <height>
    cost step bend via wrong_way      (optional)
    obstacle <layer> <x> <y>
    net <name> <x> <y> [<x> <y> ...]
    v} *)

val problem_to_string : problem -> string

val route :
  ?order:[ `Given | `Short_first | `Long_first ] ->
  ?rip_up_passes:int ->
  problem ->
  result
(** Default: [`Short_first] ordering, 2 rip-up passes. A rip-up pass
    releases and re-queues every failed net together with the routed nets
    whose bounding boxes intersect its pins' bounding box, then routes the
    queue again. *)

val solution_to_string : result -> string
(** The student upload format of project 4:
    one [net <name>] header, then [<layer> <x> <y>] lines tracing each
    path, then [endnet]. Failed nets are omitted. *)
