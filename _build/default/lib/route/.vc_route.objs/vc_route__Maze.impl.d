lib/route/maze.ml: Grid Hashtbl List Vc_util
