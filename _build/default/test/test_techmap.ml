open Helpers
module Cell_lib = Vc_techmap.Cell_lib
module Subject = Vc_techmap.Subject
module Map = Vc_techmap.Map
module Network = Vc_network.Network
module Expr = Vc_cube.Expr

let sample_network () =
  Network.of_exprs ~name:"sample" ~inputs:(var_names 4)
    [
      ("f", Expr.parse "v0 v1 + v2 (v1 + v3)");
      ("g", Expr.parse "!(v0 v1) + v2 v3");
    ]

(* brute-force compare network and a mapped/subject evaluator on all inputs *)
let agree_on_all_inputs net eval_outputs =
  let inputs = Network.inputs net in
  let n = List.length inputs in
  List.for_all
    (fun row ->
      let env v =
        let rec index i = function
          | [] -> -1
          | x :: rest -> if x = v then i else index (i + 1) rest
        in
        row land (1 lsl index 0 inputs) <> 0
      in
      let expected = Network.simulate net env in
      let got = eval_outputs env in
      List.for_all (fun (o, v) -> List.assoc o got = v) expected)
    (List.init (1 lsl n) (fun i -> i))

let cell_lib_tests =
  [
    tc "leaves counts arity" (fun () ->
        List.iter
          (fun c ->
            check Alcotest.int c.Cell_lib.cell_name c.Cell_lib.arity
              (Cell_lib.leaves c.Cell_lib.pattern))
          (Cell_lib.standard ()));
    tc "standard library contents" (fun () ->
        let cells = Cell_lib.standard () in
        List.iter
          (fun name ->
            check Alcotest.bool name true (Cell_lib.find cells name <> None))
          [ "INV"; "NAND2"; "NAND3"; "NAND4"; "AND2"; "OR2"; "NOR2"; "AOI21" ]);
    tc "bigger cells cost more area but amortize" (fun () ->
        let cells = Cell_lib.standard () in
        let area n =
          match Cell_lib.find cells n with
          | Some c -> c.Cell_lib.area
          | None -> Alcotest.failf "missing %s" n
        in
        (* NAND3 cheaper than NAND2 + INV + NAND2 *)
        check Alcotest.bool "amortized" true
          (area "NAND3" < area "NAND2" +. area "INV" +. area "NAND2"));
    tc "minimal library is INV + NAND2" (fun () ->
        check Alcotest.int "two cells" 2 (List.length (Cell_lib.minimal ())));
  ]

let subject_tests =
  [
    tc "subject graph computes the network" (fun () ->
        let net = sample_network () in
        let s = Subject.of_network net in
        check Alcotest.bool "functional" true
          (agree_on_all_inputs net (fun env -> Subject.simulate s env)));
    tc "hash consing shares structure" (fun () ->
        (* two outputs computing the same function share the whole cone *)
        let net =
          Network.of_exprs ~inputs:[ "a"; "b" ]
            [ ("x", Expr.parse "a & b"); ("y", Expr.parse "a & b") ]
        in
        let s = Subject.of_network net in
        match s.Subject.outputs with
        | [ (_, i); (_, j) ] -> check Alcotest.int "same node" i j
        | _ -> Alcotest.fail "two outputs");
    tc "double inversion collapses" (fun () ->
        let net =
          Network.of_exprs ~inputs:[ "a"; "b" ] [ ("x", Expr.parse "!(!(a & b))") ]
        in
        let s = Subject.of_network net in
        (* x = AND(a,b) = INV(NAND): 1 nand + 1 inv, no inv chains *)
        check Alcotest.int "nands" 1 (Subject.nand_count s);
        check Alcotest.int "invs" 1 (Subject.inv_count s));
    tc "dead intermediates are pruned" (fun () ->
        (* ab + c: the AND's INV is collapsed away; it must not linger and
           inflate fanout counts *)
        let net =
          Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("f", Expr.parse "a b + c") ]
        in
        let s = Subject.of_network net in
        Array.iteri
          (fun id n ->
            match n with
            | Subject.S_input _ -> ()
            | Subject.S_inv _ | Subject.S_nand _ ->
              let is_output =
                List.exists (fun (_, oid) -> oid = id) s.Subject.outputs
              in
              if s.Subject.fanout.(id) = 0 && not is_output then
                Alcotest.failf "dead node %d survived" id)
          s.Subject.nodes);
    tc "constant node rejected with guidance" (fun () ->
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"f" ~fanins:[] ~func:(Vc_cube.Cover.top 0);
        match Subject.of_network t with
        | exception Failure msg ->
          check Alcotest.bool "mentions sweep" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected failure");
    prop ~count:60 "random networks decompose faithfully"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let net = random_network seed in
        match Subject.of_network net with
        | s -> agree_on_all_inputs net (fun env -> Subject.simulate s env)
        | exception Failure _ -> true (* constant output: documented limit *));
  ]

let map_tests =
  [
    tc "cover is functionally correct (both modes)" (fun () ->
        let net = sample_network () in
        let s = Subject.of_network net in
        List.iter
          (fun mode ->
            let m = Map.cover ~mode (Cell_lib.standard ()) s in
            check Alcotest.bool "functional" true
              (agree_on_all_inputs net (fun env -> Map.simulate m env)))
          [ Map.Min_area; Map.Min_delay ]);
    tc "objectives dominate their own metric" (fun () ->
        let net =
          Network.of_exprs ~inputs:(var_names 4)
            [
              ("deep", Expr.parse "v0 & v1 & v2 & v3");
              ("wide", Expr.parse "v0 v1 + v2 v3 + v0 v2");
            ]
        in
        let s = Subject.of_network net in
        let ma = Map.cover ~mode:Map.Min_area (Cell_lib.standard ()) s in
        let md = Map.cover ~mode:Map.Min_delay (Cell_lib.standard ()) s in
        check Alcotest.bool "area order" true (ma.Map.area <= md.Map.area +. 1e-9);
        check Alcotest.bool "delay order" true
          (md.Map.delay <= ma.Map.delay +. 1e-9));
    tc "richer library never hurts area" (fun () ->
        let net = sample_network () in
        let s = Subject.of_network net in
        let rich = Map.cover (Cell_lib.standard ()) s in
        let poor = Map.cover (Cell_lib.minimal ()) s in
        check Alcotest.bool "library helps" true
          (rich.Map.area <= poor.Map.area +. 1e-9));
    tc "gate list is topologically ordered" (fun () ->
        let net = sample_network () in
        let m = Map.map_network (Cell_lib.standard ()) net in
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (_, id) -> Hashtbl.replace seen id ())
          m.Map.subject.Subject.inputs;
        List.iter
          (fun (g : Map.gate) ->
            List.iter
              (fun input ->
                match m.Map.subject.Subject.nodes.(input) with
                | Subject.S_input _ -> ()
                | Subject.S_nand _ | Subject.S_inv _ ->
                  if not (Hashtbl.mem seen input) then
                    Alcotest.fail "input gate not yet emitted")
              g.Map.g_inputs;
            Hashtbl.replace seen g.Map.g_output ())
          m.Map.gates);
    tc "area is the sum of chosen cells" (fun () ->
        let net = sample_network () in
        let m = Map.map_network (Cell_lib.standard ()) net in
        let total =
          List.fold_left
            (fun acc (g : Map.gate) -> acc +. g.Map.g_cell.Cell_lib.area)
            0.0 m.Map.gates
        in
        check (Alcotest.float 1e-9) "sum" total m.Map.area);
    prop ~count:60 "random networks map correctly"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let net = random_network seed in
        match Map.map_network (Cell_lib.standard ()) net with
        | m -> agree_on_all_inputs net (fun env -> Map.simulate m env)
        | exception Failure _ -> true);
    prop ~count:40 "minimal library suffices for any subject graph"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let net = random_network seed in
        match Map.map_network (Cell_lib.minimal ()) net with
        | m -> agree_on_all_inputs net (fun env -> Map.simulate m env)
        | exception Failure _ -> true);
    tc "complex cells actually win matches" (fun () ->
        (* ab + c maps to a single AO21 *)
        let net =
          Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("f", Expr.parse "a b + c") ]
        in
        let m = Map.map_network (Cell_lib.standard ()) net in
        check Alcotest.int "one gate" 1 (Map.gate_count m);
        match m.Map.gates with
        | [ g ] -> check Alcotest.string "AO21" "AO21" g.Map.g_cell.Cell_lib.cell_name
        | _ -> Alcotest.fail "single gate expected");
    tc "XOR2 matches through repeated leaf slots" (fun () ->
        let net =
          Network.of_exprs ~inputs:[ "a"; "b" ] [ ("x", Expr.parse "a ^ b") ]
        in
        let m = Map.map_network (Cell_lib.standard ()) net in
        check Alcotest.bool "uses XOR2" true
          (List.exists
             (fun (g : Map.gate) -> g.Map.g_cell.Cell_lib.cell_name = "XOR2")
             m.Map.gates);
        check Alcotest.bool "functional" true
          (agree_on_all_inputs net (fun env -> Map.simulate m env)));
    tc "to_string renders a netlist" (fun () ->
        let net = sample_network () in
        let m = Map.map_network (Cell_lib.standard ()) net in
        let s = Map.to_string m in
        check Alcotest.bool "mentions outputs" true
          (String.length s > 0));
  ]

let () =
  Alcotest.run "techmap"
    [
      ("cell_lib", cell_lib_tests);
      ("subject", subject_tests);
      ("map", map_tests);
    ]
