(** A SIS-like scripting surface over the multi-level operators: the
    command language of the course's multi-level portal tool.

    Commands (one per line, [#] comments):
    {v
    read_blif <inline not supported: scripts run against a loaded network>
    sweep                remove dead logic, constants, wires
    simplify             Espresso each node
    full_simplify        Espresso each node against its SDC don't-cares
    fx                   extract kernels then cubes (fast_extract analogue)
    gkx                  kernel extraction only
    gcx                  cube extraction only
    resub                algebraic resubstitution
    eliminate <k>        collapse nodes with value <= k
    collapse <node>      force-collapse one node
    print_stats          nodes / literals / depth
    print_factor <node>  factored form of a node
    v} *)

type report = { log : string list; network : Vc_network.Network.t }

val run : Vc_network.Network.t -> string -> report
(** Execute a script against a copy of the network. Unknown commands are
    reported inline and skipped (portal behaviour). *)

val script_rugged : string
(** The course's canned optimization script (a rugged-script analogue):
    sweep; simplify; fx; resub; sweep; eliminate 0; simplify. *)
