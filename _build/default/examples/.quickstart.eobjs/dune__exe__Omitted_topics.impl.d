examples/omitted_topics.ml: Array List Printf String Vc_cube Vc_multilevel Vc_network Vc_place Vc_route Vc_techmap Vc_timing
