examples/project_repair.mli:
