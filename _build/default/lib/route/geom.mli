(** Computational geometry for layout: the traditional course's
    "Geometry and DRC" area (scanline algorithms, rectangle Booleans,
    design-rule checking) - omitted from the MOOC, implemented here as an
    extension operating on the router's output.

    Rectangles are integer, axis-aligned, half-open: [x0 <= x < x1],
    [y0 <= y < y1]. *)

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

val rect : int -> int -> int -> int -> rect
(** [rect x0 y0 x1 y1]. @raise Invalid_argument if degenerate. *)

val area : rect -> int

val intersects : rect -> rect -> bool
(** Positive-area overlap (touching edges do not intersect). *)

val intersection : rect -> rect -> rect option

val union_area : rect list -> int
(** Area of the union, by vertical scanline with interval merging -
    overlaps counted once. O(n^2) per event line; fine at layout scale. *)

val overlapping_pairs : rect list -> (int * int) list
(** Index pairs of rectangles with positive-area overlap (sweep line). *)

val expand : int -> rect -> rect
(** Grow by a margin on every side (for spacing checks). *)

type violation = {
  v_rule : [ `Spacing of int | `Overlap ];
  v_a : int;  (** Rectangle indices into the checked list. *)
  v_b : int;
}

val check_spacing : spacing:int -> rect list -> violation list
(** Pairs closer than [spacing] (edge-to-edge, including diagonal
    proximity) but not overlapping; overlapping pairs are reported as
    [`Overlap] violations instead. *)

val wires_of_layer : Grid.t -> int -> rect list * int list
(** Maximal horizontal strips of occupied cells on a layer of a routed
    grid (one rect per run), and the owning net id per rect. *)

val drc_check : ?spacing:int -> Router.result -> violation list * rect list
(** Design-rule check of a routed layout: per layer, merge each net's
    cells into strips and report spacing violations between *different*
    nets (default spacing 1 means nets must not be edge-adjacent...
    which legal maze routes may be, so the default is 0: overlaps only).
    Returns the violations and the checked rectangles. *)
