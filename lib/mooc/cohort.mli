(** Generative model of the MOOC's participant population, calibrated to
    the paper's Section 4 numbers, and the analysis code that regenerates
    the participation funnel (Fig. 8) and the per-lecture viewer series
    (Fig. 9).

    The paper reports: ~17,500 registered at peak; 7,191 watched a video;
    1,377 did a homework; 369 tried a software project; 530 took the final;
    386 earned certificates. Stage probabilities below are those ratios;
    the simulation draws each participant's journey and the analysis
    aggregates - so expected values match the paper and sampled values land
    within binomial noise. *)

type participant = {
  id : int;
  watched : int;  (** Videos watched: 0 if never showed up, else 1-69. *)
  did_homework : bool;
  tried_software : bool;
  took_final : bool;
  certificate : bool;
}

type params = {
  registered : int;
  p_watch : float;  (** Watched at least one video. *)
  p_completer : float;  (** Of watchers: watches everything. *)
  p_continue : float;  (** Of non-completers: per-video survival. *)
  p_homework : float;  (** Of watchers. *)
  p_software : float;  (** Of homework-doers. *)
  p_final : float;  (** Of homework-doers. *)
  p_cert : float;  (** Of final-takers. *)
}

val paper_params : params
(** Calibrated to the DAC'14 numbers. *)

val simulate : ?seed:int -> params -> participant list
(** Draw the cohort. Also journals the run (component ["cohort"]): one
    ["cohort.simulated"] event plus one ["funnel.stage"] event per
    funnel level in order (attributes [stage], [count]) - the input of
    [vcstat funnel] ({!Vc_util.Journal_query.funnel_of}). *)

val iter_participants : ?seed:int -> params -> (participant -> unit) -> unit
(** Streaming generation: draw each participant in id order and hand it
    to the callback without materializing the cohort, so memory use is
    constant in [params.registered] - the path to millions of simulated
    participants. Draw-for-draw identical to {!simulate} under the same
    seed (default 2013); emits no journal events. *)

type funnel = {
  registered : int;
  watched_video : int;
  did_homework : int;
  tried_software : int;
  took_final : int;
  certificates : int;
}

val funnel_of : participant list -> funnel

val streamed_funnel : ?seed:int -> params -> funnel
(** [funnel_of (simulate ~seed params)] at constant memory, built on
    {!iter_participants}; emits no journal events. *)

val paper_funnel : funnel
(** The exact numbers from Fig. 8 (registered listed as 17,500). *)

val viewers_per_video : participant list -> int array
(** Length 69: how many participants watched each video (Fig. 9). *)

val render_fig8 : funnel -> string

val render_fig9 : int array -> string
(** Bar chart with the paper's three reference lines (EDA-vendor
    headcount ~7,000, DAC'13 attendance ~5,000, 40-years-of-classes
    ~2,000). *)
