lib/timing/tgraph.mli: Vc_techmap
