(* Append-only keyed spill files with an in-memory index - the disk
   tier under the portal result cache.

   Record layout (little-endian lengths):

     offset  size  field
     0       2     magic "VS"
     2       1     format version (1)
     3       1     key length K
     4       4     payload length N (u32le)
     8       K     key bytes
     8+K     N     payload bytes
     8+K+N   4     checksum: first 4 bytes of MD5(key ^ payload)

   A lane file is a sequence of records; the latest record for a key
   wins. Opening a store replays each lane front to back and stops at
   the first record that is truncated or fails its checksum - the valid
   prefix is kept and the file is truncated back to it, so appends
   after a torn write never land behind garbage. Appends are raw
   Unix.write calls (no userland buffering): once append returns the
   record is in the OS page cache and survives the process dying. *)

type entry = { e_off : int; e_dlen : int (* record start, payload len *) }

type lane = {
  ln_mu : Mutex.t;
  ln_path : string;
  mutable ln_fd : Unix.file_descr;
  ln_tbl : (string, entry) Hashtbl.t;
  mutable ln_size : int; (* file bytes *)
  mutable ln_live : int; (* bytes of live (latest-per-key) records *)
}

type t = {
  st_dir : string;
  st_lanes : lane array;
  st_compact_bytes : int;
  mutable st_closed : bool;
}

let header_bytes = 8
let trailer_bytes = 4
let record_bytes klen dlen = header_bytes + klen + dlen + trailer_bytes
let checksum key data = String.sub (Digest.string (key ^ data)) 0 trailer_bytes

let lane_path dir i = Filename.concat dir (Printf.sprintf "lane-%02d.spill" i)

let lane_of t key =
  let d = Digest.string key in
  let a = t.st_lanes in
  a.(((Char.code d.[0] lsl 8) lor Char.code d.[1]) mod Array.length a)

let encode_record key data =
  let klen = String.length key and dlen = String.length data in
  if klen > 0xff then invalid_arg "Cache_store: key longer than 255 bytes";
  let b = Buffer.create (record_bytes klen dlen) in
  Buffer.add_string b "VS";
  Buffer.add_char b '\001';
  Buffer.add_char b (Char.chr klen);
  Buffer.add_char b (Char.chr (dlen land 0xff));
  Buffer.add_char b (Char.chr ((dlen lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((dlen lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((dlen lsr 24) land 0xff));
  Buffer.add_string b key;
  Buffer.add_string b data;
  Buffer.add_string b (checksum key data);
  Buffer.contents b

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

(* Read exactly [len] bytes at [off]; None on short read. *)
let read_at fd ~off ~len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec go got =
    if got >= len then Some (Bytes.unsafe_to_string b)
    else
      match Unix.read fd b got (len - got) with
      | 0 -> None
      | n -> go (got + n)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

(* Replay one lane file into [tbl]; returns (valid_bytes, live_bytes).
   Any malformed, truncated or checksum-failing record ends the scan at
   the last good offset. *)
let replay_file ic tbl =
  let live = ref 0 in
  let valid = ref 0 in
  (try
     while true do
       let pos = !valid in
       let header = Bytes.create header_bytes in
       really_input ic header 0 header_bytes;
       if Bytes.get header 0 <> 'V' || Bytes.get header 1 <> 'S' then raise Exit;
       if Bytes.get header 2 <> '\001' then raise Exit;
       let klen = Char.code (Bytes.get header 3) in
       let dlen =
         Char.code (Bytes.get header 4)
         lor (Char.code (Bytes.get header 5) lsl 8)
         lor (Char.code (Bytes.get header 6) lsl 16)
         lor (Char.code (Bytes.get header 7) lsl 24)
       in
       let key = really_input_string ic klen in
       let data = really_input_string ic dlen in
       let sum = really_input_string ic trailer_bytes in
       if sum <> checksum key data then raise Exit;
       (match Hashtbl.find_opt tbl key with
       | Some prev ->
         live := !live - record_bytes klen prev.e_dlen
       | None -> ());
       Hashtbl.replace tbl key { e_off = pos; e_dlen = dlen };
       live := !live + record_bytes klen dlen;
       valid := pos + record_bytes klen dlen
     done
   with End_of_file | Exit -> ());
  (!valid, !live)

let open_lane path =
  let tbl = Hashtbl.create 256 in
  let valid, live =
    if Sys.file_exists path then
      In_channel.with_open_bin path (fun ic -> replay_file ic tbl)
    else (0, 0)
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (* drop any torn tail so future appends follow the last good record *)
  if (Unix.fstat fd).Unix.st_size > valid then Unix.ftruncate fd valid;
  {
    ln_mu = Mutex.create ();
    ln_path = path;
    ln_fd = fd;
    ln_tbl = tbl;
    ln_size = valid;
    ln_live = live;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store ?(lanes = 8) ?(compact_bytes = 1 lsl 20) dir =
  if lanes < 1 || lanes > 256 then
    invalid_arg "Cache_store.open_store: lanes out of range";
  mkdir_p dir;
  (* an existing store reopens with the lane count it was written with,
     so every old record stays reachable under its original lane *)
  let existing =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           try Scanf.sscanf f "lane-%02d.spill%!" (fun i -> Some i)
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
  in
  let n = match existing with [] -> lanes | l -> 1 + List.fold_left max 0 l in
  {
    st_dir = dir;
    st_lanes = Array.init n (fun i -> open_lane (lane_path dir i));
    st_compact_bytes = compact_bytes;
    st_closed = false;
  }

let dir t = t.st_dir
let lanes t = Array.length t.st_lanes

let check_open t = if t.st_closed then invalid_arg "Cache_store: closed"

let read_verified ln key e =
  let klen = String.length key in
  match
    read_at ln.ln_fd
      ~off:(e.e_off + header_bytes + klen)
      ~len:(e.e_dlen + trailer_bytes)
  with
  | Some blob ->
    let data = String.sub blob 0 e.e_dlen in
    if String.sub blob e.e_dlen trailer_bytes = checksum key data then
      Some data
    else None
  | None -> None

(* ------------------------------------------------------------------ *)
(* compaction                                                          *)
(* ------------------------------------------------------------------ *)

(* Call with the lane mutex held: rewrite the live records to a temp
   file, rename it into place and swap descriptors. *)
let compact_locked ln =
  let tmp = ln.ln_path ^ ".tmp" in
  let out = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let fresh = Hashtbl.create (Hashtbl.length ln.ln_tbl) in
  let pos = ref 0 in
  (match
     Hashtbl.iter
       (fun key e ->
         match read_verified ln key e with
         | Some data ->
           write_all out (encode_record key data);
           Hashtbl.replace fresh key { e_off = !pos; e_dlen = e.e_dlen };
           pos := !pos + record_bytes (String.length key) e.e_dlen
         | None -> () (* damaged record: drop it *))
       ln.ln_tbl
   with
  | () -> ()
  | exception e ->
    (try Unix.close out with Unix.Unix_error _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Unix.fsync out;
  Unix.close out;
  Unix.rename tmp ln.ln_path;
  (try Unix.close ln.ln_fd with Unix.Unix_error _ -> ());
  ln.ln_fd <- Unix.openfile ln.ln_path [ Unix.O_RDWR ] 0o644;
  Hashtbl.reset ln.ln_tbl;
  Hashtbl.iter (fun k v -> Hashtbl.add ln.ln_tbl k v) fresh;
  ln.ln_size <- !pos;
  ln.ln_live <- !pos

let maybe_compact_locked t ln =
  let dead = ln.ln_size - ln.ln_live in
  if dead > ln.ln_live && dead > t.st_compact_bytes then compact_locked ln

(* ------------------------------------------------------------------ *)
(* operations                                                          *)
(* ------------------------------------------------------------------ *)

let append t ~key data =
  check_open t;
  let ln = lane_of t key in
  Mutex.protect ln.ln_mu (fun () ->
      let record = encode_record key data in
      ignore (Unix.lseek ln.ln_fd ln.ln_size Unix.SEEK_SET);
      write_all ln.ln_fd record;
      let klen = String.length key in
      (match Hashtbl.find_opt ln.ln_tbl key with
      | Some prev -> ln.ln_live <- ln.ln_live - record_bytes klen prev.e_dlen
      | None -> ());
      Hashtbl.replace ln.ln_tbl key
        { e_off = ln.ln_size; e_dlen = String.length data };
      ln.ln_size <- ln.ln_size + String.length record;
      ln.ln_live <- ln.ln_live + String.length record;
      maybe_compact_locked t ln)

let find t key =
  check_open t;
  let ln = lane_of t key in
  Mutex.protect ln.ln_mu (fun () ->
      match Hashtbl.find_opt ln.ln_tbl key with
      | Some e -> read_verified ln key e
      | None -> None)

let mem t key =
  check_open t;
  let ln = lane_of t key in
  Mutex.protect ln.ln_mu (fun () -> Hashtbl.mem ln.ln_tbl key)

let length t =
  check_open t;
  Array.fold_left
    (fun acc ln ->
      acc + Mutex.protect ln.ln_mu (fun () -> Hashtbl.length ln.ln_tbl))
    0 t.st_lanes

let iter t f =
  check_open t;
  Array.iter
    (fun ln ->
      (* snapshot the index under the lock, read outside per entry
         re-acquiring it - [f] may call back into the store *)
      let entries =
        Mutex.protect ln.ln_mu (fun () ->
            Hashtbl.fold (fun k e acc -> (k, e) :: acc) ln.ln_tbl [])
      in
      List.iter
        (fun (key, e) ->
          match Mutex.protect ln.ln_mu (fun () -> read_verified ln key e) with
          | Some data -> f key data
          | None -> ())
        entries)
    t.st_lanes

let live_bytes t =
  check_open t;
  Array.fold_left
    (fun acc ln -> acc + Mutex.protect ln.ln_mu (fun () -> ln.ln_live))
    0 t.st_lanes

let file_bytes t =
  check_open t;
  Array.fold_left
    (fun acc ln -> acc + Mutex.protect ln.ln_mu (fun () -> ln.ln_size))
    0 t.st_lanes

let compact t =
  check_open t;
  Array.fold_left
    (fun acc ln ->
      acc
      + Mutex.protect ln.ln_mu (fun () ->
            let before = ln.ln_size in
            compact_locked ln;
            before - ln.ln_size))
    0 t.st_lanes

let close t =
  if not t.st_closed then begin
    t.st_closed <- true;
    Array.iter
      (fun ln ->
        Mutex.protect ln.ln_mu (fun () ->
            try Unix.close ln.ln_fd with Unix.Unix_error _ -> ()))
      t.st_lanes
  end
