bin/axb.ml: In_channel Sys Vc_linalg
