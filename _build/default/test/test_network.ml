open Helpers
module Network = Vc_network.Network
module Blif = Vc_network.Blif
module Equiv = Vc_network.Equiv
module Expr = Vc_cube.Expr
module Cover = Vc_cube.Cover

let two_level_net () =
  let t =
    Network.create ~name:"tl" ~inputs:[ "a"; "b"; "c" ] ~outputs:[ "f" ] ()
  in
  Network.add_node t ~name:"u" ~fanins:[ "a"; "b" ]
    ~func:(Cover.of_strings 2 [ "11" ]);
  Network.add_node t ~name:"f" ~fanins:[ "u"; "c" ]
    ~func:(Cover.of_strings 2 [ "1-"; "-1" ]);
  t

let network_tests =
  [
    tc "add_node validations" (fun () ->
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "y" ] () in
        Alcotest.check_raises "redefine input"
          (Invalid_argument "Network.add_node: a is a primary input") (fun () ->
            Network.add_node t ~name:"a" ~fanins:[] ~func:(Cover.top 0));
        Alcotest.check_raises "width"
          (Invalid_argument
             "Network.add_node: function width differs from fanin count")
          (fun () ->
            Network.add_node t ~name:"y" ~fanins:[ "a" ] ~func:(Cover.top 2)));
    tc "simulate" (fun () ->
        let t = two_level_net () in
        let run a b c =
          let env = function "a" -> a | "b" -> b | "c" -> c | _ -> false in
          List.assoc "f" (Network.simulate t env)
        in
        check Alcotest.bool "ab" true (run true true false);
        check Alcotest.bool "c" true (run false false true);
        check Alcotest.bool "none" false (run true false false));
    tc "topological order respects fanins" (fun () ->
        let order = Network.topological_order (two_level_net ()) in
        let pos x =
          let rec go i = function
            | [] -> -1
            | y :: rest -> if x = y then i else go (i + 1) rest
          in
          go 0 order
        in
        check Alcotest.bool "u before f" true (pos "u" < pos "f"));
    tc "cycle detected" (fun () ->
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "x" ] () in
        Network.add_node t ~name:"x" ~fanins:[ "y" ]
          ~func:(Cover.of_strings 1 [ "1" ]);
        Network.add_node t ~name:"y" ~fanins:[ "x" ]
          ~func:(Cover.of_strings 1 [ "1" ]);
        match Network.topological_order t with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected cycle error");
    tc "undefined signal detected" (fun () ->
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "x" ] () in
        Network.add_node t ~name:"x" ~fanins:[ "ghost" ]
          ~func:(Cover.of_strings 1 [ "1" ]);
        match Network.check t with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    tc "fanouts and depth" (fun () ->
        let t = two_level_net () in
        check Alcotest.(list string) "a feeds u" [ "u" ] (Network.fanouts t "a");
        check Alcotest.int "depth 2" 2 (Network.depth t));
    tc "literal count" (fun () ->
        check Alcotest.int "2 + 2" 4 (Network.literal_count (two_level_net ())));
    prop ~count:100 "output_expr collapses correctly" (arbitrary_expr ())
      (fun e ->
        let t =
          Network.of_exprs ~inputs:(var_names 4) [ ("out", e) ]
        in
        Expr.equivalent e (Network.output_expr t "out"));
    prop ~count:60 "of_exprs simulate matches expression" (arbitrary_expr ())
      (fun e ->
        let t = Network.of_exprs ~inputs:(var_names 4) [ ("out", e) ] in
        List.for_all
          (fun row ->
            let env v =
              let i = int_of_string (String.sub v 1 (String.length v - 1)) in
              row land (1 lsl i) <> 0
            in
            List.assoc "out" (Network.simulate t env) = Expr.eval env e)
          (List.init 16 (fun i -> i)));
    tc "copy isolates mutation" (fun () ->
        let t = two_level_net () in
        let t' = Network.copy t in
        Network.remove_node t' "u";
        check Alcotest.bool "original intact" true
          (Network.find_node t "u" <> None));
  ]

let blif_tests =
  [
    tc "parse a canonical file" (fun () ->
        let t =
          Blif.parse
            ".model test\n.inputs a b c\n.outputs f\n.names a b u\n11 1\n\
             .names u c f\n1- 1\n-1 1\n.end\n"
        in
        check Alcotest.string "name" "test" (Network.name t);
        check Alcotest.int "nodes" 2 (Network.node_count t);
        let env = function "a" -> true | "b" -> true | _ -> false in
        check Alcotest.bool "sim" true (List.assoc "f" (Network.simulate t env)));
    tc "off-set style rows" (fun () ->
        (* f defined by its 0-rows: f = NOT(a AND b) *)
        let t =
          Blif.parse ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        in
        let env a b = function "a" -> a | "b" -> b | _ -> false in
        check Alcotest.bool "00 -> 1" true
          (List.assoc "f" (Network.simulate t (env false false)));
        check Alcotest.bool "11 -> 0" false
          (List.assoc "f" (Network.simulate t (env true true))));
    tc "constant nodes" (fun () ->
        let t =
          Blif.parse
            ".model m\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.end\n"
        in
        let env _ = false in
        check Alcotest.bool "const 1" true (List.assoc "f" (Network.simulate t env));
        check Alcotest.bool "const 0" false (List.assoc "g" (Network.simulate t env)));
    tc "latches rejected" (fun () ->
        match Blif.parse ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n" with
        | exception Failure msg ->
          check Alcotest.bool "mentions latch" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected failure");
    tc "continuation lines" (fun () ->
        let t =
          Blif.parse
            ".model m\n.inputs a b \\\nc d\n.outputs f\n.names a b c d f\n1111 1\n.end\n"
        in
        check Alcotest.int "four inputs" 4 (List.length (Network.inputs t)));
    prop ~count:60 "round trip preserves behaviour" (arbitrary_expr ())
      (fun e ->
        let t = Network.of_exprs ~inputs:(var_names 4) [ ("out", e) ] in
        let t' = Blif.parse (Blif.to_string t) in
        Equiv.equivalent t t');
  ]

let equiv_tests =
  [
    tc "interface mismatch rejected" (fun () ->
        let a = Network.of_exprs ~inputs:[ "x" ] [ ("o", Expr.Var "x") ] in
        let b = Network.of_exprs ~inputs:[ "y" ] [ ("o", Expr.Var "y") ] in
        match Equiv.check a b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    prop ~count:80 "both engines agree with expression equivalence"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ()))
      (fun (e1, e2) ->
        (* keep supports identical by OR-ing in all variables times zero *)
        let pad e =
          List.fold_left
            (fun acc v -> Expr.Or (acc, Expr.And (Expr.Const false, Expr.Var v)))
            e (var_names 4)
        in
        let a = Network.of_exprs ~inputs:(var_names 4) [ ("o", pad e1) ] in
        let b = Network.of_exprs ~inputs:(var_names 4) [ ("o", pad e2) ] in
        let expected = Expr.equivalent e1 e2 in
        Equiv.equivalent ~engine:Equiv.Bdd_engine a b = expected
        && Equiv.equivalent ~engine:Equiv.Sat_engine a b = expected);
    prop ~count:60 "counterexamples distinguish the networks"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ()))
      (fun (e1, e2) ->
        let pad e =
          List.fold_left
            (fun acc v -> Expr.Or (acc, Expr.And (Expr.Const false, Expr.Var v)))
            e (var_names 4)
        in
        let a = Network.of_exprs ~inputs:(var_names 4) [ ("o", pad e1) ] in
        let b = Network.of_exprs ~inputs:(var_names 4) [ ("o", pad e2) ] in
        match Equiv.check a b with
        | Equiv.Equivalent -> Expr.equivalent e1 e2
        | Equiv.Different (assignment, out) ->
          out = "o"
          &&
          let env v = Option.value ~default:false (List.assoc_opt v assignment) in
          List.assoc "o" (Network.simulate a env)
          <> List.assoc "o" (Network.simulate b env));
    tc "multi-output difference localized" (fun () ->
        let a =
          Network.of_exprs ~inputs:[ "x"; "y" ]
            [ ("same", Expr.parse "x & y"); ("diff", Expr.parse "x | y") ]
        in
        let b =
          Network.of_exprs ~inputs:[ "x"; "y" ]
            [ ("same", Expr.parse "x & y"); ("diff", Expr.parse "x ^ y") ]
        in
        match Equiv.check a b with
        | Equiv.Different (_, "diff") -> ()
        | Equiv.Different (_, o) -> Alcotest.failf "wrong output %s" o
        | Equiv.Equivalent -> Alcotest.fail "should differ");
  ]

let () =
  Alcotest.run "network"
    [
      ("network", network_tests);
      ("blif", blif_tests);
      ("equiv", equiv_tests);
    ]
