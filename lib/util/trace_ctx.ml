(* Request-scoped trace context: a short hex id minted from Rng, an
   optional parent id, and a mutable per-phase duration list. The
   ambient context is per-domain (Domain.DLS): the server worker
   installs the job's context around Portal.submit_result, and the
   portal records its cache-probe / execute phases into whatever
   context is current without threading it through every signature. *)

let id_length = 16
let hex = "0123456789abcdef"

type t = {
  id : string;
  parent : string option;
  mutable phases : (string * float) list;  (* newest first *)
}

let scheme =
  Printf.sprintf
    "splitmix64((seed lsl 24) lxor seq) -> %d lowercase hex chars" id_length

let is_valid_id s =
  let n = String.length s in
  n >= 4 && n <= 64
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) s

let mint rng = String.init id_length (fun _ -> hex.[Rng.int rng 16])

let mint_deterministic ~seed ~seq = mint (Rng.create ((seed lsl 24) lxor seq))

let make ?parent id = { id; parent; phases = [] }

let of_id ?parent id = if is_valid_id id then Some (make ?parent id) else None

let id t = t.id
let parent t = t.parent

let to_attrs t =
  ("trace_id", t.id)
  :: (match t.parent with Some p -> [ ("trace_parent", p) ] | None -> [])

(* ------------------------------------------------------------------ *)
(* phases                                                              *)
(* ------------------------------------------------------------------ *)

(* Phases are recorded by whichever single domain is executing the
   request at that moment (client -> worker hand-off is sequenced by
   the job's mutex), so the unsynchronized mutable list is safe. *)
let record_phase t name dur =
  t.phases <- (name, Float.max 0.0 dur) :: t.phases

let phases t = List.rev t.phases

let phase_total t =
  List.fold_left (fun acc (_, d) -> acc +. d) 0.0 t.phases

let phase_attrs t =
  List.map (fun (n, d) -> ("phase." ^ n, Printf.sprintf "%.6f" d)) (phases t)

(* ------------------------------------------------------------------ *)
(* ambient (per-domain) context                                        *)
(* ------------------------------------------------------------------ *)

let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

let with_current t f =
  let cell = Domain.DLS.get current_key in
  let saved = !cell in
  cell := Some t;
  Fun.protect ~finally:(fun () -> cell := saved) f

let ambient_attrs () = match current () with Some t -> to_attrs t | None -> []

let record_current_phase name dur =
  match current () with Some t -> record_phase t name dur | None -> ()
