(** Consistent hashing over named nodes - the routing structure behind
    [bin/vcfront], which pins every portal session to one [vcserve]
    backend so a participant's sticky session history lands on the same
    shard request after request.

    Each node is planted on the ring at [replicas] points (virtual
    nodes), derived by hashing ["name#i"]; a key is routed to the first
    point at or clockwise after its own hash. Virtual nodes smooth the
    load split, and removal of one node remaps only the keys that were
    mapped to it - every other key keeps its backend, which is exactly
    what keeps result-cache locality intact when a backend drains.

    A ring is {e immutable}: {!add} and {!remove} return new rings and
    never mutate, so a router can publish the current ring in an
    [Atomic.t] and swap it wholesale on membership changes - readers
    never lock. Lookups are a binary search, O(log(nodes x replicas)). *)

type 'a t

val make : ?replicas:int -> (string * 'a) list -> 'a t
(** Build a ring from [(name, node)] pairs with [replicas] virtual
    points per node (default 64). Duplicate names keep the last pair.
    The empty list is a valid (empty) ring.
    @raise Invalid_argument if [replicas < 1]. *)

val replicas : 'a t -> int

val size : 'a t -> int
(** Number of distinct nodes on the ring. *)

val is_empty : 'a t -> bool

val nodes : 'a t -> (string * 'a) list
(** The member nodes, sorted by name. *)

val mem : 'a t -> string -> bool

val find : 'a t -> string -> (string * 'a) option
(** The node owning [key]: the first virtual point at or clockwise
    after [key]'s hash, wrapping past the top of the ring. [None] only
    on an empty ring. Deterministic - the same key always routes to the
    same node until membership changes. *)

val add : 'a t -> string -> 'a -> 'a t
(** A new ring with the node added (replacing any node of the same
    name). The original is unchanged. *)

val remove : 'a t -> string -> 'a t
(** A new ring without the named node; only keys owned by that node are
    remapped. Removing an absent name returns an equal ring. *)
