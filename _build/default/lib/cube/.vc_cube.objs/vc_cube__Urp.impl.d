lib/cube/urp.ml: Cover Cube List
