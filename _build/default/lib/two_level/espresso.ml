module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover
module Urp = Vc_cube.Urp

type cost = { cubes : int; literals : int }

let cost (f : Cover.t) =
  {
    cubes = Cover.num_cubes f;
    literals =
      List.fold_left (fun acc c -> acc + Cube.literal_count c) 0 f.Cover.cubes;
  }

let compare_cost a b =
  match compare a.cubes b.cubes with
  | 0 -> compare a.literals b.literals
  | c -> c

let disjoint_from_off (off : Cover.t) c =
  List.for_all
    (fun r -> Cube.is_empty (Cube.intersect c r))
    off.Cover.cubes

(* Grow one cube literal by literal; raising a literal is kept when the
   grown cube still avoids the OFF-set. The raising order prefers the
   literal whose removal frees the most OFF-set distance - here simply
   left-to-right, which is the course presentation. *)
let expand_cube off c =
  let n = Cube.num_vars c in
  let rec raise_lits c i =
    if i >= n then c
    else begin
      match Cube.get c i with
      | Cube.Both | Cube.Empty -> raise_lits c (i + 1)
      | Cube.Pos | Cube.Neg ->
        let candidate = Cube.set c i Cube.Both in
        if disjoint_from_off off candidate then raise_lits candidate (i + 1)
        else raise_lits c (i + 1)
    end
  in
  raise_lits c 0

let expand ~(off : Cover.t) (f : Cover.t) =
  (* expand larger cubes first so they absorb more companions *)
  let ordered =
    List.sort
      (fun a b -> compare (Cube.literal_count a) (Cube.literal_count b))
      f.Cover.cubes
  in
  let rec go remaining kept =
    match remaining with
    | [] -> List.rev kept
    | c :: rest ->
      let e = expand_cube off c in
      let rest = List.filter (fun d -> not (Cube.contains e d)) rest in
      let kept = List.filter (fun d -> not (Cube.contains e d)) kept in
      go rest (e :: kept)
  in
  Cover.make f.Cover.num_vars (go ordered [])

let irredundant ~(dc : Cover.t) (f : Cover.t) =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let context = Cover.make f.Cover.num_vars (kept @ rest) in
      let context = Cover.union context dc in
      if Urp.cube_in_cover c context then go kept rest else go (c :: kept) rest
  in
  (* try to drop large cubes last: sort ascending by size so small ones are
     tested (and discarded) first *)
  let ordered =
    List.sort
      (fun a b -> compare (Cube.minterm_count a) (Cube.minterm_count b))
      f.Cover.cubes
  in
  Cover.make f.Cover.num_vars (go [] ordered)

let supercube n cubes =
  match cubes with
  | [] -> None
  | first :: rest ->
    let merged = Array.init n (fun i -> Cube.get first i) in
    let join a b =
      match (a, b) with
      | Cube.Empty, x | x, Cube.Empty -> x
      | Cube.Both, _ | _, Cube.Both -> Cube.Both
      | Cube.Pos, Cube.Pos -> Cube.Pos
      | Cube.Neg, Cube.Neg -> Cube.Neg
      | Cube.Pos, Cube.Neg | Cube.Neg, Cube.Pos -> Cube.Both
    in
    List.iter
      (fun c ->
        for i = 0 to n - 1 do
          merged.(i) <- join merged.(i) (Cube.get c i)
        done)
      rest;
    let lits =
      List.filter_map
        (fun i ->
          match merged.(i) with
          | Cube.Pos -> Some (i, true)
          | Cube.Neg -> Some (i, false)
          | Cube.Both -> None
          | Cube.Empty -> None)
        (List.init n (fun i -> i))
    in
    Some (Cube.of_literals n lits)

let reduce ~(dc : Cover.t) (f : Cover.t) =
  let n = f.Cover.num_vars in
  let rec go processed = function
    | [] -> List.rev processed
    | c :: rest ->
      let others = Cover.make n (processed @ rest) in
      let context = Cover.union others dc in
      (* the part of c only c covers: c AND NOT context *)
      let comp = Urp.complement context in
      let own = Urp.intersect (Cover.make n [ c ]) comp in
      begin
        match supercube n own.Cover.cubes with
        | None -> go processed rest (* fully covered elsewhere: drop *)
        | Some c' -> go (c' :: processed) rest
      end
  in
  (* reduce biggest cubes first (they have the most slack) *)
  let ordered =
    List.sort
      (fun a b -> compare (Cube.literal_count a) (Cube.literal_count b))
      f.Cover.cubes
  in
  Cover.make n (go [] ordered)

let essential_primes ~(primes : Cover.t) ~(dc : Cover.t) =
  let n = primes.Cover.num_vars in
  List.filter
    (fun p ->
      let others =
        List.filter (fun q -> not (Cube.equal p q)) primes.Cover.cubes
      in
      let context = Cover.union (Cover.make n others) dc in
      not (Urp.cube_in_cover p context))
    primes.Cover.cubes

let check ~on ~dc result =
  Urp.cover_contains (Cover.union result dc) on
  && Urp.cover_contains (Cover.union on dc) result

let minimize ?(single_pass = false) ?(max_iters = 20) ~(dc : Cover.t)
    (on : Cover.t) =
  let n = on.Cover.num_vars in
  if dc.Cover.num_vars <> n then
    invalid_arg "Espresso.minimize: width mismatch";
  if Cover.is_empty on then Cover.empty n
  else begin
    let off = Urp.complement (Cover.union on dc) in
    let step f = irredundant ~dc (expand ~off f) in
    let first = step (Cover.single_cube_containment on) in
    if single_pass then first
    else begin
      let rec loop best iters =
        if iters >= max_iters then best
        else begin
          let candidate = step (reduce ~dc best) in
          if compare_cost (cost candidate) (cost best) < 0 then
            loop candidate (iters + 1)
          else best
        end
      in
      loop first 0
    end
  end

let minimize_pla ?single_pass (pla : Pla.t) =
  let on_sets =
    Array.mapi
      (fun j on -> minimize ?single_pass ~dc:pla.Pla.dc_sets.(j) on)
      pla.Pla.on_sets
  in
  { pla with Pla.on_sets }
