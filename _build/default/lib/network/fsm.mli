(** Finite-state machines: the "Sequential Logic" area of the traditional
    course that the 8-week MOOC had to omit (and Fig. 11 respondents asked
    for). Completely-specified Mealy machines over symbolic inputs, with
    classical state minimization (partition refinement) and binary /
    one-hot encoding into a combinational next-state/output network that
    the rest of the toolkit can synthesize, map and place.

    Sequential elements themselves stay out of scope: encoding emits the
    combinational cloud; the state register is the user's. *)

type table = {
  t_name : string;
  t_reset : string;
  rows : ((string * string) * (string * bool list)) list;
      (** ((state, input symbol), (next state, output bits)). *)
}

val of_rows :
  ?name:string ->
  reset:string ->
  ((string * string) * (string * bool list)) list ->
  table
(** @raise Invalid_argument on duplicate (state, input) rows, unknown next
    states or reset, inconsistent output widths, or an incomplete table
    (every state must define every input symbol). *)

val parse : string -> table
(** KISS2-flavoured text:
    {v
    .start s0
    s0 a s1 0
    s0 b s0 1
    s1 a s0 1
    s1 b s1 0
    .end
    v}
    Row = current-state, input symbol, next-state, output bits. *)

val to_string : table -> string

val states : table -> string list

val input_symbols : table -> string list

val minimize : table -> table * (string * string) list
(** Classical partition refinement: returns the reduced machine (state
    names are representative originals) and the original-to-representative
    map. *)

val simulate : table -> string list -> bool list list
(** Output trace of an input-symbol sequence from reset.
    @raise Failure on unknown symbols. *)

val equivalent : table -> table -> bool
(** Same alphabet and same outputs on all input sequences (exact, via
    product-machine reachability). *)

val encode : ?style:[ `Binary | `One_hot ] -> table -> Network.t
(** The next-state and output logic as a combinational network.
    Inputs: [in_<symbol>] (one-hot) and [st<i>] (current-state bits);
    outputs: [nst<i>] and [out<i>]. Default style [`Binary]. *)
