module Network = Vc_network.Network
module Cover = Vc_cube.Cover
module Expr = Vc_cube.Expr
module Espresso = Vc_two_level.Espresso

let node_expr (node : Network.node) =
  Cover.to_expr node.Network.fanins node.Network.func

let is_output t s = List.mem s (Network.outputs t)

(* ------------------------------------------------------------------ *)
(* sweep                                                                *)
(* ------------------------------------------------------------------ *)

let classify (node : Network.node) =
  let cubes = node.Network.func.Cover.cubes in
  match cubes with
  | [] -> `Const false
  | _ when Cover.has_universe_cube node.Network.func -> `Const true
  | [ c ] -> begin
    match
      List.filter_map
        (fun i ->
          match Vc_cube.Cube.get c i with
          | Vc_cube.Cube.Pos -> Some (i, true)
          | Vc_cube.Cube.Neg -> Some (i, false)
          | Vc_cube.Cube.Both | Vc_cube.Cube.Empty -> None)
        (List.init node.Network.func.Cover.num_vars (fun i -> i))
    with
    | [ (i, pos) ] -> `Wire (List.nth node.Network.fanins i, pos)
    | _ -> `Logic
  end
  | _ -> `Logic

(* Substitute a signal by a constant or a (possibly inverted) wire in one
   node, going through the expression representation. *)
let substitute_in t ~target ~replacement =
  match Network.find_node t target with
  | None -> ()
  | Some node ->
    let e = node_expr node in
    let e' =
      let rec subst = function
        | Expr.Const b -> Expr.Const b
        | Expr.Var v -> if v = fst replacement then snd replacement else Expr.Var v
        | Expr.Not a -> Expr.Not (subst a)
        | Expr.And (a, b) -> Expr.And (subst a, subst b)
        | Expr.Or (a, b) -> Expr.Or (subst a, subst b)
        | Expr.Xor (a, b) -> Expr.Xor (subst a, subst b)
      in
      Expr.simplify (subst e)
    in
    let support = Expr.vars e' in
    (* the canonical cover from of_expr is minterm-expanded; minimize it so
       literal-count comparisons reflect the real cost *)
    let func =
      Espresso.minimize
        ~dc:(Cover.empty (List.length support))
        (Cover.of_expr support e')
    in
    Network.add_node t ~name:target ~fanins:support ~func

let sweep t =
  let removed = ref 0 in
  let rec pass () =
    let progress = ref false in
    (* dead logic: internal nodes with no fanouts that are not outputs *)
    List.iter
      (fun name ->
        if
          (not (is_output t name))
          && Network.fanouts t name = []
          && Network.find_node t name <> None
        then begin
          Network.remove_node t name;
          incr removed;
          progress := true
        end)
      (Network.node_names t);
    (* constants and wires: inline into fanouts, then the node dies on the
       next dead-logic pass (unless it is an output) *)
    List.iter
      (fun name ->
        match Network.find_node t name with
        | None -> ()
        | Some node ->
          if not (is_output t name) then begin
            let replacement =
              match classify node with
              | `Const b -> Some (Expr.Const b)
              | `Wire (sig_, pos) ->
                Some (if pos then Expr.Var sig_ else Expr.Not (Expr.Var sig_))
              | `Logic -> None
            in
            match replacement with
            | None -> ()
            | Some repl ->
              let users = Network.fanouts t name in
              if users <> [] then begin
                List.iter
                  (fun u -> substitute_in t ~target:u ~replacement:(name, repl))
                  users;
                progress := true
              end
          end)
      (Network.node_names t);
    if !progress then pass ()
  in
  pass ();
  !removed

(* ------------------------------------------------------------------ *)
(* simplify                                                             *)
(* ------------------------------------------------------------------ *)

let simplify t =
  let saved = ref 0 in
  List.iter
    (fun name ->
      match Network.find_node t name with
      | None -> ()
      | Some node ->
        let n = node.Network.func.Cover.num_vars in
        let before = (Espresso.cost node.Network.func).Espresso.literals in
        let minimized = Espresso.minimize ~dc:(Cover.empty n) node.Network.func in
        let after = (Espresso.cost minimized).Espresso.literals in
        if after < before then begin
          saved := !saved + before - after;
          Network.add_node t ~name ~fanins:node.Network.fanins ~func:minimized
        end)
    (Network.node_names t);
  !saved

(* ------------------------------------------------------------------ *)
(* eliminate                                                            *)
(* ------------------------------------------------------------------ *)

let max_collapse_support = 14

let collapse_node t name =
  match Network.find_node t name with
  | None -> false
  | Some node ->
    if is_output t name then false
    else begin
      let users = Network.fanouts t name in
      let repl = node_expr node in
      let feasible =
        List.for_all
          (fun u ->
            match Network.find_node t u with
            | None -> false
            | Some un ->
              let support =
                List.sort_uniq compare
                  (List.filter (fun s -> s <> name) un.Network.fanins
                  @ node.Network.fanins)
              in
              List.length support <= max_collapse_support)
          users
      in
      if not feasible then false
      else begin
        List.iter
          (fun u -> substitute_in t ~target:u ~replacement:(name, repl))
          users;
        Network.remove_node t name;
        true
      end
    end

let eliminate ~threshold t =
  let eliminated = ref 0 in
  let rec pass () =
    let progress = ref false in
    List.iter
      (fun name ->
        match Network.find_node t name with
        | None -> ()
        | Some _ when is_output t name -> ()
        | Some _ ->
          (* measure the literal delta of collapsing on a copy *)
          let trial = Network.copy t in
          let before = Network.literal_count trial in
          if collapse_node trial name then begin
            let after = Network.literal_count trial in
            if after - before <= threshold then begin
              if collapse_node t name then begin
                incr eliminated;
                progress := true
              end
            end
          end)
      (Network.node_names t);
    if !progress then pass ()
  in
  pass ();
  !eliminated
