(** Cohort-derived open-loop submission traces.

    The paper's course saw a characteristic traffic shape: a population
    of active participants submitting to five tool portals, most uploads
    byte-identical to an earlier one (students iterate on the same
    homework file), and pronounced bursts just before each deadline. A
    trace captures that shape as a deterministic, timestamped stream of
    submissions suitable for open-loop replay: arrival times are drawn
    from the model's offered load, {e not} from the server's response
    times, so a slow server cannot quietly throttle the generator
    (coordinated omission).

    Traces are never materialized - {!iter} synthesizes each item on
    demand at constant memory, so a million-submission trace costs no
    more to hold than a hundred-submission one, and the same [spec]
    always yields the same byte-identical stream. *)

type spike = {
  sp_start : float;  (** Fraction of the duration at which the burst starts. *)
  sp_len : float;  (** Burst length as a fraction of the duration. *)
  sp_factor : float;  (** Rate multiplier inside the burst window. *)
}
(** A deadline burst: inside the window
    [[sp_start * duration, (sp_start + sp_len) * duration)] the offered
    rate is multiplied by [sp_factor]. *)

type spec = {
  tr_seed : int;
  tr_duration_s : float;  (** Simulated trace duration. *)
  tr_rate_rps : float;  (** Baseline offered load, submissions/second. *)
  tr_sessions : int;  (** Active participant sessions submitting. *)
  tr_mix : (string * float) list;
      (** Per-tool submission weights (tool name, weight). *)
  tr_variants : int;  (** Distinct inputs per tool. *)
  tr_resubmit : float;
      (** Probability a submission re-uploads one of the "popular" inputs
          - the cache-hit-dominant MOOC pattern. *)
  tr_spike : spike option;
}

type item = {
  it_seq : int;  (** 0-based position in the trace. *)
  it_time_s : float;  (** Scheduled send time, seconds from trace start. *)
  it_session : string;  (** Submitting session id. *)
  it_tool : string;  (** Canonical tool name. *)
  it_input : string;  (** Full upload text, valid for the tool. *)
}

val default_mix : (string * float) list
(** The five Fig. 4 portals weighted toward the software-project tools
    (minisat and sis heaviest, axb lightest). *)

val default_spike : spike
(** A 4x burst over the middle fifth of the trace - the "night before
    the deadline" shape. *)

val of_cohort :
  ?seed:int ->
  ?duration_s:float ->
  ?rate_rps:float ->
  ?mix:(string * float) list ->
  ?variants:int ->
  ?resubmit:float ->
  ?spike:spike option ->
  Cohort.params ->
  spec
(** Derive a spec from the cohort model: the session population is the
    cohort's tried-software funnel stage, computed by streaming
    {!Cohort.streamed_funnel} (constant memory even for millions of
    registered participants). Defaults: [duration_s = 60.],
    [rate_rps = 200.], [mix = default_mix], [variants = 64],
    [resubmit = 0.8], [spike = Some default_spike]. *)

val rate_at : spec -> float -> float
(** Instantaneous offered rate at time [t] (baseline, times the spike
    factor inside the burst window). *)

val expected_items : spec -> int
(** Expected number of submissions in the trace
    (integral of {!rate_at} over the duration, rounded). *)

val input_of : string -> int -> string
(** [input_of tool variant] is a small deterministic upload, valid for
    the named tool, distinct per [variant].
    @raise Invalid_argument on an unknown tool name. *)

val iter : spec -> (item -> unit) -> unit
(** Generate the trace in time order at constant memory. Deterministic:
    the same spec yields the same items, byte for byte. Arrival gaps are
    exponential at {!rate_at} (a piecewise-Poisson process); tools are
    drawn from [tr_mix]; with probability [tr_resubmit] the input is one
    of a small popular subset of the variants, else uniform over all of
    them. *)

val render_item : item -> string
(** One-line summary ([seq time session tool digest]) - stable across
    runs, used by the byte-identity tests. *)
