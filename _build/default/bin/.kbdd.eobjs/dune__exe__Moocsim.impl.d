bin/moocsim.ml: Sys Vc_mooc
