(* Planet-scale cohort streaming and the submission-trace generator:
   constant-memory generation at 1M+ participants, byte-identical traces
   under a fixed seed, the deadline-spike burst shape, the tool mix, and
   the guarantee that every generated upload is valid for its tool. *)

open Helpers
module Cohort = Vc_mooc.Cohort
module Trace = Vc_mooc.Trace
module Portal = Vc_mooc.Portal

(* ------------------------------------------------------------------ *)
(* streaming cohort generation                                         *)
(* ------------------------------------------------------------------ *)

let cohort_tests =
  [
    tc "iter_participants matches simulate draw for draw" (fun () ->
        Vc_util.Journal.clear ();
        let params = { Cohort.paper_params with Cohort.registered = 5_000 } in
        let materialized = Cohort.simulate ~seed:42 params in
        let streamed = ref [] in
        Cohort.iter_participants ~seed:42 params (fun p ->
            streamed := p :: !streamed);
        check Alcotest.bool "identical cohorts" true
          (materialized = List.rev !streamed));
    tc "streamed_funnel equals funnel_of simulate" (fun () ->
        Vc_util.Journal.clear ();
        let params = { Cohort.paper_params with Cohort.registered = 20_000 } in
        let f1 = Cohort.funnel_of (Cohort.simulate ~seed:7 params) in
        let f2 = Cohort.streamed_funnel ~seed:7 params in
        check Alcotest.bool "same funnel" true (f1 = f2));
    tc "1M+ participants stream at O(1) memory" (fun () ->
        let params =
          { Cohort.paper_params with Cohort.registered = 1_200_000 }
        in
        Gc.full_major ();
        let before = Gc.((stat ()).live_words) in
        let f = Cohort.streamed_funnel ~seed:1 params in
        Gc.full_major ();
        let after = Gc.((stat ()).live_words) in
        check Alcotest.bool "funnel is plausible" true
          (f.Cohort.registered = 1_200_000
          && f.Cohort.watched_video > 0
          && f.Cohort.certificates < f.Cohort.took_final);
        (* a materialized cohort is >= 7 words per participant (~8.4M
           words); streaming must leave the heap essentially unchanged *)
        let growth = after - before in
        check Alcotest.bool
          (Printf.sprintf "heap growth %d words stays constant" growth)
          true
          (growth < 100_000));
    tc "funnel stages are monotone non-increasing" (fun () ->
        let params = { Cohort.paper_params with Cohort.registered = 50_000 } in
        let f = Cohort.streamed_funnel ~seed:3 params in
        check Alcotest.bool "monotone" true
          (f.Cohort.registered >= f.Cohort.watched_video
          && f.Cohort.watched_video >= f.Cohort.did_homework
          && f.Cohort.did_homework >= f.Cohort.tried_software
          && f.Cohort.did_homework >= f.Cohort.took_final
          && f.Cohort.took_final >= f.Cohort.certificates));
  ]

(* ------------------------------------------------------------------ *)
(* trace generation                                                    *)
(* ------------------------------------------------------------------ *)

let small_spec =
  {
    Trace.tr_seed = 11;
    tr_duration_s = 10.0;
    tr_rate_rps = 400.0;
    tr_sessions = 500;
    tr_mix = Trace.default_mix;
    tr_variants = 64;
    tr_resubmit = 0.8;
    tr_spike = Some { Trace.sp_start = 0.4; sp_len = 0.2; sp_factor = 4.0 };
  }

let render spec =
  let buf = Buffer.create 4096 in
  Trace.iter spec (fun it ->
      Buffer.add_string buf (Trace.render_item it);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let trace_tests =
  [
    tc "same seed, byte-identical trace" (fun () ->
        check Alcotest.string "byte identical" (render small_spec)
          (render small_spec));
    tc "different seed, different trace" (fun () ->
        check Alcotest.bool "differs" true
          (render small_spec <> render { small_spec with Trace.tr_seed = 12 }));
    tc "items are time-ordered with increasing seq" (fun () ->
        let last_t = ref (-1.0) and last_seq = ref (-1) in
        Trace.iter small_spec (fun it ->
            check Alcotest.bool "time monotone" true (it.Trace.it_time_s >= !last_t);
            check Alcotest.int "seq" (!last_seq + 1) it.Trace.it_seq;
            last_t := it.Trace.it_time_s;
            last_seq := it.Trace.it_seq);
        check Alcotest.bool "non-empty" true (!last_seq > 0));
    tc "item count tracks the expected offered load" (fun () ->
        let n = ref 0 in
        Trace.iter small_spec (fun _ -> incr n);
        let expected = Trace.expected_items small_spec in
        (* Poisson sd is sqrt(expected) ~ 68; allow 5 sigma *)
        let slack = 5 *
          int_of_float (sqrt (float_of_int expected)) in
        check Alcotest.bool
          (Printf.sprintf "%d items vs %d expected" !n expected)
          true
          (abs (!n - expected) <= slack));
    tc "deadline spike multiplies the in-window arrival rate" (fun () ->
        let spike = { Trace.sp_start = 0.4; sp_len = 0.2; sp_factor = 4.0 } in
        let spec = { small_spec with Trace.tr_spike = Some spike } in
        let t0 = spike.Trace.sp_start *. spec.Trace.tr_duration_s in
        let t1 =
          (spike.Trace.sp_start +. spike.Trace.sp_len)
          *. spec.Trace.tr_duration_s
        in
        let inside = ref 0 and outside = ref 0 in
        Trace.iter spec (fun it ->
            if it.Trace.it_time_s >= t0 && it.Trace.it_time_s < t1 then
              incr inside
            else incr outside);
        (* in-window rate density vs out-of-window density: the ratio is
           sp_factor in expectation (4.0); demand at least 3x *)
        let window = t1 -. t0 in
        let density_in = float_of_int !inside /. window in
        let density_out =
          float_of_int !outside /. (spec.Trace.tr_duration_s -. window)
        in
        check Alcotest.bool
          (Printf.sprintf "spike density ratio %.2f" (density_in /. density_out))
          true
          (density_in > 3.0 *. density_out));
    tc "no spike means uniform density" (fun () ->
        let spec = { small_spec with Trace.tr_spike = None } in
        let first_half = ref 0 and second_half = ref 0 in
        Trace.iter spec (fun it ->
            if it.Trace.it_time_s < spec.Trace.tr_duration_s /. 2.0 then
              incr first_half
            else incr second_half);
        let ratio = float_of_int !first_half /. float_of_int !second_half in
        check Alcotest.bool
          (Printf.sprintf "half ratio %.2f" ratio)
          true
          (ratio > 0.85 && ratio < 1.15));
    tc "tool mix follows the configured weights" (fun () ->
        let counts = Hashtbl.create 8 in
        let total = ref 0 in
        Trace.iter small_spec (fun it ->
            incr total;
            Hashtbl.replace counts it.Trace.it_tool
              (1 + try Hashtbl.find counts it.Trace.it_tool with Not_found -> 0));
        List.iter
          (fun (tool, weight) ->
            let got =
              float_of_int (try Hashtbl.find counts tool with Not_found -> 0)
              /. float_of_int !total
            in
            check Alcotest.bool
              (Printf.sprintf "%s share %.3f vs weight %.3f" tool got weight)
              true
              (Float.abs (got -. weight) < 0.05))
          small_spec.Trace.tr_mix);
    tc "resubmission makes the trace cache-hit dominant" (fun () ->
        let distinct = Hashtbl.create 64 and total = ref 0 in
        Trace.iter small_spec (fun it ->
            incr total;
            Hashtbl.replace distinct (it.Trace.it_tool, it.Trace.it_input) ());
        (* thousands of submissions collapse to a few hundred distinct
           uploads: the repeat rate a content-addressed cache exploits *)
        check Alcotest.bool
          (Printf.sprintf "%d distinct of %d" (Hashtbl.length distinct) !total)
          true
          (Hashtbl.length distinct * 5 < !total));
    tc "of_cohort sizes sessions from the tried-software stage" (fun () ->
        let params = { Cohort.paper_params with Cohort.registered = 30_000 } in
        let spec = Trace.of_cohort ~seed:5 ~duration_s:1.0 ~rate_rps:10.0 params in
        let funnel = Cohort.streamed_funnel ~seed:5 params in
        check Alcotest.int "sessions = tried_software"
          funnel.Cohort.tried_software spec.Trace.tr_sessions;
        check Alcotest.bool "plausible population" true
          (spec.Trace.tr_sessions > 100));
  ]

(* ------------------------------------------------------------------ *)
(* every generated upload is valid for its tool                        *)
(* ------------------------------------------------------------------ *)

let validity_tests =
  [
    tc "input_of is valid for all five tools across variants" (fun () ->
        Vc_util.Journal.clear ();
        Portal.clear_cache ();
        let session = Portal.create_session () in
        List.iter
          (fun (tool_name, _) ->
            let tool =
              match Portal.find_tool tool_name with
              | Some t -> t
              | None -> Alcotest.failf "unknown tool %s" tool_name
            in
            for variant = 0 to 7 do
              let input = Trace.input_of tool_name variant in
              match Portal.submit_result session tool input with
              | Portal.Executed out | Portal.Cache_hit out ->
                check Alcotest.bool
                  (Printf.sprintf "%s variant %d output ok" tool_name variant)
                  false
                  (String.length out >= 6 && String.sub out 0 6 = "error:")
              | Portal.Rejected r ->
                Alcotest.failf "%s variant %d rejected: %s" tool_name variant
                  (Portal.reason_message r)
            done)
          Trace.default_mix;
        Portal.clear_cache ());
    tc "input_of is deterministic" (fun () ->
        check Alcotest.string "same input" (Trace.input_of "minisat" 3)
          (Trace.input_of "minisat" 3));
    tc "input_of rejects unknown tools" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Trace.input_of "nope" 0);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* end-to-end tracing: an 8-domain replay joins by trace id            *)
(* ------------------------------------------------------------------ *)

module Server = Vc_mooc.Server
module Wire = Vc_mooc.Wire
module Loadgen = Vc_mooc.Loadgen
module Q = Vc_util.Journal_query

let tracing_tests =
  [
    tc "8-domain replay: >= 99% of submissions join by trace id" (fun () ->
        (* client and server run in one process here, so the shared
           flight recorder sees both journals; size it for the whole
           run so no request's events rotate out before the join *)
        let old_ring = Vc_util.Journal.ring_capacity () in
        Vc_util.Journal.set_ring_capacity 100_000;
        Fun.protect
          ~finally:(fun () -> Vc_util.Journal.set_ring_capacity old_ring)
          (fun () ->
            Vc_util.Journal.clear ();
            Portal.clear_cache ();
            let spec =
              {
                small_spec with
                Trace.tr_seed = 31;
                tr_duration_s = 1.5;
                tr_rate_rps = 400.0;
                tr_spike = None;
              }
            in
            let server =
              Server.start
                ~config:
                  {
                    Server.default_config with
                    Server.workers = 4;
                    queue_capacity = 256;
                  }
                ()
            in
            let listener = Wire.listen ~port:0 () in
            let acceptor =
              Domain.spawn (fun () ->
                  Wire.serve listener ~submit:(Server.submit server))
            in
            let report =
              Loadgen.run
                {
                  Loadgen.lg_host = "127.0.0.1";
                  lg_port = Wire.port listener;
                  lg_clients = 8;
                  lg_spec = spec;
                  lg_time_scale = 1.0;
                }
            in
            Wire.shutdown listener;
            Domain.join acceptor;
            ignore (Wire.drain_connections listener);
            Server.stop server;
            check Alcotest.bool "replay ran" true (report.Loadgen.rp_total > 0);
            check Alcotest.int "report publishes the minting seed" 31
              report.Loadgen.rp_seed;
            check Alcotest.string "report publishes the scheme"
              Vc_util.Trace_ctx.scheme report.Loadgen.rp_trace_scheme;
            let join = Q.join_requests (Vc_util.Journal.events ()) in
            check Alcotest.int "every replayed request journaled client-side"
              report.Loadgen.rp_total join.Q.rj_client_total;
            check Alcotest.bool
              (Printf.sprintf "match rate %.4f >= 0.99" join.Q.rj_match_rate)
              true
              (join.Q.rj_match_rate >= 0.99);
            (* the matched pairs carry a usable per-phase breakdown *)
            let phases = Q.phase_breakdown join in
            List.iter
              (fun name ->
                match List.assoc_opt name phases with
                | Some s ->
                  check Alcotest.bool (name ^ " has samples") true
                    (s.Q.l_count > 0)
                | None -> Alcotest.failf "no %s phase in the breakdown" name)
              [ "queue"; "cache"; "reply"; "wire" ]));
  ]

let () =
  Alcotest.run "trace"
    [
      ("cohort-streaming", cohort_tests);
      ("trace-generation", trace_tests);
      ("input-validity", validity_tests);
      ("request-tracing", tracing_tests);
    ]
