lib/route/router.ml: Array Buffer Grid List Maze Printf String Vc_util
