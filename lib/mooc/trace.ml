type spike = { sp_start : float; sp_len : float; sp_factor : float }

type spec = {
  tr_seed : int;
  tr_duration_s : float;
  tr_rate_rps : float;
  tr_sessions : int;
  tr_mix : (string * float) list;
  tr_variants : int;
  tr_resubmit : float;
  tr_spike : spike option;
}

type item = {
  it_seq : int;
  it_time_s : float;
  it_session : string;
  it_tool : string;
  it_input : string;
}

(* The software-project tools dominate real submission traffic; axb was
   the course's custom warm-up and sees the least. *)
let default_mix =
  [
    ("minisat", 0.30);
    ("sis", 0.25);
    ("kbdd", 0.20);
    ("espresso", 0.15);
    ("axb", 0.10);
  ]

let default_spike = { sp_start = 0.4; sp_len = 0.2; sp_factor = 4.0 }

let of_cohort ?(seed = 2013) ?(duration_s = 60.) ?(rate_rps = 200.)
    ?(mix = default_mix) ?(variants = 64) ?(resubmit = 0.8)
    ?(spike = Some default_spike) (params : Cohort.params) =
  let funnel = Cohort.streamed_funnel ~seed params in
  {
    tr_seed = seed;
    tr_duration_s = duration_s;
    tr_rate_rps = rate_rps;
    tr_sessions = max 1 funnel.Cohort.tried_software;
    tr_mix = mix;
    tr_variants = max 1 variants;
    tr_resubmit = resubmit;
    tr_spike = spike;
  }

let rate_at spec t =
  match spec.tr_spike with
  | None -> spec.tr_rate_rps
  | Some s ->
    let start = s.sp_start *. spec.tr_duration_s in
    let stop = (s.sp_start +. s.sp_len) *. spec.tr_duration_s in
    if t >= start && t < stop then spec.tr_rate_rps *. s.sp_factor
    else spec.tr_rate_rps

let expected_items spec =
  let base = spec.tr_rate_rps *. spec.tr_duration_s in
  let extra =
    match spec.tr_spike with
    | None -> 0.0
    | Some s ->
      spec.tr_rate_rps *. (s.sp_factor -. 1.0) *. s.sp_len
      *. spec.tr_duration_s
  in
  int_of_float (Float.round (base +. extra))

(* Deterministic per-(tool, variant) uploads. Each is a small valid
   input for its tool - rejections in a replay must come from admission
   control, never from a malformed upload. *)

let dimacs_input rng =
  let nv = 8 and nc = 20 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nv nc);
  for _ = 1 to nc do
    let rec pick k acc =
      if k = 0 then acc
      else
        let v = 1 + Vc_util.Rng.int rng nv in
        if List.mem v acc then pick k acc else pick (k - 1) (v :: acc)
    in
    List.iter
      (fun v ->
        let lit = if Vc_util.Rng.bool rng then v else -v in
        Buffer.add_string buf (string_of_int lit);
        Buffer.add_char buf ' ')
      (pick 3 []);
    Buffer.add_string buf "0\n"
  done;
  Buffer.contents buf

let kbdd_input rng =
  let vars = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "boolean a b c d e f\nf = ";
  Buffer.add_string buf (Vc_util.Rng.choose rng vars);
  for _ = 1 to 4 do
    Buffer.add_string buf (if Vc_util.Rng.bool rng then " & " else " | ");
    Buffer.add_string buf (Vc_util.Rng.choose rng vars)
  done;
  Buffer.add_string buf "\nsatcount f\nprint f";
  Buffer.contents buf

let espresso_input rng =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ".i 4\n.o 1\n";
  let rows = 3 + Vc_util.Rng.int rng 4 in
  let seen = Hashtbl.create 8 in
  let emitted = ref 0 in
  while !emitted < rows do
    let m = Vc_util.Rng.int rng 16 in
    if not (Hashtbl.mem seen m) then begin
      Hashtbl.add seen m ();
      incr emitted;
      for bit = 3 downto 0 do
        Buffer.add_char buf (if m land (1 lsl bit) <> 0 then '1' else '0')
      done;
      Buffer.add_string buf " 1\n"
    end
  done;
  Buffer.add_string buf ".e";
  Buffer.contents buf

let sis_input rng variant =
  let cube () =
    String.init 4 (fun _ ->
        match Vc_util.Rng.int rng 3 with 0 -> '1' | 1 -> '0' | _ -> '-')
  in
  (* a cube of all dashes covers everything and is not a function of the
     inputs; redraw it as a positive literal pattern *)
  let cube () =
    let c = cube () in
    if c = "----" then "1---" else c
  in
  Printf.sprintf
    ".model t%d\n\
     .inputs a b c d\n\
     .outputs x\n\
     .names a b c d x\n\
     %s 1\n\
     %s 1\n\
     .end\n\
     %%script\n\
     sweep\n\
     simplify\n\
     print_stats"
    variant (cube ()) (cube ())

let axb_input rng =
  (* symmetric and diagonally dominant, so the cg solver converges *)
  let d1 = 4 + Vc_util.Rng.int rng 5
  and d2 = 4 + Vc_util.Rng.int rng 5
  and off = Vc_util.Rng.int rng 3
  and b1 = 1 + Vc_util.Rng.int rng 9
  and b2 = 1 + Vc_util.Rng.int rng 9 in
  Printf.sprintf "n 2\nmethod cg\nrow %d %d\nrow %d %d\nrhs %d %d" d1 off off
    d2 b1 b2

let input_of tool variant =
  let rng = Vc_util.Rng.create ((variant * 7919) + Hashtbl.hash tool) in
  match tool with
  | "minisat" -> dimacs_input rng
  | "kbdd" -> kbdd_input rng
  | "espresso" -> espresso_input rng
  | "sis" -> sis_input rng variant
  | "axb" -> axb_input rng
  | other -> invalid_arg ("Trace.input_of: unknown tool " ^ other)

let iter spec f =
  let rng = Vc_util.Rng.create spec.tr_seed in
  let n_popular = max 1 (spec.tr_variants / 16) in
  let rec loop t seq =
    let rate = rate_at spec t in
    (* exponential inter-arrival gap at the instantaneous offered rate:
       a piecewise-constant-rate Poisson process *)
    let gap = -.log (1.0 -. Vc_util.Rng.float rng 1.0) /. rate in
    let t = t +. gap in
    if t < spec.tr_duration_s then begin
      let session =
        Printf.sprintf "u%06d" (Vc_util.Rng.int rng spec.tr_sessions)
      in
      let tool = Vc_util.Rng.choose_weighted rng spec.tr_mix in
      let variant =
        if Vc_util.Rng.bernoulli rng spec.tr_resubmit then
          Vc_util.Rng.int rng n_popular
        else Vc_util.Rng.int rng spec.tr_variants
      in
      f
        {
          it_seq = seq;
          it_time_s = t;
          it_session = session;
          it_tool = tool;
          it_input = input_of tool variant;
        };
      loop t (seq + 1)
    end
  in
  loop 0.0 0

let render_item it =
  Printf.sprintf "%06d %10.6f %s %-8s %s" it.it_seq it.it_time_s it.it_session
    it.it_tool
    (Digest.to_hex (Digest.string it.it_input))
