test/test_linalg.ml: Alcotest Array Helpers List Printf QCheck String Vc_linalg Vc_util
