open Helpers
module Dense = Vc_linalg.Dense
module Sparse = Vc_linalg.Sparse
module Axb = Vc_linalg.Axb

(* random SPD system: A = M^T M + n*I, well conditioned *)
let random_spd seed n =
  let rng = Vc_util.Rng.create seed in
  let m =
    Dense.of_rows
      (Array.init n (fun _ ->
           Array.init n (fun _ -> Vc_util.Rng.float rng 2.0 -. 1.0)))
  in
  let a = Dense.mul (Dense.transpose m) m in
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i +. float_of_int n)
  done;
  let b = Array.init n (fun _ -> Vc_util.Rng.float rng 10.0 -. 5.0) in
  (a, b)

let sparse_of_dense a =
  let n = Dense.rows a in
  let b = Sparse.builder n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Dense.get a i j <> 0.0 then Sparse.add b i j (Dense.get a i j)
    done
  done;
  Sparse.finalize b

let arbitrary_spd =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 100_000) (int_range 2 12))

let dense_tests =
  [
    tc "identity solve" (fun () ->
        let x = Dense.solve (Dense.identity 3) [| 1.0; 2.0; 3.0 |] in
        check Alcotest.(array (float 1e-12)) "x = b" [| 1.0; 2.0; 3.0 |] x);
    tc "known 2x2 system" (fun () ->
        let a = Dense.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let x = Dense.solve a [| 3.0; 5.0 |] in
        check (Alcotest.float 1e-9) "x0" 0.8 x.(0);
        check (Alcotest.float 1e-9) "x1" 1.4 x.(1));
    tc "pivoting handles zero diagonal" (fun () ->
        let a = Dense.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
        let x = Dense.solve a [| 5.0; 7.0 |] in
        check (Alcotest.float 1e-9) "x0" 7.0 x.(0);
        check (Alcotest.float 1e-9) "x1" 5.0 x.(1));
    tc "singular detected" (fun () ->
        let a = Dense.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        match Dense.solve a [| 1.0; 2.0 |] with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
    tc "shape errors" (fun () ->
        let a = Dense.of_rows [| [| 1.0; 2.0 |] |] in
        (match Dense.solve a [| 1.0 |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "not square");
        match Dense.mat_vec a [| 1.0 |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "shape");
    tc "transpose and multiply" (fun () ->
        let a = Dense.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
        let at = Dense.transpose a in
        check (Alcotest.float 1e-12) "swap" 3.0 (Dense.get at 0 1);
        let p = Dense.mul a (Dense.identity 2) in
        check (Alcotest.float 1e-12) "a*I = a" (Dense.get a 1 0) (Dense.get p 1 0));
    prop ~count:60 "LU residual is tiny on SPD systems" arbitrary_spd
      (fun (seed, n) ->
        let a, b = random_spd seed n in
        Dense.residual_norm a (Dense.solve a b) b < 1e-8);
  ]

let sparse_tests =
  [
    tc "builder sums duplicates" (fun () ->
        let b = Sparse.builder 2 in
        Sparse.add b 0 0 1.0;
        Sparse.add b 0 0 2.0;
        let m = Sparse.finalize b in
        check (Alcotest.float 1e-12) "3" 3.0 (Sparse.get m 0 0);
        check Alcotest.int "nnz" 1 (Sparse.nnz m));
    tc "zero entries dropped" (fun () ->
        let b = Sparse.builder 2 in
        Sparse.add b 0 1 1.0;
        Sparse.add b 0 1 (-1.0);
        check Alcotest.int "cancelled" 0 (Sparse.nnz (Sparse.finalize b)));
    tc "out-of-range rejected" (fun () ->
        let b = Sparse.builder 2 in
        match Sparse.add b 0 5 1.0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected range error");
    prop ~count:60 "mat_vec agrees with dense" arbitrary_spd (fun (seed, n) ->
        let a, b = random_spd seed n in
        let s = sparse_of_dense a in
        let dv = Dense.mat_vec a b and sv = Sparse.mat_vec s b in
        Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-9) dv sv);
    prop ~count:60 "CG matches LU on SPD systems" arbitrary_spd
      (fun (seed, n) ->
        let a, b = random_spd seed n in
        let exact = Dense.solve a b in
        let approx, iters = Sparse.conjugate_gradient (sparse_of_dense a) b in
        iters <= 4 * n
        && Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-5) exact approx);
    prop ~count:40 "Gauss-Seidel matches LU on SPD systems" arbitrary_spd
      (fun (seed, n) ->
        let a, b = random_spd seed n in
        let exact = Dense.solve a b in
        let approx, _ =
          Sparse.gauss_seidel ~max_iters:20_000 (sparse_of_dense a) b
        in
        Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-4) exact approx);
    tc "CG converges faster than Gauss-Seidel on a laplacian" (fun () ->
        (* 1-D chain laplacian + anchors: the quadratic placement shape *)
        let n = 50 in
        let b = Sparse.builder n in
        for i = 0 to n - 1 do
          Sparse.add b i i 2.0;
          if i > 0 then Sparse.add b i (i - 1) (-1.0);
          if i < n - 1 then Sparse.add b i (i + 1) (-1.0)
        done;
        let m = Sparse.finalize b in
        let rhs = Array.make n 0.0 in
        rhs.(0) <- 1.0;
        rhs.(n - 1) <- float_of_int n;
        let _, cg_iters = Sparse.conjugate_gradient m rhs in
        let _, gs_iters = Sparse.gauss_seidel ~max_iters:100_000 m rhs in
        check Alcotest.bool
          (Printf.sprintf "cg %d < gs %d" cg_iters gs_iters)
          true (cg_iters < gs_iters));
    tc "to_dense round trip" (fun () ->
        let a, _ = random_spd 5 4 in
        let back = Sparse.to_dense (sparse_of_dense a) in
        for i = 0 to 3 do
          for j = 0 to 3 do
            check (Alcotest.float 1e-12) "entry" (Dense.get a i j)
              (Dense.get back i j)
          done
        done);
  ]

let axb_tests =
  [
    tc "dense lu" (fun () ->
        let out = Axb.run "n 2\nrow 2 1\nrow 1 2\nrhs 3 3\n" in
        check Alcotest.bool "x0 = 1" true
          (String.length out > 0 && String.sub out 0 6 = "x0 = 1"));
    tc "sparse cg with comments" (fun () ->
        let out =
          Axb.run
            "# placement system\nn 2\nmethod cg\nentry 0 0 2\nentry 1 1 2\nrhs 4 6\n"
        in
        check Alcotest.bool "solved" true
          (String.length out >= 6 && String.sub out 0 2 = "x0"));
    tc "gauss-seidel method" (fun () ->
        let out = Axb.run "n 1\nmethod gs\nrow 4\nrhs 8\n" in
        check Alcotest.bool "x0 = 2" true
          (String.length out > 5 && String.sub out 0 6 = "x0 = 2"));
    tc "error: missing rhs" (fun () ->
        check Alcotest.string "error" "error: missing 'rhs'"
          (Axb.run "n 2\nrow 1 0\nrow 0 1\n"));
    tc "error: mixed input styles" (fun () ->
        let out = Axb.run "n 1\nrow 1\nentry 0 0 1\nrhs 1\n" in
        check Alcotest.bool "error" true (String.sub out 0 6 = "error:"));
    tc "error: bad method" (fun () ->
        let out = Axb.run "n 1\nmethod qr\nrow 1\nrhs 1\n" in
        check Alcotest.bool "error" true (String.sub out 0 6 = "error:"));
    tc "error: dimension mismatch" (fun () ->
        let out = Axb.run "n 2\nrow 1 0\nrhs 1\n" in
        check Alcotest.bool "error" true (String.sub out 0 6 = "error:"));
    tc "never raises on garbage" (fun () ->
        List.iter
          (fun s -> ignore (Axb.run s))
          [ ""; "nonsense"; "n -3\nrhs 1\n"; "n 1\nrow x\nrhs 1\n" ]);
  ]

let () =
  Alcotest.run "linalg"
    [ ("dense", dense_tests); ("sparse", sparse_tests); ("axb", axb_tests) ]
