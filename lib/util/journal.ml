type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

type event = {
  ev_seq : int;
  ev_ts : float;
  ev_severity : severity;
  ev_component : string;
  ev_name : string;
  ev_attrs : (string * string) list;
}

(* Domain safety: [emit] appends to a per-domain buffer (its own tiny
   mutex, uncontended except while a flush drains it), so concurrent
   emitters never serialize on a global lock per event. A flush - forced
   by a full buffer, any Warn/Error, every read ([events], [event_count],
   [to_jsonl]) and sink (de)registration - drains every buffer under the
   single global mutex [mu], assigns the monotone sequence numbers,
   pushes the ring and runs the sinks. Sinks therefore still observe a
   strictly increasing sequence on one serialized channel. Per-domain
   FIFO order is preserved (a buffer drains in emission order);
   interleaving across domains is decided at flush time. Lock ordering:
   [mu] before a buffer mutex, never the reverse - [emit] releases its
   buffer mutex before calling [flush]. A sink must never call back into
   [emit] (none does; they are plain formatters). *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* flight-recorder ring                                                *)
(* ------------------------------------------------------------------ *)

let ring : event Queue.t = Queue.create ()
let capacity = ref 256
let seq = ref 0

let ring_capacity () = locked (fun () -> !capacity)

let trim () =
  while Queue.length ring > !capacity do
    ignore (Queue.pop ring)
  done

let set_ring_capacity n =
  if n < 0 then invalid_arg "Journal.set_ring_capacity: negative capacity";
  locked (fun () ->
      capacity := n;
      trim ())

(* ------------------------------------------------------------------ *)
(* per-domain buffers                                                  *)
(* ------------------------------------------------------------------ *)

(* An event waiting in a domain buffer: everything but the sequence
   number, which is assigned when the batch reaches the ring. *)
type pending = {
  p_ts : float;
  p_severity : severity;
  p_component : string;
  p_name : string;
  p_attrs : (string * string) list;
}

type buffer = { b_mu : Mutex.t; b_q : pending Queue.t }

(* Every buffer ever created, newest first; guarded by [mu]. *)
let buffers : buffer list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { b_mu = Mutex.create (); b_q = Queue.create () } in
      locked (fun () -> buffers := b :: !buffers);
      b)

(* Info/Debug events buffer up to this many per domain before forcing a
   flush; Warn/Error always flush immediately so the flight recorder and
   any sink see trouble as it happens. *)
let batch = ref 64

let batch_capacity () = locked (fun () -> !batch)

let set_batch_capacity n =
  if n < 1 then invalid_arg "Journal.set_batch_capacity: capacity under 1";
  locked (fun () -> batch := n)

(* ------------------------------------------------------------------ *)
(* sinks + flush                                                       *)
(* ------------------------------------------------------------------ *)

let sinks : (string * (event -> unit)) list ref = ref []

(* Drain every domain buffer, sequence the events, push the ring and run
   the sinks. Call with [mu] held; returns the sinks that raised (they
   are detached inline - remove_sink here would self-deadlock - and the
   caller prints the warnings outside the lock). *)
let flush_locked () =
  let drained =
    List.concat_map
      (fun b ->
        Mutex.protect b.b_mu (fun () ->
            let l = List.of_seq (Queue.to_seq b.b_q) in
            Queue.clear b.b_q;
            l))
      (List.rev !buffers)
  in
  let failures = ref [] in
  List.iter
    (fun p ->
      incr seq;
      let e =
        {
          ev_seq = !seq;
          ev_ts = p.p_ts;
          ev_severity = p.p_severity;
          ev_component = p.p_component;
          ev_name = p.p_name;
          ev_attrs = p.p_attrs;
        }
      in
      if !capacity > 0 then begin
        Queue.push e ring;
        trim ()
      end;
      List.iter
        (fun (name, f) ->
          if not (List.mem_assoc name !failures) then
            match f e with
            | () -> ()
            | exception exn -> failures := (name, exn) :: !failures)
        !sinks)
    drained;
  List.iter
    (fun (name, _) -> sinks := List.remove_assoc name !sinks)
    !failures;
  !failures

let report_sink_failures failed =
  List.iter
    (fun (name, exn) ->
      Printf.eprintf "journal: sink %s failed (%s); removed\n%!" name
        (Printexc.to_string exn))
    failed

let flush () = report_sink_failures (locked flush_locked)

(* Sink changes flush first, so every event emitted before the change
   reaches exactly the sinks that were registered at emission time. *)
let add_sink name f =
  report_sink_failures
    (locked (fun () ->
         let failed = flush_locked () in
         sinks := (name, f) :: List.remove_assoc name !sinks;
         failed))

let remove_sink name =
  report_sink_failures
    (locked (fun () ->
         let failed = flush_locked () in
         sinks := List.remove_assoc name !sinks;
         failed))

let emit ?(severity = Info) ?(attrs = []) ~component name =
  let b = Domain.DLS.get buffer_key in
  let p =
    {
      p_ts = Clock.now ();
      p_severity = severity;
      p_component = component;
      p_name = name;
      p_attrs = attrs;
    }
  in
  let full =
    Mutex.protect b.b_mu (fun () ->
        Queue.push p b.b_q;
        Queue.length b.b_q >= !batch)
  in
  match severity with
  | Warn | Error -> flush ()
  | Debug | Info -> if full then flush ()

(* ------------------------------------------------------------------ *)
(* reads                                                               *)
(* ------------------------------------------------------------------ *)

let events () =
  flush ();
  locked (fun () -> List.of_seq (Queue.to_seq ring))

let event_count () =
  flush ();
  locked (fun () -> !seq)

let clear () =
  locked (fun () ->
      (* discard, don't flush: cleared events must not resurface *)
      List.iter
        (fun b -> Mutex.protect b.b_mu (fun () -> Queue.clear b.b_q))
        !buffers;
      Queue.clear ring;
      seq := 0)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let event_to_json e =
  Json.obj
    [
      ("seq", Json.int e.ev_seq);
      ("ts", Json.num e.ev_ts);
      ("severity", Json.str (severity_to_string e.ev_severity));
      ("component", Json.str e.ev_component);
      ("event", Json.str e.ev_name);
      ("attrs", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) e.ev_attrs));
    ]

let to_jsonl () =
  String.concat ""
    (List.map (fun e -> event_to_json e ^ "\n") (events ()))

(* Split [file] into (stem, extension) around the last dot of its
   basename: "logs/foo.jsonl" -> ("logs/foo", ".jsonl"). No-extension
   names get an empty extension. *)
let split_ext file =
  let after_slash i =
    match String.rindex_opt file '/' with Some s -> i > s + 1 | None -> i > 0
  in
  match String.rindex_opt file '.' with
  | Some i when after_slash i ->
    (String.sub file 0 i, String.sub file i (String.length file - i))
  | Some _ | None -> (file, "")

let segment_path file idx =
  let stem, ext = split_ext file in
  Printf.sprintf "%s.%05d%s" stem idx ext

(* One past the highest existing segment index for [file] - scanning
   the directory rather than probing indices from 0, so a gap (an
   operator archived early segments) never makes a restart overwrite a
   later segment. *)
let next_segment_index file =
  let stem, ext = split_ext file in
  let prefix = Filename.basename stem ^ "." in
  let pl = String.length prefix and sl = String.length ext in
  match Sys.readdir (Filename.dirname file) with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun acc name ->
        let nl = String.length name in
        if
          nl = pl + 5 + sl
          && String.sub name 0 pl = prefix
          && String.sub name (nl - sl) sl = ext
        then
          match int_of_string_opt (String.sub name pl 5) with
          | Some i when i >= 0 -> max acc (i + 1)
          | Some _ | None -> acc
        else acc)
      0 entries

(* A journal that cannot be written must never take the tool down: warn
   once and run without the sink (write failures mid-run are handled
   the same way by the flush guard, which detaches a raising sink). *)
let open_sink_file file =
  (* append, never truncate: a crash-restart writing to the same path
     must not overwrite the pre-crash tail *)
  match
    Out_channel.open_gen
      [ Open_wronly; Open_creat; Open_append; Open_text ]
      0o644 file
  with
  | oc -> Some oc
  | exception Sys_error msg ->
    Printf.eprintf "journal: cannot open %s (%s); continuing without it\n%!"
      file msg;
    None

let open_jsonl ?segment_bytes file =
  match segment_bytes with
  | None -> (
    match open_sink_file file with
    | None -> ()
    | Some oc ->
      (* drain events still buffered in the domains before the channel
         closes at exit *)
      at_exit (fun () ->
          flush ();
          try Out_channel.close oc with Sys_error _ -> ());
      add_sink ("jsonl:" ^ file) (fun e ->
          Out_channel.output_string oc (event_to_json e);
          Out_channel.output_char oc '\n';
          Out_channel.flush oc))
  | Some limit ->
    if limit < 1 then invalid_arg "Journal.open_jsonl: segment_bytes under 1";
    (* segment rotation: write FILE.00000.jsonl, FILE.00001.jsonl, ...
       starting past any segments already on disk, rolling to the next
       segment once the current one reaches [limit] bytes. The finished
       segment is flushed and fsynced before the roll, so every
       completed segment is durable even against power loss. *)
    let idx = ref (next_segment_index file) in
    (match open_sink_file (segment_path file !idx) with
    | None -> ()
    | Some first ->
      let oc = ref first in
      let bytes = ref 0 in
      at_exit (fun () ->
          flush ();
          try Out_channel.close !oc with Sys_error _ -> ());
      add_sink ("jsonl:" ^ file) (fun e ->
          let line = event_to_json e ^ "\n" in
          Out_channel.output_string !oc line;
          Out_channel.flush !oc;
          bytes := !bytes + String.length line;
          if !bytes >= limit then begin
            (try Unix.fsync (Unix.descr_of_out_channel !oc)
             with Unix.Unix_error _ -> ());
            (try Out_channel.close !oc with Sys_error _ -> ());
            incr idx;
            (* a failed open raises out of the sink; the flush guard
               detaches it with a warning, same as any write failure *)
            oc :=
              Out_channel.open_gen
                [ Open_wronly; Open_creat; Open_append; Open_text ]
                0o644
                (segment_path file !idx);
            bytes := 0
          end))

(* ------------------------------------------------------------------ *)
(* flight recorder dumps                                               *)
(* ------------------------------------------------------------------ *)

let dump_printer = ref prerr_string
let set_dump_printer f = dump_printer := f

let dump_flight_recorder ?(limit = 32) ~reason () =
  let all = events () in
  let total = List.length all in
  let window =
    if total <= limit then all
    else
      (* keep the trailing [limit] events *)
      List.filteri (fun i _ -> i >= total - limit) all
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "== journal flight recorder: %s ==\n" reason);
  Buffer.add_string b
    (Printf.sprintf "last %d of %d event(s):\n" (List.length window)
       (event_count ()));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  [%5d] %.6f %-5s %-10s %s%s\n" e.ev_seq e.ev_ts
           (severity_to_string e.ev_severity)
           e.ev_component e.ev_name
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) e.ev_attrs))))
    window;
  !dump_printer (Buffer.contents b)

let crash_handler_installed = ref false

let install_crash_handler () =
  if not !crash_handler_installed then begin
    crash_handler_installed := true;
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        (if event_count () > 0 then
           try dump_flight_recorder ~reason:"uncaught exception" ()
           with _ -> ());
        Printf.eprintf "Fatal error: exception %s\n" (Printexc.to_string exn);
        Printexc.print_raw_backtrace stderr bt;
        Stdlib.flush stderr)
  end
