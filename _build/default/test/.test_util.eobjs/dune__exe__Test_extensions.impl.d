test/test_extensions.ml: Alcotest Array Helpers List Printf QCheck String Vc_cube Vc_multilevel Vc_network Vc_place Vc_route Vc_util
