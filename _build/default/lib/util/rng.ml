type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: fast, high-quality 64-bit mixing; the reference constants. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_nonneg t =
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: no positive weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 items

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = next_int64 t }
