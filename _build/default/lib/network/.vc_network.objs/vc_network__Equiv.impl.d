lib/network/equiv.ml: Array Hashtbl List Network Option Vc_bdd Vc_cube Vc_sat
