test/test_sat.ml: Alcotest Array Helpers List Option Printf QCheck Vc_cube Vc_sat
