(* Global instrumentation state, sharded per domain for multicore
   scaling. Every domain owns a private cell of counters, timer samples,
   gauges and completed spans (reached through [Domain.DLS]); the
   renderers merge all cells lazily on the way out.

   Domain safety: the per-job fast path is lock-free for the owning
   domain - a counter bump is one [Atomic.fetch_and_add] on a cell the
   owner already created, a timer sample is a cons onto an immutable
   list published with a single ref store. The only lock a writer can
   touch is its own cell mutex, taken once per (domain, metric-name)
   pair when the name is first seen - structurally growing the cell's
   hashtable must not race with a renderer walking it. Renderers take
   each cell's mutex in turn while folding; the short global mutex [mu]
   guards only the cell registry, the histogram-definition registry and
   the probe registry (all touched at registration/render time, never
   per job). Lock ordering: [mu] is never held while a cell mutex is
   taken within a single operation, and nothing in this module calls
   back out, so telemetry locks are always innermost.

   [reset] empties every registered cell; it assumes the quiescence any
   exact-counting reader needs anyway (domains that raced a reset may
   leave a stray count behind). Cells belong to the registry forever -
   a domain's counts survive its termination, which is what makes
   "spawn workers, join them, then read the totals" exact: [Domain.join]
   synchronizes, so merged sums equal the per-domain sums. *)

let set_clock = Clock.set
let now = Clock.now

let mu = Mutex.create ()
let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* trace spans (type only; recording comes after the cells)            *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * string) list;
  children : span list;
}

(* ------------------------------------------------------------------ *)
(* per-domain cells                                                    *)
(* ------------------------------------------------------------------ *)

type cells = {
  c_mu : Mutex.t; (* guards structural growth of the tables below *)
  c_counters : (string, int Atomic.t) Hashtbl.t;
  c_timers : (string, float list ref) Hashtbl.t; (* newest first *)
  c_gauges : (string, (int * float) ref) Hashtbl.t; (* (stamp, value) *)
  mutable c_spans : span list; (* completed roots, newest first *)
}

(* Registry of every cell ever created, newest first. Guarded by [mu]. *)
let all_cells : cells list ref = ref []

let cells_key : cells Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c =
        {
          c_mu = Mutex.create ();
          c_counters = Hashtbl.create 32;
          c_timers = Hashtbl.create 32;
          c_gauges = Hashtbl.create 16;
          c_spans = [];
        }
      in
      locked (fun () -> all_cells := c :: !all_cells);
      c)

let my_cells () = Domain.DLS.get cells_key
let snapshot_cells () = locked (fun () -> !all_cells)

(* Fold over every cell with its mutex held - the renderer-side half of
   the structural-growth discipline described in the header. *)
let fold_cells f init =
  List.fold_left
    (fun acc c -> Mutex.protect c.c_mu (fun () -> f acc c))
    init (snapshot_cells ())

(* ------------------------------------------------------------------ *)
(* counters                                                            *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) name =
  let c = my_cells () in
  (* only the owner adds names to its cell, so the unlocked lookup never
     races a structural change; the add takes the (uncontended) cell
     mutex to stay ordered against a concurrently merging renderer *)
  match Hashtbl.find_opt c.c_counters name with
  | Some a -> ignore (Atomic.fetch_and_add a by)
  | None ->
    Mutex.protect c.c_mu (fun () ->
        Hashtbl.add c.c_counters name (Atomic.make by))

let counter name =
  fold_cells
    (fun acc c ->
      match Hashtbl.find_opt c.c_counters name with
      | Some a -> acc + Atomic.get a
      | None -> acc)
    0

let counters () =
  let tbl = Hashtbl.create 64 in
  fold_cells
    (fun () c ->
      Hashtbl.iter
        (fun k a ->
          let v = Atomic.get a in
          match Hashtbl.find_opt tbl k with
          | Some r -> r := !r + v
          | None -> Hashtbl.add tbl k (ref v))
        c.c_counters)
    ();
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  max_s : float;
  stddev_s : float;
}

let observe name dt =
  let c = my_cells () in
  match Hashtbl.find_opt c.c_timers name with
  | Some l -> l := dt :: !l (* publish one immutable cons; lock-free *)
  | None ->
    Mutex.protect c.c_mu (fun () -> Hashtbl.add c.c_timers name (ref [ dt ]))

(* Merged raw samples for one name. Order across domains is
   unspecified; every consumer (percentiles, bucketing) is
   order-insensitive. *)
let timer_samples name =
  fold_cells
    (fun acc c ->
      match Hashtbl.find_opt c.c_timers name with
      | Some l -> List.rev_append !l acc
      | None -> acc)
    []

let all_timer_samples () =
  let tbl = Hashtbl.create 64 in
  fold_cells
    (fun () c ->
      Hashtbl.iter
        (fun k l ->
          let s = !l in
          match Hashtbl.find_opt tbl k with
          | Some r -> r := List.rev_append s !r
          | None -> Hashtbl.add tbl k (ref s))
        c.c_timers)
    ();
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []

(* ------------------------------------------------------------------ *)
(* histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Fixed-bucket histograms exist for the Prometheus exposition: a scrape
   wants pre-bucketed counts, not the raw sample list. A histogram is an
   upgrade of a timer - [define_histogram name] registers a bucket
   layout, and the scrape-time renderers bucket the merged raw samples
   on demand. Nothing happens on the per-observation hot path, and
   "backfill" is automatic: the buckets are always computed from every
   sample the timer ever recorded, whenever the definition arrived. *)

type hist_summary = {
  buckets : (float * int) list; (* (upper bound, cumulative count) *)
  hist_sum : float;
  hist_count : int;
}

(* Latency-oriented: the portal tools answer in microseconds to tens of
   milliseconds; the full flow runs for seconds on big designs. *)
let default_buckets =
  [
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  ]

(* name -> strictly increasing upper bounds; guarded by mu *)
let hist_defs : (string, float array) Hashtbl.t = Hashtbl.create 16

let define_histogram ?(buckets = default_buckets) name =
  (match buckets with
  | [] -> invalid_arg "Telemetry.define_histogram: no buckets"
  | _ ->
    List.iter2
      (fun a b ->
        if b <= a then
          invalid_arg "Telemetry.define_histogram: buckets not increasing")
      (List.filteri (fun i _ -> i < List.length buckets - 1) buckets)
      (List.tl buckets));
  locked (fun () ->
      if not (Hashtbl.mem hist_defs name) then
        Hashtbl.add hist_defs name (Array.of_list buckets))

let bucketize bounds samples =
  let n = Array.length bounds in
  let counts = Array.make n 0 in
  let sum = ref 0.0 and total = ref 0 in
  List.iter
    (fun v ->
      sum := !sum +. v;
      Stdlib.incr total;
      (* first bucket whose upper bound contains v; linear scan is fine
         for ~20 buckets at scrape time *)
      let rec place i =
        if i >= n then () (* over-range: counted only in total (+Inf) *)
        else if v <= bounds.(i) then counts.(i) <- counts.(i) + 1
        else place (i + 1)
      in
      place 0)
    samples;
  let cum = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           cum := !cum + counts.(i);
           (bound, !cum))
         bounds)
  in
  { buckets; hist_sum = !sum; hist_count = !total }

let histogram name =
  match locked (fun () -> Hashtbl.find_opt hist_defs name) with
  | None -> None
  | Some bounds -> Some (bucketize bounds (timer_samples name))

let histograms () =
  locked (fun () -> Hashtbl.fold (fun k b acc -> (k, b) :: acc) hist_defs [])
  |> List.map (fun (k, bounds) -> (k, bucketize bounds (timer_samples k)))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* gauges                                                              *)
(* ------------------------------------------------------------------ *)

(* Each domain stores its own last write, stamped from a global atomic;
   the merge keeps the newest stamp per name so a gauge still reads as
   last-write-wins across domains. *)
let gauge_stamp = Atomic.make 0

let set_gauge name v =
  let c = my_cells () in
  let stamp = Atomic.fetch_and_add gauge_stamp 1 in
  match Hashtbl.find_opt c.c_gauges name with
  | Some r -> r := (stamp, v)
  | None ->
    Mutex.protect c.c_mu (fun () ->
        Hashtbl.add c.c_gauges name (ref (stamp, v)))

let gauge name =
  fold_cells
    (fun acc c ->
      match Hashtbl.find_opt c.c_gauges name with
      | Some r ->
        let stamp, v = !r in
        (match acc with
        | Some (s0, _) when s0 > stamp -> acc
        | _ -> Some (stamp, v))
      | None -> acc)
    None
  |> Option.map snd

let gauges () =
  let tbl = Hashtbl.create 16 in
  fold_cells
    (fun () c ->
      Hashtbl.iter
        (fun k r ->
          let stamp, v = !r in
          match Hashtbl.find_opt tbl k with
          | Some (s0, _) when s0 > stamp -> ()
          | _ -> Hashtbl.replace tbl k (stamp, v))
        c.c_gauges)
    ();
  Hashtbl.fold (fun k (_, v) acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* The clock is wall time, not monotonic: an NTP step mid-measurement can
   make [now () -. t0] negative, so computed durations clamp at zero. *)
let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let time name f =
  let t0 = now () in
  match f () with
  | v ->
    observe name (elapsed_since t0);
    v
  | exception e ->
    observe name (elapsed_since t0);
    raise e

(* All descriptive statistics come from Vc_util.Stats - the one
   percentile/stddev implementation shared with Journal_query and the
   bench report printers. *)
let summarize samples =
  {
    count = List.length samples;
    total_s = List.fold_left ( +. ) 0.0 samples;
    mean_s = Stats.mean samples;
    p50_s = Stats.percentile samples 50.0;
    p90_s = Stats.percentile samples 90.0;
    p99_s = Stats.percentile samples 99.0;
    max_s = Stats.maximum samples;
    stddev_s = Stats.stddev samples;
  }

let timer name =
  match timer_samples name with [] -> None | samples -> Some (summarize samples)

let timers () =
  all_timer_samples ()
  |> List.map (fun (k, l) -> (k, summarize l))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* trace spans: recording                                              *)
(* ------------------------------------------------------------------ *)

type open_span = {
  o_name : string;
  o_start : float;
  o_attrs : (string * string) list;
  mutable o_children : span list; (* newest first *)
}

(* Each domain nests spans on its own stack; a completed top-level span
   lands in the owner's cell, lock-free. *)
let span_stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_span ?(attrs = []) name f =
  let span_stack = Domain.DLS.get span_stack_key in
  let o = { o_name = name; o_start = now (); o_attrs = attrs; o_children = [] } in
  span_stack := o :: !span_stack;
  let finish extra =
    (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
    let s =
      {
        span_name = o.o_name;
        start_s = o.o_start;
        duration_s = elapsed_since o.o_start;
        attrs = o.o_attrs @ extra;
        children = List.rev o.o_children;
      }
    in
    match !span_stack with
    | parent :: _ -> parent.o_children <- s :: parent.o_children
    | [] ->
      let c = my_cells () in
      c.c_spans <- s :: c.c_spans
  in
  match f () with
  | v ->
    finish [];
    v
  | exception e ->
    finish [ ("error", Printexc.to_string e) ];
    raise e

let timed_span ?attrs name f = time name (fun () -> with_span ?attrs name f)

(* Per cell the reversed list is completion order; across cells the
   forest is ordered by start time (stable, so single-domain traces keep
   their completion order even under a frozen test clock). *)
let spans () =
  snapshot_cells ()
  |> List.rev_map (fun c -> List.rev c.c_spans)
  |> List.concat
  |> List.stable_sort (fun a b -> compare a.start_s b.start_s)

let span_count () =
  List.fold_left (fun n c -> n + List.length c.c_spans) 0 (snapshot_cells ())

(* ------------------------------------------------------------------ *)
(* probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe_tbl : (string, unit -> (string * int) list) Hashtbl.t =
  Hashtbl.create 16

let register_probe name f =
  locked (fun () -> Hashtbl.replace probe_tbl name f)

(* Snapshot the registry under the lock, but read each probe outside it:
   probe thunks belong to other subsystems and must be free to take
   their own locks. *)
let probes () =
  locked (fun () -> Hashtbl.fold (fun k f acc -> (k, f) :: acc) probe_tbl [])
  |> List.map (fun (k, f) -> (k, f ()))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* renderers                                                           *)
(* ------------------------------------------------------------------ *)

let report () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== telemetry report ==\n";
  let cs = counters () in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10d\n" k v))
      cs
  end;
  let gs = gauges () in
  if gs <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10g\n" k v))
      gs
  end;
  let ts = timers () in
  if ts <> [] then begin
    Buffer.add_string b
      "timers (count / total ms / mean ms / p50 ms / p90 ms / p99 ms / max \
       ms / stddev ms):\n";
    List.iter
      (fun (k, s) ->
        Buffer.add_string b
          (Printf.sprintf
             "  %-40s %6d %9.2f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" k
             s.count (1e3 *. s.total_s) (1e3 *. s.mean_s) (1e3 *. s.p50_s)
             (1e3 *. s.p90_s) (1e3 *. s.p99_s) (1e3 *. s.max_s)
             (1e3 *. s.stddev_s)))
      ts
  end;
  let ps = probes () in
  if ps <> [] then begin
    Buffer.add_string b "kernel probes:\n";
    List.iter
      (fun (name, kvs) ->
        Buffer.add_string b (Printf.sprintf "  %s:\n" name);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b (Printf.sprintf "    %-36s %10d\n" k v))
          kvs)
      ps
  end;
  Buffer.add_string b
    (Printf.sprintf "trace spans recorded: %d\n" (span_count ()));
  Buffer.contents b

(* JSON text is built through the shared Vc_util.Json emitters, so the
   layer stays free of third-party dependencies. *)
let jstr = Json.str
let jfloat = Json.num
let jobj = Json.obj
let jarr = Json.arr

let summary_json s =
  jobj
    [
      ("count", string_of_int s.count);
      ("total_s", jfloat s.total_s);
      ("mean_s", jfloat s.mean_s);
      ("p50_s", jfloat s.p50_s);
      ("p90_s", jfloat s.p90_s);
      ("p99_s", jfloat s.p99_s);
      ("max_s", jfloat s.max_s);
      ("stddev_s", jfloat s.stddev_s);
    ]

let hist_json h =
  jobj
    [
      ( "buckets",
        jarr
          (List.map
             (fun (le, c) ->
               jobj [ ("le", jfloat le); ("cumulative", string_of_int c) ])
             h.buckets) );
      ("sum", jfloat h.hist_sum);
      ("count", string_of_int h.hist_count);
    ]

let to_json () =
  jobj
    [
      ( "counters",
        jobj (List.map (fun (k, v) -> (k, string_of_int v)) (counters ())) );
      ("gauges", jobj (List.map (fun (k, v) -> (k, jfloat v)) (gauges ())));
      ("timers", jobj (List.map (fun (k, s) -> (k, summary_json s)) (timers ())));
      ( "histograms",
        jobj (List.map (fun (k, h) -> (k, hist_json h)) (histograms ())) );
      ( "probes",
        jobj
          (List.map
             (fun (name, kvs) ->
               (name, jobj (List.map (fun (k, v) -> (k, string_of_int v)) kvs)))
             (probes ())) );
      ("spans", string_of_int (span_count ()));
    ]

let rec span_json s =
  jobj
    [
      ("name", jstr s.span_name);
      ("start_s", jfloat s.start_s);
      ("duration_s", jfloat s.duration_s);
      ("attrs", jobj (List.map (fun (k, v) -> (k, jstr v)) s.attrs));
      ("children", jarr (List.map span_json s.children));
    ]

let spans_to_json () = jobj [ ("spans", jarr (List.map span_json (spans ()))) ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Exposition format 0.0.4: one family per metric, HELP/TYPE comments,
   histogram families with _bucket{le=...}/_sum/_count series. Metric
   names come from the dotted telemetry names with a vc_ prefix. *)

let prom_name s =
  "vc_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      s

(* %.9g keeps full useful precision while rendering round bucket bounds
   as short, stable le labels (0.0001, not 0.000100000) *)
let prom_float f = Printf.sprintf "%.9g" f

let to_prometheus () =
  let b = Buffer.create 4096 in
  let family name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun (k, v) ->
      let n = prom_name k ^ "_total" in
      family n "counter" (Printf.sprintf "Telemetry counter %s." k);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    (counters ());
  List.iter
    (fun (probe, kvs) ->
      List.iter
        (fun (k, v) ->
          let n = prom_name (probe ^ "." ^ k) ^ "_total" in
          family n "counter"
            (Printf.sprintf "Kernel probe %s, cumulative %s." probe k);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
        kvs)
    (probes ());
  let n = "vc_journal_events_total" in
  family n "counter" "Structured journal events emitted since start.";
  Buffer.add_string b (Printf.sprintf "%s %d\n" n (Journal.event_count ()));
  List.iter
    (fun (k, v) ->
      let n = prom_name k in
      family n "gauge" (Printf.sprintf "Telemetry gauge %s." k);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (prom_float v)))
    (gauges ());
  let hists = histograms () in
  List.iter
    (fun (k, h) ->
      let n = prom_name k ^ "_seconds" in
      family n "histogram" (Printf.sprintf "Histogram %s (seconds)." k);
      List.iter
        (fun (le, c) ->
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float le) c))
        h.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.hist_count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float h.hist_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.hist_count))
    hists;
  (* timers that were not upgraded to histograms still appear, as
     summaries with exact quantiles off the raw samples *)
  List.iter
    (fun (k, s) ->
      if not (List.mem_assoc k hists) then begin
        let n = prom_name k ^ "_seconds" in
        family n "summary" (Printf.sprintf "Timer %s (seconds)." k);
        List.iter
          (fun (q, v) ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (prom_float v)))
          [ ("0.5", s.p50_s); ("0.9", s.p90_s); ("0.99", s.p99_s) ];
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (prom_float s.total_s));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.count)
      end)
    (timers ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* control / CLI                                                       *)
(* ------------------------------------------------------------------ *)

let reset () =
  List.iter
    (fun c ->
      Mutex.protect c.c_mu (fun () ->
          Hashtbl.reset c.c_counters;
          Hashtbl.reset c.c_timers;
          Hashtbl.reset c.c_gauges;
          c.c_spans <- []))
    (snapshot_cells ());
  locked (fun () -> Hashtbl.reset hist_defs);
  (* only the calling domain's open-span stack can be cleared - other
     domains own theirs *)
  Domain.DLS.get span_stack_key := []

type cli_options = {
  cli_argv : string array;
  cli_stats : bool;
  cli_trace : string option;
  cli_journal : string option;
  cli_journal_segments : int option;
  cli_metrics_port : int option;
}

let cli_parse argv =
  let stats = ref false
  and trace = ref None
  and journal = ref None
  and journal_segments = ref None
  and metrics_port = ref None in
  let missing flag what =
    Printf.eprintf "error: %s requires a %s argument\n" flag what;
    exit 2
  in
  let rec strip acc = function
    | [] -> List.rev acc
    | "--stats" :: rest ->
      stats := true;
      strip acc rest
    | [ "--trace" ] -> missing "--trace" "FILE"
    | "--trace" :: file :: rest ->
      trace := Some file;
      strip acc rest
    | [ "--journal" ] -> missing "--journal" "FILE"
    | "--journal" :: file :: rest ->
      journal := Some file;
      strip acc rest
    | [ "--journal-segments" ] -> missing "--journal-segments" "BYTES"
    | "--journal-segments" :: bytes :: rest -> begin
      match int_of_string_opt bytes with
      | Some n when n >= 1 ->
        journal_segments := Some n;
        strip acc rest
      | Some _ | None ->
        Printf.eprintf "error: --journal-segments: bad byte count %S\n" bytes;
        exit 2
    end
    | [ "--metrics-port" ] -> missing "--metrics-port" "PORT"
    | "--metrics-port" :: port :: rest -> begin
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 ->
        metrics_port := Some p;
        strip acc rest
      | Some _ | None ->
        Printf.eprintf "error: --metrics-port: bad port %S (0-65535)\n" port;
        exit 2
    end
    | a :: rest -> strip (a :: acc) rest
  in
  match Array.to_list argv with
  | [] ->
    {
      cli_argv = argv;
      cli_stats = false;
      cli_trace = None;
      cli_journal = None;
      cli_journal_segments = None;
      cli_metrics_port = None;
    }
  | prog :: args ->
    let kept = strip [] args in
    {
      cli_argv = Array.of_list (prog :: kept);
      cli_stats = !stats;
      cli_trace = !trace;
      cli_journal = !journal;
      cli_journal_segments = !journal_segments;
      cli_metrics_port = !metrics_port;
    }

let cli ?(server = false) argv =
  let o = cli_parse argv in
  (* Registered before the stats/trace hooks: at_exit runs LIFO, and the
     serving loop must be the last thing the process does - it keeps the
     tool alive answering /metrics until the operator kills it. With
     [server:true] the exporter instead serves live from a background
     domain for the whole run (vcserve and vcload need /varz answered
     while they work) and shuts down cleanly at exit. *)
  (match o.cli_metrics_port with
  | Some port ->
    let srv =
      Metrics_server.start ~port
        ~on_request:(fun _path -> incr "metrics.http_requests")
        ~metrics:(fun () -> to_prometheus ())
        ()
    in
    set_gauge "metrics.port" (float_of_int (Metrics_server.port srv));
    if server then begin
      let d = Domain.spawn (fun () -> Metrics_server.serve srv) in
      at_exit (fun () ->
          Metrics_server.stop srv;
          Domain.join d)
    end
    else at_exit (fun () -> Metrics_server.serve_forever srv)
  | None -> ());
  Journal.install_crash_handler ();
  if o.cli_stats then at_exit (fun () -> prerr_string (report ()));
  (match o.cli_trace with
  | Some file ->
    at_exit (fun () ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (spans_to_json ())))
  | None -> ());
  (match o.cli_journal with
  | Some file -> Journal.open_jsonl ?segment_bytes:o.cli_journal_segments file
  | None -> ());
  o.cli_argv
