open Helpers
module Tgraph = Vc_timing.Tgraph
module Elmore = Vc_timing.Elmore
module Map = Vc_techmap.Map
module Network = Vc_network.Network
module Expr = Vc_cube.Expr

let diamond () =
  (* a -> u -> v, b -> u, b -> v: classic reconvergence *)
  let g = Tgraph.create () in
  Tgraph.add_edge g ~src:"a" ~dst:"u" ~delay:1.0;
  Tgraph.add_edge g ~src:"b" ~dst:"u" ~delay:1.0;
  Tgraph.add_edge g ~src:"u" ~dst:"v" ~delay:2.0;
  Tgraph.add_edge g ~src:"b" ~dst:"v" ~delay:0.5;
  g

let sta_tests =
  [
    tc "arrival times" (fun () ->
        let r = Tgraph.analyze (diamond ()) in
        check (Alcotest.float 1e-9) "u" 1.0 (List.assoc "u" r.Tgraph.arrival);
        check (Alcotest.float 1e-9) "v" 3.0 (List.assoc "v" r.Tgraph.arrival);
        check (Alcotest.float 1e-9) "design delay" 3.0 r.Tgraph.worst_arrival);
    tc "required times and slack" (fun () ->
        let r = Tgraph.analyze (diamond ()) in
        (* default required = worst arrival = 3.0 *)
        check (Alcotest.float 1e-9) "v required" 3.0
          (List.assoc "v" r.Tgraph.required);
        check (Alcotest.float 1e-9) "u required" 1.0
          (List.assoc "u" r.Tgraph.required);
        check (Alcotest.float 1e-9) "critical slack" 0.0
          (List.assoc "u" r.Tgraph.slack);
        (* b -> v direct edge has plenty of slack via that path, but b also
           feeds u on the critical path, so b's slack is 0 *)
        check (Alcotest.float 1e-9) "b slack" 0.0 (List.assoc "b" r.Tgraph.slack);
        check (Alcotest.float 1e-9) "worst slack" 0.0 r.Tgraph.worst_slack);
    tc "explicit required time shifts slack" (fun () ->
        let r = Tgraph.analyze ~required_time:5.0 (diamond ()) in
        check (Alcotest.float 1e-9) "slack grows" 2.0
          (List.assoc "v" r.Tgraph.slack);
        check (Alcotest.float 1e-9) "worst slack" 2.0 r.Tgraph.worst_slack);
    tc "critical path identified" (fun () ->
        let r = Tgraph.analyze (diamond ()) in
        check Alcotest.bool "a/b -> u -> v" true
          (r.Tgraph.critical_path = [ "a"; "u"; "v" ]
          || r.Tgraph.critical_path = [ "b"; "u"; "v" ]));
    tc "input arrivals offset the analysis" (fun () ->
        let g = diamond () in
        Tgraph.set_input_arrival g "a" 10.0;
        let r = Tgraph.analyze g in
        check (Alcotest.float 1e-9) "pushed" 13.0 r.Tgraph.worst_arrival;
        check Alcotest.bool "critical through a" true
          (List.hd r.Tgraph.critical_path = "a"));
    tc "cycles rejected" (fun () ->
        let g = Tgraph.create () in
        Tgraph.add_edge g ~src:"x" ~dst:"y" ~delay:1.0;
        Tgraph.add_edge g ~src:"y" ~dst:"x" ~delay:1.0;
        match Tgraph.analyze g with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected cycle failure");
    tc "of_mapping agrees with the mapper's delay" (fun () ->
        let net =
          Network.of_exprs ~inputs:(var_names 4)
            [ ("f", Expr.parse "v0 v1 v2 + v3"); ("g", Expr.parse "v0 ^ v1") ]
        in
        List.iter
          (fun mode ->
            let m = Map.map_network ~mode (Vc_techmap.Cell_lib.standard ()) net in
            let r = Tgraph.analyze (Tgraph.of_mapping m) in
            check (Alcotest.float 1e-9) "same critical delay"
              m.Map.delay r.Tgraph.worst_arrival)
          [ Map.Min_area; Map.Min_delay ]);
    tc "report renders" (fun () ->
        let r = Tgraph.analyze (diamond ()) in
        check Alcotest.bool "non-empty" true
          (String.length (Tgraph.report_to_string r) > 0));
  ]

let elmore_tests =
  [
    tc "single RC segment" (fun () ->
        let t = Elmore.node ~r:0.0 ~c:0.0 [ Elmore.node ~label:"s" ~r:5.0 ~c:3.0 [] ] in
        check (Alcotest.float 1e-9) "r*c" 15.0 (Elmore.delay_to t "s"));
    tc "two-segment line" (fun () ->
        (* tau = R1*(C1+C2) + R2*C2 *)
        let t =
          Elmore.node ~r:0.0 ~c:0.0
            [ Elmore.node ~r:2.0 ~c:1.0 [ Elmore.node ~label:"s" ~r:3.0 ~c:2.0 [] ] ]
        in
        check (Alcotest.float 1e-9) "ladder" ((2.0 *. 3.0) +. (3.0 *. 2.0))
          (Elmore.delay_to t "s"));
    tc "branching: shared resistance sees both capacitances" (fun () ->
        let t =
          Elmore.node ~r:0.0 ~c:0.0
            [
              Elmore.node ~r:1.0 ~c:0.0
                [
                  Elmore.node ~label:"left" ~r:2.0 ~c:1.0 [];
                  Elmore.node ~label:"right" ~r:4.0 ~c:1.0 [];
                ];
            ]
        in
        (* shared R=1 sees C=2; each branch Ri sees its own C=1 *)
        check (Alcotest.float 1e-9) "left" (2.0 +. 2.0) (Elmore.delay_to t "left");
        check (Alcotest.float 1e-9) "right" (2.0 +. 4.0)
          (Elmore.delay_to t "right"));
    tc "driver resistance multiplies total capacitance" (fun () ->
        let t = Elmore.node ~r:0.0 ~c:1.0 [ Elmore.node ~label:"s" ~r:1.0 ~c:1.0 [] ] in
        let without = Elmore.delay_to t "s" in
        let with_driver = Elmore.delay_to ~driver_resistance:10.0 t "s" in
        check (Alcotest.float 1e-9) "adds Rd*Ctotal" (without +. 20.0) with_driver);
    tc "downstream capacitance sums the subtree" (fun () ->
        let t =
          Elmore.node ~r:0.0 ~c:1.0
            [ Elmore.node ~r:1.0 ~c:2.0 [ Elmore.node ~r:1.0 ~c:3.0 [] ] ]
        in
        check (Alcotest.float 1e-9) "total" 6.0 (Elmore.downstream_capacitance t));
    tc "unknown label raises Not_found" (fun () ->
        let t = Elmore.node ~r:0.0 ~c:1.0 [] in
        match Elmore.delay_to t "ghost" with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    tc "of_route: farther sinks are slower" (fun () ->
        let p =
          Vc_route.Router.parse_problem "grid 12 12\nnet a 0 0 11 0 11 11\n"
        in
        let r = Vc_route.Router.route p in
        match r.Vc_route.Router.routed with
        | [ net ] ->
          let tree = Elmore.of_route net.Vc_route.Router.r_paths in
          let ds = Elmore.delays tree in
          check Alcotest.int "two sinks" 2 (List.length ds);
          let near = List.assoc "sink0" ds and far = List.assoc "sink1" ds in
          check Alcotest.bool "monotone" true (near < far)
        | _ -> Alcotest.fail "one net");
    tc "of_route: via segments use via RC" (fun () ->
        (* force a via with a layer-0 wall; delay must include via_r *)
        let p =
          Vc_route.Router.parse_problem
            "grid 9 3\nobstacle 0 4 0\nobstacle 0 4 1\nobstacle 0 4 2\nnet a 1 1 7 1\n"
        in
        let r = Vc_route.Router.route p in
        match r.Vc_route.Router.routed with
        | [ net ] ->
          check Alcotest.bool "routed" true net.Vc_route.Router.r_ok;
          let tree = Elmore.of_route net.Vc_route.Router.r_paths in
          let straight_estimate =
            (* 6 steps of r=0.1 each seeing at most total c ~ 2.5 *)
            6.0 *. 0.1 *. 3.0
          in
          check Alcotest.bool "vias visible" true
            (Elmore.delay_to tree "sink0" > straight_estimate)
        | _ -> Alcotest.fail "one net");
    tc "of_route rejects empty" (fun () ->
        match Elmore.of_route [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

(* ------------------------- event-driven sim --------------------- *)

module Ev = Vc_timing.Eventsim

let hazard_mapping () =
  let net =
    Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
      [ ("f", Expr.parse "a b + !a c") ]
  in
  Map.map_network (Vc_techmap.Cell_lib.standard ()) net

let eventsim_tests =
  [
    tc "steady state matches functional simulation" (fun () ->
        let m = hazard_mapping () in
        let out =
          Ev.simulate m
            [ ("a", [ (0.0, true) ]); ("b", [ (0.0, true) ]); ("c", [ (0.0, false) ]) ]
        in
        let f = List.assoc "f" out in
        check Alcotest.bool "ab = 1" true (Ev.value_at f 0.0);
        check Alcotest.int "no events" 0 (Ev.transitions f));
    tc "static-1 hazard appears with real delays" (fun () ->
        let m = hazard_mapping () in
        let out =
          Ev.simulate m
            [
              ("a", [ (0.0, true); (10.0, false) ]);
              ("b", [ (0.0, true) ]);
              ("c", [ (0.0, true) ]);
            ]
        in
        let f = List.assoc "f" out in
        (* functionally f stays 1; the unequal paths glitch it low *)
        check Alcotest.bool "final value 1" true (Ev.value_at f 1000.0);
        check Alcotest.bool "glitch observed" true (Ev.glitches f > 0));
    tc "single gate switches cleanly" (fun () ->
        let net =
          Network.of_exprs ~inputs:[ "x"; "y" ] [ ("g", Expr.parse "x & y") ]
        in
        let m = Map.map_network (Vc_techmap.Cell_lib.standard ()) net in
        let out =
          Ev.simulate m
            [ ("x", [ (0.0, false); (5.0, true) ]); ("y", [ (0.0, true) ]) ]
        in
        let g = List.assoc "g" out in
        check Alcotest.int "one transition" 1 (Ev.transitions g);
        check Alcotest.int "no glitches" 0 (Ev.glitches g);
        (* the edge arrives after the cell delay, not instantly *)
        check Alcotest.bool "still low just after 5" false (Ev.value_at g 5.01));
    tc "pulse shorter than the path still propagates (transport delay)"
      (fun () ->
        let net =
          Network.of_exprs ~inputs:[ "x" ] [ ("g", Expr.parse "!(!x)") ]
        in
        let m = Map.map_network (Vc_techmap.Cell_lib.standard ()) net in
        let out =
          Ev.simulate m
            [ ("x", [ (0.0, false); (5.0, true); (5.1, false) ]) ]
        in
        let g = List.assoc "g" out in
        check Alcotest.int "pulse preserved" 2 (Ev.transitions g));
    tc "unknown stimulus rejected" (fun () ->
        let m = hazard_mapping () in
        match Ev.simulate m [ ("ghost", [ (0.0, true) ]) ] with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
    tc "waveform helpers" (fun () ->
        let w = [ (0.0, false); (2.0, true); (3.0, false); (4.0, true) ] in
        check Alcotest.int "transitions" 3 (Ev.transitions w);
        check Alcotest.int "glitches" 2 (Ev.glitches w);
        check Alcotest.bool "value at 2.5" true (Ev.value_at w 2.5);
        check Alcotest.bool "value at 3.5" false (Ev.value_at w 3.5));
  ]

let () =
  Alcotest.run "timing"
    [
      ("sta", sta_tests);
      ("elmore", elmore_tests);
      ("eventsim", eventsim_tests);
    ]
