module T = Vc_util.Telemetry
module J = Vc_util.Journal
module Tc = Vc_util.Trace_ctx
module Prof = Vc_util.Profile

(* ------------------------------------------------------------------ *)
(* token bucket                                                        *)
(* ------------------------------------------------------------------ *)

module Token_bucket = struct
  type t = {
    rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ~rate ~burst ~now =
    if rate < 0.0 || burst <= 0.0 then
      invalid_arg "Server.Token_bucket.create: rate must be >= 0, burst > 0";
    { rate; burst; tokens = burst; last = now }

  let try_take b ~now =
    let dt = Float.max 0.0 (now -. b.last) in
    b.tokens <- Float.min b.burst (b.tokens +. (dt *. b.rate));
    b.last <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      true
    end
    else false

  let available b ~now =
    Float.min b.burst (b.tokens +. (Float.max 0.0 (now -. b.last) *. b.rate))
end

let deadline_expired ~enqueued ~deadline_s ~now =
  deadline_s < Float.infinity && Float.max 0.0 (now -. enqueued) >= deadline_s

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;
  queue_capacity : int;
  deadline_s : float;
  rate_limit : (float * float) option;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    deadline_s = Float.infinity;
    rate_limit = None;
  }

(* ------------------------------------------------------------------ *)
(* jobs and server state                                               *)
(* ------------------------------------------------------------------ *)

(* Each job carries its own mutex/condition pair: the submitting client
   blocks on it while a worker domain runs the job, so completion wakes
   exactly the one waiter and never contends with the queue lock. *)
type job = {
  j_tool : Portal.tool;
  j_input : string;
  j_session : Portal.session;
  j_session_id : string;
  j_trace : Tc.t;
  j_enqueued : float;
  j_mu : Mutex.t;
  j_cond : Condition.t;
  mutable j_result : Portal.outcome option;
}

type session_slot = {
  sl_session : Portal.session;
  sl_bucket : Token_bucket.t option;
}

type t = {
  config : config;
  mu : Mutex.t;  (* guards queue, stopping, domains, sessions, idle, rng *)
  cond : Condition.t;  (* wakes one idle worker per enqueue; broadcast on stop *)
  queue : job Queue.t;
  mutable stopping : bool;
  mutable idle : int;  (* workers currently blocked in Condition.wait *)
  mutable domains : unit Domain.t list;
  sessions : (string, session_slot) Hashtbl.t;
  rng : Vc_util.Rng.t;  (* mints trace ids for untraced submissions *)
  busy : int Atomic.t;  (* workers currently processing a job *)
  depth_hwm : int Atomic.t;  (* queue-depth high-water mark *)
}

(* monotone CAS-max: the high-water mark survives the gauge's sawtooth,
   so a console that polls between bursts still sees the peak *)
let rec raise_hwm t depth =
  let cur = Atomic.get t.depth_hwm in
  if depth > cur then
    if Atomic.compare_and_set t.depth_hwm cur depth then
      T.set_gauge "server.queue_depth.hwm" (float_of_int depth)
    else raise_hwm t depth

let count_outcome outcome =
  match outcome with
  | Portal.Executed _ -> T.incr "server.outcome.executed"
  | Portal.Cache_hit _ -> T.incr "server.outcome.cache_hit"
  | Portal.Rejected r -> T.incr ("server.outcome.rejected." ^ Portal.reason_label r)

(* Admission-control and deadline rejections are the server's own; each
   gets its distinct journal event so an operator can tell saturation
   (overloaded), abuse (rate_limited) and staleness (deadline) apart at
   a glance. Runaway rejections keep their journal trail inside
   [Portal.submit_result]. *)
let reject_server ~session_id ~tool_name ~ctx label msg reason =
  let outcome = Portal.Rejected reason in
  count_outcome outcome;
  J.emit ~severity:J.Warn ~component:"server"
    ~attrs:
      (Tc.to_attrs ctx
      @ [ ("session", session_id); ("tool", tool_name); ("reason", msg) ])
    ("job.rejected." ^ label);
  outcome

(* ------------------------------------------------------------------ *)
(* worker loop                                                         *)
(* ------------------------------------------------------------------ *)

let rec worker_loop t w =
  let job_opt =
    Mutex.protect t.mu (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          (* count ourselves idle so enqueuers only pay a signal when a
             worker is actually asleep *)
          t.idle <- t.idle + 1;
          Condition.wait t.cond t.mu;
          t.idle <- t.idle - 1
        done;
        if Queue.is_empty t.queue then None (* stopping, queue drained *)
        else begin
          let j = Queue.pop t.queue in
          Some (j, Queue.length t.queue)
        end)
  in
  match job_opt with
  | None -> ()
  | Some (job, depth) ->
    T.set_gauge "server.queue_depth" (float_of_int depth);
    (* per-worker busy accounting: the continuous profiler attributes
       this span to "worker;..." and the busy-time timer feeds the
       server.worker.<w>.util series *)
    T.set_gauge "server.workers.busy"
      (float_of_int (1 + Atomic.fetch_and_add t.busy 1));
    let busy_from = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        T.observe
          (Printf.sprintf "server.worker.%d.busy" w)
          (Float.max 0.0 (Unix.gettimeofday () -. busy_from));
        T.set_gauge "server.workers.busy"
          (float_of_int (Atomic.fetch_and_add t.busy (-1) - 1)))
      (fun () -> Prof.with_frame "worker" (fun () -> process_job t job));
    worker_loop t w

and process_job t job =
    let ctx = job.j_trace in
    let now = T.now () in
    let wait_s = Float.max 0.0 (now -. job.j_enqueued) in
    T.observe "server.queue_wait" wait_s;
    Tc.record_phase ctx "queue" wait_s;
    J.emit ~component:"server"
      ~attrs:
        (Tc.to_attrs ctx
        @ [
            ("tool", job.j_tool.Portal.tool_name);
            ("queue_wait_s", Printf.sprintf "%.6f" wait_s);
          ])
      "request.dequeued";
    let outcome =
      if
        deadline_expired ~enqueued:job.j_enqueued
          ~deadline_s:t.config.deadline_s ~now
      then begin
        (* only the configured limit in the message - the measured wait
           goes in the journal attrs, keeping wire output deterministic *)
        let msg =
          Printf.sprintf "queue wait exceeded the %.3f s deadline"
            t.config.deadline_s
        in
        let outcome = Portal.Rejected (Portal.Deadline_exceeded msg) in
        count_outcome outcome;
        J.emit ~severity:J.Warn ~component:"server"
          ~attrs:
            (Tc.to_attrs ctx
            @ [
                ("tool", job.j_tool.Portal.tool_name);
                ("wait_s", Printf.sprintf "%.6f" wait_s);
                ("reason", msg);
              ])
          "job.rejected.deadline";
        outcome
      end
      else begin
        (* the ambient context lets the portal time its cache-probe and
           execute phases into this request without plumbing *)
        let outcome =
          Tc.with_current ctx (fun () ->
              Portal.submit_result job.j_session job.j_tool job.j_input)
        in
        count_outcome outcome;
        outcome
      end
    in
    (* close the timeline and journal it before waking the client, so a
       reader that observes the outcome also observes the event *)
    let total_s = Float.max 0.0 (T.now () -. job.j_enqueued) in
    let reply_s = Float.max 0.0 (total_s -. Tc.phase_total ctx) in
    Tc.record_phase ctx "reply" reply_s;
    List.iter
      (fun (name, d) -> T.observe ("server.phase." ^ name) d)
      (Tc.phases ctx);
    J.emit ~component:"server"
      ~attrs:
        (Tc.to_attrs ctx
        @ [
            ("tool", job.j_tool.Portal.tool_name);
            ("session", job.j_session_id);
            ( "outcome",
              match outcome with
              | Portal.Executed _ -> "executed"
              | Portal.Cache_hit _ -> "cache_hit"
              | Portal.Rejected _ -> "rejected" );
            ("total_s", Printf.sprintf "%.6f" total_s);
          ]
        @ Tc.phase_attrs ctx)
      "request.replied";
    Mutex.protect job.j_mu (fun () ->
        job.j_result <- Some outcome;
        Condition.signal job.j_cond)

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) () =
  if config.workers < 1 then
    invalid_arg "Server.start: at least one worker required";
  if config.queue_capacity < 0 then
    invalid_arg "Server.start: negative queue capacity";
  T.define_histogram "server.queue_wait";
  List.iter
    (fun phase -> T.define_histogram ("server.phase." ^ phase))
    [ "queue"; "cache"; "execute"; "reply" ];
  T.set_gauge "server.queue_depth" 0.0;
  T.set_gauge "server.queue_depth.hwm" 0.0;
  T.set_gauge "server.workers.busy" 0.0;
  T.set_gauge "server.workers.total" (float_of_int config.workers);
  let t =
    {
      config;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      idle = 0;
      domains = [];
      sessions = Hashtbl.create 16;
      (* wall clock, not Clock: server-minted ids must differ across
         runs even under a frozen test clock *)
      rng =
        Vc_util.Rng.create
          (int_of_float (Unix.gettimeofday () *. 1e6)
          lxor (Unix.getpid () * 0x9E3779B1));
      busy = Atomic.make 0;
      depth_hwm = Atomic.make 0;
    }
  in
  t.domains <-
    List.init config.workers (fun w ->
        Domain.spawn (fun () ->
            (* publish the empty frame stack before the first job, so
               sampler ticks attribute worker idle time from the start *)
            Prof.register ();
            worker_loop t w));
  J.emit ~component:"server"
    ~attrs:
      [
        ("workers", string_of_int config.workers);
        ("queue_capacity", string_of_int config.queue_capacity);
        ("deadline_s",
         if config.deadline_s = Float.infinity then "none"
         else Printf.sprintf "%.3f" config.deadline_s);
        ("rate_limit",
         match config.rate_limit with
         | None -> "none"
         | Some (rate, burst) -> Printf.sprintf "%.3f/s burst %.1f" rate burst);
      ]
    "server.start";
  t

let stop t =
  let domains =
    Mutex.protect t.mu (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.cond;
          let d = t.domains in
          t.domains <- [];
          d
        end)
  in
  if domains <> [] then begin
    List.iter Domain.join domains;
    T.set_gauge "server.queue_depth" 0.0;
    J.emit ~component:"server"
      ~attrs:
        [
          ("executed", string_of_int (T.counter "server.outcome.executed"));
          ("cache_hit", string_of_int (T.counter "server.outcome.cache_hit"));
          ("rejected.runaway",
           string_of_int (T.counter "server.outcome.rejected.runaway"));
          ("rejected.overloaded",
           string_of_int (T.counter "server.outcome.rejected.overloaded"));
          ("rejected.rate_limited",
           string_of_int (T.counter "server.outcome.rejected.rate_limited"));
          ("rejected.deadline",
           string_of_int (T.counter "server.outcome.rejected.deadline"));
        ]
      "server.stop"
  end

let queue_depth t = Mutex.protect t.mu (fun () -> Queue.length t.queue)

(* ------------------------------------------------------------------ *)
(* sessions and submission                                             *)
(* ------------------------------------------------------------------ *)

let session_slot t id =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.sessions id with
      | Some slot -> slot
      | None ->
        let slot =
          {
            sl_session = Portal.create_session ();
            sl_bucket =
              Option.map
                (fun (rate, burst) ->
                  Token_bucket.create ~rate ~burst ~now:(T.now ()))
                t.config.rate_limit;
          }
        in
        Hashtbl.add t.sessions id slot;
        slot)

let session t id = (session_slot t id).sl_session

let submit t (req : Portal.request) =
  let session_id = req.Portal.req_session
  and tool = req.Portal.req_tool
  and input = req.Portal.req_input in
  T.incr "server.submitted";
  let slot = session_slot t session_id in
  let tool_name = tool.Portal.tool_name in
  (* a valid client-supplied id is adopted; anything else gets a
     server-minted one so every request has a joinable timeline *)
  let ctx =
    match Option.bind req.Portal.req_trace Tc.of_id with
    | Some ctx -> ctx
    | None -> Tc.make (Mutex.protect t.mu (fun () -> Tc.mint t.rng))
  in
  let rate_ok =
    match slot.sl_bucket with
    | None -> true
    | Some b ->
      (* the bucket mutates; reuse the server lock rather than giving
         each bucket its own (takes are rare and O(1)) *)
      Mutex.protect t.mu (fun () -> Token_bucket.try_take b ~now:(T.now ()))
  in
  if not rate_ok then
    reject_server ~session_id ~tool_name ~ctx "rate_limited"
      (Printf.sprintf "session %S exceeded its submission rate limit"
         session_id)
      (Portal.Rate_limited
         (Printf.sprintf "session %S exceeded its submission rate limit"
            session_id))
  else begin
    let job =
      {
        j_tool = tool;
        j_input = input;
        j_session = slot.sl_session;
        j_session_id = session_id;
        j_trace = ctx;
        j_enqueued = T.now ();
        j_mu = Mutex.create ();
        j_cond = Condition.create ();
        j_result = None;
      }
    in
    let admitted =
      Mutex.protect t.mu (fun () ->
          if t.stopping then `Stopped
          else if Queue.length t.queue >= t.config.queue_capacity then `Full
          else begin
            Queue.push job t.queue;
            (* wake exactly one worker, and only when one is actually
               asleep: a busy worker re-checks the queue under the lock
               before it ever waits, so a skipped signal is never lost *)
            if t.idle > 0 then Condition.signal t.cond;
            `Admitted (Queue.length t.queue)
          end)
    in
    match admitted with
    | `Stopped ->
      reject_server ~session_id ~tool_name ~ctx "overloaded"
        "server is shutting down"
        (Portal.Overloaded "server is shutting down")
    | `Full ->
      let msg =
        Printf.sprintf "submission queue full (capacity %d)"
          t.config.queue_capacity
      in
      reject_server ~session_id ~tool_name ~ctx "overloaded" msg
        (Portal.Overloaded msg)
    | `Admitted depth ->
      T.set_gauge "server.queue_depth" (float_of_int depth);
      raise_hwm t depth;
      J.emit ~component:"server"
        ~attrs:
          (Tc.to_attrs ctx
          @ [
              ("tool", tool_name);
              ("session", session_id);
              ("queue_depth", string_of_int depth);
            ])
        "request.admitted";
      Mutex.protect job.j_mu (fun () ->
          while job.j_result = None do
            Condition.wait job.j_cond job.j_mu
          done;
          Option.get job.j_result)
  end
