lib/mooc/projects.mli: Autograder Vc_route
