(** Fixed-capacity telemetry time series plus the background sampler
    that feeds them - the time dimension of the observability layer.

    The store follows the sharded-Telemetry architecture
    (docs/CONCURRENCY.md): every domain appends {!record}ed points into
    its own ring-buffer cell under its own (uncontended) mutex, and
    {!points} merges all cells by timestamp on the way out, keeping the
    newest [capacity] points per series. Series are created on first
    write; {!define} pins a non-default capacity.

    {!Sampler} is the producer: a background domain that snapshots
    selected counters / gauges / timer percentiles every [interval]
    seconds ([-sample-interval] on [vcserve]/[vcload],
    [VC_SAMPLE_INTERVAL] in the environment, [<= 0] disables), derives
    rates from counter deltas (qps, shed rate, cache hit-rate,
    per-worker utilization), and drives one {!Profile.tick} per tick.
    Starting a sampler also registers the [GET /varz] (JSON: all
    telemetry + recent series + profile counts) and [GET /profile]
    (folded stacks) routes on {!Metrics_server} - the live surface
    [bin/vctop] polls. *)

type point = { p_ts : float; p_value : float }

val default_capacity : int
(** Points kept per series when {!define} was not called (240). *)

val define : ?capacity:int -> string -> unit
(** Pin [name]'s ring capacity before its first write. First call wins;
    later calls (and plain {!record}s) keep the existing capacity.
    @raise Invalid_argument when [capacity < 1]. *)

val record : ?ts:float -> string -> float -> unit
(** Append one point (timestamp defaults to {!Telemetry.now}) to the
    calling domain's ring for the series, evicting its oldest point
    when full. *)

val points : string -> point list
(** All cells' points for the series merged by timestamp, oldest first,
    capped at the series capacity. Empty for an unknown series. *)

val last : string -> point option
(** Newest point of the series, if any. *)

val names : unit -> string list
(** Every series any domain has written, sorted. *)

val series_json : string -> string
(** One series as a JSON array of [[ts, value]] pairs. *)

val to_json : unit -> string
(** All series as one JSON object ([{"name": [[ts, value], ...]}]). *)

val varz_json : unit -> string
(** The [GET /varz] document: [now], the full {!Telemetry.to_json}
    snapshot under ["telemetry"], every series under ["series"], and
    the profiler's tick/sample/stack counts under ["profile"]. *)

val reset : unit -> unit
(** Drop every cell's points and all capacity pins. Tests only. *)

(** {1 Background sampler} *)

val default_interval : unit -> float
(** [VC_SAMPLE_INTERVAL] when set and parseable, else [0.5] seconds -
    the default behind the [-sample-interval] flags. *)

(** What one sampler tick snapshots. Counter names may end in ["*"]
    (prefix wildcard). *)
type source =
  | Gauge of string  (** series name = gauge name *)
  | Rate of { counters : string list; series : string }
      (** per-second rate of the summed counter deltas since the
          previous tick *)
  | Ratio of { num : string list; den : string list; series : string }
      (** delta(num)/delta(den) since the previous tick; no point is
          recorded while the denominator is idle *)
  | Percentiles of string
      (** timer [name] -> [name.p50_ms] / [name.p99_ms] series over the
          run-cumulative samples *)
  | Utilization of { prefix : string; suffix : string }
      (** every timer named [prefix<id>suffix] -> a [prefix<id>.util]
          series: the per-second growth rate of its accumulated total,
          clamped to [0, 1] - busy fraction *)

val server_sources : source list
(** The vcserve console: queue depth (+ high-water mark), cache size,
    qps, shed rate, cache hit-rate, the four [server.phase.*]
    percentile pairs and per-worker utilization. *)

val client_sources : source list
(** The vcload side: achieved qps and shed rate from the vcload.*
    outcome counters. *)

module Sampler : sig
  type t

  val create :
    ?profile:bool -> ?sources:source list -> interval:float -> unit -> t
  (** Build a sampler (default [sources]: {!server_sources};
      [profile:false] skips the {!Profile.tick} per tick), prime its
      delta snapshots from the current counter values, and register the
      [/varz] and [/profile] routes. No domain is spawned - drive it
      with {!tick} (deterministic tests) or use {!start}. *)

  val start :
    ?profile:bool -> ?sources:source list -> interval:float -> unit -> t
  (** {!create}, then spawn the background domain ticking every
      [interval] seconds of wall time. [interval <= 0] registers the
      routes but never ticks (the [-sample-interval 0] escape hatch). *)

  val tick : t -> unit
  (** Take one sample now (timestamps from {!Telemetry.now}, so a test
      clock gives deterministic series). *)

  val stop : t -> unit
  (** Stop and join the background domain, if any. Prompt (the sleep is
      sliced), idempotent. *)

  val interval : t -> float
end
