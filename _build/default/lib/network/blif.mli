(** BLIF (Berkeley Logic Interchange Format) reading and writing, the file
    format SIS uses and the course distributed benchmark logic in.

    Supported: [.model], [.inputs], [.outputs], [.names] (both ON-set
    ['... 1'] and OFF-set ['... 0'] row styles, and constant nodes), [.end],
    [#] comments, backslash continuation. Latches are rejected with a clear
    message - the course flow is purely combinational. *)

val parse : string -> Network.t
(** @raise Failure on malformed or sequential input. *)

val to_string : Network.t -> string
(** Canonical BLIF text; nodes in topological order. *)
