lib/network/atpg.mli: Equiv Network
