(** Regression gating between two machine-readable benchmark/QoR
    reports - the engine behind [bench/main.exe compare BASELINE
    CURRENT]. Understands both JSON shapes the repo emits:

    - {!Telemetry.to_json} dumps ([BENCH_*.json]): every timer's
      [mean_s] is compared under the latency tolerance; counters with a
      known quality direction (e.g. [*.cache_hits] higher-is-better,
      [*.misses] / [*.rejected] / [*.evictions] lower-is-better) are
      compared under the QoR tolerance; gauges ending in [.speedup]
      (the server bench scaling ratios) are gated higher-is-better and
      gauges ending in [.p99_ms] / [.shed_rate] (the loadgen SLO
      bounds) lower-is-better, both under the gauge tolerance; all
      other gauges and counters are reported as informational notes
      only.
    - [Vc_mooc.Flow] QoR reports ([flow --report]): per-stage [metrics]
      are compared under the QoR tolerance (lower-is-better except
      [nets_routed] and [equivalent]), per-stage [latency_s] under the
      latency tolerance.

    Latency comparisons additionally require the absolute delta to
    exceed a noise floor so microsecond-scale cache-hit timers cannot
    trip the gate on scheduler jitter. *)

type verdict = {
  regressions : string list;  (** Human-readable, one per failed gate. *)
  improvements : string list;  (** Moves beyond tolerance the good way. *)
  notes : string list;  (** Directionless changes, informational. *)
  compared : int;  (** Number of gated comparisons performed. *)
}

val compare_json :
  ?latency_tol:float ->
  ?qor_tol:float ->
  ?gauge_tol:float ->
  ?min_latency_delta_s:float ->
  ?min_gauge_delta:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  verdict
(** [compare_json ~baseline ~current ()] with [latency_tol] (default
    [0.5], i.e. +50%), [qor_tol] (default [0.0], any worsening fails),
    [gauge_tol] (default [0.25], for the direction-gated [.speedup] /
    [.p99_ms] / [.shed_rate] gauges - generous because wall-clock
    ratios are noisy), [min_latency_delta_s] (default [1e-4], 0.1 ms
    noise floor) and [min_gauge_delta] (default [0.01], the absolute
    slack added to the relative gauge band so a near-zero baseline -
    a clean run's shed rate - does not gate exactly).
    Keys present on only one side are reported as notes. *)

val render : verdict -> string
(** The report [compare] prints: regressions first, then improvements
    and notes, then a one-line summary. *)
