lib/network/fsm.mli: Network
