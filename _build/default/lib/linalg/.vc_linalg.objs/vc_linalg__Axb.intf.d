lib/linalg/axb.mli:
