(** The flow-wide structured event journal: an append-only log of typed
    events (timestamp, severity, component, name, key/value attributes)
    layered on the same injectable {!Clock} as {!Telemetry}.

    Where {!Telemetry} answers "how much / how long", the journal
    answers "what happened, in what order": {!Vc_mooc.Flow} emits
    begin/end events per stage carrying quality-of-result metrics,
    {!Vc_mooc.Portal} emits one event per submission (tool, digest,
    cache hit/miss, latency, rejection reason), {!Vc_mooc.Autograder}
    emits one event per gradable unit, and the place/route/timing/
    synthesis kernels emit completion events with their headline
    numbers. Every binary under [bin/] exposes the stream through the
    [--journal FILE] flag of {!Telemetry.cli}, which installs a JSONL
    sink.

    Two consumers are built in:

    - {b Sinks}: named callbacks invoked on every event - the JSONL
      file sink streams each event as one JSON line.
    - {b Flight recorder}: a bounded in-memory ring buffer of the most
      recent events, dumped to stderr when the process dies on an
      uncaught exception ({!install_crash_handler}, installed by
      {!Telemetry.cli}) or when a portal submission trips the runaway
      guard - the trailing window of context an operator needs.

    Like the rest of the observability layer, all state is
    process-global and {e domain-safe}, but the hot path is buffered
    per domain: {!emit} appends to the calling domain's private buffer
    (its own uncontended mutex), and batches drain to the ring and the
    sinks under the single sink lock on a {e flush} - forced by a full
    buffer (see {!set_batch_capacity}), by any [Warn]/[Error] event, by
    every read ({!events}, {!event_count}, {!to_jsonl}) and by sink
    (de)registration, or explicitly via {!flush}. Sequence numbers are
    assigned at flush time, so sinks still observe a strictly
    increasing sequence on one serialized channel; each domain's events
    stay in emission order, while interleaving {e across} domains is
    decided at flush time. A sink must never call back into {!emit}.
    There are no third-party dependencies. See [docs/CONCURRENCY.md]
    for the full model. *)

(** {1 Events} *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
(** ["DEBUG"], ["INFO"], ["WARN"], ["ERROR"]. *)

type event = {
  ev_seq : int;
      (** Sequence number, 1-based, monotone per process. Assigned when
          the event is flushed, not when it is emitted. *)
  ev_ts : float;  (** {!Clock.now} at emission. *)
  ev_severity : severity;
  ev_component : string;  (** Subsystem, e.g. ["flow"], ["portal"]. *)
  ev_name : string;  (** Event name, e.g. ["stage.end"]. *)
  ev_attrs : (string * string) list;  (** Key/value attributes. *)
}

val emit :
  ?severity:severity ->
  ?attrs:(string * string) list ->
  component:string ->
  string ->
  unit
(** [emit ~component name] appends an event (default severity [Info])
    to the calling domain's buffer. [Info]/[Debug] events reach the
    flight-recorder ring and the sinks at the next flush; [Warn] and
    [Error] flush immediately. Cheap on the hot path - one allocation
    plus a push under the domain's own (uncontended) buffer mutex. *)

val flush : unit -> unit
(** Drain every domain's buffer into the ring and the sinks now,
    assigning sequence numbers. Idempotent; called implicitly by every
    read and on sink changes, and at process exit for the
    {!open_jsonl} sink. *)

val set_batch_capacity : int -> unit
(** Events a domain buffers (default 64) before an [Info]/[Debug]
    {!emit} forces a flush. [1] makes every emit flush - the
    pre-buffering synchronous behaviour.
    @raise Invalid_argument under 1. *)

val batch_capacity : unit -> int

val events : unit -> event list
(** Current flight-recorder contents, oldest first (at most
    {!ring_capacity} events). *)

val event_count : unit -> int
(** Total events emitted since start/{!clear}, including those already
    rotated out of the ring. *)

val set_ring_capacity : int -> unit
(** Resize the flight-recorder ring (default 256), dropping the oldest
    events if shrinking. @raise Invalid_argument on negatives. *)

val ring_capacity : unit -> int

val clear : unit -> unit
(** Empty the ring and reset {!event_count}. Sinks stay registered. *)

(** {1 JSON} *)

val event_to_json : event -> string
(** One event as a JSON object with fields [seq], [ts], [severity],
    [component], [event] and [attrs]. *)

val to_jsonl : unit -> string
(** The ring contents as JSON Lines (one {!event_to_json} per line,
    trailing newline when non-empty). *)

(** {1 Sinks} *)

val add_sink : string -> (event -> unit) -> unit
(** Register (or replace) a named sink called on every subsequent
    {!emit}. A raising sink is dropped after printing a warning to
    stderr, so a full disk cannot take the tool down. *)

val remove_sink : string -> unit

val open_jsonl : ?segment_bytes:int -> string -> unit
(** Install a sink (named ["jsonl:FILE"]) streaming every event to
    [FILE] as JSON Lines, flushed per line; the channel is closed at
    process exit. Opens in {e append} mode - a crash-restart writing to
    the same path extends the log and never overwrites the pre-crash
    tail. This is what [--journal FILE] installs.

    With [?segment_bytes] the sink rotates instead of writing [FILE]
    itself: events go to the segment files {!segment_path}[ file 0],
    [1], ... ([FILE.00000.jsonl]-style, the numbering inserted before
    the extension), rolling to the next segment once the current one
    reaches [segment_bytes] bytes. Finished segments are flushed and
    [fsync]ed at the roll, so every completed segment survives even
    power loss. A reopen (restart) starts one past the highest segment
    index on disk, never overwriting; [vcstat] expands the base [FILE]
    name back to the whole segment set. This is what
    [--journal-segments BYTES] selects.

    Degrades instead of failing: if the file cannot be opened, one
    warning goes to stderr and no sink is installed; if a write (or a
    rotation's open) fails mid-run, {!emit}'s sink guard prints one
    warning and detaches the sink - the tool keeps running either way.
    @raise Invalid_argument if [segment_bytes < 1]. *)

val segment_path : string -> int -> string
(** The [idx]-th segment name for a base file: the zero-padded index
    inserted before the extension ([segment_path "j.jsonl" 3] is
    ["j.00003.jsonl"]; an extension-less base gets the index suffixed).
    Shared with {!Journal_query}'s segment-set expansion so writer and
    reader cannot drift. *)

val next_segment_index : string -> int
(** One past the highest segment index existing on disk for the base
    file (0 when none) - where a reopening writer continues. *)

(** {1 Flight recorder} *)

val dump_flight_recorder : ?limit:int -> reason:string -> unit -> unit
(** Format the last [limit] (default 32) ring events plus the [reason]
    and hand the text to the dump printer (stderr unless overridden).
    Called automatically on portal runaway rejections and from the
    crash handler. *)

val set_dump_printer : (string -> unit) -> unit
(** Replace the dump destination (default [prerr_string]) - used by
    tests to capture the flight-recorder output. *)

val install_crash_handler : unit -> unit
(** Chain a [Printexc] uncaught-exception handler that dumps the flight
    recorder before the usual fatal-error report. Idempotent;
    {!Telemetry.cli} calls this for every binary. *)
