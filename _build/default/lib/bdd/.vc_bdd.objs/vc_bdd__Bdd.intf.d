lib/bdd/bdd.mli: Vc_cube
