(** Event-driven gate-level simulation with real cell delays - the
    traditional course's "Simulation" area (logic simulation,
    event-driven simulation, delay models), omitted from the MOOC and
    implemented here over mapped netlists.

    Transport-delay model: an input change at time [t] schedules the
    gate's recomputed output at [t + cell delay]; an event whose value
    already holds when it fires is dropped. Unlike the zero-delay
    functional simulators elsewhere in this toolkit, unequal path delays
    produce visible hazards (glitches). *)

type waveform = (float * bool) list
(** Time-ordered transitions; the entry at time 0.0 is the initial value.
    Subsequent entries are actual value changes. *)

type stimulus = (string * waveform) list
(** Per primary input. Inputs without a waveform hold [false]. *)

val simulate :
  ?horizon:float ->
  Vc_techmap.Map.mapping ->
  stimulus ->
  (string * waveform) list
(** Waveforms of the design's primary outputs. Initial state is the
    steady-state response to each input's time-0 value. Events after
    [horizon] (default 1e6) are discarded.
    @raise Failure on unknown stimulus signals. *)

val transitions : waveform -> int
(** Number of value changes after time 0. *)

val value_at : waveform -> float -> bool
(** The waveform's value at a given time. *)

val glitches : waveform -> int
(** Transitions beyond the minimum needed to reach the final value from
    the initial one: 0 for a clean waveform, positive when hazards
    appear. *)
