(* Software project 1 end to end: download the assignment, "implement" the
   URP solution (here: the library's own reference), upload, get graded. *)

let () =
  let p = Vc_mooc.Projects.project1 in
  print_endline "--- assignment (as downloaded by a participant) ---";
  print_string p.Vc_mooc.Projects.p_assignment;
  print_endline "--- submission built with Urp.complement / Urp.tautology ---";
  let submission = p.Vc_mooc.Projects.p_reference () in
  print_string submission;
  print_endline "--- auto-grader output ---";
  let grade = Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader submission in
  print_string (Vc_mooc.Autograder.render grade);
  (* what partial credit looks like: submit only the first function *)
  print_endline "--- a partial submission (first complement only) ---";
  let partial =
    let lines = String.split_on_char '\n' submission in
    let rec take acc = function
      | [] -> List.rev acc
      | "end" :: _ -> List.rev ("end" :: acc)
      | l :: rest -> take (l :: acc) rest
    in
    String.concat "\n" (take [] lines)
  in
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader partial))
