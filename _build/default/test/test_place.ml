open Helpers
module Pnet = Vc_place.Pnet
module Quadratic = Vc_place.Quadratic
module Annealing = Vc_place.Annealing
module Legalize = Vc_place.Legalize
module Fm = Vc_place.Fm
module Netgen = Vc_place.Netgen

let square_net () =
  (* 2 cells between 2 pads on a line *)
  Pnet.make ~name:"line"
    ~cell_names:[| "u"; "v" |]
    ~pads:[| ("l", 0.0, 5.0); ("r", 10.0, 5.0) |]
    ~nets:
      [|
        { Pnet.net_name = "n1"; pins = [ Pnet.Pad 0; Pnet.Cell 0 ] };
        { Pnet.net_name = "n2"; pins = [ Pnet.Cell 0; Pnet.Cell 1 ] };
        { Pnet.net_name = "n3"; pins = [ Pnet.Cell 1; Pnet.Pad 1 ] };
      |]
    ~width:10.0 ~height:10.0 ()

let medium_net seed =
  Netgen.generate ~seed
    { Netgen.p_name = "med"; cells = 120; nets = 160; pads = 16; avg_pins = 2.7 }

let pnet_tests =
  [
    tc "hpwl of a known placement" (fun () ->
        let t = square_net () in
        let p = { Pnet.xs = [| 3.0; 7.0 |]; ys = [| 5.0; 5.0 |] } in
        (* nets: 3 + 4 + 3 in x, 0 in y *)
        check (Alcotest.float 1e-9) "hpwl" 10.0 (Pnet.hpwl t p));
    tc "hpwl includes y span" (fun () ->
        let t = square_net () in
        let p = { Pnet.xs = [| 3.0; 7.0 |]; ys = [| 1.0; 9.0 |] } in
        check (Alcotest.float 1e-9) "hpwl" 26.0 (Pnet.hpwl t p));
    tc "clique wirelength of a 2-pin net is squared distance" (fun () ->
        let t =
          Pnet.make ~cell_names:[| "a"; "b" |] ~pads:[||]
            ~nets:[| { Pnet.net_name = "n"; pins = [ Pnet.Cell 0; Pnet.Cell 1 ] } |]
            ~width:10.0 ~height:10.0 ()
        in
        let p = { Pnet.xs = [| 0.0; 3.0 |]; ys = [| 0.0; 4.0 |] } in
        check (Alcotest.float 1e-9) "9+16" 25.0 (Pnet.clique_wirelength t p));
    tc "make validates pins" (fun () ->
        match
          Pnet.make ~cell_names:[| "a" |] ~pads:[||]
            ~nets:[| { Pnet.net_name = "n"; pins = [ Pnet.Cell 5 ] } |]
            ~width:1.0 ~height:1.0 ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected error");
    tc "text round trip" (fun () ->
        let t = square_net () in
        let t' = Pnet.parse (Pnet.to_string t) in
        check Alcotest.int "cells" t.Pnet.num_cells t'.Pnet.num_cells;
        check Alcotest.int "nets" (Array.length t.Pnet.nets)
          (Array.length t'.Pnet.nets));
    tc "placement round trip" (fun () ->
        let t = square_net () in
        let p = Pnet.random_placement ~seed:3 t in
        let p' = Pnet.parse_placement t (Pnet.placement_to_string t p) in
        check Alcotest.bool "close" true
          (abs_float (Pnet.hpwl t p -. Pnet.hpwl t p') < 0.01));
    tc "parse_placement rejects missing cells" (fun () ->
        let t = square_net () in
        match Pnet.parse_placement t "place u 1 1\n" with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let quadratic_tests =
  [
    tc "one cell between two pads sits in the middle" (fun () ->
        let t =
          Pnet.make ~cell_names:[| "c" |]
            ~pads:[| ("l", 0.0, 5.0); ("r", 10.0, 5.0) |]
            ~nets:
              [|
                { Pnet.net_name = "a"; pins = [ Pnet.Pad 0; Pnet.Cell 0 ] };
                { Pnet.net_name = "b"; pins = [ Pnet.Cell 0; Pnet.Pad 1 ] };
              |]
            ~width:10.0 ~height:10.0 ()
        in
        let r = Quadratic.global t in
        check (Alcotest.float 0.01) "x middle" 5.0 r.Quadratic.placement.Pnet.xs.(0);
        check (Alcotest.float 0.01) "y middle" 5.0 r.Quadratic.placement.Pnet.ys.(0));
    tc "two cells in a chain at 1/3 and 2/3" (fun () ->
        let t = square_net () in
        let r = Quadratic.global t in
        check (Alcotest.float 0.01) "u" (10.0 /. 3.0)
          r.Quadratic.placement.Pnet.xs.(0);
        check (Alcotest.float 0.01) "v" (20.0 /. 3.0)
          r.Quadratic.placement.Pnet.xs.(1));
    tc "solver choices agree" (fun () ->
        let t = square_net () in
        let cg = Quadratic.global ~solver:Quadratic.Cg t in
        let gs = Quadratic.global ~solver:Quadratic.Gauss_seidel t in
        check (Alcotest.float 0.01) "same answer"
          cg.Quadratic.placement.Pnet.xs.(0)
          gs.Quadratic.placement.Pnet.xs.(0));
    tc "recursion spreads cells" (fun () ->
        let t = medium_net 3 in
        let global = Quadratic.global t in
        let recur = Quadratic.place ~max_depth:5 t in
        (* spread metric: stddev of x must grow with recursion *)
        let spread (p : Pnet.placement) =
          Vc_util.Stats.stddev (Array.to_list p.Pnet.xs)
        in
        check Alcotest.bool "spread increases" true
          (spread recur.Quadratic.placement > spread global.Quadratic.placement));
    tc "quadratic beats random placement on HPWL" (fun () ->
        let t = medium_net 5 in
        let recur = Quadratic.place t in
        let legal = Legalize.to_grid t recur.Quadratic.placement in
        let random = Pnet.random_placement ~seed:1 t in
        check Alcotest.bool "better than random" true
          (Pnet.hpwl t legal < Pnet.hpwl t random));
    tc "floating cells stay solvable" (fun () ->
        (* no pads at all: regularization must keep the system SPD *)
        let t =
          Pnet.make ~cell_names:[| "a"; "b" |] ~pads:[||]
            ~nets:[| { Pnet.net_name = "n"; pins = [ Pnet.Cell 0; Pnet.Cell 1 ] } |]
            ~width:8.0 ~height:8.0 ()
        in
        let r = Quadratic.global t in
        check Alcotest.bool "finite" true
          (Float.is_finite r.Quadratic.placement.Pnet.xs.(0)));
  ]

let annealing_tests =
  [
    tc "annealing improves its initial placement" (fun () ->
        let t = medium_net 7 in
        let _, stats = Annealing.place t in
        check Alcotest.bool "improved" true
          (stats.Annealing.final_hpwl < stats.Annealing.initial_hpwl));
    tc "result is legal (one cell per slot)" (fun () ->
        let t = medium_net 9 in
        let p, _ = Annealing.place t in
        check Alcotest.int "no overlaps" 0 (Legalize.overlap_count t p);
        check Alcotest.bool "inside" true (Legalize.inside_core t p));
    tc "deterministic for a seed" (fun () ->
        let t = medium_net 11 in
        let params = { Annealing.default_params with seed = 4 } in
        let p1, _ = Annealing.place ~params t in
        let p2, _ = Annealing.place ~params t in
        check Alcotest.bool "same result" true (p1 = p2));
    tc "greedy only ever improves" (fun () ->
        let t = medium_net 13 in
        let _, stats = Annealing.greedy t in
        check Alcotest.bool "monotone" true
          (stats.Annealing.final_hpwl <= stats.Annealing.initial_hpwl));
    tc "annealing beats greedy from the same seed" (fun () ->
        (* hill climbing should pay off on a structured instance *)
        let t = medium_net 15 in
        let pa, _ =
          Annealing.place ~params:{ Annealing.default_params with seed = 21 } t
        in
        let pg, _ = Annealing.greedy ~seed:21 t in
        check Alcotest.bool "annealing wins" true
          (Pnet.hpwl t pa <= Pnet.hpwl t pg));
  ]

let legalize_tests =
  [
    tc "refine improves HPWL and stays legal" (fun () ->
        let t = medium_net 27 in
        let qp = Quadratic.place t in
        let legal = Legalize.to_grid t qp.Quadratic.placement in
        let before = Pnet.hpwl t legal in
        let refined, swaps = Legalize.refine t legal in
        check Alcotest.bool "improved" true
          (Pnet.hpwl t refined < before || swaps = 0);
        check Alcotest.int "still no overlaps" 0
          (Legalize.overlap_count t refined);
        check Alcotest.bool "still inside" true (Legalize.inside_core t refined));
    tc "repeated refinement is monotone" (fun () ->
        (* the neighbour candidate set is position-dependent, so a second
           call may find more swaps - but never a worse placement *)
        let t = medium_net 29 in
        let qp = Quadratic.place t in
        let legal = Legalize.to_grid t qp.Quadratic.placement in
        let once, _ = Legalize.refine ~max_passes:12 t legal in
        let twice, _ = Legalize.refine ~max_passes:12 t once in
        check Alcotest.bool "non-increasing" true
          (Pnet.hpwl t twice <= Pnet.hpwl t once +. 1e-9);
        check Alcotest.int "legal" 0 (Legalize.overlap_count t twice));
    tc "legalized placement has no overlaps" (fun () ->
        let t = medium_net 17 in
        let p = Pnet.center_placement t in
        let legal = Legalize.to_grid t p in
        check Alcotest.int "overlaps" 0 (Legalize.overlap_count t legal);
        check Alcotest.bool "inside" true (Legalize.inside_core t legal));
    tc "legalization roughly preserves relative order" (fun () ->
        let t =
          Pnet.make ~cell_names:[| "a"; "b"; "c"; "d" |] ~pads:[||]
            ~nets:
              [| { Pnet.net_name = "n"; pins = [ Pnet.Cell 0; Pnet.Cell 1 ] } |]
            ~width:4.0 ~height:4.0 ()
        in
        let p =
          { Pnet.xs = [| 0.5; 1.5; 2.5; 3.5 |]; ys = [| 2.0; 2.0; 2.0; 2.0 |] }
        in
        let legal = Legalize.to_grid t p in
        check Alcotest.bool "a left of d" true
          (legal.Pnet.xs.(0) < legal.Pnet.xs.(3)));
    tc "overlap_count detects stacking" (fun () ->
        let t = medium_net 19 in
        let stacked = Pnet.center_placement t in
        check Alcotest.bool "many overlaps" true
          (Legalize.overlap_count t stacked > 0));
    tc "inside_core catches escapes" (fun () ->
        let t = square_net () in
        let p = { Pnet.xs = [| -1.0; 5.0 |]; ys = [| 5.0; 5.0 |] } in
        check Alcotest.bool "outside" false (Legalize.inside_core t p));
  ]

let fm_tests =
  [
    tc "two cliques split cleanly" (fun () ->
        (* cells 0-3 densely connected, 4-7 densely connected, one bridge *)
        let clique base =
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j ->
                  if i < j then
                    Some
                      {
                        Pnet.net_name = Printf.sprintf "c%d_%d_%d" base i j;
                        pins = [ Pnet.Cell (base + i); Pnet.Cell (base + j) ];
                      }
                  else None)
                [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ]
        in
        let bridge =
          { Pnet.net_name = "bridge"; pins = [ Pnet.Cell 0; Pnet.Cell 4 ] }
        in
        let t =
          Pnet.make
            ~cell_names:(Array.init 8 (Printf.sprintf "c%d"))
            ~pads:[||]
            ~nets:(Array.of_list ((bridge :: clique 0) @ clique 4))
            ~width:8.0 ~height:8.0 ()
        in
        let r = Fm.bipartition ~seed:3 t in
        check Alcotest.int "cut is the bridge" 1 r.Fm.cut);
    tc "balance respected" (fun () ->
        let t = medium_net 23 in
        let r = Fm.bipartition ~balance:0.1 t in
        let left = Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 r.Fm.side in
        let n = t.Pnet.num_cells in
        check Alcotest.bool "within balance" true
          (left >= int_of_float (0.38 *. float_of_int n)
          && left <= int_of_float (0.62 *. float_of_int n)));
    tc "fm beats a random split" (fun () ->
        let t = medium_net 25 in
        let r = Fm.bipartition ~seed:1 t in
        let random = Array.init t.Pnet.num_cells (fun i -> i mod 2 = 0) in
        check Alcotest.bool "better" true (r.Fm.cut < Fm.cut_size t random));
    tc "cut_size counts spanning nets" (fun () ->
        let t = square_net () in
        check Alcotest.int "n2 spans" 1 (Fm.cut_size t [| false; true |]);
        check Alcotest.int "none span" 0 (Fm.cut_size t [| true; true |]));
  ]

let netgen_tests =
  [
    tc "profiles produce the advertised sizes" (fun () ->
        List.iter
          (fun prof ->
            let t = Netgen.generate ~seed:1 prof in
            check Alcotest.int (prof.Netgen.p_name ^ " cells") prof.Netgen.cells
              t.Pnet.num_cells;
            check Alcotest.bool "nets >= profile" true
              (Array.length t.Pnet.nets >= prof.Netgen.nets);
            check Alcotest.int "pads" prof.Netgen.pads (Array.length t.Pnet.pads))
          (Netgen.tiny :: Netgen.mcnc_profiles));
    tc "every cell is connected" (fun () ->
        let t = Netgen.generate ~seed:9 Netgen.tiny in
        for c = 0 to t.Pnet.num_cells - 1 do
          let touched =
            Array.exists
              (fun net -> List.mem (Pnet.Cell c) net.Pnet.pins)
              t.Pnet.nets
          in
          if not touched then Alcotest.failf "cell %d floats" c
        done);
    tc "deterministic by seed" (fun () ->
        let a = Netgen.generate ~seed:4 Netgen.tiny in
        let b = Netgen.generate ~seed:4 Netgen.tiny in
        check Alcotest.string "same text" (Pnet.to_string a) (Pnet.to_string b));
    tc "pads sit on the boundary" (fun () ->
        let t = Netgen.generate ~seed:2 Netgen.tiny in
        Array.iter
          (fun (_, x, y) ->
            let on_edge =
              x = 0.0 || y = 0.0 || x >= t.Pnet.width -. 1e-9
              || y >= t.Pnet.height -. 1e-9
            in
            check Alcotest.bool "edge" true on_edge)
          t.Pnet.pads);
    tc "by_name lookups" (fun () ->
        check Alcotest.bool "fract" true (Netgen.by_name "fract" <> None);
        check Alcotest.bool "tiny" true (Netgen.by_name "tiny" <> None);
        check Alcotest.bool "unknown" true (Netgen.by_name "zzz" = None));
  ]

let () =
  Alcotest.run "place"
    [
      ("pnet", pnet_tests);
      ("quadratic", quadratic_tests);
      ("annealing", annealing_tests);
      ("legalize", legalize_tests);
      ("fm", fm_tests);
      ("netgen", netgen_tests);
    ]
