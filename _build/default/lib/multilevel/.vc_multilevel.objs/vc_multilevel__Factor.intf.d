lib/multilevel/factor.mli: Algebraic Vc_cube
