lib/util/heap.mli:
