(** The Unate Recursive Paradigm: divide-and-conquer over Shannon cofactors
    with unate-cover terminal cases, the central algorithm of the course's
    first software project. *)

val tautology : Cover.t -> bool
(** URP tautology check: true iff the cover is the constant-1 function.
    Terminal cases: a universe cube present (yes); an empty cover (no); a
    unate cover without a universe cube (no). Otherwise split on the most
    binate variable. *)

val complement : Cover.t -> Cover.t
(** URP complement: [x . (F_x)' + x' . (F_x')'] with single-cube De Morgan
    terminals. The result is a (possibly redundant) SOP of the complement. *)

val cube_in_cover : Cube.t -> Cover.t -> bool
(** [cube_in_cover c f]: all of [c]'s minterms are covered by [f]
    (tautology of the generalized cofactor f|_c). *)

val cover_contains : Cover.t -> Cover.t -> bool
(** [cover_contains f g]: every cube of [g] is inside [f]. *)

val equivalent : Cover.t -> Cover.t -> bool
(** Mutual containment; unlike {!Cover.equivalent} this does not build truth
    tables, so it scales past 20 variables. *)

val sharp : Cube.t -> Cube.t -> Cube.t list
(** The sharp operation [a # b]: a cover of the minterms in [a] but not in
    [b] (the basic step the lectures build complement intuition from). *)

val cover_sharp : Cover.t -> Cube.t -> Cover.t
(** Sharp of every cube of the cover against [b]. *)

val intersect : Cover.t -> Cover.t -> Cover.t
(** Pairwise cube intersections (AND of two SOP covers). *)
