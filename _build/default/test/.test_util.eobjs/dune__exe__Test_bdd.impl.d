test/test_bdd.ml: Alcotest Array Helpers List Printf QCheck String Vc_bdd Vc_cube Vc_util
