type concept = {
  area : string;
  concept : string;
  slides : int;
  in_mooc : bool;
}

let c area concept slides in_mooc = { area; concept; slides; in_mooc }

let all =
  [
    c "Foundations and ASIC Flow" "ASIC design flow overview" 12 true;
    c "Foundations and ASIC Flow" "Standard-cell methodology" 9 true;
    c "Foundations and ASIC Flow" "Abstraction levels and views" 7 false;
    c "Foundations and ASIC Flow" "Course roadmap" 4 true;
    c "Computational Boolean Algebra" "Shannon cofactors" 8 true;
    c "Computational Boolean Algebra" "Boolean difference" 6 true;
    c "Computational Boolean Algebra" "Quantification definitions" 7 true;
    c "Computational Boolean Algebra" "Network repair formulation" 10 true;
    c "Computational Boolean Algebra" "Compute strategies" 8 false;
    c "Computational Boolean Algebra" "Unate recursive paradigm" 20 true;
    c "Computational Boolean Algebra" "Positional cube notation" 9 true;
    c "Computational Boolean Algebra" "Tautology checking" 8 true;
    c "Computational Boolean Algebra" "Cofactor trees" 6 false;
    c "Computational Boolean Algebra" "Recursive complement" 9 true;
    c "BDDs" "BDD basic definitions, ROBDD" 12 true;
    c "BDDs" "Building BDDs, variable order, simple SAT" 35 true;
    c "BDDs" "Multi-rooted BDDs, garbage collection" 8 false;
    c "BDDs" "Negation arcs" 7 false;
    c "BDDs" "BDD operations, Restrict and ITE" 15 true;
    c "BDDs" "ITE implementation, hash tables" 12 true;
    c "BDDs" "Canonicity proofs" 7 false;
    c "BDDs" "Ordering heuristics" 9 false;
    c "SAT" "CNF and DIMACS" 6 true;
    c "SAT" "DPLL search" 10 true;
    c "SAT" "Unit propagation and implication graphs" 9 true;
    c "SAT" "Clause learning" 11 true;
    c "SAT" "Watched literals" 7 true;
    c "SAT" "SAT-based verification" 8 true;
    c "Two-Level Synthesis" "Karnaugh maps and implicants" 8 false;
    c "Two-Level Synthesis" "Prime and essential primes" 9 true;
    c "Two-Level Synthesis" "Quine-McCluskey" 12 false;
    c "Two-Level Synthesis" "Unate covering" 9 false;
    c "Two-Level Synthesis" "Espresso EXPAND" 11 true;
    c "Two-Level Synthesis" "Espresso IRREDUNDANT" 9 true;
    c "Two-Level Synthesis" "Espresso REDUCE" 8 true;
    c "Two-Level Synthesis" "Multi-output minimization" 8 false;
    c "Two-Level Synthesis" "PLAs and their optimization" 9 true;
    c "Multi-Level Synthesis" "Boolean network model" 9 true;
    c "Multi-Level Synthesis" "Algebraic model and weak division" 13 true;
    c "Multi-Level Synthesis" "Kernels and co-kernels" 14 true;
    c "Multi-Level Synthesis" "Kernel extraction" 11 true;
    c "Multi-Level Synthesis" "Common cube extraction" 8 true;
    c "Multi-Level Synthesis" "Factoring" 11 true;
    c "Multi-Level Synthesis" "Resubstitution" 7 false;
    c "Multi-Level Synthesis" "Don't cares: SDC and ODC" 14 false;
    c "Multi-Level Synthesis" "Node simplification" 9 true;
    c "Multi-Level Synthesis" "Sweep and eliminate" 6 false;
    c "Technology Mapping" "Library cells and patterns" 8 true;
    c "Technology Mapping" "Subject graph decomposition" 9 true;
    c "Technology Mapping" "Tree covering by DP" 14 true;
    c "Technology Mapping" "Min-area vs min-delay mapping" 9 true;
    c "Technology Mapping" "DAG partitioning into trees" 7 true;
    c "Technology Mapping" "Load and fanout issues" 6 false;
    c "Verification" "Combinational equivalence" 9 true;
    c "Verification" "Miter construction" 6 true;
    c "Verification" "BDD vs SAT engines" 7 true;
    c "Verification" "Simulation and vectors" 6 false;
    c "Partitioning" "Min-cut objectives" 6 false;
    c "Partitioning" "Kernighan-Lin" 9 false;
    c "Partitioning" "Fiduccia-Mattheyses" 12 false;
    c "Partitioning" "Gain buckets and rollback" 8 false;
    c "Partitioning" "Balance constraints" 5 false;
    c "Partitioning" "Multi-way and replication" 6 false;
    c "Placement" "Placement problem and HPWL" 8 true;
    c "Placement" "Simulated annealing" 15 true;
    c "Placement" "Annealing schedules" 8 false;
    c "Placement" "Quadratic wirelength model" 10 true;
    c "Placement" "Solving Ax=b, conjugate gradient" 9 true;
    c "Placement" "Recursive bipartition legalization" 11 true;
    c "Placement" "Slot assignment and legalization" 6 false;
    c "Placement" "Congestion and density" 6 false;
    c "Routing" "Routing regions and grids" 7 true;
    c "Routing" "Lee's algorithm" 13 true;
    c "Routing" "Non-unit costs, cost wavefronts" 10 true;
    c "Routing" "Multi-layer and vias" 9 true;
    c "Routing" "Multi-point nets" 8 true;
    c "Routing" "Net ordering and rip-up" 9 true;
    c "Routing" "Global vs detailed routing" 7 false;
    c "Routing" "Channel routing" 9 false;
    c "Timing" "Timing graphs and arrival times" 10 true;
    c "Timing" "Required times and slack" 9 true;
    c "Timing" "Critical paths" 7 true;
    c "Timing" "False paths" 6 false;
    c "Timing" "Elmore delay derivation" 12 true;
    c "Timing" "RC trees and moments" 8 false;
    c "Timing" "Wire sizing intuition" 6 false;
    c "Geometry and DRC" "Scanline algorithms" 9 false;
    c "Geometry and DRC" "Rectangle Booleans" 8 false;
    c "Geometry and DRC" "Design-rule checking" 8 false;
    c "Geometry and DRC" "Extraction basics" 7 false;
    c "Geometry and DRC" "Corner stitching" 8 false;
    c "Geometry and DRC" "Net-to-layout correspondence" 5 false;
    c "Sequential Logic" "FSM models and state graphs" 10 false;
    c "Sequential Logic" "State minimization" 11 false;
    c "Sequential Logic" "State encoding" 10 false;
    c "Sequential Logic" "Retiming overview" 9 false;
    c "Test" "Fault models" 9 false;
    c "Test" "ATPG basics" 12 false;
    c "Test" "Scan design" 8 false;
    c "Simulation" "Logic simulation" 13 false;
    c "Simulation" "Event-driven simulation" 14 false;
    c "Simulation" "Delay models in simulation" 13 false;
  ]

let total_slides = List.fold_left (fun acc x -> acc + x.slides) 0 all

let total_concepts = List.length all

let areas =
  List.fold_left
    (fun acc x -> if List.mem x.area acc then acc else acc @ [ x.area ])
    [] all

let by_area a = List.filter (fun x -> x.area = a) all

let kept = List.filter (fun x -> x.in_mooc) all

let kept_slide_fraction =
  float_of_int (List.fold_left (fun acc x -> acc + x.slides) 0 kept)
  /. float_of_int total_slides

let fig1_rows =
  let bdd_ish =
    List.filter
      (fun x -> x.area = "Computational Boolean Algebra" || x.area = "BDDs")
      all
  in
  List.map (fun x -> (x.concept, x.slides)) bdd_ish
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let render_fig1 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Fig. 1: concept map snapshot (Boolean algebra + BDD concepts, slide counts)\n";
  let widest =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 fig1_rows
  in
  List.iter
    (fun (name, slides) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %3d %s\n" widest name slides
           (String.make slides '#')))
    fig1_rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  (full map: %d concepts, %d slides, %.0f%% kept for the MOOC)\n"
       total_concepts total_slides (100.0 *. kept_slide_fraction));
  Buffer.contents buf
