(* flow: push-button logic-to-layout on a BLIF design.
   Usage: flow [-min-delay] [-svg out.svg] [--report out.json] [--stats]
          [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif> *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let mode = ref Vc_techmap.Map.Min_area in
  let svg = ref None and qor = ref None and path = ref None in
  let args = Array.to_list argv in
  let rec parse = function
    | [] -> ()
    | "-min-delay" :: rest ->
      mode := Vc_techmap.Map.Min_delay;
      parse rest
    | "-svg" :: out :: rest ->
      svg := Some out;
      parse rest
    | "--report" :: out :: rest ->
      qor := Some out;
      parse rest
    | arg :: rest ->
      path := Some arg;
      parse rest
  in
  (match args with _ :: rest -> parse rest | [] -> ());
  match !path with
  | None ->
    prerr_endline
      "usage: flow [-min-delay] [-svg out.svg] [--report out.json] [--stats] \
       [--trace FILE] [--journal FILE] [--metrics-port N] <design.blif>";
    exit 2
  | Some blif_path -> begin
    let blif = In_channel.with_open_text blif_path In_channel.input_all in
    match Vc_network.Blif.parse blif with
    | exception Failure msg ->
      prerr_endline ("flow: " ^ msg);
      exit 1
    | net ->
      let options = { Vc_mooc.Flow.default_options with Vc_mooc.Flow.mode = !mode } in
      let report =
        Vc_util.Telemetry.timed_span "flow"
          ~attrs:[ ("design", blif_path) ]
          (fun () -> Vc_mooc.Flow.run ~options net)
      in
      print_string (Vc_mooc.Flow.report_to_string report);
      (match !qor with
      | None -> ()
      | Some out ->
        Out_channel.with_open_text out (fun oc ->
            Out_channel.output_string oc
              (Vc_mooc.Flow.qor_to_json ~design:blif_path report);
            Out_channel.output_char oc '\n');
        Printf.printf "QoR report written to %s\n" out);
      match !svg with
      | None -> ()
      | Some out ->
        Out_channel.with_open_text out (fun oc ->
            Out_channel.output_string oc
              (Vc_route.Render.result_svg report.Vc_mooc.Flow.routing));
        Printf.printf "layout written to %s\n" out
  end
