test/test_two_level.ml: Alcotest Array Helpers List Printf QCheck String Vc_cube Vc_two_level Vc_util
