bin/minisat.ml: Array In_channel List String Sys Vc_sat
