lib/multilevel/extract.mli: Vc_network
