open Helpers
module Grid = Vc_route.Grid
module Maze = Vc_route.Maze
module Router = Vc_route.Router
module Render = Vc_route.Render

let pt layer x y = { Grid.layer; x; y }

let grid_tests =
  [
    tc "bounds" (fun () ->
        let g = Grid.create ~width:4 ~height:3 () in
        check Alcotest.bool "in" true (Grid.in_bounds g (pt 0 3 2));
        check Alcotest.bool "x out" false (Grid.in_bounds g (pt 0 4 0));
        check Alcotest.bool "layer out" false (Grid.in_bounds g (pt 2 0 0)));
    tc "occupancy rules" (fun () ->
        let g = Grid.create ~width:4 ~height:4 () in
        Grid.occupy g 1 (pt 0 1 1);
        check Alcotest.(option int) "owner" (Some 1) (Grid.occupant g (pt 0 1 1));
        (* same net may re-occupy *)
        Grid.occupy g 1 (pt 0 1 1);
        (* other net may not *)
        (match Grid.occupy g 2 (pt 0 1 1) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected rejection");
        Grid.release_net g 1;
        check Alcotest.(option int) "freed" None (Grid.occupant g (pt 0 1 1)));
    tc "obstacles block" (fun () ->
        let g = Grid.create ~width:4 ~height:4 () in
        Grid.add_obstacle g (pt 0 2 2);
        check Alcotest.bool "is obstacle" true (Grid.is_obstacle g (pt 0 2 2));
        check Alcotest.bool "not free" false (Grid.free_for g 0 (pt 0 2 2));
        match Grid.occupy g 0 (pt 0 2 2) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected rejection");
    tc "layers independent" (fun () ->
        let g = Grid.create ~width:4 ~height:4 () in
        Grid.add_obstacle g (pt 0 2 2);
        check Alcotest.bool "layer 1 clear" true (Grid.free_for g 0 (pt 1 2 2)));
    tc "copy isolates" (fun () ->
        let g = Grid.create ~width:2 ~height:2 () in
        let g2 = Grid.copy g in
        Grid.occupy g2 0 (pt 0 0 0);
        check Alcotest.(option int) "original clean" None
          (Grid.occupant g (pt 0 0 0)));
  ]

let maze_tests =
  [
    tc "straight wire costs steps only" (fun () ->
        let g = Grid.create ~width:10 ~height:3 () in
        match Maze.route_two_pins g ~net:0 ~src:(pt 0 1 1) ~dst:(pt 0 8 1) with
        | None -> Alcotest.fail "routable"
        | Some path ->
          check Alcotest.bool "contiguous" true (Maze.path_contiguous path);
          check Alcotest.int "7 steps" 7 (Maze.path_cost (Grid.costs g) path));
    tc "wrong-way on layer 0 uses a via or pays" (fun () ->
        (* vertical connection: cheapest is via to layer 1 and back, or pay
           wrong-way; either way cost must match path_cost *)
        let g = Grid.create ~width:3 ~height:10 () in
        match Maze.route_two_pins g ~net:0 ~src:(pt 0 1 1) ~dst:(pt 0 1 8) with
        | None -> Alcotest.fail "routable"
        | Some path ->
          let cp = Grid.costs g in
          (* lower bound: 7 steps; upper: wrong-way all the way *)
          let c = Maze.path_cost cp path in
          check Alcotest.bool "bounded" true
            (c >= 7 * cp.Grid.step
            && c <= (7 * (cp.Grid.step + cp.Grid.wrong_way)) + (2 * cp.Grid.via)));
    tc "detour around an obstacle wall" (fun () ->
        let g = Grid.create ~width:9 ~height:5 () in
        for y = 0 to 3 do
          Grid.add_obstacle g (pt 0 4 y);
          Grid.add_obstacle g (pt 1 4 y)
        done;
        match Maze.route_two_pins g ~net:0 ~src:(pt 0 1 1) ~dst:(pt 0 7 1) with
        | None -> Alcotest.fail "routable over the top"
        | Some path ->
          check Alcotest.bool "avoids obstacles" true
            (List.for_all (fun p -> not (Grid.is_obstacle g p)) path);
          check Alcotest.bool "goes high" true
            (List.exists (fun p -> p.Grid.y = 4) path));
    tc "fully walled is unroutable" (fun () ->
        let g = Grid.create ~width:9 ~height:5 () in
        for y = 0 to 4 do
          Grid.add_obstacle g (pt 0 4 y);
          Grid.add_obstacle g (pt 1 4 y)
        done;
        check Alcotest.bool "no route" true
          (Maze.route_two_pins g ~net:0 ~src:(pt 0 1 1) ~dst:(pt 0 7 1) = None));
    tc "blocked on one layer forces a via" (fun () ->
        let g = Grid.create ~width:9 ~height:3 () in
        for y = 0 to 2 do
          Grid.add_obstacle g (pt 0 4 y)
        done;
        match Maze.route_two_pins g ~net:0 ~src:(pt 0 1 1) ~dst:(pt 0 7 1) with
        | None -> Alcotest.fail "routable via layer 1"
        | Some path ->
          check Alcotest.bool "uses layer 1" true
            (List.exists (fun p -> p.Grid.layer = 1) path));
    tc "multi-pin net forms a connected tree" (fun () ->
        let g = Grid.create ~width:12 ~height:12 () in
        match
          Maze.route_net g ~net:3 ~pins:[ (1, 1); (10, 1); (5, 10); (10, 10) ]
        with
        | None -> Alcotest.fail "routable"
        | Some paths ->
          check Alcotest.bool "several paths" true (List.length paths = 3);
          (* every pin cell owned by net 3 *)
          List.iter
            (fun (x, y) ->
              check Alcotest.(option int) "pin owned" (Some 3)
                (Grid.occupant g (pt 0 x y)))
            [ (1, 1); (10, 1); (5, 10); (10, 10) ]);
    tc "failed net releases its cells" (fun () ->
        let g = Grid.create ~width:9 ~height:3 () in
        for y = 0 to 2 do
          Grid.add_obstacle g (pt 0 4 y);
          Grid.add_obstacle g (pt 1 4 y)
        done;
        check Alcotest.bool "fails" true
          (Maze.route_net g ~net:0 ~pins:[ (1, 1); (7, 1) ] = None);
        (* the first pin must have been released again *)
        check Alcotest.(option int) "clean grid" None
          (Grid.occupant g (pt 0 1 1)));
    tc "later paths branch off the existing tree" (fun () ->
        let g = Grid.create ~width:12 ~height:6 () in
        match Maze.route_net g ~net:0 ~pins:[ (1, 1); (10, 1); (6, 3) ] with
        | None -> Alcotest.fail "routable"
        | Some paths ->
          check Alcotest.int "two tree edges" 2 (List.length paths);
          (* the second path must start on a cell of the existing tree *)
          let first_path = List.nth paths 0 in
          let second = List.nth paths 1 in
          let start = List.hd second in
          check Alcotest.bool "starts on tree" true
            (List.mem start first_path || start = pt 0 1 1));
    tc "A-star gives equal cost with fewer expansions" (fun () ->
        let route () =
          let g = Grid.create ~width:30 ~height:30 () in
          match
            Maze.route_two_pins g ~net:0 ~src:(pt 0 2 2) ~dst:(pt 0 27 2)
          with
          | Some path -> Maze.path_cost (Grid.costs g) path
          | None -> -1
        in
        Maze.astar := false;
        let e0 = Maze.expansions () in
        let c_dij = route () in
        let dij = Maze.expansions () - e0 in
        Maze.astar := true;
        let e1 = Maze.expansions () in
        let c_ast = route () in
        let ast = Maze.expansions () - e1 in
        Maze.astar := false;
        check Alcotest.int "same cost" c_dij c_ast;
        check Alcotest.bool
          (Printf.sprintf "astar %d < dijkstra %d" ast dij)
          true (ast < dij));
    tc "path_cost counts bends and vias" (fun () ->
        let cp = Grid.default_costs in
        (* L-shaped: 2 east, bend, 2 north (wrong way on layer 0) *)
        let path =
          [ pt 0 0 0; pt 0 1 0; pt 0 2 0; pt 0 2 1; pt 0 2 2 ]
        in
        let expected =
          (2 * cp.Grid.step)
          + (cp.Grid.step + cp.Grid.wrong_way + cp.Grid.bend)
          + (cp.Grid.step + cp.Grid.wrong_way)
        in
        check Alcotest.int "bend accounted" expected (Maze.path_cost cp path);
        let via_path = [ pt 0 0 0; pt 1 0 0 ] in
        check Alcotest.int "via" cp.Grid.via (Maze.path_cost cp via_path));
    tc "path_contiguous rejects jumps" (fun () ->
        check Alcotest.bool "jump" false
          (Maze.path_contiguous [ pt 0 0 0; pt 0 2 0 ]);
        check Alcotest.bool "diagonal" false
          (Maze.path_contiguous [ pt 0 0 0; pt 0 1 1 ]);
        check Alcotest.bool "layer jump with move" false
          (Maze.path_contiguous [ pt 0 0 0; pt 1 1 0 ]));
  ]

let router_tests =
  [
    tc "problem parse round trip" (fun () ->
        let text =
          "grid 10 8\ncost 1 2 3 4\nobstacle 1 5 5\nnet a 1 1 8 1\nnet b 0 0 9 7 4 4\n"
        in
        let p = Router.parse_problem text in
        check Alcotest.int "width" 10 p.Router.grid_width;
        check Alcotest.int "bend cost" 2 p.Router.cost_params.Grid.bend;
        check Alcotest.int "nets" 2 (List.length p.Router.net_specs);
        let p2 = Router.parse_problem (Router.problem_to_string p) in
        check Alcotest.int "round trip nets" 2 (List.length p2.Router.net_specs));
    tc "parse errors" (fun () ->
        List.iter
          (fun s ->
            match Router.parse_problem s with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "expected failure: %S" s)
          [ "net a 1 1 2 2\n"; "grid 5 5\nnet a 1 1 2\n"; "grid 5 5\njunk\n" ]);
    tc "all Fig. 6 unit problems route completely" (fun () ->
        List.iter
          (fun (name, problem) ->
            let r = Router.route problem in
            check Alcotest.int name r.Router.total r.Router.completed)
          Vc_mooc.Projects.router_unit_tests);
    tc "net ordering affects the outcome deterministically" (fun () ->
        let p =
          Router.parse_problem "grid 16 16\nnet long 0 8 15 8\nnet short 7 7 8 7\n"
        in
        let r1 = Router.route ~order:`Short_first p in
        let r2 = Router.route ~order:`Long_first p in
        check Alcotest.int "both complete (1)" 2 r1.Router.completed;
        check Alcotest.int "both complete (2)" 2 r2.Router.completed);
    tc "rip-up recovers blocked nets" (fun () ->
        (* an empirically-found dense instance: greedy `Given ordering
           strands one net until rip-up frees the blockage *)
        let p =
          Router.parse_problem
            "grid 10 10\nnet n0 7 9 7 0\nnet n1 3 2 6 5\nnet n2 7 6 3 4\n\
             net n3 3 0 6 6\nnet n4 8 0 1 6\nnet n5 0 5 6 0\n"
        in
        let without = Router.route ~order:`Given ~rip_up_passes:0 p in
        let with_ripup = Router.route ~order:`Given ~rip_up_passes:3 p in
        check Alcotest.bool "blocked without rip-up" true
          (without.Router.completed < without.Router.total);
        check Alcotest.int "fully routed with rip-up" with_ripup.Router.total
          with_ripup.Router.completed);
    tc "pins are protected from other nets" (fun () ->
        (* net a crosses right over net b's pin column; b must still route *)
        let p =
          Router.parse_problem "grid 9 3\nnet a 0 1 8 1\nnet b 4 0 4 2\n"
        in
        let r = Router.route ~order:`Given p in
        check Alcotest.int "both routed" 2 r.Router.completed);
    tc "solution format accepted by the validator" (fun () ->
        let p = Router.parse_problem "grid 8 8\nnet a 1 1 6 6\nnet b 0 7 7 0\n" in
        let r = Router.route p in
        match Vc_mooc.Autograder.validate_routing p (Router.solution_to_string r) with
        | Ok check_result ->
          check Alcotest.int "wirelength agrees" r.Router.wirelength
            check_result.Vc_mooc.Autograder.rc_wirelength
        | Error msg -> Alcotest.fail msg);
    tc "statistics count cells and vias separately" (fun () ->
        let p = Router.parse_problem "grid 6 6\nnet a 1 1 4 4\n" in
        let r = Router.route p in
        check Alcotest.bool "wires" true (r.Router.wirelength > 0));
  ]

let render_tests =
  [
    tc "ascii shows both layers" (fun () ->
        let g = Grid.create ~width:5 ~height:3 () in
        Grid.add_obstacle g (pt 0 1 1);
        Grid.occupy g 0 (pt 1 2 2);
        let s = Render.grid_ascii g in
        check Alcotest.bool "has obstacle" true (String.contains s '#');
        check Alcotest.bool "has net" true (String.contains s '0'));
    tc "svg is well formed enough" (fun () ->
        let p = Router.parse_problem "grid 6 6\nnet a 0 0 5 5\n" in
        let r = Router.route p in
        let svg = Render.result_svg r in
        check Alcotest.bool "svg open" true
          (String.length svg > 4 && String.sub svg 0 4 = "<svg");
        check Alcotest.bool "svg close" true
          (String.length svg >= 7
          && String.sub svg (String.length svg - 7) 6 = "</svg>"));
    tc "placement svg renders dots" (fun () ->
        let svg =
          Render.placement_svg ~width:10.0 ~height:10.0 [| (1.0, 1.0); (9.0, 9.0) |]
        in
        check Alcotest.bool "two circles" true
          (String.length svg > 0));
  ]

let () =
  Alcotest.run "route"
    [
      ("grid", grid_tests);
      ("maze", maze_tests);
      ("router", router_tests);
      ("render", render_tests);
    ]
