type profile = {
  p_name : string;
  cells : int;
  nets : int;
  pads : int;
  avg_pins : float;
}

let mcnc_profiles =
  [
    { p_name = "fract"; cells = 125; nets = 147; pads = 24; avg_pins = 3.1 };
    { p_name = "prim1"; cells = 833; nets = 902; pads = 81; avg_pins = 2.9 };
    { p_name = "struct"; cells = 1888; nets = 1920; pads = 64; avg_pins = 2.8 };
    { p_name = "ind1"; cells = 2271; nets = 2478; pads = 814; avg_pins = 2.7 };
    { p_name = "prim2"; cells = 3014; nets = 3029; pads = 107; avg_pins = 3.0 };
  ]

let tiny = { p_name = "tiny"; cells = 12; nets = 18; pads = 8; avg_pins = 2.6 }

let by_name name =
  if name = tiny.p_name then Some tiny
  else List.find_opt (fun p -> p.p_name = name) mcnc_profiles

let generate ~seed profile =
  let rng = Vc_util.Rng.create (seed lxor Hashtbl.hash profile.p_name) in
  let n = profile.cells in
  let side = ceil (sqrt (float_of_int n)) in
  let width = side and height = side in
  let cell_names = Array.init n (Printf.sprintf "c%d") in
  (* pads evenly around the boundary *)
  let pads =
    Array.init profile.pads (fun i ->
        let frac =
          float_of_int i /. float_of_int (max 1 profile.pads) *. 4.0
        in
        let name = Printf.sprintf "p%d" i in
        if frac < 1.0 then (name, frac *. width, 0.0)
        else if frac < 2.0 then (name, width, (frac -. 1.0) *. height)
        else if frac < 3.0 then (name, (3.0 -. frac) *. width, height)
        else (name, 0.0, (4.0 -. frac) *. height))
  in
  (* net degree: 2 + geometric-ish tail with the profile's mean *)
  let extra_mean = max 0.1 (profile.avg_pins -. 2.0) in
  let sample_degree () =
    let rec extra acc =
      if Vc_util.Rng.float rng 1.0 < extra_mean /. (extra_mean +. 1.0) then
        extra (acc + 1)
      else acc
    in
    2 + extra 0
  in
  let touched = Array.make n false in
  let gen_net i =
    let center = Vc_util.Rng.int rng n in
    let degree = sample_degree () in
    (* locality: neighbours drawn around the center in index space *)
    let neighbourhood = max 8 (n / 10) in
    let pick () =
      let delta =
        int_of_float
          (Vc_util.Rng.gaussian rng ~mu:0.0
             ~sigma:(float_of_int neighbourhood))
      in
      let c = (center + delta) mod n in
      if c < 0 then c + n else c
    in
    let rec gather acc count guard =
      if count = 0 || guard = 0 then acc
      else begin
        let c = pick () in
        if List.mem (Pnet.Cell c) acc then gather acc count (guard - 1)
        else gather (Pnet.Cell c :: acc) (count - 1) (guard - 1)
      end
    in
    let pins = gather [ Pnet.Cell center ] (degree - 1) (degree * 20) in
    (* ~12% of nets also land on an IO pad *)
    let pins =
      if profile.pads > 0 && Vc_util.Rng.float rng 1.0 < 0.12 then
        Pnet.Pad (Vc_util.Rng.int rng profile.pads) :: pins
      else pins
    in
    List.iter
      (fun pin -> match pin with Pnet.Cell c -> touched.(c) <- true | Pnet.Pad _ -> ())
      pins;
    { Pnet.net_name = Printf.sprintf "n%d" i; pins }
  in
  let nets = List.init profile.nets gen_net in
  (* connect any untouched cell to a random neighbour so no cell floats *)
  let extra = ref [] and extra_id = ref 0 in
  Array.iteri
    (fun c hit ->
      if not hit then begin
        let peer = Vc_util.Rng.int rng n in
        let peer = if peer = c then (c + 1) mod n else peer in
        extra :=
          {
            Pnet.net_name = Printf.sprintf "fix%d" !extra_id;
            pins = [ Pnet.Cell c; Pnet.Cell peer ];
          }
          :: !extra;
        incr extra_id
      end)
    touched;
  Pnet.make ~name:profile.p_name ~cell_names ~pads
    ~nets:(Array.of_list (nets @ !extra))
    ~width ~height ()
