lib/route/channel.ml: Array Buffer Bytes Hashtbl List Option Printf String Vc_util
