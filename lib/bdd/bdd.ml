module Expr = Vc_cube.Expr
module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube
type t = int

(* Node layout: three growable parallel arrays.  Ids 0 and 1 are the
   constants and carry the sentinel level [max_int] so that every real
   variable sits above them in the order. *)
type man = {
  mutable level : int array; (* variable index per node *)
  mutable low : int array;
  mutable high : int array;
  mutable next_node : int;
  unique : (int * int * int, int) Hashtbl.t; (* (level, low, high) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  mutable names : string array; (* variable index -> name *)
  by_name : (string, int) Hashtbl.t;
  mutable nvars : int;
  mutable hits : int;
  mutable misses : int;
}

let zero = 0
let one = 1

(* Process-wide cumulative table counters across every manager, for the
   Telemetry probe ([cache_stats] below stays per-manager). *)
let g_unique_hits = ref 0
let g_unique_misses = ref 0
let g_ite_hits = ref 0
let g_ite_misses = ref 0

let create ?(cache_size = 1 lsl 12) () =
  let n0 = 1024 in
  let level = Array.make n0 0 in
  level.(0) <- max_int;
  level.(1) <- max_int;
  {
    level;
    low = Array.make n0 0;
    high = Array.make n0 0;
    next_node = 2;
    unique = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
    names = [||];
    by_name = Hashtbl.create 64;
    nvars = 0;
    hits = 0;
    misses = 0;
  }

let grow m =
  let cap = Array.length m.level in
  if m.next_node >= cap then begin
    let cap' = 2 * cap in
    let extend a = Array.append a (Array.make cap 0) in
    m.level <- extend m.level;
    m.low <- extend m.low;
    m.high <- extend m.high;
    ignore cap'
  end

(* Hash-consing constructor: enforces both reduction rules. *)
let mk_node m lvl lo hi =
  if lo = hi then lo
  else begin
    let key = (lvl, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id ->
      Stdlib.incr g_unique_hits;
      id
    | None ->
      Stdlib.incr g_unique_misses;
      grow m;
      let id = m.next_node in
      m.next_node <- id + 1;
      m.level.(id) <- lvl;
      m.low.(id) <- lo;
      m.high.(id) <- hi;
      Hashtbl.add m.unique key id;
      id
  end

let grow_names m upto =
  if upto >= Array.length m.names then begin
    let fresh = Array.make (max 16 (2 * (upto + 1))) "" in
    Array.blit m.names 0 fresh 0 (Array.length m.names);
    m.names <- fresh
  end

let register_var m name =
  let i = m.nvars in
  m.nvars <- i + 1;
  grow_names m i;
  m.names.(i) <- name;
  Hashtbl.replace m.by_name name i;
  i

let ith_var m i =
  if i < 0 then invalid_arg "Bdd.ith_var: negative index";
  while m.nvars <= i do
    ignore (register_var m (Printf.sprintf "x%d" m.nvars))
  done;
  mk_node m i zero one

let var m name =
  let i =
    match Hashtbl.find_opt m.by_name name with
    | Some i -> i
    | None -> register_var m name
  in
  mk_node m i zero one

let num_vars m = m.nvars

let var_name m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var_name: bad index";
  m.names.(i)

let var_index m name = Hashtbl.find_opt m.by_name name

(* ------------------------------------------------------------------ *)
(* ITE                                                                 *)
(* ------------------------------------------------------------------ *)

let top_level m f = m.level.(f)

let cofactors m f lvl =
  if m.level.(f) = lvl then (m.low.(f), m.high.(f)) else (f, f)

let rec ite m f g h =
  (* terminal cases *)
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r ->
      m.hits <- m.hits + 1;
      Stdlib.incr g_ite_hits;
      r
    | None ->
      m.misses <- m.misses + 1;
      Stdlib.incr g_ite_misses;
      let lvl = min (top_level m f) (min (top_level m g) (top_level m h)) in
      let f0, f1 = cofactors m f lvl in
      let g0, g1 = cofactors m g lvl in
      let h0, h1 = cofactors m h lvl in
      let lo = ite m f0 g0 h0 in
      let hi = ite m f1 g1 h1 in
      let r = mk_node m lvl lo hi in
      Hashtbl.add m.ite_cache key r;
      r
  end

let mk_ite = ite
let mk_not m f = ite m f zero one
let mk_and m f g = ite m f g zero
let mk_or m f g = ite m f one g
let mk_xor m f g = ite m f (mk_not m g) g
let mk_nand m f g = mk_not m (mk_and m f g)
let mk_nor m f g = mk_not m (mk_or m f g)
let mk_imp m f g = ite m f g one
let mk_iff m f g = ite m f g (mk_not m g)

(* ------------------------------------------------------------------ *)
(* Cofactor / compose / quantify                                       *)
(* ------------------------------------------------------------------ *)

let restrict m f ~var ~value =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 || m.level.(f) > var then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r =
          if m.level.(f) = var then if value then m.high.(f) else m.low.(f)
          else mk_node m m.level.(f) (go m.low.(f)) (go m.high.(f))
        in
        Hashtbl.add memo f r;
        r
  in
  go f

let compose m f ~var g =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 || m.level.(f) > var then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r =
          if m.level.(f) = var then ite m g m.high.(f) m.low.(f)
          else begin
            (* var may appear below; also g's top may be above f's level, so
               use ite on the current node's decision variable *)
            let v = mk_node m m.level.(f) zero one in
            ite m v (go m.high.(f)) (go m.low.(f))
          end
        in
        Hashtbl.add memo f r;
        r
  in
  go f

let quantify_one m combine f var =
  let f0 = restrict m f ~var ~value:false in
  let f1 = restrict m f ~var ~value:true in
  combine m f0 f1

let exists m vars f = List.fold_left (quantify_one m mk_or) f vars
let forall m vars f = List.fold_left (quantify_one m mk_and) f vars

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let iter_nodes m f k =
  let seen = Hashtbl.create 64 in
  let rec visit f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      k f;
      visit m.low.(f);
      visit m.high.(f)
    end
  in
  visit f

let support m f =
  let vars = Hashtbl.create 16 in
  iter_nodes m f (fun n -> Hashtbl.replace vars m.level.(n) ());
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let size m f =
  let n = ref 0 in
  iter_nodes m f (fun _ -> incr n);
  !n

let node_count m = m.next_node - 2

let eval m f env =
  let rec go f =
    if f = zero then false
    else if f = one then true
    else if env m.level.(f) then go m.high.(f)
    else go m.low.(f)
  in
  go f

let sat_count m f ~nvars =
  let bad = List.filter (fun v -> v >= nvars) (support m f) in
  if bad <> [] then invalid_arg "Bdd.sat_count: support exceeds nvars";
  let memo = Hashtbl.create 64 in
  (* count over variables at levels >= lvl *)
  let rec count f lvl =
    if f = zero then 0.0
    else if f = one then Float.pow 2.0 (float_of_int (nvars - lvl))
    else begin
      let key = (f, lvl) in
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
        let here = m.level.(f) in
        let skip = Float.pow 2.0 (float_of_int (here - lvl)) in
        let c =
          skip
          *. (count m.low.(f) (here + 1) +. count m.high.(f) (here + 1))
          /. 1.0
        in
        Hashtbl.add memo key c;
        c
    end
  in
  count f 0

let any_sat m f =
  if f = zero then None
  else begin
    let rec walk f acc =
      if f = one then List.rev acc
      else if m.low.(f) <> zero then walk m.low.(f) ((m.level.(f), false) :: acc)
      else walk m.high.(f) ((m.level.(f), true) :: acc)
    in
    Some (walk f [])
  end

let all_sat ?(limit = 1_000_000) m f =
  let out = ref [] and n = ref 0 in
  let exception Done in
  let rec walk f acc =
    if !n >= limit then raise Done;
    if f = one then begin
      out := List.rev acc :: !out;
      incr n
    end
    else if f <> zero then begin
      walk m.low.(f) ((m.level.(f), false) :: acc);
      walk m.high.(f) ((m.level.(f), true) :: acc)
    end
  in
  (try walk f [] with Done -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let rec of_expr m = function
  | Expr.Const true -> one
  | Expr.Const false -> zero
  | Expr.Var v -> var m v
  | Expr.Not a -> mk_not m (of_expr m a)
  | Expr.And (a, b) -> mk_and m (of_expr m a) (of_expr m b)
  | Expr.Or (a, b) -> mk_or m (of_expr m a) (of_expr m b)
  | Expr.Xor (a, b) -> mk_xor m (of_expr m a) (of_expr m b)

let to_expr m f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f = zero then Expr.Const false
    else if f = one then Expr.Const true
    else
      match Hashtbl.find_opt memo f with
      | Some e -> e
      | None ->
        let v = Expr.Var m.names.(m.level.(f)) in
        let lo = go m.low.(f) and hi = go m.high.(f) in
        let e = Expr.Or (Expr.And (v, hi), Expr.And (Expr.Not v, lo)) in
        Hashtbl.add memo f e;
        e
  in
  Expr.simplify (go f)

let of_cover m ~names (f : Cover.t) =
  if Array.length names <> f.Cover.num_vars then
    invalid_arg "Bdd.of_cover: names length mismatch";
  let cube_bdd c =
    let add acc i =
      match Cube.get c i with
      | Cube.Pos -> mk_and m acc (var m names.(i))
      | Cube.Neg -> mk_and m acc (mk_not m (var m names.(i)))
      | Cube.Both -> acc
      | Cube.Empty -> zero
    in
    List.fold_left add one (List.init f.Cover.num_vars (fun i -> i))
  in
  List.fold_left (fun acc c -> mk_or m acc (cube_bdd c)) zero f.Cover.cubes

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                  *)
(* ------------------------------------------------------------------ *)

let gc m ~roots =
  let reachable = Hashtbl.create 256 in
  let rec mark f =
    if f >= 2 && not (Hashtbl.mem reachable f) then begin
      Hashtbl.add reachable f ();
      mark m.low.(f);
      mark m.high.(f)
    end
  in
  List.iter mark roots;
  (* rebuild tables containing only reachable nodes, keeping ids stable by
     re-interning bottom-up (levels descending so children come first) *)
  let live =
    Hashtbl.fold (fun id () acc -> id :: acc) reachable []
    |> List.sort (fun a b -> compare b a)
  in
  let old_level = Array.copy m.level
  and old_low = Array.copy m.low
  and old_high = Array.copy m.high in
  Hashtbl.reset m.unique;
  Hashtbl.reset m.ite_cache;
  m.next_node <- 2;
  let remap = Hashtbl.create 256 in
  Hashtbl.add remap zero zero;
  Hashtbl.add remap one one;
  let reintern id =
    let lo = Hashtbl.find remap old_low.(id) in
    let hi = Hashtbl.find remap old_high.(id) in
    Hashtbl.add remap id (mk_node m old_level.(id) lo hi)
  in
  (* children have deeper (larger) levels, so descending-level order works;
     within a level nodes never reference each other *)
  let by_level =
    List.sort (fun a b -> compare old_level.(b) old_level.(a)) live
  in
  List.iter reintern by_level;
  List.map (fun r -> Hashtbl.find remap r) roots

let to_dot m ?(name = "bdd") f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node0 [label=\"0\", shape=box];\n";
  Buffer.add_string buf "  node1 [label=\"1\", shape=box];\n";
  iter_nodes m f (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  node%d [label=\"%s\"];\n" n m.names.(m.level.(n)));
      Buffer.add_string buf
        (Printf.sprintf "  node%d -> node%d [style=dashed];\n" n m.low.(n));
      Buffer.add_string buf (Printf.sprintf "  node%d -> node%d;\n" n m.high.(n)));
  Buffer.add_string buf (Printf.sprintf "  root [shape=point] root -> node%d;\n" f);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let cache_stats m = (m.hits, m.misses)

let stats () =
  [
    ("unique_hits", !g_unique_hits);
    ("unique_misses", !g_unique_misses);
    ("ite_hits", !g_ite_hits);
    ("ite_misses", !g_ite_misses);
  ]

let () = Vc_util.Telemetry.register_probe "bdd" stats
