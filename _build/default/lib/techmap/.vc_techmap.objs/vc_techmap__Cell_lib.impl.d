lib/techmap/cell_lib.ml: Hashtbl List
