module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube
module Urp = Vc_cube.Urp
module Expr = Vc_cube.Expr

type project = {
  p_id : int;
  p_title : string;
  p_assignment : string;
  p_reference : unit -> string;
  p_grader : Autograder.unit_test list;
}

(* ================= project 1: URP / PCN ========================== *)

(* (name, num_vars, cover) benchmark functions, small to mid-size *)
let p1_benchmarks =
  [
    ("and2", 2, [ "11" ]);
    ("mux", 3, [ "1-1"; "01-" ]);
    ("maj3", 3, [ "11-"; "1-1"; "-11" ]);
    ("parity4", 4, [ "1000"; "0100"; "0010"; "0001"; "1110"; "1101"; "1011"; "0111" ]);
    ("sparse6", 6, [ "110---"; "0-11--"; "---011"; "1----1" ]);
  ]

let p1_covers =
  List.map (fun (n, v, cubes) -> (n, Cover.of_strings v cubes)) p1_benchmarks

(* tautology questions: (name, cover, expected answer) *)
let p1_tautology_questions =
  [
    ("t_yes", Cover.of_strings 3 [ "1--"; "0--" ], true);
    ("t_no", Cover.of_strings 3 [ "1--"; "01-" ], false);
    ("t_yes2", Cover.of_strings 4 [ "1---"; "01--"; "001-"; "000-" ], true);
  ]

let p1_assignment =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Project 1: Boolean data structures & computation (URP, PCN)\n\
     Represent each function in positional cube notation and implement the\n\
     unate recursive paradigm. For each function below, upload its\n\
     complement as a cube list; answer each tautology question yes/no.\n\n\
     Submission format:\n\
    \  complement <name>\n\
    \  <one cube per line, or the single word 'empty'>\n\
    \  end\n\
    \  tautology <name> yes|no\n\n";
  List.iter
    (fun (name, nvars, cubes) ->
      Buffer.add_string buf (Printf.sprintf "function %s\nvars %d\n" name nvars);
      List.iter (fun c -> Buffer.add_string buf (c ^ "\n")) cubes;
      Buffer.add_string buf "end\n\n")
    p1_benchmarks;
  List.iter
    (fun (name, (cover : Cover.t), _) ->
      Buffer.add_string buf
        (Printf.sprintf "question %s\nvars %d\n" name cover.Cover.num_vars);
      List.iter
        (fun c -> Buffer.add_string buf (c ^ "\n"))
        (Cover.to_strings cover);
      Buffer.add_string buf "end\n\n")
    p1_tautology_questions;
  Buffer.contents buf

(* Parse a project-1 submission into complements and tautology answers. *)
let p1_parse text =
  let lines = Vc_util.Tok.logical_lines ~comment:'#' text in
  let complements = Hashtbl.create 8 and answers = Hashtbl.create 8 in
  let current = ref None in
  let cubes = ref [] in
  let flush () =
    match !current with
    | Some name ->
      Hashtbl.replace complements name (List.rev !cubes);
      current := None;
      cubes := []
    | None -> ()
  in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "complement"; name ] ->
      flush ();
      current := Some name
    | [ "end" ] -> flush ()
    | [ "empty" ] -> ()
    | [ "tautology"; name; answer ] ->
      flush ();
      Hashtbl.replace answers name (String.lowercase_ascii answer = "yes")
    | [ cube ] when !current <> None -> cubes := cube :: !cubes
    | toks -> failwith ("project1: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle lines;
  flush ();
  (complements, answers)

let p1_grader =
  let complement_test (name, (cover : Cover.t)) =
    Autograder.make_test
      ~name:(Printf.sprintf "complement(%s)" name)
      ~points:4
      (fun submission ->
        let complements, _ = p1_parse submission in
        match Hashtbl.find_opt complements name with
        | None -> (false, "no complement submitted")
        | Some cube_strings -> begin
          match Cover.of_strings cover.Cover.num_vars cube_strings with
          | exception Failure msg -> (false, msg)
          | exception Invalid_argument msg -> (false, msg)
          | submitted ->
            let disjoint = Cover.is_empty (Urp.intersect submitted cover) in
            let covers_all = Urp.tautology (Cover.union submitted cover) in
            if disjoint && covers_all then (true, "exact complement")
            else if not disjoint then (false, "overlaps the ON-set")
            else (false, "union is not a tautology")
        end)
  in
  let tautology_test (name, _, expected) =
    Autograder.make_test
      ~name:(Printf.sprintf "tautology(%s)" name)
      ~points:2
      (fun submission ->
        let _, answers = p1_parse submission in
        match Hashtbl.find_opt answers name with
        | None -> (false, "no answer submitted")
        | Some got ->
          if got = expected then (true, "correct")
          else (false, "wrong answer"))
  in
  List.map complement_test p1_covers
  @ List.map tautology_test p1_tautology_questions

let p1_reference () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, cover) ->
      Buffer.add_string buf ("complement " ^ name ^ "\n");
      let comp = Urp.complement cover in
      let comp = Cover.single_cube_containment comp in
      if Cover.is_empty comp then Buffer.add_string buf "empty\n"
      else
        List.iter (fun c -> Buffer.add_string buf (c ^ "\n")) (Cover.to_strings comp);
      Buffer.add_string buf "end\n")
    p1_covers;
  List.iter
    (fun (name, cover, _) ->
      Buffer.add_string buf
        (Printf.sprintf "tautology %s %s\n" name
           (if Urp.tautology cover then "yes" else "no")))
    p1_tautology_questions;
  Buffer.contents buf

let project1 =
  {
    p_id = 1;
    p_title = "Boolean data structures & computation (URP, PCN)";
    p_assignment = p1_assignment;
    p_reference = p1_reference;
    p_grader = p1_grader;
  }

(* ================= project 2: network repair ===================== *)

type p2_bench = {
  b_name : string;
  b_inputs : string list;
  b_spec : string;  (** Expression text. *)
  b_netlist : string;  (** Human-readable description of the broken net. *)
  b_build : Vc_bdd.Bdd.man -> hole:(Vc_bdd.Bdd.t -> Vc_bdd.Bdd.t -> Vc_bdd.Bdd.t) -> Vc_bdd.Bdd.t;
}

let p2_benchmarks =
  let v m name = Vc_bdd.Bdd.var m name in
  [
    {
      b_name = "gate_or";
      b_inputs = [ "a"; "b" ];
      b_spec = "a | b";
      b_netlist = "out = G?(a, b)           # single suspect gate";
      b_build = (fun m ~hole -> hole (v m "a") (v m "b"));
    };
    {
      b_name = "mux_fix";
      b_inputs = [ "a"; "b"; "s" ];
      b_spec = "(s & a) | (!s & b)";
      b_netlist =
        "t1 = AND(s, a)\n\
         t2 = G?(s, b)            # suspect: should make out a 2:1 mux\n\
         out = OR(t1, t2)";
      b_build =
        (fun m ~hole ->
          let t1 = Vc_bdd.Bdd.mk_and m (v m "s") (v m "a") in
          let t2 = hole (v m "s") (v m "b") in
          Vc_bdd.Bdd.mk_or m t1 t2);
    };
    {
      b_name = "carry";
      b_inputs = [ "a"; "b"; "c" ];
      b_spec = "(a & b) | (c & (a ^ b))";
      b_netlist =
        "p  = XOR(a, b)\n\
         g  = G?(a, b)            # suspect generate gate\n\
         t  = AND(p, c)\n\
         out = OR(g, t)";
      b_build =
        (fun m ~hole ->
          let p = Vc_bdd.Bdd.mk_xor m (v m "a") (v m "b") in
          let g = hole (v m "a") (v m "b") in
          let t = Vc_bdd.Bdd.mk_and m p (v m "c") in
          Vc_bdd.Bdd.mk_or m g t);
    };
    {
      b_name = "no_fix";
      b_inputs = [ "a"; "b"; "c" ];
      b_spec = "a ^ b ^ c";
      b_netlist =
        "t  = G?(a, b)            # no 2-input gate here can realize parity\n\
         out = AND(t, c)";
      b_build =
        (fun m ~hole ->
          let t = hole (v m "a") (v m "b") in
          Vc_bdd.Bdd.mk_and m t (v m "c"));
    };
  ]

let p2_valid_gates bench =
  Vc_bdd.Repair.repair_2input ~inputs:bench.b_inputs
    ~spec:(Expr.parse bench.b_spec) ~build:bench.b_build
  |> List.map Vc_bdd.Repair.gate_name

let p2_assignment =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Project 2: BDD-based formal network repair\n\
     Each netlist below disagrees with its specification; the suspect gate\n\
     is marked G?. Using BDDs, universally quantify the inputs and find a\n\
     2-input gate that repairs the network for ALL inputs, or report that\n\
     none exists.\n\n\
     Submission format: one line per benchmark:\n\
    \  repair <bench> <GATE>     GATE in {AND OR NAND NOR XOR XNOR\n\
    \                                     BUF(a) NOT(a) BUF(b) NOT(b)\n\
    \                                     ZERO ONE} or NONE\n\n";
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "benchmark %s\ninputs %s\nspec %s\n%s\nend\n\n" b.b_name
           (String.concat " " b.b_inputs)
           b.b_spec b.b_netlist))
    p2_benchmarks;
  Buffer.contents buf

let p2_parse text =
  let answers = Hashtbl.create 8 in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "repair"; bench; gate ] ->
      Hashtbl.replace answers bench (String.uppercase_ascii gate)
    | toks -> failwith ("project2: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle (Vc_util.Tok.logical_lines ~comment:'#' text);
  answers

let p2_grader =
  List.map
    (fun bench ->
      Autograder.make_test
        ~name:(Printf.sprintf "repair(%s)" bench.b_name)
        ~points:5
        (fun submission ->
          let answers = p2_parse submission in
          match Hashtbl.find_opt answers bench.b_name with
          | None -> (false, "no answer submitted")
          | Some gate ->
            let valid =
              List.map String.uppercase_ascii (p2_valid_gates bench)
            in
            if valid = [] then
              if gate = "NONE" then (true, "correctly reported unrepairable")
              else (false, "no repair exists at this location")
            else if List.mem gate valid then (true, "valid repair")
            else if gate = "NONE" then (false, "a repair does exist")
            else
              ( false,
                "that gate does not repair the network for all inputs" )))
    p2_benchmarks

let p2_reference () =
  String.concat "\n"
    (List.map
       (fun bench ->
         let valid = p2_valid_gates bench in
         Printf.sprintf "repair %s %s" bench.b_name
           (match valid with g :: _ -> g | [] -> "NONE"))
       p2_benchmarks)
  ^ "\n"

let project2 =
  {
    p_id = 2;
    p_title = "BDD-based formal network repair";
    p_assignment = p2_assignment;
    p_reference = p2_reference;
    p_grader = p2_grader;
  }

(* ================= project 3: quadratic placement ================ *)

let p3_benchmarks =
  [
    (Vc_place.Netgen.tiny, 101);
    ( (match Vc_place.Netgen.by_name "fract" with
      | Some p -> p
      | None -> assert false),
      202 );
  ]

let p3_nets =
  List.map (fun (prof, seed) -> Vc_place.Netgen.generate ~seed prof) p3_benchmarks

(* grading threshold: student HPWL must be within this factor of the
   reference flow's result *)
let p3_threshold = 1.5

let p3_reference_hpwl net =
  let r = Vc_place.Quadratic.place net in
  let legal = Vc_place.Legalize.to_grid net r.Vc_place.Quadratic.placement in
  let refined, _ = Vc_place.Legalize.refine net legal in
  Vc_place.Pnet.hpwl net refined

let p3_assignment =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Project 3: quadratic placement\n\
        Implement quadratic placement (clique wirelength model, Ax=b via\n\
        conjugate gradient) with recursive bipartitioning legalization.\n\
        Upload one 'place <cell> <x> <y>' line per cell, per design.\n\
        Grading: all cells placed inside the core, no overlapping slots,\n\
        and HPWL within %.1fx of the reference placer.\n\n"
       p3_threshold);
  List.iter
    (fun net ->
      Buffer.add_string buf (Vc_place.Pnet.to_string net);
      Buffer.add_string buf "\n")
    p3_nets;
  Buffer.contents buf

(* submissions carry multiple designs: 'design <name>' headers split them *)
let p3_split_submission text =
  let lines = String.split_on_char '\n' text in
  let sections = Hashtbl.create 4 in
  let current = ref None in
  List.iter
    (fun line ->
      match Vc_util.Tok.split_words line with
      | [ "design"; name ] ->
        current := Some name;
        Hashtbl.replace sections name []
      | [] -> ()
      | _ -> begin
        match !current with
        | Some name ->
          Hashtbl.replace sections name (line :: Hashtbl.find sections name)
        | None -> ()
      end)
    lines;
  fun name ->
    Option.map
      (fun ls -> String.concat "\n" (List.rev ls))
      (Hashtbl.find_opt sections name)

let p3_grader =
  List.concat_map
    (fun net ->
      let name = net.Vc_place.Pnet.name in
      let reference = lazy (p3_reference_hpwl net) in
      [
        Autograder.make_test
          ~name:(Printf.sprintf "legal(%s)" name)
          ~points:4
          (fun submission ->
            match p3_split_submission submission name with
            | None -> (false, "design section missing")
            | Some text -> begin
              match Autograder.validate_placement net ~max_overlaps:0 text with
              | Ok _ -> (true, "legal placement")
              | Error msg -> (false, msg)
            end);
        Autograder.make_test
          ~name:(Printf.sprintf "hpwl(%s)" name)
          ~points:6
          (fun submission ->
            match p3_split_submission submission name with
            | None -> (false, "design section missing")
            | Some text -> begin
              match Autograder.validate_placement net ~max_overlaps:0 text with
              | Error msg -> (false, msg)
              | Ok hpwl ->
                let bound = p3_threshold *. Lazy.force reference in
                if hpwl <= bound then
                  (true, Printf.sprintf "HPWL %.0f <= %.0f" hpwl bound)
                else (false, Printf.sprintf "HPWL %.0f > %.0f" hpwl bound)
            end);
      ])
    p3_nets

let p3_reference () =
  String.concat ""
    (List.map
       (fun net ->
         let r = Vc_place.Quadratic.place net in
         let legal =
           Vc_place.Legalize.to_grid net r.Vc_place.Quadratic.placement
         in
         let refined, _ = Vc_place.Legalize.refine net legal in
         Printf.sprintf "design %s\n%s" net.Vc_place.Pnet.name
           (Vc_place.Pnet.placement_to_string net refined))
       p3_nets)

let project3 =
  {
    p_id = 3;
    p_title = "Quadratic placement";
    p_assignment = p3_assignment;
    p_reference = p3_reference;
    p_grader = p3_grader;
  }

(* ================= project 4: maze routing ======================= *)

let parse_rp = Vc_route.Router.parse_problem

let router_unit_tests =
  [
    ("short_horizontal", parse_rp "grid 8 4\nnet a 1 1 6 1\n");
    ("short_vertical", parse_rp "grid 4 8\nnet a 1 1 1 6\n");
    ("single_bend", parse_rp "grid 8 8\nnet a 1 1 6 6\n");
    ( "around_obstacle",
      parse_rp
        "grid 9 7\n\
         obstacle 0 4 1\nobstacle 0 4 2\nobstacle 0 4 3\nobstacle 0 4 4\n\
         obstacle 1 4 1\nobstacle 1 4 2\nobstacle 1 4 3\nobstacle 1 4 4\n\
         net a 1 2 7 2\n" );
    ( "forced_via",
      parse_rp
        "grid 9 5\n\
         obstacle 0 4 0\nobstacle 0 4 1\nobstacle 0 4 2\nobstacle 0 4 3\n\
         obstacle 0 4 4\n\
         net a 1 2 7 2\n" );
    ("multi_pin", parse_rp "grid 10 10\nnet a 1 1 8 1 5 8\n");
    ( "two_nets_cross",
      parse_rp "grid 9 9\nnet a 1 4 7 4\nnet b 4 1 4 7\n" );
    ( "congestion",
      parse_rp
        "grid 12 6\nnet a 1 1 10 1\nnet b 1 2 10 2\nnet c 1 3 10 3\nnet d 1 4 10 4\n"
    );
  ]

(* big benchmark: route the fract-profile placement's nets *)
let p4_threshold = 1.6

let p4_reference_result problem = Vc_route.Router.route problem

let p4_assignment =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Project 4: two-layer maze routing\n\
        Implement Lee-style maze routing on a two-layer grid: layer 0\n\
        prefers horizontal, layer 1 vertical; vias connect layers; costs\n\
        are given per problem (step/bend/via/wrong-way). Route every net;\n\
        nets must not overlap. Upload, per problem:\n\
       \  problem <name>\n\
       \  net <netname> / '<layer> <x> <y>' lines / break / endnet\n\
        Grading: every unit test routed legally with wirelength within\n\
        %.1fx of the reference router.\n\n"
       p4_threshold);
  List.iter
    (fun (name, problem) ->
      Buffer.add_string buf (Printf.sprintf "problem %s\n" name);
      Buffer.add_string buf (Vc_route.Router.problem_to_string problem);
      Buffer.add_string buf "\n")
    router_unit_tests;
  Buffer.contents buf

let p4_split_submission text =
  let lines = String.split_on_char '\n' text in
  let sections = Hashtbl.create 8 in
  let current = ref None in
  List.iter
    (fun line ->
      match Vc_util.Tok.split_words line with
      | [ "problem"; name ] ->
        current := Some name;
        Hashtbl.replace sections name []
      | _ -> begin
        match !current with
        | Some name ->
          Hashtbl.replace sections name (line :: Hashtbl.find sections name)
        | None -> ()
      end)
    lines;
  fun name ->
    Option.map
      (fun ls -> String.concat "\n" (List.rev ls))
      (Hashtbl.find_opt sections name)

let p4_grader =
  List.concat_map
    (fun (name, problem) ->
      let reference = lazy (p4_reference_result problem) in
      [
        Autograder.make_test
          ~name:(Printf.sprintf "legal(%s)" name)
          ~points:2
          (fun submission ->
            match p4_split_submission submission name with
            | None -> (false, "problem section missing")
            | Some text -> begin
              match Autograder.validate_routing problem text with
              | Ok _ -> (true, "legal routing")
              | Error msg -> (false, msg)
            end);
        Autograder.make_test
          ~name:(Printf.sprintf "quality(%s)" name)
          ~points:2
          (fun submission ->
            match p4_split_submission submission name with
            | None -> (false, "problem section missing")
            | Some text -> begin
              match Autograder.validate_routing problem text with
              | Error msg -> (false, msg)
              | Ok check ->
                let ref_result = Lazy.force reference in
                let bound =
                  int_of_float
                    (p4_threshold
                    *. float_of_int
                         (ref_result.Vc_route.Router.wirelength
                         + ref_result.Vc_route.Router.vias))
                in
                let got =
                  check.Autograder.rc_wirelength + check.Autograder.rc_vias
                in
                if got <= bound then
                  (true, Printf.sprintf "wirelength %d <= %d" got bound)
                else (false, Printf.sprintf "wirelength %d > %d" got bound)
            end);
      ])
    router_unit_tests

let p4_reference () =
  String.concat ""
    (List.map
       (fun (name, problem) ->
         let result = Vc_route.Router.route problem in
         Printf.sprintf "problem %s\n%s" name
           (Vc_route.Router.solution_to_string result))
       router_unit_tests)

let project4 =
  {
    p_id = 4;
    p_title = "Two-layer maze routing";
    p_assignment = p4_assignment;
    p_reference = p4_reference;
    p_grader = p4_grader;
  }

let all = [ project1; project2; project3; project4 ]

let render_fig5 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Fig. 5: the four software design projects\n";
  List.iter
    (fun p ->
      let g = Autograder.grade p.p_grader (p.p_reference ()) in
      Buffer.add_string buf
        (Printf.sprintf "  %d. %-48s %2d gradable units, %3d points\n" p.p_id
           p.p_title (List.length p.p_grader) g.Autograder.possible))
    all;
  Buffer.contents buf

let render_fig6 () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Fig. 6: router unit tests (reference solutions)\n\n";
  List.iter
    (fun (name, problem) ->
      let result = Vc_route.Router.route problem in
      Buffer.add_string buf (Printf.sprintf "--- %s ---\n" name);
      Buffer.add_string buf (Vc_route.Render.result_ascii result);
      Buffer.add_char buf '\n')
    router_unit_tests;
  Buffer.contents buf
