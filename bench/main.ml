(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index) and runs Bechamel
   micro-benchmarks over the eight course kernels - the performance
   "tables" of this systems reproduction.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- fig8     # one experiment
     dune exec bench/main.exe -- perf     # timing tables only
     dune exec bench/main.exe -- ablations
     dune exec bench/main.exe -- compare BASELINE.json CURRENT.json \
       [-latency-tol PCT] [-qor-tol PCT]   # regression gate (exit 3 on fail)
*)

module Expr = Vc_cube.Expr
module Cover = Vc_cube.Cover
module Urp = Vc_cube.Urp
module Bdd = Vc_bdd.Bdd
module Network = Vc_network.Network
module Map = Vc_techmap.Map
module Pnet = Vc_place.Pnet
module Router = Vc_route.Router

let header title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

(* ------------------------------------------------------------------ *)
(* bechamel driver                                                      *)
(* ------------------------------------------------------------------ *)

let bench_group label tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:label tests) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.0f ns" ns
        in
        Printf.printf "  %-46s %s/run\n" name pretty
      | Some _ | None -> Printf.printf "  %-46s (no estimate)\n" name)
    (List.sort compare rows);
  flush stdout

let mk name f = Bechamel.Test.make ~name (Bechamel.Staged.stage f)

(* ------------------------------------------------------------------ *)
(* shared workloads                                                     *)
(* ------------------------------------------------------------------ *)

let adder_network bits =
  let e = Expr.parse in
  let bindings = ref [] in
  let carry = ref "cin" in
  for i = 0 to bits - 1 do
    let a = Printf.sprintf "a%d" i and b = Printf.sprintf "b%d" i in
    let s = Printf.sprintf "s%d" i and c = Printf.sprintf "c%d" i in
    bindings := (s, e (Printf.sprintf "%s ^ %s ^ %s" a b !carry)) :: !bindings;
    bindings :=
      ( c,
        e
          (Printf.sprintf "(%s & %s) | (%s & %s) | (%s & %s)" a b a !carry b
             !carry) )
      :: !bindings;
    carry := c
  done;
  let inputs =
    List.concat_map
      (fun i -> [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ])
      (List.init bits (fun i -> i))
    @ [ "cin" ]
  in
  Network.of_exprs ~name:(Printf.sprintf "adder%d" bits) ~inputs
    (List.rev !bindings)

let random_cover ~seed ~nvars ~cubes =
  let rng = Vc_util.Rng.create seed in
  let cube _ =
    String.init nvars (fun _ ->
        match Vc_util.Rng.int rng 4 with 0 -> '0' | 1 -> '1' | _ -> '-')
  in
  Cover.of_strings nvars (List.init cubes cube)

let fract () =
  match Vc_place.Netgen.by_name "fract" with
  | Some p -> Vc_place.Netgen.generate ~seed:202 p
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* figures                                                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Fig. 1 - concept map (traditional course -> MOOC selection)";
  print_string (Vc_mooc.Concept_map.render_fig1 ())

let fig2 () =
  header "Fig. 2 - week-by-week video lecture content";
  print_string (Vc_mooc.Syllabus.render_fig2 ())

let fig4 () =
  header "Fig. 4 - tool portals: text in, text out, history kept";
  let session = Vc_mooc.Portal.create_session () in
  let demos =
    [
      (Vc_mooc.Portal.kbdd, "boolean a b c\nf = a & b | c\nsatcount f\nprint f");
      (Vc_mooc.Portal.espresso, ".i 3\n.o 1\n110 1\n111 1\n011 1\n010 1\n.e");
      ( Vc_mooc.Portal.sis,
        ".model demo\n.inputs a b c d\n.outputs x\n.names a b c d x\n\
         11-- 1\n1-1- 1\n1--1 1\n.end\n%script\nsweep\nsimplify\nprint_stats" );
      (Vc_mooc.Portal.minisat, "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0");
      (Vc_mooc.Portal.axb, "n 2\nmethod cg\nrow 4 1\nrow 1 3\nrhs 1 2");
    ]
  in
  List.iter
    (fun (tool, input) ->
      Printf.printf "\n-- portal %-8s : %s\n" tool.Vc_mooc.Portal.tool_name
        tool.Vc_mooc.Portal.description;
      let out =
        Vc_mooc.Portal.outcome_output
          (Vc_mooc.Portal.submit_result session tool input)
      in
      String.split_on_char '\n' out
      |> List.iteri (fun i l -> if i < 8 && l <> "" then Printf.printf "   | %s\n" l))
    demos;
  Printf.printf "\n(Auto-graders share the architecture: see fig5/fig6.)\n"

let portal_bench () =
  header "Portal - telemetry + content-addressed result cache (BENCH_portal.json)";
  let module T = Vc_util.Telemetry in
  T.reset ();
  Vc_mooc.Portal.clear_cache ();
  (* the submission journal rides along so CI can aggregate it with
     `vcstat summary` (BENCH_portal.jsonl is uploaded as an artifact) *)
  Vc_util.Journal.open_jsonl "BENCH_portal.jsonl";
  let session = Vc_mooc.Portal.create_session () in
  let demos =
    [
      (Vc_mooc.Portal.kbdd, "boolean a b c\nf = a & b | c\nsatcount f\nprint f");
      (Vc_mooc.Portal.espresso, ".i 3\n.o 1\n110 1\n111 1\n011 1\n010 1\n.e");
      ( Vc_mooc.Portal.sis,
        ".model demo\n.inputs a b c d\n.outputs x\n.names a b c d x\n\
         11-- 1\n1-1- 1\n1--1 1\n.end\n%script\nsweep\nsimplify\nprint_stats" );
      (Vc_mooc.Portal.minisat, "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0");
      (Vc_mooc.Portal.axb, "n 2\nmethod cg\nrow 4 1\nrow 1 3\nrhs 1 2");
    ]
  in
  (* the dominant MOOC workload: the same homework input uploaded over and
     over - first submission executes, the rest are cache hits *)
  let repeats = 50 in
  T.with_span "portal-bench" (fun () ->
      List.iter
        (fun (tool, input) ->
          for _ = 1 to repeats do
            ignore (Vc_mooc.Portal.submit_result session tool input)
          done)
        demos);
  let hits, misses = Vc_mooc.Portal.cache_stats () in
  Printf.printf "%d submits over %d tools: cache %d hits / %d misses (%d cached)\n"
    (repeats * List.length demos)
    (List.length demos) hits misses
    (Vc_mooc.Portal.cache_size ());
  List.iter
    (fun (tool, _) ->
      let name = tool.Vc_mooc.Portal.tool_name in
      match T.timer ("portal." ^ name ^ ".latency") with
      | Some s ->
        Printf.printf
          "  %-8s %3d submits: p50 %8.4f ms  p90 %8.4f ms  p99 %8.4f ms  max \
           %8.4f ms\n"
          name s.T.count (1e3 *. s.T.p50_s) (1e3 *. s.T.p90_s)
          (1e3 *. s.T.p99_s) (1e3 *. s.T.max_s)
      | None -> ())
    demos;
  Out_channel.with_open_text "BENCH_portal.json" (fun oc ->
      Out_channel.output_string oc (T.to_json ()));
  Vc_util.Journal.remove_sink "jsonl:BENCH_portal.jsonl";
  Printf.printf "wrote BENCH_portal.json and BENCH_portal.jsonl\n"

let server_bench ?(configs = [ 1; 2; 4; 8 ]) () =
  header "Server - multicore worker pool throughput (BENCH_server.json)";
  let configs = List.sort_uniq compare configs in
  let module T = Vc_util.Telemetry in
  let module Portal = Vc_mooc.Portal in
  let module Server = Vc_mooc.Server in
  T.reset ();
  Portal.clear_cache ();
  Vc_util.Journal.open_jsonl "BENCH_server.jsonl";
  (* a cache-miss workload: 96 distinct random 3-SAT instances (ratio 4,
     mostly satisfiable), so every job runs its kernel instead of being
     served from the result cache; sized so per-job kernel time dominates
     the fixed dispatch cost (queue push/pop, domain wakeup) that a
     too-small workload would measure instead *)
  let dimacs_of_seed seed =
    let rng = Vc_util.Rng.create (1000 + seed) in
    let nv = 60 and nc = 240 in
    let buf = Buffer.create (16 * nc) in
    Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nv nc);
    for _ = 1 to nc do
      let rec pick k acc =
        if k = 0 then acc
        else
          let v = 1 + Vc_util.Rng.int rng nv in
          if List.mem v acc then pick k acc else pick (k - 1) (v :: acc)
      in
      List.iter
        (fun v ->
          let lit = if Vc_util.Rng.bool rng then v else -v in
          Buffer.add_string buf (string_of_int lit);
          Buffer.add_char buf ' ')
        (pick 3 []);
      Buffer.add_string buf "0\n"
    done;
    Buffer.contents buf
  in
  let num_jobs = 96 and num_clients = 8 in
  let jobs = Array.init num_jobs dimacs_of_seed in
  let run_config workers =
    Portal.clear_cache ();
    let server =
      Server.start
        ~config:{ Server.default_config with Server.workers }
        ()
    in
    let t0 = T.now () in
    let clients =
      List.init num_clients (fun c ->
          Domain.spawn (fun () ->
              let i = ref c in
              while !i < num_jobs do
                (match
                   Server.submit server
                     (Portal.request
                        ~session:(Printf.sprintf "bench-%d" c)
                        Portal.minisat jobs.(!i))
                 with
                | Portal.Executed _ | Portal.Cache_hit _ -> ()
                | Portal.Rejected r ->
                  failwith ("bench server: unexpected rejection: "
                            ^ Portal.reason_message r));
                i := !i + num_clients
              done))
    in
    List.iter Domain.join clients;
    let elapsed = T.now () -. t0 in
    Server.stop server;
    elapsed
  in
  let times = List.map (fun w -> (w, run_config w)) configs in
  (* speedups are relative to the smallest configuration (normally 1
     worker), which runs first *)
  let t1 = match times with (_, t) :: _ -> t | [] -> 1.0 in
  Printf.printf "%d jobs (minisat, 60 vars / 240 clauses), %d client domains\n"
    num_jobs num_clients;
  Printf.printf "portal cache: %d shard(s), capacity %d\n"
    (Portal.cache_shards ()) (Portal.cache_capacity ());
  List.iter
    (fun (w, t) ->
      let throughput = float_of_int num_jobs /. t in
      (* the .speedup gauges are gated by `bench compare` (higher is
         better, under -gauge-tol); throughput stays informational
         because its absolute value depends on the host *)
      T.set_gauge
        (Printf.sprintf "server.bench.w%d.throughput_jobs_per_s" w)
        throughput;
      T.set_gauge (Printf.sprintf "server.bench.w%d.speedup" w) (t1 /. t);
      Printf.printf
        "  %d worker(s): %6.3f s  %7.1f jobs/s  speedup %.2fx\n" w t
        throughput (t1 /. t))
    times;
  let hits, misses = Portal.cache_stats () in
  Printf.printf "cache: %d hits / %d misses (cleared between configs)\n" hits
    misses;
  Out_channel.with_open_text "BENCH_server.json" (fun oc ->
      Out_channel.output_string oc (T.to_json ()));
  Vc_util.Journal.remove_sink "jsonl:BENCH_server.jsonl";
  Printf.printf "wrote BENCH_server.json and BENCH_server.jsonl\n"

let loadgen_bench ?(participants = 1_000_000) ?(duration_s = 32.0)
    ?(rate_rps = 2500.0) ?(clients = 6) () =
  header "Loadgen - open-loop replay SLO over the wire (BENCH_loadgen.json)";
  let module T = Vc_util.Telemetry in
  let module Server = Vc_mooc.Server in
  let module Wire = Vc_mooc.Wire in
  let module Trace = Vc_mooc.Trace in
  let module Loadgen = Vc_mooc.Loadgen in
  T.reset ();
  Vc_util.Timeseries.reset ();
  Vc_util.Profile.reset ();
  Vc_mooc.Portal.clear_cache ();
  (* the SLO workload: a planet-scale cohort (1M registered participants,
     streamed at constant memory) derives a ~128k-submission trace with
     the default 4x deadline spike, replayed open-loop over TCP against
     an in-process listener backed by the shared worker pool. The trace
     is fully determined by the seed, so every run offers the same load
     and the committed baseline stays comparable. *)
  let params =
    {
      Vc_mooc.Cohort.paper_params with
      Vc_mooc.Cohort.registered = participants;
    }
  in
  let spec = Trace.of_cohort ~seed:2013 ~duration_s ~rate_rps params in
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          Server.workers = 2;
          Server.queue_capacity = 256;
        }
      ()
  in
  let listener = Wire.listen ~port:0 () in
  let acceptor =
    Domain.spawn (fun () ->
        Wire.serve listener ~submit:(Server.submit server))
  in
  Printf.printf
    "~%d submission(s) from a %d-participant cohort (%d session(s)), %.0f \
     rps base with a %.0fx deadline spike, %d client domain(s)\n\
     %!"
    (Trace.expected_items spec)
    participants spec.Trace.tr_sessions spec.Trace.tr_rate_rps
    (match spec.Trace.tr_spike with
    | Some s -> s.Trace.sp_factor
    | None -> 1.0)
    clients;
  (* the live console rides along: the same sampler vcserve runs feeds
     the worker-utilization gauges reported below *)
  let sampler =
    Vc_util.Timeseries.Sampler.start ~interval:0.25
      ~sources:Vc_util.Timeseries.server_sources ()
  in
  let report =
    Loadgen.run
      {
        Loadgen.lg_host = "127.0.0.1";
        lg_port = Wire.port listener;
        lg_clients = clients;
        lg_spec = spec;
        lg_time_scale = 1.0;
      }
  in
  Vc_util.Timeseries.Sampler.stop sampler;
  Wire.shutdown listener;
  Domain.join acceptor;
  ignore (Wire.drain_connections listener);
  Server.stop server;
  print_string (Loadgen.render_report report);
  (* BENCH_loadgen.json is the curated SLO surface, not a full telemetry
     dump: only the lower-is-better loadgen.slo.* gauges gate under
     `bench compare` (against the committed bound in bench/baseline/),
     and the rates ride along informationally. A full dump would also
     gate the nondeterministic vcload.rejected counter at qor-tol 0%. *)
  let p99_ms, shed =
    ( (match report.Loadgen.rp_latency with
      | Some s -> 1e3 *. s.Vc_util.Journal_query.l_p99_s
      | None -> 0.0),
      report.Loadgen.rp_shed_rate )
  in
  Loadgen.set_slo_gauges report;
  (* mean worker utilization over the run, from the sampler's
     server.worker.<i>.util series; informational in the JSON (gauges
     present on one side of a bench compare are notes, not gates) *)
  let util_series =
    List.filter
      (fun name ->
        String.starts_with ~prefix:"server.worker." name
        && String.ends_with ~suffix:".util" name)
      (Vc_util.Timeseries.names ())
  in
  let mean_util =
    match
      List.concat_map
        (fun name ->
          List.map
            (fun p -> p.Vc_util.Timeseries.p_value)
            (Vc_util.Timeseries.points name))
        util_series
    with
    | [] -> 0.0
    | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  in
  Printf.printf "mean worker utilization %.3f over %d series, %d profile tick(s)\n"
    mean_util (List.length util_series)
    (Vc_util.Profile.ticks ());
  Out_channel.with_open_text "BENCH_loadgen.json" (fun oc ->
      Printf.fprintf oc
        "{\"gauges\":{\"loadgen.slo.p99_ms\":%.3f,\
         \"loadgen.slo.shed_rate\":%.6f,\"loadgen.offered_rps\":%.1f,\
         \"loadgen.achieved_rps\":%.1f,\"loadgen.requests\":%d.0,\
         \"loadgen.worker_utilization\":%.4f,\
         \"loadgen.sampler_ticks\":%d.0}}\n"
        p99_ms shed report.Loadgen.rp_offered_rps
        report.Loadgen.rp_achieved_rps report.Loadgen.rp_total mean_util
        (Vc_util.Profile.ticks ()));
  Printf.printf "wrote BENCH_loadgen.json\n"

let fig5 () =
  header "Fig. 5 - the four software design projects";
  print_string (Vc_mooc.Projects.render_fig5 ());
  (* show a grading round trip for each project *)
  List.iter
    (fun p ->
      let g =
        Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader
          (p.Vc_mooc.Projects.p_reference ())
      in
      Printf.printf "  project %d reference submission: %d/%d points\n"
        p.Vc_mooc.Projects.p_id g.Vc_mooc.Autograder.earned
        g.Vc_mooc.Autograder.possible)
    Vc_mooc.Projects.all

let fig6 () =
  header "Fig. 6 - router unit tests (gradable units)";
  print_string (Vc_mooc.Projects.render_fig6 ())

let fig7 () =
  header "Fig. 7 - placement & routing on MCNC-profile benchmarks";
  let net = fract () in
  Printf.printf "%s: %d cells, %d nets, %d pads\n" net.Pnet.name
    net.Pnet.num_cells (Array.length net.Pnet.nets) (Array.length net.Pnet.pads);
  let t0 = Sys.time () in
  let qp = Vc_place.Quadratic.place net in
  let legal = Vc_place.Legalize.to_grid net qp.Vc_place.Quadratic.placement in
  Printf.printf "recursive quadratic placer: HPWL %.0f (%.2fs, %d CG iters)\n"
    (Pnet.hpwl net legal)
    (Sys.time () -. t0)
    qp.Vc_place.Quadratic.iterations;
  let problem = Vc_mooc.Flow.routing_problem_of net legal 10 in
  let t0 = Sys.time () in
  Vc_route.Maze.astar := true;
  let result = Router.route ~rip_up_passes:4 problem in
  Vc_route.Maze.astar := false;
  Printf.printf
    "2-layer maze router (A-star): %d/%d nets, wirelength %d, vias %d (%.2fs)\n"
    result.Router.completed result.Router.total result.Router.wirelength
    result.Router.vias
    (Sys.time () -. t0);
  let positions =
    Array.init net.Pnet.num_cells (fun i ->
        (legal.Pnet.xs.(i), legal.Pnet.ys.(i)))
  in
  Out_channel.with_open_text "fig7_placement.svg" (fun oc ->
      Out_channel.output_string oc
        (Vc_route.Render.placement_svg ~width:net.Pnet.width
           ~height:net.Pnet.height positions));
  Out_channel.with_open_text "fig7_routing.svg" (fun oc ->
      Out_channel.output_string oc (Vc_route.Render.result_svg result));
  Printf.printf "wrote fig7_placement.svg and fig7_routing.svg\n"

let simulated_cohort = lazy (Vc_mooc.Cohort.simulate ~seed:2013 Vc_mooc.Cohort.paper_params)

let fig8 () =
  header "Fig. 8 - participation funnel (paper vs simulated cohort)";
  let f = Vc_mooc.Cohort.funnel_of (Lazy.force simulated_cohort) in
  let p = Vc_mooc.Cohort.paper_funnel in
  Printf.printf "%-34s %10s %10s\n" "stage" "paper" "simulated";
  List.iter
    (fun (name, pv, sv) -> Printf.printf "%-34s %10d %10d\n" name pv sv)
    [
      ("registered at peak", p.Vc_mooc.Cohort.registered, f.Vc_mooc.Cohort.registered);
      ("watched a video", p.Vc_mooc.Cohort.watched_video, f.Vc_mooc.Cohort.watched_video);
      ("did a homework", p.Vc_mooc.Cohort.did_homework, f.Vc_mooc.Cohort.did_homework);
      ("tried a software assignment", p.Vc_mooc.Cohort.tried_software, f.Vc_mooc.Cohort.tried_software);
      ("took the final exam", p.Vc_mooc.Cohort.took_final, f.Vc_mooc.Cohort.took_final);
      ("certificates", p.Vc_mooc.Cohort.certificates, f.Vc_mooc.Cohort.certificates);
    ];
  print_newline ();
  print_string (Vc_mooc.Cohort.render_fig8 f)

let fig9 () =
  header "Fig. 9 - viewers per lecture video";
  print_string
    (Vc_mooc.Cohort.render_fig9
       (Vc_mooc.Cohort.viewers_per_video (Lazy.force simulated_cohort)))

let demographics_summary =
  lazy
    (let f = Vc_mooc.Cohort.funnel_of (Lazy.force simulated_cohort) in
     Vc_mooc.Demographics.summarize
       (Vc_mooc.Demographics.sample ~seed:1729 f.Vc_mooc.Cohort.watched_video))

let fig10 () =
  header "Fig. 10 - participation by country";
  print_string (Vc_mooc.Demographics.render_fig10 (Lazy.force demographics_summary))

let stats () =
  header "Section 4 demographics (age / degrees / gender)";
  print_string (Vc_mooc.Demographics.render_stats (Lazy.force demographics_summary));
  Printf.printf "paper: average 30, min 15, max 75; 30%% BS, 29%% MS/PhD; 88/12.\n"

let fig11 () =
  header "Fig. 11 - survey word cloud (requested future topics)";
  let responses = Vc_mooc.Survey.generate_responses ~seed:11 500 in
  print_string (Vc_mooc.Survey.render_fig11 (Vc_mooc.Survey.word_frequencies responses))

(* ------------------------------------------------------------------ *)
(* perf tables                                                          *)
(* ------------------------------------------------------------------ *)

let perf_urp () =
  header "Perf 1 - computational Boolean algebra (URP)";
  let small = random_cover ~seed:3 ~nvars:8 ~cubes:12 in
  let big = random_cover ~seed:4 ~nvars:12 ~cubes:24 in
  bench_group "urp"
    [
      mk "tautology/8var-12cubes" (fun () -> Urp.tautology small);
      mk "tautology/12var-24cubes" (fun () -> Urp.tautology big);
      mk "complement/8var-12cubes" (fun () -> Urp.complement small);
      mk "complement/12var-24cubes" (fun () -> Urp.complement big);
    ]

let perf_bdd () =
  header "Perf 2 - BDD construction and ITE";
  let e8 = Network.output_expr (adder_network 4) "c3" in
  bench_group "bdd"
    [
      mk "build/adder4-carry" (fun () ->
          let m = Bdd.create () in
          ignore (Bdd.of_expr m e8));
      mk "satcount/adder4-carry" (fun () ->
          let m = Bdd.create () in
          let f = Bdd.of_expr m e8 in
          ignore (Bdd.sat_count m f ~nvars:(Bdd.num_vars m)));
      mk "quantify-all/adder4-carry" (fun () ->
          let m = Bdd.create () in
          let f = Bdd.of_expr m e8 in
          ignore (Bdd.exists m (Bdd.support m f) f));
    ]

let perf_sat () =
  header "Perf 3 - SAT: CDCL vs DPLL (random 3-SAT near the phase transition)";
  let sat_easy = Vc_sat.Cnf.random_ksat ~seed:5 ~num_vars:50 ~num_clauses:180 ~k:3 in
  let hard = Vc_sat.Cnf.random_ksat ~seed:5 ~num_vars:50 ~num_clauses:213 ~k:3 in
  let unsat = Vc_sat.Cnf.random_ksat ~seed:5 ~num_vars:50 ~num_clauses:280 ~k:3 in
  bench_group "sat"
    [
      mk "cdcl/50v-ratio3.6" (fun () -> ignore (Vc_sat.Solver.solve sat_easy));
      mk "cdcl/50v-ratio4.26" (fun () -> ignore (Vc_sat.Solver.solve hard));
      mk "cdcl/50v-ratio5.6-unsat" (fun () -> ignore (Vc_sat.Solver.solve unsat));
      mk "dpll/50v-ratio3.6" (fun () -> ignore (Vc_sat.Dpll.solve sat_easy));
      mk "dpll/50v-ratio4.26" (fun () -> ignore (Vc_sat.Dpll.solve hard));
    ]

let perf_two_level () =
  header "Perf 4 - two-level minimization: Espresso vs exact QM";
  let mk_fn seed nvars =
    let rng = Vc_util.Rng.create seed in
    let on = ref [] in
    for m = 0 to (1 lsl nvars) - 1 do
      if Vc_util.Rng.bernoulli rng 0.35 then on := m :: !on
    done;
    !on
  in
  let on6 = mk_fn 7 6 and on8 = mk_fn 9 8 in
  let cover_of nvars ms =
    Cover.make nvars
      (List.map
         (fun m ->
           Vc_cube.Cube.of_literals nvars
             (List.init nvars (fun i -> (i, m land (1 lsl (nvars - 1 - i)) <> 0))))
         ms)
  in
  let c6 = cover_of 6 on6 and c8 = cover_of 8 on8 in
  bench_group "two-level"
    [
      mk "espresso/6var" (fun () ->
          ignore (Vc_two_level.Espresso.minimize ~dc:(Cover.empty 6) c6));
      mk "espresso/8var" (fun () ->
          ignore (Vc_two_level.Espresso.minimize ~dc:(Cover.empty 8) c8));
      mk "qm-exact/6var" (fun () ->
          ignore (Vc_two_level.Qm.minimize ~num_vars:6 ~on:on6 ~dc:[]));
      mk "qm-exact/8var" (fun () ->
          ignore (Vc_two_level.Qm.minimize ~num_vars:8 ~on:on8 ~dc:[]));
    ];
  let esp = Vc_two_level.Espresso.minimize ~dc:(Cover.empty 8) c8 in
  let qm = Vc_two_level.Qm.minimize ~num_vars:8 ~on:on8 ~dc:[] in
  Printf.printf "  quality: espresso %d cubes vs exact %d cubes (8 vars)\n"
    (Cover.num_cubes esp) (List.length qm);
  (* multi-output sharing on a random 3-output PLA *)
  let rng = Vc_util.Rng.create 77 in
  let rows =
    List.init 12 (fun _ ->
        let inp =
          String.init 4 (fun _ ->
              match Vc_util.Rng.int rng 3 with 0 -> '0' | 1 -> '1' | _ -> '-')
        in
        let out =
          String.init 3 (fun _ -> if Vc_util.Rng.bool rng then '1' else '0')
        in
        inp ^ " " ^ out)
  in
  let pla =
    Vc_two_level.Pla.parse (".i 4\n.o 3\n" ^ String.concat "\n" rows ^ "\n.e\n")
  in
  let joint = Vc_two_level.Multi.minimize pla in
  Printf.printf
    "  quality: multi-output 3-out PLA: %d shared terms vs %d per-output rows\n"
    (Vc_two_level.Multi.cube_count joint)
    (Vc_two_level.Pla.cube_count (Vc_two_level.Espresso.minimize_pla pla))

let perf_multilevel () =
  header "Perf 5 - multi-level synthesis (kernels + rugged script)";
  let net = adder_network 4 in
  let node_sop =
    [
      [ ("a", true); ("d", true); ("f", true) ];
      [ ("a", true); ("e", true); ("f", true) ];
      [ ("b", true); ("d", true); ("f", true) ];
      [ ("b", true); ("e", true); ("f", true) ];
      [ ("c", true); ("d", true); ("f", true) ];
      [ ("c", true); ("e", true); ("f", true) ];
      [ ("g", true) ];
    ]
  in
  bench_group "multilevel"
    [
      mk "kernels/lecture-sop" (fun () ->
          ignore (Vc_multilevel.Algebraic.kernels node_sop));
      mk "factor/lecture-sop" (fun () ->
          ignore (Vc_multilevel.Factor.factor node_sop));
      mk "script-rugged/adder4" (fun () ->
          ignore (Vc_multilevel.Script.run net Vc_multilevel.Script.script_rugged));
    ];
  let shared =
    Network.of_exprs ~inputs:[ "a"; "b"; "c"; "d"; "e" ]
      [
        ("x", Expr.parse "a c + a d + b c + b d");
        ("y", Expr.parse "a c e + a d e + e b c");
      ]
  in
  let r = Vc_multilevel.Script.run shared Vc_multilevel.Script.script_rugged in
  Printf.printf "  quality: shared-kernel design %d -> %d literals\n"
    (Network.literal_count shared)
    (Network.literal_count r.Vc_multilevel.Script.network)

let perf_techmap () =
  header "Perf 6 - technology mapping (tree covering DP)";
  let net = adder_network 4 in
  let subject = Vc_techmap.Subject.of_network net in
  let cells = Vc_techmap.Cell_lib.standard () in
  bench_group "techmap"
    [
      mk "subject-graph/adder4" (fun () ->
          ignore (Vc_techmap.Subject.of_network net));
      mk "cover-min-area/adder4" (fun () ->
          ignore (Map.cover ~mode:Map.Min_area cells subject));
      mk "cover-min-delay/adder4" (fun () ->
          ignore (Map.cover ~mode:Map.Min_delay cells subject));
    ];
  let ma = Map.cover ~mode:Map.Min_area cells subject in
  let md = Map.cover ~mode:Map.Min_delay cells subject in
  Printf.printf
    "  quality: min-area %.0f area / %.2f delay; min-delay %.0f area / %.2f delay\n"
    ma.Map.area ma.Map.delay md.Map.area md.Map.delay

let laplacian n =
  let b = Vc_linalg.Sparse.builder n in
  for i = 0 to n - 1 do
    Vc_linalg.Sparse.add b i i 2.0;
    if i > 0 then Vc_linalg.Sparse.add b i (i - 1) (-1.0);
    if i < n - 1 then Vc_linalg.Sparse.add b i (i + 1) (-1.0)
  done;
  let rhs = Array.make n 0.0 in
  rhs.(0) <- 1.0;
  rhs.(n - 1) <- float_of_int n;
  (Vc_linalg.Sparse.finalize b, rhs)

let perf_linalg () =
  header "Perf 7 - Ax=b solvers (the quadratic placement system shape)";
  let m200, b200 = laplacian 200 in
  let dense = Vc_linalg.Sparse.to_dense m200 in
  bench_group "linalg"
    [
      mk "cg/laplacian-200" (fun () ->
          ignore (Vc_linalg.Sparse.conjugate_gradient m200 b200));
      mk "gauss-seidel/laplacian-200" (fun () ->
          ignore (Vc_linalg.Sparse.gauss_seidel ~max_iters:200_000 m200 b200));
      mk "dense-lu/laplacian-200" (fun () ->
          ignore (Vc_linalg.Dense.solve dense b200));
    ];
  let _, cg_it = Vc_linalg.Sparse.conjugate_gradient m200 b200 in
  let _, gs_it = Vc_linalg.Sparse.gauss_seidel ~max_iters:200_000 m200 b200 in
  Printf.printf "  iterations: CG %d vs Gauss-Seidel %d\n" cg_it gs_it

let perf_place () =
  header "Perf 8 - placement: recursive quadratic vs simulated annealing";
  let net = fract () in
  bench_group "place"
    [
      mk "quadratic-recursive/fract" (fun () ->
          ignore (Vc_place.Quadratic.place net));
      mk "annealing/fract" (fun () -> ignore (Vc_place.Annealing.place net));
      mk "fm-bipartition/fract" (fun () ->
          ignore (Vc_place.Fm.bipartition net));
    ];
  let qp = Vc_place.Quadratic.place net in
  let legal = Vc_place.Legalize.to_grid net qp.Vc_place.Quadratic.placement in
  let pa, _ = Vc_place.Annealing.place net in
  Printf.printf
    "  quality: quadratic+legalize HPWL %.0f vs annealing HPWL %.0f\n"
    (Pnet.hpwl net legal) (Pnet.hpwl net pa)

let perf_route () =
  header "Perf 9 - maze routing";
  let problem =
    Router.parse_problem
      "grid 48 48\nnet a 2 2 45 2\nnet b 2 4 45 40 20 20\nnet c 4 2 4 45\n\
       net d 10 10 40 40\nnet e 2 45 45 4\nnet f 30 2 30 45\n"
  in
  bench_group "route"
    [
      mk "route-6nets/48x48" (fun () -> ignore (Router.route problem));
      mk "route-6nets/48x48-astar" (fun () ->
          Vc_route.Maze.astar := true;
          let r = Router.route problem in
          Vc_route.Maze.astar := false;
          ignore r);
    ];
  let r = Router.route problem in
  Printf.printf "  quality: %d/%d nets, wirelength %d, vias %d\n"
    r.Router.completed r.Router.total r.Router.wirelength r.Router.vias

let perf_timing () =
  header "Perf 10 - static timing analysis and Elmore";
  let mapping = Map.map_network (Vc_techmap.Cell_lib.standard ()) (adder_network 8) in
  let graph = Vc_timing.Tgraph.of_mapping mapping in
  let route =
    Router.route (Router.parse_problem "grid 32 32\nnet a 1 1 30 1 30 30 1 30\n")
  in
  let paths =
    match route.Router.routed with [ r ] -> r.Router.r_paths | _ -> []
  in
  bench_group "timing"
    [
      mk "sta/adder8" (fun () -> ignore (Vc_timing.Tgraph.analyze graph));
      mk "elmore/3-sink-route" (fun () ->
          ignore (Vc_timing.Elmore.delays (Vc_timing.Elmore.of_route paths)));
    ];
  let rep = Vc_timing.Tgraph.analyze graph in
  Printf.printf "  adder8 critical path: %.2f over %d nodes\n"
    rep.Vc_timing.Tgraph.worst_arrival
    (List.length rep.Vc_timing.Tgraph.critical_path)

let perf_flow () =
  header "Perf 11 - the push-button logic-to-layout flow";
  let net = adder_network 4 in
  bench_group "flow"
    [ mk "flow/adder4" (fun () -> ignore (Vc_mooc.Flow.run net)) ];
  let r = Vc_mooc.Flow.run net in
  print_string (Vc_mooc.Flow.report_to_string r)

(* ------------------------------------------------------------------ *)
(* ablations (deterministic quality numbers)                            *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablation 1 - BDD variable order (a0b0+a1b1+...)";
  let mux n =
    Expr.parse
      (String.concat " | "
         (List.init n (fun i -> Printf.sprintf "(a%d & b%d)" i i)))
  in
  List.iter
    (fun n ->
      let e = mux n in
      let good = Vc_bdd.Bdd_order.build_size e (Vc_bdd.Bdd_order.interleaved_order n "a" "b") in
      let bad = Vc_bdd.Bdd_order.build_size e (Vc_bdd.Bdd_order.blocked_order n "a" "b") in
      let _, sifted = Vc_bdd.Bdd_order.sift e (Vc_bdd.Bdd_order.blocked_order n "a" "b") in
      Printf.printf "  n=%d: interleaved %4d nodes | blocked %5d | sifted-from-blocked %4d\n"
        n good bad sifted)
    [ 3; 5; 7; 9 ];

  header "Ablation 2 - Espresso REDUCE iteration";
  let totals = ref (0, 0, 0) in
  for seed = 1 to 20 do
    let on = random_cover ~seed ~nvars:7 ~cubes:14 in
    let full = Vc_two_level.Espresso.minimize ~dc:(Cover.empty 7) on in
    let single = Vc_two_level.Espresso.minimize ~single_pass:true ~dc:(Cover.empty 7) on in
    let a, b, c = !totals in
    totals := (a + Cover.num_cubes on, b + Cover.num_cubes full, c + Cover.num_cubes single)
  done;
  let input, full, single = !totals in
  Printf.printf "  20 random 7-var functions: input %d cubes -> full loop %d | single pass %d\n"
    input full single;

  header "Ablation 3 - CDCL feature knockouts (pigeonhole 6 into 5)";
  let php =
    let pigeons = 6 and holes = 5 in
    let var p h = (p * holes) + h + 1 in
    let alo = List.init pigeons (fun p -> List.init holes (fun h -> var p h)) in
    let amo =
      List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 -> if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
                (List.init pigeons (fun p -> p)))
            (List.init pigeons (fun p -> p)))
        (List.init holes (fun h -> h))
    in
    Vc_sat.Cnf.make (pigeons * holes) (alo @ amo)
  in
  List.iter
    (fun (name, config) ->
      let _, stats = Vc_sat.Solver.solve ~config php in
      Printf.printf "  %-22s %7d conflicts %8d decisions %9d propagations\n" name
        stats.Vc_sat.Solver.conflicts stats.Vc_sat.Solver.decisions
        stats.Vc_sat.Solver.propagations)
    [
      ("full CDCL", Vc_sat.Solver.default_config);
      ("no learning", { Vc_sat.Solver.default_config with use_learning = false });
      ("no VSIDS", { Vc_sat.Solver.default_config with use_vsids = false });
      ("no restarts", { Vc_sat.Solver.default_config with use_restarts = false });
    ];

  header "Ablation 4 - placement strategies (fract profile)";
  let net = fract () in
  let random = Pnet.random_placement ~seed:1 net in
  let global = Vc_place.Quadratic.global net in
  let global_legal = Vc_place.Legalize.to_grid net global.Vc_place.Quadratic.placement in
  let recur = Vc_place.Quadratic.place net in
  let recur_legal = Vc_place.Legalize.to_grid net recur.Vc_place.Quadratic.placement in
  let refined, swaps = Vc_place.Legalize.refine net recur_legal in
  let annealed, _ = Vc_place.Annealing.place net in
  let greedy, _ = Vc_place.Annealing.greedy net in
  Printf.printf "  random                         HPWL %8.0f\n" (Pnet.hpwl net random);
  Printf.printf "  quadratic global + legalize    HPWL %8.0f\n" (Pnet.hpwl net global_legal);
  Printf.printf "  quadratic recursive + legalize HPWL %8.0f\n" (Pnet.hpwl net recur_legal);
  Printf.printf "  ... + detailed swaps (%3d)     HPWL %8.0f\n" swaps (Pnet.hpwl net refined);
  Printf.printf "  greedy descent                 HPWL %8.0f\n" (Pnet.hpwl net greedy);
  Printf.printf "  simulated annealing            HPWL %8.0f\n" (Pnet.hpwl net annealed);

  header "Ablation 5 - router: rip-up, A-star, bend penalty";
  let congested =
    (* a dense instance on which greedy net-at-a-time ordering strands one
       net until rip-up frees the blockage *)
    Router.parse_problem
      "grid 10 10\nnet n0 7 9 7 0\nnet n1 3 2 6 5\nnet n2 7 6 3 4\n\
       net n3 3 0 6 6\nnet n4 8 0 1 6\nnet n5 0 5 6 0\n"
  in
  let without = Router.route ~order:`Given ~rip_up_passes:0 congested in
  let with_rip = Router.route ~order:`Given ~rip_up_passes:3 congested in
  Printf.printf "  rip-up off: %d/%d routed | rip-up on: %d/%d routed\n"
    without.Router.completed without.Router.total with_rip.Router.completed
    with_rip.Router.total;
  Vc_route.Maze.astar := false;
  let e0 = Vc_route.Maze.expansions () in
  ignore (Router.route congested);
  let dij = Vc_route.Maze.expansions () - e0 in
  Vc_route.Maze.astar := true;
  let e1 = Vc_route.Maze.expansions () in
  ignore (Router.route congested);
  let ast = Vc_route.Maze.expansions () - e1 in
  Vc_route.Maze.astar := false;
  Printf.printf "  wavefront expansions: dijkstra %d vs A-star %d\n" dij ast;
  let no_bend =
    Router.route
      { congested with Router.cost_params = { Vc_route.Grid.default_costs with Vc_route.Grid.bend = 0 } }
  in
  let heavy_bend =
    Router.route
      { congested with Router.cost_params = { Vc_route.Grid.default_costs with Vc_route.Grid.bend = 10 } }
  in
  Printf.printf "  vias at bend penalty 0: %d | at bend penalty 10: %d\n"
    no_bend.Router.vias heavy_bend.Router.vias;

  header "Ablation 6 - mapping objective (adder4)";
  let subject = Vc_techmap.Subject.of_network (adder_network 4) in
  let cells = Vc_techmap.Cell_lib.standard () in
  let ma = Map.cover ~mode:Map.Min_area cells subject in
  let md = Map.cover ~mode:Map.Min_delay cells subject in
  let mmin = Map.cover ~mode:Map.Min_area (Vc_techmap.Cell_lib.minimal ()) subject in
  Printf.printf "  min-area, full library:    %2d gates, area %5.1f, delay %5.2f\n"
    (Map.gate_count ma) ma.Map.area ma.Map.delay;
  Printf.printf "  min-delay, full library:   %2d gates, area %5.1f, delay %5.2f\n"
    (Map.gate_count md) md.Map.area md.Map.delay;
  Printf.printf "  min-area, INV+NAND2 only:  %2d gates, area %5.1f, delay %5.2f\n"
    (Map.gate_count mmin) mmin.Map.area mmin.Map.delay;

  header "Ablation 7 - omitted-topic extensions (test / partitioning / channel / DCs)";
  let carry =
    Network.of_exprs ~inputs:[ "a"; "b"; "cin" ]
      [
        ("cout", Expr.parse "a b + a cin + b cin");
        ("s", Expr.parse "a ^ b ^ cin");
      ]
  in
  let atpg = Vc_network.Atpg.generate_all carry in
  Printf.printf
    "  ATPG on a full adder: %d faults, %d detected, %d vectors -> %d after compaction\n"
    atpg.Vc_network.Atpg.total atpg.Vc_network.Atpg.detected
    (List.length atpg.Vc_network.Atpg.vectors)
    (List.length (Vc_network.Atpg.compact carry atpg));
  let part_net =
    Vc_place.Netgen.generate ~seed:9
      { Vc_place.Netgen.p_name = "part"; cells = 150; nets = 220; pads = 12; avg_pins = 2.7 }
  in
  let kl = Vc_place.Kl.bipartition ~seed:3 part_net in
  let fm_r = Vc_place.Fm.bipartition ~seed:3 part_net in
  let random_side =
    Array.init part_net.Pnet.num_cells (fun i -> i mod 2 = 0)
  in
  Printf.printf "  partitioning cut: random %d | KL %d | FM %d\n"
    (Vc_place.Fm.cut_size part_net random_side)
    kl.Vc_place.Kl.cut fm_r.Vc_place.Fm.cut;
  let channel =
    Vc_route.Channel.parse "top    1 0 2 3 0 4 0 2\nbottom 0 1 0 2 3 0 4 0\n"
  in
  (match Vc_route.Channel.route channel with
  | Ok a ->
    Printf.printf "  channel routing: density %d, left-edge used %d tracks\n"
      (Vc_route.Channel.density channel)
      a.Vc_route.Channel.num_tracks
  | Error e -> Printf.printf "  channel routing failed: %s\n" e);
  let hot = Network.create ~inputs:[ "s" ] ~outputs:[ "f" ] () in
  Network.add_node hot ~name:"hot0" ~fanins:[ "s" ]
    ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
  Network.add_node hot ~name:"hot1" ~fanins:[ "s" ]
    ~func:(Vc_cube.Cover.of_strings 1 [ "1" ]);
  Network.add_node hot ~name:"f" ~fanins:[ "hot0"; "hot1" ]
    ~func:(Vc_cube.Cover.of_strings 2 [ "10"; "01" ]);
  Printf.printf
    "  SDC simplification on a decoder consumer: saved %d literal(s)\n"
    (Vc_multilevel.Dc.simplify hot);
  let machine =
    Vc_network.Fsm.of_rows ~reset:"even"
      [
        (("even", "zero"), ("even", [ false ]));
        (("even", "one"), ("odd_a", [ true ]));
        (("odd_a", "zero"), ("odd_b", [ true ]));
        (("odd_a", "one"), ("even", [ false ]));
        (("odd_b", "zero"), ("odd_a", [ true ]));
        (("odd_b", "one"), ("even", [ false ]));
      ]
  in
  let reduced, _ = Vc_network.Fsm.minimize machine in
  Printf.printf "  FSM minimization: %d -> %d states (equivalent: %b)\n"
    (List.length (Vc_network.Fsm.states machine))
    (List.length (Vc_network.Fsm.states reduced))
    (Vc_network.Fsm.equivalent machine reduced);
  let drc_problem =
    Router.parse_problem
      "grid 14 14\nnet a 1 1 12 1\nnet b 1 3 12 3\nnet c 6 0 6 13\n"
  in
  let drc_routed = Router.route drc_problem in
  let violations, drc_rects = Vc_route.Geom.drc_check drc_routed in
  Printf.printf
    "  scanline DRC on a routed layout: %d strips, %d cross-net violations, metal area %d\n"
    (List.length drc_rects) (List.length violations)
    (Vc_route.Geom.union_area drc_rects);
  let hazard_net =
    Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
      [ ("f", Expr.parse "a b + !a c") ]
  in
  let hazard_map =
    Map.map_network (Vc_techmap.Cell_lib.standard ()) hazard_net
  in
  let waves =
    Vc_timing.Eventsim.simulate hazard_map
      [
        ("a", [ (0.0, true); (10.0, false) ]);
        ("b", [ (0.0, true) ]);
        ("c", [ (0.0, true) ]);
      ]
  in
  Printf.printf
    "  event-driven sim: static-1 hazard on f = ab + a'c shows %d glitch transition(s)\n"
    (Vc_timing.Eventsim.glitches (List.assoc "f" waves))

(* ------------------------------------------------------------------ *)
(* regression gate                                                      *)
(* ------------------------------------------------------------------ *)

let compare_usage () =
  prerr_endline
    "usage: main.exe compare BASELINE.json CURRENT.json [-latency-tol PCT] \
     [-qor-tol PCT] [-gauge-tol PCT]";
  exit 2

(* Compare two benchmark/QoR JSON dumps and gate on regressions.
   Exit codes: 0 clean, 3 regression detected, 2 usage/parse error. *)
let compare_reports args =
  let latency_tol = ref 50.0 and qor_tol = ref 0.0 and gauge_tol = ref 25.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "-latency-tol" :: pct :: rest ->
      latency_tol := Vc_util.Tok.parse_float ~context:"-latency-tol" pct;
      parse rest
    | "-qor-tol" :: pct :: rest ->
      qor_tol := Vc_util.Tok.parse_float ~context:"-qor-tol" pct;
      parse rest
    | "-gauge-tol" :: pct :: rest ->
      gauge_tol := Vc_util.Tok.parse_float ~context:"-gauge-tol" pct;
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  (try parse args with Failure msg -> prerr_endline msg; compare_usage ());
  match List.rev !files with
  | [ baseline_file; current_file ] -> begin
    let load file =
      let text =
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error msg ->
          prerr_endline ("compare: " ^ msg);
          exit 2
      in
      match Vc_util.Json.parse_result text with
      | Ok v -> v
      | Error msg ->
        Printf.eprintf "compare: %s: %s\n" file msg;
        exit 2
    in
    let baseline = load baseline_file in
    let current = load current_file in
    let verdict =
      Vc_util.Regress.compare_json
        ~latency_tol:(!latency_tol /. 100.0)
        ~qor_tol:(!qor_tol /. 100.0)
        ~gauge_tol:(!gauge_tol /. 100.0)
        ~baseline ~current ()
    in
    Printf.printf
      "compare %s -> %s (latency tol +%.0f%%, qor tol +%.0f%%, gauge tol \
       -%.0f%%)\n"
      baseline_file current_file !latency_tol !qor_tol !gauge_tol;
    print_string (Vc_util.Regress.render verdict);
    flush stdout;
    if verdict.Vc_util.Regress.regressions <> [] then exit 3
  end
  | _ -> compare_usage ()

(* ------------------------------------------------------------------ *)
(* driver                                                               *)
(* ------------------------------------------------------------------ *)

let figures =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig4", fig4); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("fig10", fig10); ("stats", stats); ("fig11", fig11);
    ("portal", portal_bench);
    ("server", (fun () -> server_bench ()));
    ("loadgen", (fun () -> loadgen_bench ()));
  ]

let perf_tables =
  [
    perf_urp; perf_bdd; perf_sat; perf_two_level; perf_multilevel;
    perf_techmap; perf_linalg; perf_place; perf_route; perf_timing; perf_flow;
  ]

let run_all () =
  List.iter (fun (_, f) -> f ()) figures;
  List.iter (fun f -> f ()) perf_tables;
  ablations ();
  header "Done";
  Printf.printf
    "Every table/figure regenerated; see EXPERIMENTS.md for paper-vs-measured.\n"

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; "perf" ] -> List.iter (fun f -> f ()) perf_tables
  | [ _; "ablations" ] -> ablations ()
  | _ :: "compare" :: rest -> compare_reports rest
  | _ :: "server" :: (_ :: _ as rest) ->
    (* e.g. `server 1 8` runs just those worker counts *)
    let configs =
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some w when w >= 1 -> w
          | Some _ | None ->
            Printf.eprintf "server: bad worker count %S\n" s;
            exit 2)
        rest
    in
    server_bench ~configs ()
  | [ _; name ] -> begin
    match List.assoc_opt name figures with
    | Some f -> f ()
    | None ->
      Printf.eprintf
        "unknown experiment %s (try: fig1 fig2 fig4..fig11 stats portal \
         server loadgen perf ablations all)\n"
        name;
      exit 2
  end
  | _ ->
    prerr_endline "usage: main.exe [experiment]";
    exit 2
