type stats = { decisions : int; propagations : int }

(* Clauses as literal lists; assignment as a map from var to bool.  The
   recursion carries a simplified formula: satisfied clauses removed, false
   literals deleted. Textbook, deliberately so. *)

let solve ?max_decisions (f : Cnf.t) =
  let n_decisions = ref 0 and n_props = ref 0 in
  let exception Budget in
  let assign_lit l assignment = (abs l, l > 0) :: assignment in
  let simplify l clauses =
    (* l is now true *)
    List.filter_map
      (fun clause ->
        if List.mem l clause then None
        else Some (List.filter (fun q -> q <> -l) clause))
      clauses
  in
  let rec unit_propagate clauses assignment =
    match List.find_opt (fun c -> match c with [ _ ] -> true | _ -> false) clauses with
    | Some [ l ] ->
      incr n_props;
      if List.exists (fun c -> c = []) clauses then None
      else unit_propagate (simplify l clauses) (assign_lit l assignment)
    | Some _ -> assert false
    | None -> if List.exists (fun c -> c = []) clauses then None else Some (clauses, assignment)
  in
  let pure_literals clauses =
    let pos = Hashtbl.create 64 and neg = Hashtbl.create 64 in
    List.iter
      (List.iter (fun l ->
           if l > 0 then Hashtbl.replace pos l () else Hashtbl.replace neg (-l) ()))
      clauses;
    Hashtbl.fold
      (fun v () acc -> if Hashtbl.mem neg v then acc else v :: acc)
      pos
      (Hashtbl.fold
         (fun v () acc -> if Hashtbl.mem pos v then acc else -v :: acc)
         neg [])
  in
  let rec search clauses assignment =
    match unit_propagate clauses assignment with
    | None -> None
    | Some ([], assignment) -> Some assignment
    | Some (clauses, assignment) -> begin
      let pures = pure_literals clauses in
      if pures <> [] then begin
        let clauses =
          List.fold_left (fun cs l -> simplify l cs) clauses pures
        in
        let assignment = List.fold_left (fun a l -> assign_lit l a) assignment pures in
        search clauses assignment
      end
      else begin
        (match max_decisions with
        | Some budget when !n_decisions >= budget -> raise Budget
        | Some _ | None -> ());
        incr n_decisions;
        (* branch on the first literal of the first clause *)
        let l =
          match clauses with
          | (l :: _) :: _ -> l
          | [] :: _ | [] -> assert false
        in
        match search (simplify l clauses) (assign_lit l assignment) with
        | Some model -> Some model
        | None -> search (simplify (-l) clauses) (assign_lit (-l) assignment)
      end
    end
  in
  let clauses = List.map Array.to_list f.Cnf.clauses in
  let stats () = { decisions = !n_decisions; propagations = !n_props } in
  match search clauses [] with
  | Some assignment ->
    let model = Array.make (f.Cnf.num_vars + 1) false in
    List.iter (fun (v, b) -> model.(v) <- b) assignment;
    (Solver.Sat model, stats ())
  | None -> (Solver.Unsat, stats ())
  | exception Budget -> (Solver.Unknown, stats ())

let is_sat f =
  match solve f with
  | Solver.Sat _, _ -> true
  | Solver.Unsat, _ -> false
  | Solver.Unknown, _ -> assert false
