(** The algebraic model of Logic Synthesis II: SOP expressions treated as
    polynomials whose literals are opaque symbols (a variable and its
    complement are unrelated atoms), supporting weak division and
    kernel/co-kernel enumeration. *)

type lit = string * bool
(** A signal name and polarity ([true] = positive literal). *)

type acube = lit list
(** A product term: sorted, duplicate-free literal list. *)

type sop = acube list
(** A sum of products: duplicate-free cube list. *)

val lit_to_string : lit -> string

val cube_to_string : acube -> string

val to_string : sop -> string

val normalize : sop -> sop
(** Sort literals in cubes, sort cubes, drop duplicates and cubes that
    contain both polarities of a signal. *)

val of_node : Vc_network.Network.node -> sop
(** A node's SOP with fanin indices replaced by fanin names. *)

val to_cover : fanins:string list -> sop -> Vc_cube.Cover.t
(** Back to a positional cover over the given fanin order; every literal's
    signal must appear in [fanins]. *)

val support : sop -> string list
(** Signals appearing, sorted. *)

val literal_count : sop -> int

val cube_divide : acube -> acube -> acube option
(** [cube_divide c d] is [Some (c / d)] when [d]'s literals are all in
    [c]. *)

val divide : sop -> sop -> sop * sop
(** Weak (algebraic) division [f / d = (quotient, remainder)] with
    [f = quotient*d + remainder] and quotient maximal. Quotient is [[]]
    when [d] does not divide [f]. *)

val common_cube : sop -> acube
(** Largest cube dividing every cube of the SOP ([[]] if none). *)

val cube_free : sop -> bool
(** No non-trivial common cube and more than one cube. *)

val make_cube_free : sop -> acube * sop
(** Factor out the largest common cube. *)

val kernels : sop -> (acube * sop) list
(** All (co-kernel, kernel) pairs: kernels are the cube-free quotients of
    the SOP by cubes; includes the SOP itself with co-kernel [[]] when it
    is cube-free. Duplicate kernels (same kernel, different co-kernel) are
    all returned. *)

val kernel_level0 : sop -> sop option
(** Some level-0 kernel (one with no kernels of its own except itself),
    used as the quick-factor divisor. *)

val most_common_literal : sop -> lit option
(** The literal occurring in the most cubes (at least two), if any. *)
