(* Tests for the omitted-topic extensions (DESIGN.md section 4 / the
   Fig. 11 survey requests): ATPG, KL partitioning, channel routing, and
   don't-care-based simplification. *)

open Helpers
module Network = Vc_network.Network
module Atpg = Vc_network.Atpg
module Kl = Vc_place.Kl
module Fm = Vc_place.Fm
module Channel = Vc_route.Channel
module Dc = Vc_multilevel.Dc
module Expr = Vc_cube.Expr

(* ---------------------------- atpg ------------------------------ *)

let and_or_net () =
  Network.of_exprs ~inputs:[ "a"; "b"; "c" ] [ ("f", Expr.parse "a b + c") ]

let atpg_tests =
  [
    tc "fault universe covers inputs and nodes" (fun () ->
        let t = and_or_net () in
        let faults = Atpg.all_faults t in
        (* 3 inputs + 1 node, 2 polarities *)
        check Alcotest.int "eight faults" 8 (List.length faults));
    tc "injection changes behaviour" (fun () ->
        let t = and_or_net () in
        let faulty = Atpg.inject t { Atpg.signal = "f"; stuck_at = false } in
        let env _ = true in
        check Alcotest.bool "good high" true
          (List.assoc "f" (Network.simulate t env));
        check Alcotest.bool "faulty low" false
          (List.assoc "f" (Network.simulate faulty env)));
    tc "input stuck-at faults are injectable" (fun () ->
        let t = and_or_net () in
        let faulty = Atpg.inject t { Atpg.signal = "a"; stuck_at = false } in
        let env v = v = "a" || v = "b" in
        (* good: ab = 1; faulty: a forced 0 -> f = 0 *)
        check Alcotest.bool "distinguished" true
          (List.assoc "f" (Network.simulate t env)
          <> List.assoc "f" (Network.simulate faulty env)));
    tc "generated vectors really detect their faults" (fun () ->
        let t = and_or_net () in
        let report = Atpg.generate_all t in
        check Alcotest.bool "some detected" true (report.Atpg.detected > 0);
        List.iter
          (fun (fault, vector) ->
            if not (Atpg.detects t fault vector) then
              Alcotest.failf "vector fails for %s" (Atpg.fault_to_string fault))
          report.Atpg.vectors);
    tc "full coverage on irredundant logic" (fun () ->
        let t = and_or_net () in
        let report = Atpg.generate_all t in
        check (Alcotest.float 1e-9) "coverage 1.0" 1.0 (Atpg.coverage report);
        check Alcotest.int "no redundant" 0 report.Atpg.redundant);
    tc "redundant logic is reported untestable" (fun () ->
        (* f = a + a'b = a + b: the a' literal inside is redundant, so some
           fault inside the redundant structure is undetectable *)
        let t = Network.create ~inputs:[ "a"; "b" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"u" ~fanins:[ "a"; "b" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "01" ]);
        (* f = a + u, with u = a'b; stuck-at-0 on u's "a must be 0" aspect:
           simplest check: fault u/0 makes f = a, still differs from a + a'b
           on a=0,b=1 -> detectable; instead build true redundancy: *)
        Network.add_node t ~name:"f" ~fanins:[ "a"; "u" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "1-"; "-1"; "11" ]);
        (* the "11" cube of f is redundant: removing it changes nothing;
           but cube-level faults are not in our model - instead check that
           an undetectable *signal* fault exists in a constant-masked cone *)
        let g =
          Network.of_exprs ~inputs:[ "a" ] [ ("out", Expr.parse "a | !a") ]
        in
        (* out is constant 1: out/1 is undetectable *)
        check Alcotest.bool "undetectable" true
          (Atpg.test_for g { Atpg.signal = "out"; stuck_at = true } = None));
    tc "sat and bdd engines agree on testability" (fun () ->
        let t = and_or_net () in
        List.iter
          (fun fault ->
            let bdd = Atpg.test_for ~engine:Vc_network.Equiv.Bdd_engine t fault in
            let sat = Atpg.test_for ~engine:Vc_network.Equiv.Sat_engine t fault in
            check Alcotest.bool (Atpg.fault_to_string fault) true
              ((bdd = None) = (sat = None)))
          (Atpg.all_faults t));
    tc "compaction keeps coverage with fewer vectors" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b"; "c"; "d" ]
            [ ("f", Expr.parse "a b + c d"); ("g", Expr.parse "a ^ d") ]
        in
        let report = Atpg.generate_all t in
        let compacted = Atpg.compact t report in
        check Alcotest.bool "smaller or equal" true
          (List.length compacted <= List.length report.Atpg.vectors);
        (* compacted set still detects every detected fault *)
        List.iter
          (fun (fault, _) ->
            if not (List.exists (Atpg.detects t fault) compacted) then
              Alcotest.failf "lost fault %s" (Atpg.fault_to_string fault))
          report.Atpg.vectors);
  ]

(* ----------------------------- kl ------------------------------- *)

let kl_tests =
  [
    tc "two cliques split on the bridge" (fun () ->
        let clique base =
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j ->
                  if i < j then
                    Some
                      {
                        Vc_place.Pnet.net_name = Printf.sprintf "c%d_%d_%d" base i j;
                        pins =
                          [ Vc_place.Pnet.Cell (base + i); Vc_place.Pnet.Cell (base + j) ];
                      }
                  else None)
                [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ]
        in
        let bridge =
          { Vc_place.Pnet.net_name = "bridge";
            pins = [ Vc_place.Pnet.Cell 0; Vc_place.Pnet.Cell 4 ] }
        in
        let t =
          Vc_place.Pnet.make
            ~cell_names:(Array.init 8 (Printf.sprintf "c%d"))
            ~pads:[||]
            ~nets:(Array.of_list ((bridge :: clique 0) @ clique 4))
            ~width:8.0 ~height:8.0 ()
        in
        let r = Kl.bipartition ~seed:5 t in
        check Alcotest.int "cut = bridge" 1 r.Kl.cut);
    tc "balance is exact (pairwise swaps)" (fun () ->
        let t =
          Vc_place.Netgen.generate ~seed:31
            { Vc_place.Netgen.p_name = "klb"; cells = 60; nets = 90; pads = 8; avg_pins = 2.5 }
        in
        let r = Kl.bipartition t in
        let left = Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 r.Kl.side in
        check Alcotest.int "half left" 30 left);
    tc "kl beats a random split" (fun () ->
        let t =
          Vc_place.Netgen.generate ~seed:33
            { Vc_place.Netgen.p_name = "klc"; cells = 80; nets = 120; pads = 8; avg_pins = 2.6 }
        in
        let r = Kl.bipartition ~seed:2 t in
        let random = Array.init t.Vc_place.Pnet.num_cells (fun i -> i mod 2 = 0) in
        check Alcotest.bool "improvement" true (r.Kl.cut < Fm.cut_size t random));
    tc "kl and fm land in the same quality region" (fun () ->
        let t =
          Vc_place.Netgen.generate ~seed:35
            { Vc_place.Netgen.p_name = "kld"; cells = 100; nets = 150; pads = 10; avg_pins = 2.6 }
        in
        let kl = Kl.bipartition ~seed:1 t in
        let fm = Fm.bipartition ~seed:1 t in
        (* neither should be catastrophically worse than the other *)
        check Alcotest.bool
          (Printf.sprintf "kl %d vs fm %d" kl.Kl.cut fm.Fm.cut)
          true
          (kl.Kl.cut <= 3 * max 1 fm.Fm.cut && fm.Fm.cut <= 3 * max 1 kl.Kl.cut));
  ]

(* --------------------------- channel ---------------------------- *)

let channel_tests =
  [
    tc "parse and density" (fun () ->
        let p = Channel.parse "top    1 0 2 0 1\nbottom 0 2 0 1 0\n" in
        check Alcotest.int "density" 2 (Channel.density p));
    tc "simple channel routes at density" (fun () ->
        let p = Channel.parse "top    1 0 2 0\nbottom 0 1 0 2\n" in
        match Channel.route p with
        | Error e -> Alcotest.fail e
        | Ok a ->
          (match Channel.check p a with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          check Alcotest.bool "tracks >= density" true
            (a.Channel.num_tracks >= Channel.density p));
    tc "vertical constraints honoured" (fun () ->
        (* column 0: net 1 on top, net 2 on bottom -> 1 above 2 *)
        let p = Channel.parse "top    1 1 0 2\nbottom 2 0 2 0\n" in
        match Channel.route p with
        | Error e -> Alcotest.fail e
        | Ok a -> begin
          match Channel.check p a with
          | Ok () ->
            let t1 = List.assoc 1 a.Channel.tracks in
            let t2 = List.assoc 2 a.Channel.tracks in
            check Alcotest.bool "1 above 2" true (t1 < t2)
          | Error e -> Alcotest.fail e
        end);
    tc "cyclic vertical constraints rejected" (fun () ->
        (* col0: 1 over 2; col1: 2 over 1 -> cycle *)
        let p = Channel.parse "top    1 2\nbottom 2 1\n" in
        match Channel.route p with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected cycle rejection");
    tc "non-overlapping nets share a track" (fun () ->
        let p = Channel.parse "top    1 1 0 2 2\nbottom 0 0 0 0 0\n" in
        match Channel.route p with
        | Error e -> Alcotest.fail e
        | Ok a ->
          check Alcotest.int "one track" 1 a.Channel.num_tracks);
    tc "random channels route validly" (fun () ->
        let rng = Vc_util.Rng.create 7 in
        let attempts = ref 0 in
        while !attempts < 30 do
          incr attempts;
          let cols = 8 + Vc_util.Rng.int rng 8 in
          let nets = 3 + Vc_util.Rng.int rng 4 in
          let row () =
            Array.init cols (fun _ ->
                if Vc_util.Rng.bernoulli rng 0.4 then 1 + Vc_util.Rng.int rng nets
                else 0)
          in
          let p = { Channel.top = row (); bottom = row () } in
          match Channel.route p with
          | Error _ -> () (* cyclic VCG: fine *)
          | Ok a -> begin
            match Channel.check p a with
            | Ok () -> ()
            | Error e -> Alcotest.failf "invalid routing: %s" e
          end
        done);
    tc "render mentions every track" (fun () ->
        let p = Channel.parse "top    1 0 2\nbottom 0 1 2\n" in
        match Channel.route p with
        | Error e -> Alcotest.fail e
        | Ok a ->
          let s = Channel.render p a in
          check Alcotest.bool "non-empty" true (String.length s > 10));
    tc "round trip" (fun () ->
        let p = Channel.parse "top 1 0 2\nbottom 0 1 2\n" in
        let p2 = Channel.parse (Channel.to_string p) in
        check Alcotest.int "same density" (Channel.density p) (Channel.density p2));
  ]

(* ----------------------------- dc ------------------------------- *)

let dc_tests =
  [
    tc "correlated fanins yield don't-cares" (fun () ->
        (* u = a, v = !a: patterns uv in {00, 11} are unreachable *)
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"u" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "1" ]);
        Network.add_node t ~name:"v" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
        Network.add_node t ~name:"f" ~fanins:[ "u"; "v" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "10" ]);
        match Dc.node_dc_cover t "f" with
        | None -> Alcotest.fail "cone small enough"
        | Some dc ->
          check Alcotest.int "two unreachable patterns" 2
            (Vc_cube.Cover.num_cubes dc);
          check Alcotest.bool "00 unreachable" true
            (Vc_cube.Cover.eval dc [| false; false |]);
          check Alcotest.bool "11 unreachable" true
            (Vc_cube.Cover.eval dc [| true; true |]));
    tc "independent fanins have no don't-cares" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b" ] [ ("f", Expr.parse "a & b") ]
        in
        match Dc.node_dc_cover t "f" with
        | None -> Alcotest.fail "eligible"
        | Some dc -> check Alcotest.bool "empty" true (Vc_cube.Cover.is_empty dc));
    tc "dc simplification shrinks the mux-style node" (fun () ->
        (* f = u v' with u = a, v = !a is really just f = a = u *)
        let t = Network.create ~inputs:[ "a" ] ~outputs:[ "f" ] () in
        Network.add_node t ~name:"u" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "1" ]);
        Network.add_node t ~name:"v" ~fanins:[ "a" ]
          ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
        Network.add_node t ~name:"f" ~fanins:[ "u"; "v" ]
          ~func:(Vc_cube.Cover.of_strings 2 [ "10" ]);
        let reference = Network.copy t in
        let saved = Dc.simplify t in
        check Alcotest.bool "saved a literal" true (saved >= 1);
        check Alcotest.bool "equivalent" true
          (Vc_network.Equiv.equivalent reference t));
    prop ~count:30 "dc simplification preserves random networks"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let t = random_network seed in
        ignore (Vc_multilevel.Extract.extract_kernels t);
        let reference = Network.copy t in
        ignore (Dc.simplify t);
        Vc_network.Equiv.equivalent reference t);
    tc "script command full_simplify works" (fun () ->
        let t =
          Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
            [ ("f", Expr.parse "a b + a c") ]
        in
        ignore (Vc_multilevel.Extract.extract_kernels t);
        let report = Vc_multilevel.Script.run t "full_simplify\nprint_stats" in
        check Alcotest.int "two log lines" 2
          (List.length report.Vc_multilevel.Script.log);
        check Alcotest.bool "equivalent" true
          (Vc_network.Equiv.equivalent t report.Vc_multilevel.Script.network));
  ]

(* ----------------------------- fsm ------------------------------ *)

module Fsm = Vc_network.Fsm

(* a parity detector with two redundant copies of the odd state *)
let redundant_parity () =
  Fsm.of_rows ~reset:"even"
    [
      (("even", "zero"), ("even", [ false ]));
      (("even", "one"), ("odd_a", [ true ]));
      (("odd_a", "zero"), ("odd_b", [ true ]));
      (("odd_a", "one"), ("even", [ false ]));
      (("odd_b", "zero"), ("odd_a", [ true ]));
      (("odd_b", "one"), ("even", [ false ]));
    ]

let fsm_tests =
  [
    tc "of_rows validations" (fun () ->
        (match
           Fsm.of_rows ~reset:"s0" [ (("s0", "a"), ("s1", [ true ])) ]
         with
        | exception Invalid_argument _ -> () (* s1 has no rows: incomplete *)
        | _ -> Alcotest.fail "expected incompleteness error");
        match
          Fsm.of_rows ~reset:"s0"
            [
              (("s0", "a"), ("s0", [ true ]));
              (("s0", "a"), ("s0", [ false ]));
            ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected duplicate-row error");
    tc "parse / to_string round trip" (fun () ->
        let t = redundant_parity () in
        let t2 = Fsm.parse (Fsm.to_string t) in
        check Alcotest.bool "equivalent" true (Fsm.equivalent t t2));
    tc "simulate traces outputs" (fun () ->
        let t = redundant_parity () in
        check
          Alcotest.(list (list bool))
          "parity trace"
          [ [ true ]; [ true ]; [ false ]; [ false ] ]
          (Fsm.simulate t [ "one"; "zero"; "one"; "zero" ]));
    tc "minimization merges the redundant states" (fun () ->
        let t = redundant_parity () in
        let reduced, mapping = Fsm.minimize t in
        check Alcotest.int "two states" 2 (List.length (Fsm.states reduced));
        check Alcotest.bool "behaviour preserved" true (Fsm.equivalent t reduced);
        check Alcotest.bool "odd states merged" true
          (List.assoc "odd_a" mapping = List.assoc "odd_b" mapping));
    tc "already-minimal machine untouched" (fun () ->
        let t =
          Fsm.of_rows ~reset:"s0"
            [
              (("s0", "a"), ("s1", [ false ]));
              (("s1", "a"), ("s0", [ true ]));
            ]
        in
        let reduced, _ = Fsm.minimize t in
        check Alcotest.int "still two" 2 (List.length (Fsm.states reduced)));
    tc "equivalence distinguishes machines" (fun () ->
        let t = redundant_parity () in
        let other =
          Fsm.of_rows ~reset:"even"
            [
              (("even", "zero"), ("even", [ false ]));
              (("even", "one"), ("odd", [ true ]));
              (("odd", "zero"), ("odd", [ true ]));
              (("odd", "one"), ("odd", [ true ]));
              (* absorbing odd: different language *)
            ]
        in
        check Alcotest.bool "different" false (Fsm.equivalent t other));
    tc "binary encoding computes the machine" (fun () ->
        let t = redundant_parity () in
        let net = Fsm.encode ~style:`Binary t in
        (* drive the network step by step and compare against simulate *)
        let symbols = Fsm.input_symbols t in
        let nbits =
          List.length
            (List.filter
               (fun o ->
                 String.length o >= 3 && String.sub o 0 3 = "nst")
               (Network.outputs net))
        in
        let run_network sequence =
          let state = ref (List.init nbits (fun _ -> false)) in
          List.map
            (fun sym ->
              let env v =
                if String.length v > 3 && String.sub v 0 3 = "in_" then
                  String.sub v 3 (String.length v - 3) = sym
                else if String.length v >= 3 && String.sub v 0 2 = "st" then begin
                  let b = int_of_string (String.sub v 2 (String.length v - 2)) in
                  List.nth !state b
                end
                else false
              in
              let outs = Network.simulate net env in
              state := List.init nbits (fun b ->
                  List.assoc (Printf.sprintf "nst%d" b) outs);
              List.assoc "out0" outs)
            sequence
        in
        let sequence = [ "one"; "one"; "zero"; "one"; "zero"; "zero" ] in
        let expected = List.map List.hd (Fsm.simulate t sequence) in
        ignore symbols;
        check Alcotest.(list bool) "same trace" expected (run_network sequence));
    tc "one-hot encoding is also faithful" (fun () ->
        let t = redundant_parity () in
        let net = Fsm.encode ~style:`One_hot t in
        check Alcotest.bool "network checks" true
          (match Network.check net with Ok _ -> true | Error _ -> false));
  ]

(* ----------------------------- geom ----------------------------- *)

module Geom = Vc_route.Geom

let geom_tests =
  [
    tc "area and intersection" (fun () ->
        let a = Geom.rect 0 0 4 3 and b = Geom.rect 2 1 6 5 in
        check Alcotest.int "area a" 12 (Geom.area a);
        check Alcotest.bool "intersect" true (Geom.intersects a b);
        (match Geom.intersection a b with
        | Some i -> check Alcotest.int "overlap area" 4 (Geom.area i)
        | None -> Alcotest.fail "should intersect");
        let c = Geom.rect 4 0 6 2 in
        check Alcotest.bool "touching edges do not intersect" false
          (Geom.intersects a c));
    tc "degenerate rect rejected" (fun () ->
        match Geom.rect 2 2 2 5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected error");
    tc "union area counts overlaps once" (fun () ->
        let rects = [ Geom.rect 0 0 4 4; Geom.rect 2 2 6 6 ] in
        check Alcotest.int "16+16-4" 28 (Geom.union_area rects));
    tc "union of disjoint adds" (fun () ->
        let rects = [ Geom.rect 0 0 2 2; Geom.rect 5 5 7 7 ] in
        check Alcotest.int "4+4" 8 (Geom.union_area rects));
    tc "union area equals cell count (brute force)" (fun () ->
        let rng = Vc_util.Rng.create 3 in
        for _ = 1 to 20 do
          let rects =
            List.init 6 (fun _ ->
                let x0 = Vc_util.Rng.int rng 10 and y0 = Vc_util.Rng.int rng 10 in
                Geom.rect x0 y0 (x0 + 1 + Vc_util.Rng.int rng 6)
                  (y0 + 1 + Vc_util.Rng.int rng 6))
          in
          let brute =
            let count = ref 0 in
            for x = 0 to 20 do
              for y = 0 to 20 do
                if
                  List.exists
                    (fun (r : Geom.rect) ->
                      x >= r.Geom.x0 && x < r.Geom.x1 && y >= r.Geom.y0
                      && y < r.Geom.y1)
                    rects
                then incr count
              done
            done;
            !count
          in
          check Alcotest.int "match" brute (Geom.union_area rects)
        done);
    tc "overlapping pairs via sweep equals brute force" (fun () ->
        let rng = Vc_util.Rng.create 5 in
        for _ = 1 to 20 do
          let rects =
            List.init 8 (fun _ ->
                let x0 = Vc_util.Rng.int rng 12 and y0 = Vc_util.Rng.int rng 12 in
                Geom.rect x0 y0 (x0 + 1 + Vc_util.Rng.int rng 5)
                  (y0 + 1 + Vc_util.Rng.int rng 5))
          in
          let arr = Array.of_list rects in
          let brute = ref [] in
          Array.iteri
            (fun i a ->
              Array.iteri
                (fun j b -> if i < j && Geom.intersects a b then brute := (i, j) :: !brute)
                arr)
            arr;
          check
            Alcotest.(list (pair int int))
            "pairs" (List.sort compare !brute)
            (Geom.overlapping_pairs rects)
        done);
    tc "spacing violations" (fun () ->
        let rects = [ Geom.rect 0 0 2 2; Geom.rect 3 0 5 2; Geom.rect 10 10 12 12 ] in
        let vs = Geom.check_spacing ~spacing:2 rects in
        check Alcotest.int "one pair too close" 1 (List.length vs);
        let vs0 = Geom.check_spacing ~spacing:0 rects in
        check Alcotest.int "no overlaps" 0 (List.length vs0));
    tc "routed layouts are DRC clean" (fun () ->
        let p =
          Vc_route.Router.parse_problem
            "grid 12 12\nnet a 1 1 10 1\nnet b 1 3 10 3\nnet c 5 0 5 11\n"
        in
        let result = Vc_route.Router.route p in
        check Alcotest.int "routed" result.Vc_route.Router.total
          result.Vc_route.Router.completed;
        let violations, rects = Geom.drc_check result in
        check Alcotest.int "no cross-net overlaps" 0 (List.length violations);
        check Alcotest.bool "wires extracted" true (rects <> []));
    tc "wires_of_layer merges runs" (fun () ->
        let g = Vc_route.Grid.create ~width:8 ~height:2 () in
        List.iter
          (fun x -> Vc_route.Grid.occupy g 1 { Vc_route.Grid.layer = 0; x; y = 0 })
          [ 2; 3; 4 ];
        let rects, owners = Geom.wires_of_layer g 0 in
        check Alcotest.int "one strip" 1 (List.length rects);
        check Alcotest.(list int) "owner" [ 1 ] owners;
        match rects with
        | [ r ] -> check Alcotest.int "width 3" 3 (Geom.area r)
        | _ -> Alcotest.fail "strip expected");
  ]

let () =
  Alcotest.run "extensions"
    [
      ("atpg", atpg_tests);
      ("kl", kl_tests);
      ("channel", channel_tests);
      ("dc", dc_tests);
      ("fsm", fsm_tests);
      ("geom", geom_tests);
    ]
