lib/two_level/multi.ml: Array Espresso Hashtbl List Pla Vc_cube
