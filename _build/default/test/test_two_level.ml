open Helpers
module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover
module Urp = Vc_cube.Urp
module Pla = Vc_two_level.Pla
module Esp = Vc_two_level.Espresso
module Qm = Vc_two_level.Qm

let dc0 n = Cover.empty n

(* covers with a separate don't-care set *)
let arbitrary_on_dc =
  let gen =
    let open QCheck.Gen in
    let nvars = 4 in
    pair (cover_gen ~nvars ()) (cover_gen ~nvars ~max_cubes:2 ())
    >|= fun (on, dc) ->
    (* make dc disjoint from on so the spec is unambiguous *)
    let dc =
      List.fold_left Urp.cover_sharp dc on.Cover.cubes
    in
    (on, dc)
  in
  QCheck.make
    ~print:(fun (on, dc) ->
      Printf.sprintf "on=[%s] dc=[%s]"
        (String.concat "," (Cover.to_strings on))
        (String.concat "," (Cover.to_strings dc)))
    gen

let espresso_tests =
  [
    tc "textbook 2-variable case" (fun () ->
        (* f = a'b' + a'b + ab = a' + b *)
        let on = Cover.of_strings 2 [ "00"; "01"; "11" ] in
        let r = Esp.minimize ~dc:(dc0 2) on in
        check Alcotest.int "two cubes" 2 (Esp.cost r).Esp.cubes;
        check Alcotest.int "two literals" 2 (Esp.cost r).Esp.literals;
        check Alcotest.bool "correct" true (Esp.check ~on ~dc:(dc0 2) r));
    tc "don't cares exploited" (fun () ->
        (* on = {00}, dc = {01, 10, 11}: minimum is the universe cube *)
        let on = Cover.of_strings 2 [ "00" ] in
        let dc = Cover.of_strings 2 [ "01"; "10"; "11" ] in
        let r = Esp.minimize ~dc on in
        check Alcotest.int "one cube" 1 (Esp.cost r).Esp.cubes;
        check Alcotest.int "no literals" 0 (Esp.cost r).Esp.literals);
    tc "empty ON-set" (fun () ->
        let r = Esp.minimize ~dc:(dc0 3) (Cover.empty 3) in
        check Alcotest.bool "empty" true (Cover.is_empty r));
    tc "expand makes cubes prime" (fun () ->
        let on = Cover.of_strings 3 [ "110"; "111" ] in
        let off = Urp.complement on in
        let e = Esp.expand ~off on in
        check Alcotest.(list string) "merged to 11-" [ "11-" ]
          (Cover.to_strings e));
    tc "irredundant drops covered cubes" (fun () ->
        let f = Cover.of_strings 2 [ "1-"; "-1"; "11" ] in
        let r = Esp.irredundant ~dc:(dc0 2) f in
        check Alcotest.int "two cubes" 2 (Cover.num_cubes r);
        check Alcotest.bool "same function" true (Cover.equivalent f r));
    tc "reduce shrinks overlapping cubes" (fun () ->
        (* two universe-ish cubes: reduce must shrink one against the other *)
        let f = Cover.of_strings 2 [ "1-"; "--" ] in
        let r = Esp.reduce ~dc:(dc0 2) f in
        check Alcotest.bool "still covers" true (Cover.equivalent f r));
    tc "essential primes of a known function" (fun () ->
        (* f = a'b' + ab: both primes essential *)
        let primes = Cover.of_strings 2 [ "00"; "11" ] in
        let es = Esp.essential_primes ~primes ~dc:(dc0 2) in
        check Alcotest.int "both" 2 (List.length es));
    prop ~count:200 "minimize is always correct" arbitrary_on_dc
      (fun (on, dc) -> Esp.check ~on ~dc (Esp.minimize ~dc on));
    prop ~count:200 "minimize never increases cube count" arbitrary_on_dc
      (fun (on, dc) ->
        (Esp.cost (Esp.minimize ~dc on)).Esp.cubes <= Cover.num_cubes on
        || Cover.num_cubes on = 0);
    prop ~count:100 "single pass is correct but never better"
      arbitrary_on_dc
      (fun (on, dc) ->
        let full = Esp.minimize ~dc on in
        let single = Esp.minimize ~single_pass:true ~dc on in
        Esp.check ~on ~dc single
        && Esp.compare_cost (Esp.cost full) (Esp.cost single) <= 0);
  ]

let qm_tests =
  [
    tc "primes of a known function" (fun () ->
        (* f = m(0,1,2,5,6,7) over 3 vars: primes are
           a'b', b'c, a'c', bc?, ab, ac' ... classic example *)
        let ps = Qm.primes ~num_vars:3 ~on:[ 0; 1; 2; 5; 6; 7 ] ~dc:[] in
        check Alcotest.int "six primes" 6 (List.length ps));
    tc "minimize known optimal size" (fun () ->
        let r = Qm.minimize ~num_vars:3 ~on:[ 0; 1; 2; 5; 6; 7 ] ~dc:[] in
        check Alcotest.int "three cubes" 3 (List.length r));
    tc "full function minimizes to universe" (fun () ->
        let r = Qm.minimize ~num_vars:2 ~on:[ 0; 1; 2; 3 ] ~dc:[] in
        check Alcotest.(list string) "universe" [ "--" ]
          (List.map Cube.to_string r));
    tc "empty on-set" (fun () ->
        check Alcotest.int "empty" 0
          (List.length (Qm.minimize ~num_vars:3 ~on:[] ~dc:[ 1; 2 ])));
    prop ~count:100 "qm result is correct and uses only valid minterms"
      arbitrary_on_dc
      (fun (on, dc) ->
        let r = Qm.minimize_cover ~on ~dc in
        Esp.check ~on ~dc r);
    prop ~count:60 "qm is never beaten by espresso" arbitrary_on_dc
      (fun (on, dc) ->
        let exact = Cover.num_cubes (Qm.minimize_cover ~on ~dc) in
        let heuristic = (Esp.cost (Esp.minimize ~dc on)).Esp.cubes in
        exact <= heuristic);
    tc "qm minimality vs exhaustive search (3 vars)" (fun () ->
        (* for every 3-variable function on a sample, compare with brute
           force over all prime subsets *)
        let rng = Vc_util.Rng.create 99 in
        for _ = 1 to 25 do
          let on =
            List.filter (fun _ -> Vc_util.Rng.bool rng) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
          in
          if on <> [] then begin
            let primes = Qm.primes ~num_vars:3 ~on ~dc:[] in
            let qm_size = List.length (Qm.minimize ~num_vars:3 ~on ~dc:[]) in
            (* brute force: smallest subset of primes covering all minterms *)
            let covers subset m =
              let p =
                Array.init 3 (fun i -> m land (1 lsl (2 - i)) <> 0)
              in
              List.exists (fun c -> Cube.eval c p) subset
            in
            let best = ref max_int in
            let primes_arr = Array.of_list primes in
            let np = Array.length primes_arr in
            for mask = 0 to (1 lsl np) - 1 do
              let subset =
                List.filteri
                  (fun i _ -> mask land (1 lsl i) <> 0)
                  (Array.to_list primes_arr)
              in
              if List.for_all (covers subset) on then
                best := min !best (List.length subset)
            done;
            check Alcotest.int "matches brute force" !best qm_size
          end
        done);
  ]

let pla_tests =
  [
    tc "parse basics" (fun () ->
        let p =
          Pla.parse ".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n-11 01\n.e\n"
        in
        check Alcotest.int "inputs" 3 p.Pla.num_inputs;
        check Alcotest.int "outputs" 2 p.Pla.num_outputs;
        check Alcotest.(list string) "names" [ "a"; "b"; "c" ] p.Pla.input_names;
        check Alcotest.int "f on-set" 1 (Cover.num_cubes p.Pla.on_sets.(0)));
    tc "output don't-cares become DC sets" (fun () ->
        let p = Pla.parse ".i 2\n.o 1\n11 1\n00 -\n.e\n" in
        check Alcotest.int "on" 1 (Cover.num_cubes p.Pla.on_sets.(0));
        check Alcotest.int "dc" 1 (Cover.num_cubes p.Pla.dc_sets.(0)));
    tc "glued single-output rows" (fun () ->
        let p = Pla.parse ".i 2\n.o 1\n111\n001\n.e\n" in
        check Alcotest.int "two rows" 2 (Cover.num_cubes p.Pla.on_sets.(0)));
    tc "missing header is an error" (fun () ->
        List.iter
          (fun s ->
            match Pla.parse s with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "expected failure for %S" s)
          [ ".o 1\n1 1\n"; ".i 2\n11 1\n"; ".i 2\n.o 1\n111 1\n" ]);
    tc "print/parse round trip preserves semantics" (fun () ->
        let p =
          Pla.parse
            ".i 4\n.o 2\n.ilb a b c d\n.ob x y\n1--0 11\n01-- 10\n--11 0-\n.e\n"
        in
        let p' = Pla.parse (Pla.to_string p) in
        check Alcotest.bool "semantics" true (Pla.semantics_equal p p'));
    tc "minimize_pla is per-output correct" (fun () ->
        let p = Pla.parse ".i 3\n.o 2\n110 10\n111 10\n011 01\n010 01\n.e\n" in
        let m = Esp.minimize_pla p in
        for j = 0 to 1 do
          check Alcotest.bool "output correct" true
            (Esp.check ~on:p.Pla.on_sets.(j) ~dc:p.Pla.dc_sets.(j)
               m.Pla.on_sets.(j))
        done;
        check Alcotest.int "f merged" 1 (Cover.num_cubes m.Pla.on_sets.(0)));
    tc "cube and literal counts" (fun () ->
        let p = Pla.parse ".i 2\n.o 2\n11 10\n11 01\n00 10\n.e\n" in
        check Alcotest.int "distinct rows" 2 (Pla.cube_count p);
        check Alcotest.bool "literals positive" true (Pla.literal_count p > 0));
  ]

(* --------------------- multi-output sharing --------------------- *)

module Multi = Vc_two_level.Multi

let arbitrary_multi_pla =
  let gen =
    let open QCheck.Gen in
    int_range 0 1_000_000 >|= fun seed ->
    let rng = Vc_util.Rng.create seed in
    let rows =
      List.init 10 (fun _ ->
          let inp =
            String.init 4 (fun _ ->
                match Vc_util.Rng.int rng 3 with
                | 0 -> '0'
                | 1 -> '1'
                | _ -> '-')
          in
          let out =
            String.init 3 (fun _ -> if Vc_util.Rng.bool rng then '1' else '0')
          in
          inp ^ " " ^ out)
    in
    Pla.parse (".i 4\n.o 3\n" ^ String.concat "\n" rows ^ "\n.e\n")
  in
  QCheck.make ~print:Pla.to_string gen

let multi_tests =
  [
    tc "of_pla groups shared input cubes" (fun () ->
        let pla = Pla.parse ".i 2\n.o 2\n11 11\n01 10\n.e\n" in
        let c = Multi.of_pla pla in
        check Alcotest.int "two implicants" 2 (Multi.cube_count c);
        check Alcotest.bool "identity correct" true (Multi.check pla c));
    tc "sharing beats per-output on the textbook case" (fun () ->
        (* f = ab, g = ab + c: joint needs terms {ab, c} = 2; per-output
           also 2 rows here (ab shared) - craft a real win instead:
           f = ab + a'c, g = ab + bc': 'ab' shareable *)
        let pla = Pla.parse ".i 3\n.o 2\n11- 11\n0-1 10\n-10 01\n.e\n" in
        let joint = Multi.minimize pla in
        check Alcotest.bool "correct" true (Multi.check pla joint);
        check Alcotest.bool "at most 3 terms" true (Multi.cube_count joint <= 3));
    tc "output covers are between ON and ON+DC" (fun () ->
        let pla = Pla.parse ".i 2\n.o 2\n11 11\n00 1-\n01 -1\n.e\n" in
        let joint = Multi.minimize pla in
        check Alcotest.bool "legal vs DCs" true (Multi.check pla joint));
    prop ~count:120 "joint minimization is always correct" arbitrary_multi_pla
      (fun pla -> Multi.check pla (Multi.minimize pla));
    prop ~count:120 "joint never needs more rows than per-output espresso"
      arbitrary_multi_pla
      (fun pla ->
        Multi.cube_count (Multi.minimize pla)
        <= Pla.cube_count (Esp.minimize_pla pla));
    prop ~count:60 "to_pla round trip preserves the minimized behaviour"
      arbitrary_multi_pla
      (fun pla ->
        let joint = Multi.minimize pla in
        let rebuilt = Multi.to_pla pla joint in
        (* rebuilt ON-sets must still satisfy the original spec *)
        let ok = ref true in
        for j = 0 to pla.Pla.num_outputs - 1 do
          if
            not
              (Esp.check ~on:pla.Pla.on_sets.(j) ~dc:pla.Pla.dc_sets.(j)
                 rebuilt.Pla.on_sets.(j))
          then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "two_level"
    [
      ("espresso", espresso_tests);
      ("qm", qm_tests);
      ("pla", pla_tests);
      ("multi", multi_tests);
    ]
