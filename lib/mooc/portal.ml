type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;
  execute : string -> string;
}

let guard_errors f input =
  match f input with
  | output -> output
  | exception Failure msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "error: " ^ msg

let kbdd =
  {
    tool_name = "kbdd";
    description = "BDD-based Boolean calculator with a scripting language";
    max_input_lines = 2000;
    execute =
      (fun input -> String.concat "\n" (Vc_bdd.Bdd_script.run_script input));
  }

let espresso =
  {
    tool_name = "espresso";
    description = "two-level logic minimizer on PLA files";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let pla = Vc_two_level.Pla.parse input in
          if pla.Vc_two_level.Pla.num_inputs > 16 then
            failwith "espresso portal: at most 16 inputs"
          else Vc_two_level.Pla.to_string (Vc_two_level.Espresso.minimize_pla pla));
  }

let split_sis_input input =
  let lines = String.split_on_char '\n' input in
  let rec split blif = function
    | [] -> (List.rev blif, [])
    | line :: rest when String.trim line = "%script" -> (List.rev blif, rest)
    | line :: rest -> split (line :: blif) rest
  in
  let blif, script = split [] lines in
  (String.concat "\n" blif, String.concat "\n" script)

let sis =
  {
    tool_name = "sis";
    description = "multi-level logic optimization scripts on BLIF networks";
    max_input_lines = 5000;
    execute =
      guard_errors (fun input ->
          let blif_text, script_text = split_sis_input input in
          let net = Vc_network.Blif.parse blif_text in
          let script_text =
            if String.trim script_text = "" then
              Vc_multilevel.Script.script_rugged
            else script_text
          in
          let report = Vc_multilevel.Script.run net script_text in
          String.concat "\n"
            (report.Vc_multilevel.Script.log
            @ [ ""; Vc_network.Blif.to_string report.Vc_multilevel.Script.network ]));
  }

let minisat =
  {
    tool_name = "minisat";
    description = "CDCL Boolean satisfiability solver on DIMACS CNF";
    max_input_lines = 50_000;
    execute =
      guard_errors (fun input ->
          let cnf = Vc_sat.Cnf.parse_dimacs input in
          match Vc_sat.Solver.solve cnf with
          | Vc_sat.Solver.Sat model, stats ->
            let lits =
              List.init cnf.Vc_sat.Cnf.num_vars (fun i ->
                  let v = i + 1 in
                  string_of_int (if model.(v) then v else -v))
            in
            Printf.sprintf
              "SATISFIABLE\nv %s 0\nc %d conflicts, %d decisions, %d propagations"
              (String.concat " " lits)
              stats.Vc_sat.Solver.conflicts stats.Vc_sat.Solver.decisions
              stats.Vc_sat.Solver.propagations
          | Vc_sat.Solver.Unsat, stats ->
            Printf.sprintf "UNSATISFIABLE\nc %d conflicts"
              stats.Vc_sat.Solver.conflicts
          | Vc_sat.Solver.Unknown, _ -> "UNKNOWN");
  }

let axb =
  {
    tool_name = "axb";
    description = "linear system solver for quadratic-placement homeworks";
    max_input_lines = 5000;
    execute = Vc_linalg.Axb.run;
  }

let all_tools = [ kbdd; espresso; sis; minisat; axb ]

(* ------------------------------------------------------------------ *)
(* tool-name resolution                                                *)
(* ------------------------------------------------------------------ *)

(* One resolution path shared by vcserve, the bench driver and anything
   else that maps user-typed names to portals: case-insensitive, with
   the paper's colloquial aliases, and a near-miss suggestion in the
   error text so a typo comes back actionable. *)

let aliases = [ ("bdd", "kbdd"); ("sat", "minisat") ]

let canonical_name name =
  let lower = String.lowercase_ascii (String.trim name) in
  match List.assoc_opt lower aliases with Some c -> c | None -> lower

let find_tool name =
  let c = canonical_name name in
  List.find_opt (fun t -> t.tool_name = c) all_tools

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  let candidates =
    List.map (fun t -> t.tool_name) all_tools @ List.map fst aliases
  in
  let scored =
    List.map (fun c -> (edit_distance name c, c)) candidates |> List.sort compare
  in
  match scored with
  | (d, c) :: _ when d <= 2 && d < String.length name -> Some c
  | _ -> None

let resolve_tool name =
  match find_tool name with
  | Some t -> Ok t
  | None ->
    let base =
      Printf.sprintf "unknown tool %S (available: %s)" name
        (String.concat ", " (List.map (fun t -> t.tool_name) all_tools))
    in
    Error
      (match suggest (canonical_name name) with
      | Some s -> Printf.sprintf "%s; did you mean %s?" base s
      | None -> base)

(* ------------------------------------------------------------------ *)
(* sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* A session's history may be appended from several server workers at
   once, so it carries its own lock (held only around the hashtable
   touch, never around a tool execution). *)
type session = {
  s_mu : Mutex.t;
  s_history : (string, (string * string) list ref) Hashtbl.t;
}

let create_session () : session =
  { s_mu = Mutex.create (); s_history = Hashtbl.create 8 }

(* ------------------------------------------------------------------ *)
(* structured outcomes                                                 *)
(* ------------------------------------------------------------------ *)

type reason =
  | Runaway of string
  | Overloaded of string
  | Rate_limited of string
  | Deadline_exceeded of string

type outcome = Executed of string | Cache_hit of string | Rejected of reason

let reason_message = function
  | Runaway m | Overloaded m | Rate_limited m | Deadline_exceeded m -> m

let reason_label = function
  | Runaway _ -> "runaway"
  | Overloaded _ -> "overloaded"
  | Rate_limited _ -> "rate_limited"
  | Deadline_exceeded _ -> "deadline"

let outcome_output = function
  | Executed out | Cache_hit out -> out
  | Rejected r -> "error: " ^ reason_message r

(* ------------------------------------------------------------------ *)
(* requests                                                            *)
(* ------------------------------------------------------------------ *)

(* The one submission envelope every layer shares: Server.submit takes
   it, Wire's protocol engine builds it from a parsed TOOL line, and
   vcfront forwards it to a backend - replacing the parallel positional
   signatures those layers used to re-declare. *)
type request = {
  req_session : string;
  req_tool : tool;
  req_input : string;
  req_trace : string option;
}

let request ?trace ~session tool input =
  { req_session = session; req_tool = tool; req_input = input; req_trace = trace }

(* ------------------------------------------------------------------ *)
(* content-addressed result cache                                      *)
(* ------------------------------------------------------------------ *)

(* The dominant MOOC workload is many participants uploading the same
   homework input; every tool is a pure function of its input text, so
   (tool, input) -> output is cached globally across sessions.

   The cache is sharded by digest: the MD5 key picks one of N
   independently-locked shards, each a bounded LRU of its slice of the
   aggregate capacity (the per-shard capacities always sum exactly to
   [cache_capacity ()], so the aggregate bound holds by construction).
   Concurrent submissions of different inputs land on different shards
   with probability (N-1)/N and proceed in parallel; a shard mutex is
   held only around table operations, never a tool execution. Eviction
   scans its shard for the stalest entry, O(shard size), which is
   dwarfed by any tool execution. LRU recency is tracked per shard, so
   eviction is exact within a shard and approximates a global LRU
   across shards - with one shard ([set_cache_shards 1]) the old exact
   global-LRU behaviour is recovered.

   Two domains may still both miss on the same key and execute the tool
   twice, but the tool is pure so either result is correct. Hit/miss/
   eviction statistics live in process-wide atomics so the aggregate
   numbers stay exact without any shared lock and survive
   [Telemetry.reset]; the [portal.cache.*] Telemetry counters are kept
   as mirrors for the /metrics exposition.

   The shard count defaults to 16, overridable with the
   VC_CACHE_SHARDS environment variable or [set_cache_shards] (vcserve
   exposes the latter as -cache-shards). [config_mu] guards
   reconfiguration (shard count / capacity changes) only; lookups touch
   nothing but their shard's mutex. *)

module T = Vc_util.Telemetry

type cache_entry = { output : string; mutable last_used : int }

type cache_shard = {
  sh_mu : Mutex.t;
  sh_tbl : (string, cache_entry) Hashtbl.t;
  mutable sh_cap : int;
  mutable sh_tick : int; (* per-shard recency clock *)
}

let config_mu = Mutex.create ()
let capacity = ref 512

let default_shard_count =
  match Option.bind (Sys.getenv_opt "VC_CACHE_SHARDS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 16

(* distribute [total] over [n] shards so the parts sum exactly to
   [total] - the aggregate capacity bound must be exact, not rounded *)
let shard_caps total n =
  Array.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

let make_shards n total =
  let caps = shard_caps total n in
  Array.init n (fun i ->
      {
        sh_mu = Mutex.create ();
        sh_tbl = Hashtbl.create 64;
        sh_cap = caps.(i);
        sh_tick = 0;
      })

let shards = ref (make_shards default_shard_count !capacity)

let cache_key tool_name input = Digest.string (tool_name ^ "\x00" ^ input)

(* MD5 bytes are uniform; two of them index up to 65536 shards *)
let shard_of key =
  let a = !shards in
  a.(((Char.code key.[0] lsl 8) lor Char.code key.[1]) mod Array.length a)

let stat_hits = Atomic.make 0
let stat_misses = Atomic.make 0
let stat_evictions = Atomic.make 0
let stat_disk_hits = Atomic.make 0

(* ---- the disk tier under the memory shards --------------------------

   An optional Cache_store (vcserve -cache-dir / VC_CACHE_DIR): every
   executed result is written through to it, an entry evicted from a
   memory shard is spilled to it (if not already there), and a memory
   miss probes it before re-executing the tool. At [set_cache_dir] the
   spilled results are promoted back into the memory shards - the warm
   start that makes a restarted server serve cache hits for work its
   previous incarnation did. The handle lives in an Atomic so the hot
   path never takes a configuration lock; store I/O always happens
   OUTSIDE the shard mutexes (lanes have their own locks). A failing
   store (disk full, yanked volume) is dropped with one warning - the
   portal degrades to memory-only rather than failing submissions. *)

module Store = Vc_util.Cache_store
module J = Vc_util.Journal

let store : Store.t option Atomic.t = Atomic.make None

let drop_store st exn =
  if Atomic.compare_and_set store (Some st) None then begin
    Printf.eprintf
      "portal: cache dir %s failed (%s); disk tier disabled\n%!"
      (Store.dir st) (Printexc.to_string exn);
    J.emit ~severity:J.Warn ~component:"portal"
      ~attrs:[ ("dir", Store.dir st); ("error", Printexc.to_string exn) ]
      "cache.disk_disabled";
    try Store.close st with _ -> ()
  end

let store_append key output =
  match Atomic.get store with
  | None -> ()
  | Some st -> ( try Store.append st ~key output with e -> drop_store st e)

let store_find key =
  match Atomic.get store with
  | None -> None
  | Some st -> ( try Store.find st key with e -> drop_store st e; None)

let store_mem key =
  match Atomic.get store with
  | None -> false
  | Some st -> ( try Store.mem st key with e -> drop_store st e; false)

(* call with the shard's mutex held; returns the evicted entry so the
   caller can spill it to the disk tier outside the lock *)
let evict_lru sh =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stalest) when stalest.last_used <= e.last_used -> acc
        | Some _ | None -> Some (k, e))
      sh.sh_tbl None
  in
  match victim with
  | Some (k, e) ->
    Hashtbl.remove sh.sh_tbl k;
    Atomic.incr stat_evictions;
    T.incr "portal.cache.evictions";
    Some (k, e.output)
  | None -> None

let spill victims =
  List.iter
    (fun (k, out) -> if not (store_mem k) then store_append k out)
    victims

let set_cache_capacity n =
  if n < 0 then invalid_arg "Portal.set_cache_capacity: negative capacity";
  Mutex.protect config_mu (fun () ->
      capacity := n;
      let a = !shards in
      let caps = shard_caps n (Array.length a) in
      Array.iteri
        (fun i sh ->
          let victims =
            Mutex.protect sh.sh_mu (fun () ->
                sh.sh_cap <- caps.(i);
                let acc = ref [] in
                while Hashtbl.length sh.sh_tbl > sh.sh_cap do
                  match evict_lru sh with
                  | Some v -> acc := v :: !acc
                  | None -> ()
                done;
                !acc)
          in
          spill victims)
        a)

let set_cache_shards n =
  if n < 1 then invalid_arg "Portal.set_cache_shards: shard count under 1";
  Mutex.protect config_mu (fun () -> shards := make_shards n !capacity)

let cache_shards () = Array.length !shards
let cache_capacity () = Mutex.protect config_mu (fun () -> !capacity)

let cache_shard_sizes () =
  Array.to_list
    (Array.map
       (fun sh -> Mutex.protect sh.sh_mu (fun () -> Hashtbl.length sh.sh_tbl))
       !shards)

let cache_size () = List.fold_left ( + ) 0 (cache_shard_sizes ())

let clear_cache () =
  Array.iter
    (fun sh -> Mutex.protect sh.sh_mu (fun () -> Hashtbl.reset sh.sh_tbl))
    !shards;
  Atomic.set stat_hits 0;
  Atomic.set stat_misses 0;
  Atomic.set stat_evictions 0;
  Atomic.set stat_disk_hits 0

let cache_stats () = (Atomic.get stat_hits, Atomic.get stat_misses)
let cache_evictions () = Atomic.get stat_evictions
let cache_disk_hits () = Atomic.get stat_disk_hits

let cache_find key =
  let sh = shard_of key in
  Mutex.protect sh.sh_mu (fun () ->
      match Hashtbl.find_opt sh.sh_tbl key with
      | Some e ->
        sh.sh_tick <- sh.sh_tick + 1;
        e.last_used <- sh.sh_tick;
        Some e.output
      | None -> None)

(* [spill:false] is the warm-start load path: the entry came from the
   disk tier, so an eviction it forces must not be written back *)
let cache_add ?(spill = true) key output =
  let sh = shard_of key in
  let victim =
    Mutex.protect sh.sh_mu (fun () ->
        if sh.sh_cap > 0 then begin
          sh.sh_tick <- sh.sh_tick + 1;
          let v =
            if
              (not (Hashtbl.mem sh.sh_tbl key))
              && Hashtbl.length sh.sh_tbl >= sh.sh_cap
            then evict_lru sh
            else None
          in
          Hashtbl.replace sh.sh_tbl key { output; last_used = sh.sh_tick };
          v
        end
        else None)
  in
  match victim with
  | Some (k, out) when spill && not (store_mem k) -> store_append k out
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* disk-tier configuration                                             *)
(* ------------------------------------------------------------------ *)

let cache_dir () = Option.map Store.dir (Atomic.get store)

let unset_cache_dir () =
  match Atomic.exchange store None with
  | Some st -> ( try Store.close st with _ -> ())
  | None -> ()

let set_cache_dir dirname =
  match Store.open_store dirname with
  | exception e ->
    (* same degrade contract as the journal: a portal that cannot spill
       must still serve *)
    Printf.eprintf
      "portal: cannot open cache dir %s (%s); continuing without it\n%!"
      dirname (Printexc.to_string e);
    J.emit ~severity:J.Warn ~component:"portal"
      ~attrs:[ ("dir", dirname); ("error", Printexc.to_string e) ]
      "cache.disk_error"
  | st ->
    (match Atomic.exchange store (Some st) with
    | Some old -> ( try Store.close old with _ -> ())
    | None -> ());
    (* warm start: promote the spilled results into the memory shards
       (up to capacity - anything over stays served by the disk probe) *)
    let loaded = ref 0 in
    Store.iter st (fun key output ->
        incr loaded;
        cache_add ~spill:false key output);
    T.set_gauge "portal.cache.disk_entries" (float_of_int (Store.length st));
    J.emit ~component:"portal"
      ~attrs:
        [
          ("dir", dirname);
          ("entries", string_of_int !loaded);
          ("bytes", string_of_int (Store.file_bytes st));
          ("lanes", string_of_int (Store.lanes st));
        ]
      "cache.warm_start"

(* ------------------------------------------------------------------ *)
(* instrumented submission                                             *)
(* ------------------------------------------------------------------ *)

let submit_result session tool input =
  let pre = "portal." ^ tool.tool_name in
  T.define_histogram (pre ^ ".latency");
  T.incr (pre ^ ".submits");
  let t0 = T.now () in
  let outcome =
    T.time (pre ^ ".latency") (fun () ->
        let lines = List.length (String.split_on_char '\n' input) in
        if lines > tool.max_input_lines then begin
          T.incr (pre ^ ".rejected");
          Rejected
            (Runaway
               (Printf.sprintf "input too large (%d lines; portal limit %d)"
                  lines tool.max_input_lines))
        end
        else begin
          let key = cache_key tool.tool_name input in
          (* cache-probe and execute are timed into the ambient trace
             context (no-ops outside a traced request), giving the
             request timeline its cache and kernel phases *)
          let probe_t0 = T.now () in
          let probed =
            Vc_util.Profile.with_frame "cache" (fun () ->
                match cache_find key with
                | Some out -> Some out
                | None -> (
                  (* memory miss: probe the disk tier, promoting a hit
                     back into its memory shard *)
                  match store_find key with
                  | Some out ->
                    Atomic.incr stat_disk_hits;
                    T.incr "portal.cache.disk_hits";
                    cache_add ~spill:false key out;
                    Some out
                  | None -> None))
          in
          Vc_util.Trace_ctx.record_current_phase "cache"
            (T.now () -. probe_t0);
          match probed with
          | Some out ->
            Atomic.incr stat_hits;
            T.incr (pre ^ ".cache_hits");
            T.incr "portal.cache.hits";
            Cache_hit out
          | None ->
            Atomic.incr stat_misses;
            T.incr "portal.cache.misses";
            T.incr (pre ^ ".executions");
            let exec_t0 = T.now () in
            let out =
              T.with_span
                ~attrs:
                  (("tool", tool.tool_name)
                  :: Vc_util.Trace_ctx.ambient_attrs ())
                "portal.execute"
                (fun () ->
                  (* sampler ticks landing here fold to
                     "worker;execute;<tool>" - the inside-kernel
                     attribution on the flamegraph *)
                  Vc_util.Profile.with_frame "execute" (fun () ->
                      Vc_util.Profile.with_frame tool.tool_name (fun () ->
                          tool.execute input)))
            in
            Vc_util.Trace_ctx.record_current_phase "execute"
              (T.now () -. exec_t0);
            cache_add key out;
            (* write-through: the result is durable the moment it is
               computed, not only when LRU pressure spills it - this is
               what a killed-and-restarted server warm-starts from *)
            store_append key out;
            Executed out
        end)
  in
  (* one journal event per submission; a runaway rejection is an Error
     and triggers the flight-recorder dump so the operator sees the
     trailing window of activity that led up to it *)
  let latency_s = Float.max 0.0 (T.now () -. t0) in
  let outcome_name, reject_reason =
    match outcome with
    | Executed _ -> ("executed", None)
    | Cache_hit _ -> ("cache_hit", None)
    | Rejected r -> ("rejected", Some (reason_message r))
  in
  J.emit
    ~severity:(match outcome with Rejected _ -> J.Error | _ -> J.Info)
    ~component:"portal"
    ~attrs:
      (Vc_util.Trace_ctx.ambient_attrs ()
      @ [
          ("tool", tool.tool_name);
          ("digest", Digest.to_hex (cache_key tool.tool_name input));
          ("outcome", outcome_name);
          ("latency_s", Printf.sprintf "%.6f" latency_s);
        ]
      @ match reject_reason with
        | Some r -> [ ("reason", r) ]
        | None -> [])
    "submission";
  T.set_gauge "portal.cache.size" (float_of_int (cache_size ()));
  (match reject_reason with
  | Some reason ->
    J.dump_flight_recorder
      ~reason:
        (Printf.sprintf "portal runaway rejection: %s: %s" tool.tool_name
           reason)
      ()
  | None -> ());
  let output = outcome_output outcome in
  Mutex.protect session.s_mu (fun () ->
      let log =
        match Hashtbl.find_opt session.s_history tool.tool_name with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add session.s_history tool.tool_name l;
          l
      in
      log := (input, output) :: !log);
  outcome

let history session tool =
  Mutex.protect session.s_mu (fun () ->
      match Hashtbl.find_opt session.s_history tool.tool_name with
      | Some l -> List.rev !l
      | None -> [])
