lib/route/render.ml: Array Buffer Grid List Printf Router String
