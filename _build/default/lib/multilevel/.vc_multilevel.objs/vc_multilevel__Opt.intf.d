lib/multilevel/opt.mli: Vc_network
