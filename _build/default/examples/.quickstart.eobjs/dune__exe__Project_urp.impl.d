examples/project_urp.ml: List String Vc_mooc
