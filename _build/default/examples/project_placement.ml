(* Software project 3: quadratic placement, with the quadratic-vs-annealing
   comparison the lectures promise and the extra-credit "bigger benchmarks"
   the paper mentions (Section 3 / Fig. 7 left). *)

let run_design profile seed =
  let net = Vc_place.Netgen.generate ~seed profile in
  Printf.printf "\n%s: %d cells, %d nets, %d pads\n" net.Vc_place.Pnet.name
    net.Vc_place.Pnet.num_cells
    (Array.length net.Vc_place.Pnet.nets)
    (Array.length net.Vc_place.Pnet.pads);
  let t0 = Sys.time () in
  let qp = Vc_place.Quadratic.place net in
  let legal = Vc_place.Legalize.to_grid net qp.Vc_place.Quadratic.placement in
  let t_quad = Sys.time () -. t0 in
  Printf.printf
    "  quadratic+legalize: HPWL %8.0f  (%d solves, %d CG iters, %.2fs)\n"
    (Vc_place.Pnet.hpwl net legal)
    qp.Vc_place.Quadratic.solves qp.Vc_place.Quadratic.iterations t_quad;
  let t0 = Sys.time () in
  let annealed, stats = Vc_place.Annealing.place net in
  let t_sa = Sys.time () -. t0 in
  Printf.printf "  annealing:          HPWL %8.0f  (%d stages, %.2fs)\n"
    (Vc_place.Pnet.hpwl net annealed)
    stats.Vc_place.Annealing.stages t_sa;
  legal

let () =
  (* grade the reference solution like a participant upload *)
  let p = Vc_mooc.Projects.project3 in
  let submission = p.Vc_mooc.Projects.p_reference () in
  print_string
    (Vc_mooc.Autograder.render
       (Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader submission));

  (* the homework-scale and project-scale designs *)
  ignore (run_design Vc_place.Netgen.tiny 7);
  let fract =
    match Vc_place.Netgen.by_name "fract" with Some p -> p | None -> assert false
  in
  ignore (run_design fract 11);

  (* extra credit: a bigger MCNC-profile benchmark, written out as SVG *)
  let prim1 =
    match Vc_place.Netgen.by_name "prim1" with Some p -> p | None -> assert false
  in
  let net = Vc_place.Netgen.generate ~seed:5 prim1 in
  let qp = Vc_place.Quadratic.place ~max_depth:6 net in
  let legal = Vc_place.Legalize.to_grid net qp.Vc_place.Quadratic.placement in
  Printf.printf "\nprim1 (extra credit): HPWL %.0f, overlaps %d\n"
    (Vc_place.Pnet.hpwl net legal)
    (Vc_place.Legalize.overlap_count net legal);
  let positions =
    Array.init net.Vc_place.Pnet.num_cells (fun i ->
        (legal.Vc_place.Pnet.xs.(i), legal.Vc_place.Pnet.ys.(i)))
  in
  let svg =
    Vc_route.Render.placement_svg ~width:net.Vc_place.Pnet.width
      ~height:net.Vc_place.Pnet.height positions
  in
  Out_channel.with_open_text "prim1_placement.svg" (fun oc ->
      Out_channel.output_string oc svg);
  print_endline "wrote prim1_placement.svg"
