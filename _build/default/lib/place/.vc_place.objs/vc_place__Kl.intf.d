lib/place/kl.mli: Pnet
