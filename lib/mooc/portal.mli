(** The Fig. 4 architecture: tool portals that consume ASCII text and
    produce ASCII text, with per-participant run history and a runaway
    guard. The five deployed tools mirror the paper's list - kbdd,
    espresso, SIS, miniSAT, and the custom Ax=b solver - each backed by
    this repository's own implementation.

    Submissions are instrumented through {!Vc_util.Telemetry}
    (per-tool submit / execution / rejection counters and latency
    timers) and served through a process-wide content-addressed result
    cache: every tool is a pure function of its input text, so a repeat
    of an identical upload - the dominant MOOC workload - returns the
    cached output in O(1) without re-executing the tool. See
    [docs/OBSERVABILITY.md], [docs/PORTAL.md] and [docs/SERVER.md].

    {b Domain safety}: everything here may be called concurrently from
    {!Vc_mooc.Server}'s worker domains. The result cache is sharded by
    digest into independently-locked shards (see {!set_cache_shards}),
    so concurrent submissions of different inputs rarely contend; each
    session's history has its own mutex; cache statistics live in
    process-wide atomics. Tools are pure functions of their input, so a
    duplicated cache-miss execution in two domains is wasted work, never
    wrong output. See [docs/CONCURRENCY.md] for the full model. *)

type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;  (** Runaway guard: larger uploads are rejected. *)
  execute : string -> string;
}

val kbdd : tool
(** BDD calculator scripts ({!Vc_bdd.Bdd_script}). *)

val espresso : tool
(** PLA in, minimized PLA out ({!Vc_two_level.Espresso}). *)

val sis : tool
(** Input is a BLIF model, then a line containing only [%script], then
    SIS commands ({!Vc_multilevel.Script}); output is the log and the
    optimized BLIF. *)

val minisat : tool
(** DIMACS in; "SATISFIABLE" plus a model line, or "UNSATISFIABLE". *)

val axb : tool
(** Linear systems ({!Vc_linalg.Axb}). *)

val all_tools : tool list

(** {1 Name resolution}

    One resolution path shared by every front end (the [bin/] drivers,
    [vcserve], the bench harness): case-insensitive, surrounding
    whitespace ignored, plus the colloquial aliases ["bdd"] -> [kbdd]
    and ["sat"] -> [minisat]. *)

val canonical_name : string -> string
(** Lowercase, trim and apply aliases; does not check existence. *)

val find_tool : string -> tool option
(** Resolve a user-typed name to a tool; [None] if unknown. *)

val resolve_tool : string -> (tool, string) result
(** Like {!find_tool} but an unknown name comes back as an actionable
    error message listing the available tools and, when the name is
    within edit distance 2 of a tool or alias, a ["did you mean ...?"]
    suggestion. *)

type session
(** One participant's portal state: private run history per tool. The
    history is mutex-protected; a session may be used from several
    server workers at once. *)

val create_session : unit -> session

(** {1 Structured outcomes} *)

type reason =
  | Runaway of string
      (** Input exceeded the tool's [max_input_lines] guard. *)
  | Overloaded of string
      (** The server's submission queue was full (admission control;
          produced by {!Vc_mooc.Server}, never by {!submit_result}). *)
  | Rate_limited of string
      (** The session exceeded its token-bucket budget (produced by
          {!Vc_mooc.Server}). *)
  | Deadline_exceeded of string
      (** The job waited in queue past its deadline (produced by
          {!Vc_mooc.Server}). *)

type outcome =
  | Executed of string  (** Tool ran; payload is its output. *)
  | Cache_hit of string
      (** Served from the content-addressed cache; byte-identical to
          what execution would have produced. *)
  | Rejected of reason

val reason_message : reason -> string
(** The human-readable message carried by any rejection. *)

val reason_label : reason -> string
(** Stable machine label: ["runaway"], ["overloaded"], ["rate_limited"]
    or ["deadline"] - the vocabulary shared by journal events, telemetry
    counters and the [vcserve] wire protocol. *)

val outcome_output : outcome -> string
(** Collapse an outcome to a display string: the output for
    [Executed] / [Cache_hit], ["error: " ^ message] for [Rejected]. *)

(** {1 Requests}

    The one submission envelope every layer shares. {!Vc_mooc.Server}
    takes it, {!Vc_mooc.Wire}'s protocol engine builds it from a parsed
    [TOOL] line, and [vcfront] forwards it to a backend - one record
    instead of parallel positional signatures, so adding a field is one
    change, not four. *)

type request = {
  req_session : string;  (** Session id the submission runs under. *)
  req_tool : tool;
  req_input : string;  (** The uploaded text. *)
  req_trace : string option;
      (** Client-supplied trace id (already validated), if any. *)
}

val request : ?trace:string -> session:string -> tool -> string -> request
(** [request ~session tool input] builds the envelope; [?trace] attaches
    a client trace id. *)

val submit_result : session -> tool -> string -> outcome
(** Run the tool on the uploaded text (never raises; kernel errors come
    back inside [Executed "error: ..."] text) and append to the tool's
    history.

    Instrumentation per call, under the tool's name [t]:
    [portal.t.submits] always increments; then exactly one of
    [portal.t.rejected] (runaway guard tripped), [portal.t.cache_hits]
    (identical submission served from the cache, byte-for-byte the same
    output, tool not re-executed) or [portal.t.executions] (tool ran,
    result cached). Wall-clock latency is recorded on the
    [portal.t.latency] histogram, and each real execution opens a
    ["portal.execute"] trace span.

    Every submission additionally emits one {!Vc_util.Journal} event
    (component ["portal"], name ["submission"]) carrying the tool name,
    the content digest, the outcome ([executed] / [cache_hit] /
    [rejected]), the latency, and - for rejections - the reason. A
    runaway rejection is emitted at [Error] severity and dumps the
    journal's flight recorder, so the trailing window of events that
    led up to it is preserved. *)

val history : session -> tool -> (string * string) list
(** (input, output) pairs, oldest first - the "older outputs available by
    scrolling" behaviour. Cache hits and rejections are logged like real
    runs (the rendered {!outcome_output} string is what is recorded). *)

(** {1 Result cache}

    Global across sessions; content-addressed by a digest of
    [tool name + input]. The digest picks one of N independently-locked
    shards, each a bounded LRU of its slice of the aggregate capacity -
    the per-shard capacities always sum exactly to {!cache_capacity},
    so the aggregate bound holds by construction. Recency is tracked
    per shard: eviction is exact LRU within a shard and approximates a
    global LRU across shards (with one shard the behaviour is exactly
    the classic global LRU). *)

val set_cache_capacity : int -> unit
(** Bound the aggregate number of cached results (default 512),
    redistributing the per-shard capacities and evicting
    least-recently-used entries in any shard over its new bound. [0]
    disables caching.
    @raise Invalid_argument on negatives. *)

val cache_capacity : unit -> int

val set_cache_shards : int -> unit
(** Rebuild the cache with the given shard count (default 16, or the
    [VC_CACHE_SHARDS] environment variable; [vcserve -cache-shards N]
    calls this at startup). Drops all cached results; the hit/miss/
    eviction statistics are preserved. Intended as a configuration
    action before traffic, not a mid-run tuning knob.
    @raise Invalid_argument under 1. *)

val cache_shards : unit -> int

val cache_shard_sizes : unit -> int list
(** Entries currently cached per shard, in shard order; sums to
    {!cache_size}. *)

val cache_size : unit -> int
(** Number of results currently cached (always [<= cache_capacity ()]). *)

val clear_cache : unit -> unit
(** Drop all cached results and zero the hit/miss/eviction statistics. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] since the last {!clear_cache}. Counted in
    process-wide atomics - not under any shard lock - so the aggregate
    numbers stay exact and consistent with {!cache_size} even across
    {!Vc_util.Telemetry.reset}; the [portal.cache.hits] /
    [portal.cache.misses] telemetry counters are kept as mirrors for the
    [/metrics] exposition. *)

val cache_evictions : unit -> int
(** Evictions since the last {!clear_cache} (mirrored on
    [portal.cache.evictions]). *)

(** {1 Disk tier}

    An optional {!Vc_util.Cache_store} under the memory shards
    ([vcserve -cache-dir DIR], or the [VC_CACHE_DIR] environment
    variable). When enabled: every executed result is written through
    to disk the moment it is computed, an entry evicted from a memory
    shard is spilled to disk if not already there, and a memory miss
    probes the disk tier (promoting a hit back into its shard) before
    re-executing the tool. Store I/O always happens outside the shard
    mutexes. A store that starts failing mid-run (disk full) is dropped
    with one warning and a [cache.disk_disabled] journal event - the
    portal degrades to memory-only rather than failing submissions. *)

val set_cache_dir : string -> unit
(** Open (or create) the spill directory and {e warm-start}: promote
    every result the store holds into the memory shards (up to
    capacity; the remainder stays served by the disk probe), emitting a
    [cache.warm_start] journal event with the loaded count. A store
    that cannot be opened degrades with one warning and a
    [cache.disk_error] event instead of raising. Replaces (and closes)
    any previously configured store. *)

val cache_dir : unit -> string option
(** The active spill directory, if the disk tier is enabled. *)

val unset_cache_dir : unit -> unit
(** Close and detach the disk tier (memory shards are untouched) - the
    test hook for simulating a restart. *)

val cache_disk_hits : unit -> int
(** Memory misses served from the disk tier since the last
    {!clear_cache} (mirrored on [portal.cache.disk_hits]). Disk hits
    also count in {!cache_stats}' hit total. *)
