module Expr = Vc_cube.Expr
let full_order e order =
  let missing = List.filter (fun v -> not (List.mem v order)) (Expr.vars e) in
  order @ missing

let build_size e order =
  let order = full_order e order in
  let m = Bdd.create () in
  List.iter (fun v -> ignore (Bdd.var m v)) order;
  let f = Bdd.of_expr m e in
  Bdd.size m f

let insert_at xs x i =
  let rec go j = function
    | rest when j = i -> x :: rest
    | [] -> [ x ]
    | y :: rest -> y :: go (j + 1) rest
  in
  go 0 xs

let sift e order =
  let order = ref (full_order e order) in
  let best_size = ref (build_size e !order) in
  let improved = ref true in
  while !improved do
    improved := false;
    let vars = !order in
    let try_var v =
      let without = List.filter (fun x -> x <> v) !order in
      let n = List.length without in
      let best_pos = ref None in
      for i = 0 to n do
        let candidate = insert_at without v i in
        let s = build_size e candidate in
        if s < !best_size then begin
          best_size := s;
          best_pos := Some candidate
        end
      done;
      match !best_pos with
      | Some candidate ->
        order := candidate;
        improved := true
      | None -> ()
    in
    List.iter try_var vars
  done;
  (!order, !best_size)

let random_restarts ~seed ~tries e order =
  let rng = Vc_util.Rng.create seed in
  let base = Array.of_list (full_order e order) in
  let best_order = ref (Array.to_list base) in
  let best_size = ref (build_size e !best_order) in
  for _ = 1 to tries do
    let candidate = Array.copy base in
    Vc_util.Rng.shuffle rng candidate;
    let candidate = Array.to_list candidate in
    let s = build_size e candidate in
    if s < !best_size then begin
      best_size := s;
      best_order := candidate
    end
  done;
  (!best_order, !best_size)

let interleaved_order n a b =
  List.concat_map
    (fun i -> [ Printf.sprintf "%s%d" a i; Printf.sprintf "%s%d" b i ])
    (List.init n (fun i -> i))

let blocked_order n a b =
  List.map (fun i -> Printf.sprintf "%s%d" a i) (List.init n (fun i -> i))
  @ List.map (fun i -> Printf.sprintf "%s%d" b i) (List.init n (fun i -> i))
