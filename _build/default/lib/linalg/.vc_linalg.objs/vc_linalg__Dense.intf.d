lib/linalg/dense.mli:
