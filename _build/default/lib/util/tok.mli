(** Line-oriented tokenizing shared by the text formats of the toolkit
    (PLA, BLIF, DIMACS, kbdd scripts, SIS scripts).

    All of those formats are whitespace-separated tokens on logical lines,
    with a line-comment character and (for BLIF/PLA) backslash line
    continuation; this module factors that out. *)

val split_words : string -> string list
(** Split on runs of blanks and tabs; never returns empty tokens. *)

val strip_comment : comment:char -> string -> string
(** [strip_comment ~comment line] drops everything from the first
    occurrence of [comment] onwards. *)

val logical_lines : ?comment:char -> ?continuation:bool -> string -> string list
(** [logical_lines text] splits [text] into lines, strips comments
    (default [#]), joins backslash-continued lines when [continuation]
    (default [true]), and drops blank lines. *)

val parse_int : context:string -> string -> int
(** [parse_int ~context s] is [int_of_string s];
    @raise Failure with a message naming [context] on malformed input. *)

val parse_float : context:string -> string -> float
(** Like {!parse_int} for floats (also accepts integer literals). *)
