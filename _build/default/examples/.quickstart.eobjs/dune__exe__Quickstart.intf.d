examples/quickstart.mli:
