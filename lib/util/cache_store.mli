(** The durable tier under the portal's content-addressed result cache:
    a keyed append-only spill store on disk, so a restarted server
    warm-starts with the results the previous process computed instead
    of an empty cache - the crash-recovery half of the MOOC operations
    story.

    A store is a directory of per-lane spill files ([lane-NN.spill]).
    Each {!append} writes one length-prefixed, checksummed binary
    record - [magic, version, key, payload, checksum] - to the lane its
    key hashes to and keeps an in-memory index of the latest record per
    key, so {!find} is one seek+read. Re-appending a key supersedes the
    earlier record; superseded ("dead") bytes accumulate until the lane
    is {e compacted} (automatic once dead bytes exceed both the live
    bytes and a threshold; {!compact} forces it), which rewrites the
    live records to a temp file and renames it into place.

    {b Corruption tolerance.} {!open_store} replays each lane file
    record by record; the first truncated or checksum-failing record
    ends the scan, the valid prefix is kept and the file is truncated
    back to it, so a torn write from a killed process costs at most the
    final record and never poisons later appends.

    {b Durability model.} Appends are unbuffered [write(2)] calls: the
    record is in the OS page cache the moment {!append} returns, so it
    survives the {e process} being killed (the kill-a-shard recovery
    test's crash model). It does not call [fsync] per record - a whole-
    machine power loss may lose the tail - which is the deliberate
    price of keeping appends off the submission latency path.

    {b Domain safety.} Each lane has its own mutex held only around its
    table and file operations; operations on different lanes proceed in
    parallel. Safe to call from any number of domains. *)

type t

val open_store : ?lanes:int -> ?compact_bytes:int -> string -> t
(** Open (creating the directory if needed) and replay the spill files
    under [dir]. [lanes] (default 8) is the spill-file fan-out - the
    value is only used when the directory is empty; an existing store
    reopens with the lane files it has. [compact_bytes] (default
    1 MiB) is the dead-byte threshold past which a lane auto-compacts.
    @raise Sys_error / Unix.Unix_error when the directory cannot be
    created or a lane file cannot be opened. *)

val dir : t -> string

val lanes : t -> int

val append : t -> key:string -> string -> unit
(** Durably record [key -> data], superseding any earlier record for
    [key]. May trigger an automatic compaction of the lane. Keys and
    payloads are arbitrary bytes (the portal uses raw 16-byte MD5
    digests). *)

val find : t -> string -> string option
(** The latest payload recorded for [key], re-verified against its
    checksum on every read; [None] when absent (or when the record on
    disk fails verification - a damaged record is treated as absent,
    never returned corrupt). *)

val mem : t -> string -> bool
(** Index-only membership test - no disk read. *)

val length : t -> int
(** Number of distinct live keys. *)

val iter : t -> (string -> string -> unit) -> unit
(** [iter t f] calls [f key payload] for every live entry (unspecified
    order) - the warm-start load loop. Entries failing verification are
    skipped. *)

val live_bytes : t -> int
(** Bytes occupied by live records across all lanes. *)

val file_bytes : t -> int
(** Total spill-file bytes (live + dead). *)

val compact : t -> int
(** Force-compact every lane; returns the bytes reclaimed. Automatic
    compaction applies the same rewrite per lane when its dead bytes
    exceed both its live bytes and the [compact_bytes] threshold. *)

val close : t -> unit
(** Close the lane files. Further operations raise. *)
