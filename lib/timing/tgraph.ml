type edge = { e_src : string; e_dst : string; e_delay : float }

type t = {
  mutable edges : edge list;
  node_set : (string, unit) Hashtbl.t;
  input_arrivals : (string, float) Hashtbl.t;
}

let create () =
  {
    edges = [];
    node_set = Hashtbl.create 64;
    input_arrivals = Hashtbl.create 16;
  }

let add_edge t ~src ~dst ~delay =
  Hashtbl.replace t.node_set src ();
  Hashtbl.replace t.node_set dst ();
  t.edges <- { e_src = src; e_dst = dst; e_delay = delay } :: t.edges

let set_input_arrival t node v =
  Hashtbl.replace t.node_set node ();
  Hashtbl.replace t.input_arrivals node v

let nodes t = Hashtbl.fold (fun n () acc -> n :: acc) t.node_set []

type report = {
  arrival : (string * float) list;
  required : (string * float) list;
  slack : (string * float) list;
  critical_path : string list;
  worst_arrival : float;
  worst_slack : float;
}

let topo_order t =
  let out_edges = Hashtbl.create 64 in
  let in_degree = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) (nodes t);
  List.iter
    (fun e ->
      Hashtbl.replace out_edges e.e_src
        (e :: Option.value ~default:[] (Hashtbl.find_opt out_edges e.e_src));
      Hashtbl.replace in_degree e.e_dst
        (1 + Option.value ~default:0 (Hashtbl.find_opt in_degree e.e_dst)))
    t.edges;
  let queue = Queue.create () in
  Hashtbl.iter (fun n d -> if d = 0 then Queue.add n queue) in_degree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr visited;
    order := n :: !order;
    List.iter
      (fun e ->
        let d = Hashtbl.find in_degree e.e_dst - 1 in
        Hashtbl.replace in_degree e.e_dst d;
        if d = 0 then Queue.add e.e_dst queue)
      (Option.value ~default:[] (Hashtbl.find_opt out_edges n))
  done;
  if !visited <> Hashtbl.length t.node_set then
    failwith "Tgraph: timing graph has a cycle";
  List.rev !order

let analyze ?required_time t =
  let order = topo_order t in
  let in_edges = Hashtbl.create 64 and out_edges = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace in_edges e.e_dst
        (e :: Option.value ~default:[] (Hashtbl.find_opt in_edges e.e_dst));
      Hashtbl.replace out_edges e.e_src
        (e :: Option.value ~default:[] (Hashtbl.find_opt out_edges e.e_src)))
    t.edges;
  (* forward: arrival times *)
  let arrival = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let base =
        Option.value ~default:0.0 (Hashtbl.find_opt t.input_arrivals n)
      in
      let a =
        List.fold_left
          (fun acc e -> max acc (Hashtbl.find arrival e.e_src +. e.e_delay))
          base
          (Option.value ~default:[] (Hashtbl.find_opt in_edges n))
      in
      Hashtbl.replace arrival n a)
    order;
  let sinks =
    List.filter (fun n -> Hashtbl.find_opt out_edges n = None) order
  in
  let worst_arrival =
    List.fold_left (fun acc n -> max acc (Hashtbl.find arrival n)) 0.0 sinks
  in
  let rt = Option.value ~default:worst_arrival required_time in
  (* backward: required times *)
  let required = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let r =
        match Hashtbl.find_opt out_edges n with
        | None | Some [] -> rt
        | Some es ->
          List.fold_left
            (fun acc e -> min acc (Hashtbl.find required e.e_dst -. e.e_delay))
            infinity es
      in
      Hashtbl.replace required n r)
    (List.rev order);
  let slack_of n = Hashtbl.find required n -. Hashtbl.find arrival n in
  (* critical path: walk back from the worst sink along max-arrival preds *)
  let worst_sink =
    List.fold_left
      (fun acc n ->
        match acc with
        | Some m when Hashtbl.find arrival m >= Hashtbl.find arrival n -> acc
        | Some _ | None -> Some n)
      None sinks
  in
  let critical_path =
    match worst_sink with
    | None -> []
    | Some sink ->
      let rec walk n acc =
        match Hashtbl.find_opt in_edges n with
        | None | Some [] -> n :: acc
        | Some es ->
          let best =
            List.fold_left
              (fun acc_e e ->
                match acc_e with
                | Some b
                  when Hashtbl.find arrival b.e_src +. b.e_delay
                       >= Hashtbl.find arrival e.e_src +. e.e_delay -> acc_e
                | Some _ | None -> Some e)
              None es
          in
          begin
            match best with
            | Some e -> walk e.e_src (n :: acc)
            | None -> n :: acc
          end
      in
      walk sink []
  in
  let pairs tbl = List.map (fun n -> (n, Hashtbl.find tbl n)) order in
  let slacks = List.map (fun n -> (n, slack_of n)) order in
  let worst_slack =
    List.fold_left (fun acc (_, s) -> min acc s) infinity slacks
  in
  Vc_util.Journal.emit ~component:"timing"
    ~attrs:
      [
        ("nodes", string_of_int (List.length order));
        ("worst_arrival", Printf.sprintf "%g" worst_arrival);
        ("worst_slack", Printf.sprintf "%g" worst_slack);
        ("critical_path_nodes", string_of_int (List.length critical_path));
      ]
    "sta.done";
  {
    arrival = pairs arrival;
    required = pairs required;
    slack = slacks;
    critical_path;
    worst_arrival;
    worst_slack;
  }

let of_mapping (m : Vc_techmap.Map.mapping) =
  let t = create () in
  let subject = m.Vc_techmap.Map.subject in
  let name_of id =
    match subject.Vc_techmap.Subject.nodes.(id) with
    | Vc_techmap.Subject.S_input s -> s
    | Vc_techmap.Subject.S_nand _ | Vc_techmap.Subject.S_inv _ ->
      "n" ^ string_of_int id
  in
  List.iter
    (fun (g : Vc_techmap.Map.gate) ->
      List.iter
        (fun input ->
          add_edge t ~src:(name_of input)
            ~dst:(name_of g.Vc_techmap.Map.g_output)
            ~delay:g.Vc_techmap.Map.g_cell.Vc_techmap.Cell_lib.delay)
        g.Vc_techmap.Map.g_inputs)
    m.Vc_techmap.Map.gates;
  List.iter
    (fun (name, _) -> Hashtbl.replace t.node_set name ())
    subject.Vc_techmap.Subject.inputs;
  t

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "design delay %.3f, worst slack %.3f\n" r.worst_arrival
       r.worst_slack);
  Buffer.add_string buf
    ("critical path: " ^ String.concat " -> " r.critical_path ^ "\n");
  List.iter
    (fun (n, a) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s arr %7.3f  req %7.3f  slack %7.3f\n" n a
           (List.assoc n r.required) (List.assoc n r.slack)))
    r.arrival;
  Buffer.contents buf
