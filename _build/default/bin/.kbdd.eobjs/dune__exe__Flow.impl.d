bin/flow.ml: Array In_channel Out_channel Printf Sys Vc_mooc Vc_network Vc_route Vc_techmap
