test/test_timing.ml: Alcotest Helpers List String Vc_cube Vc_network Vc_route Vc_techmap Vc_timing
