lib/route/channel.mli:
