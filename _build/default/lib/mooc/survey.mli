(** The end-of-course survey pipeline (Fig. 11): synthesize free-text
    responses about topics participants wanted more of, then mine word
    frequencies - the word-cloud data. The response generator draws topic
    phrases with weights matching the themes visible in the paper's cloud
    (verilog, sequential logic, test, physical design, low power, ...). *)

val topic_phrases : (string * float) list
(** Phrase templates and their sampling weights. *)

val generate_responses : ?seed:int -> int -> string list

val stopwords : string list

val word_frequencies : string list -> (string * int) list
(** Lowercased, punctuation-stripped, stopword-filtered, descending. *)

val render_fig11 : ?top:int -> (string * int) list -> string
(** Word-cloud stand-in: top words scaled by count. *)
