type lit = int

type clause = lit array

type t = { num_vars : int; clauses : clause list }

let lit_var l = abs l

let lit_sign l = l > 0

let make num_vars clause_lists =
  let check l =
    if l = 0 || abs l > num_vars then
      invalid_arg (Printf.sprintf "Cnf.make: bad literal %d" l)
  in
  List.iter (List.iter check) clause_lists;
  { num_vars; clauses = List.map Array.of_list clause_lists }

let num_clauses f = List.length f.clauses

let parse_dimacs text =
  (* DIMACS comments are whole lines starting with 'c' *)
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l ->
           l <> "" && l.[0] <> 'c' && l.[0] <> '%' && l <> "0")
  in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    let l = Vc_util.Tok.parse_int ~context:"dimacs literal" tok in
    if l = 0 then begin
      clauses := List.rev !current :: !clauses;
      current := []
    end
    else current := l :: !current
  in
  let handle_line line =
    match Vc_util.Tok.split_words line with
    | "p" :: "cnf" :: v :: c :: _ ->
      let v = Vc_util.Tok.parse_int ~context:"dimacs var count" v in
      let c = Vc_util.Tok.parse_int ~context:"dimacs clause count" c in
      header := Some (v, c)
    | "p" :: _ -> failwith "dimacs: expected 'p cnf <vars> <clauses>'"
    | toks -> List.iter handle_token toks
  in
  List.iter handle_line lines;
  if !current <> [] then failwith "dimacs: unterminated clause (missing 0)";
  match !header with
  | None -> failwith "dimacs: missing 'p cnf' header"
  | Some (v, _) -> make v (List.rev !clauses)

let to_dimacs f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.num_vars (num_clauses f));
  let emit clause =
    Array.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
    Buffer.add_string buf "0\n"
  in
  List.iter emit f.clauses;
  Buffer.contents buf

let eval f a =
  let lit_true l = if l > 0 then a.(l) else not a.(-l) in
  List.for_all (fun clause -> Array.exists lit_true clause) f.clauses

let random_ksat ~seed ~num_vars ~num_clauses ~k =
  if k > num_vars then invalid_arg "Cnf.random_ksat: k > num_vars";
  let rng = Vc_util.Rng.create seed in
  let clause () =
    (* draw k distinct variables, random polarity each *)
    let chosen = Hashtbl.create k in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else begin
        let v = 1 + Vc_util.Rng.int rng num_vars in
        if Hashtbl.mem chosen v then draw acc remaining
        else begin
          Hashtbl.add chosen v ();
          let l = if Vc_util.Rng.bool rng then v else -v in
          draw (l :: acc) (remaining - 1)
        end
      end
    in
    draw [] k
  in
  make num_vars (List.init num_clauses (fun _ -> clause ()))
