(** Sparse symmetric-positive-definite systems in compressed-sparse-row
    form, with the iterative solvers the quadratic placer relies on. *)

type t
(** An immutable CSR matrix. *)

type builder
(** Accumulates (row, col, value) triplets; duplicates are summed. *)

val builder : int -> builder
(** [builder n] for an [n] x [n] matrix. *)

val add : builder -> int -> int -> float -> unit

val finalize : builder -> t

val of_triplets : int -> (int * int * float) list -> t

val dim : t -> int

val nnz : t -> int

val mat_vec : t -> float array -> float array

val get : t -> int -> int -> float
(** Zero for absent entries; O(row nnz). *)

val to_dense : t -> Dense.t

val conjugate_gradient :
  ?tol:float -> ?max_iters:int -> t -> float array -> float array * int
(** [conjugate_gradient a b] solves [a x = b] for SPD [a]; returns the
    solution and the iteration count. [tol] (default 1e-10) is the relative
    residual target; [max_iters] defaults to [4 * dim]. *)

val gauss_seidel :
  ?tol:float -> ?max_iters:int -> t -> float array -> float array * int
(** Gauss-Seidel sweep iteration - the slower baseline for the solver
    ablation. Requires non-zero diagonal. *)
