(* vcserve: the multicore portal service behind a line protocol.

   Usage: vcserve [--stats] [--trace FILE] [--journal FILE]
                  [--metrics-port N] [-workers N] [-queue N]
                  [-deadline S] [-rate R] [-burst B] [-cache-shards N]
                  [script-file]

   Requests are read from the script file (stdin when absent):

     TOOL <name>        submit the following lines to a portal tool
     <input lines>      terminated by a line containing only "."
     SESSION <id>       switch the client session (default "default")
     LIST               list the available tools
     QUIT               exit (EOF works too)

   Each response is one status line, an optional body, and a "." line:

     OK executed        the tool ran; body is its output
     OK cache_hit       served from the result cache; body is the output
     ERR <label> <msg>  rejected (runaway / overloaded / rate_limited /
                        deadline) or unknown tool; no body

   Lines beginning with "." are dot-stuffed ("." -> "..") in both
   directions, SMTP-style, so any payload round-trips. *)

module Portal = Vc_mooc.Portal
module Server = Vc_mooc.Server

let usage () =
  prerr_endline
    "usage: vcserve [--stats] [--trace FILE] [--journal FILE] \
     [--metrics-port N]\n\
    \               [-workers N] [-queue N] [-deadline S] [-rate R] \
     [-burst B]\n\
    \               [-cache-shards N] [script-file]";
  exit 2

let parse_args argv =
  let config = ref Server.default_config in
  let file = ref None in
  let rate = ref None in
  let burst = ref 5.0 in
  let int_of s = match int_of_string_opt s with Some n -> n | None -> usage () in
  let float_of s =
    match float_of_string_opt s with Some f -> f | None -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "-workers" :: n :: rest ->
      config := { !config with Server.workers = int_of n };
      go rest
    | "-queue" :: n :: rest ->
      config := { !config with Server.queue_capacity = int_of n };
      go rest
    | "-deadline" :: s :: rest ->
      config := { !config with Server.deadline_s = float_of s };
      go rest
    | "-rate" :: r :: rest ->
      rate := Some (float_of r);
      go rest
    | "-burst" :: b :: rest ->
      burst := float_of b;
      go rest
    | "-cache-shards" :: n :: rest ->
      (* result-cache shard count; VC_CACHE_SHARDS sets the default *)
      let n = int_of n in
      if n < 1 then usage ();
      Portal.set_cache_shards n;
      go rest
    | [ path ] when !file = None && String.length path > 0 && path.[0] <> '-'
      ->
      file := Some path
    | _ -> usage ()
  in
  go (List.tl (Array.to_list argv));
  (match !rate with
  | Some r -> config := { !config with Server.rate_limit = Some (r, !burst) }
  | None -> ());
  (!config, !file)

let unstuff line =
  if String.length line >= 2 && line.[0] = '.' && line.[1] = '.' then
    String.sub line 1 (String.length line - 1)
  else line

let stuff line =
  if String.length line > 0 && line.[0] = '.' then "." ^ line else line

let read_body ic =
  let rec go acc =
    match In_channel.input_line ic with
    | None | Some "." -> List.rev acc
    | Some line -> go (unstuff line :: acc)
  in
  String.concat "\n" (go [])

let respond status body =
  print_endline status;
  if body <> "" then
    List.iter
      (fun l -> print_endline (stuff l))
      (String.split_on_char '\n' body);
  print_endline ".";
  flush stdout

let respond_outcome = function
  | Portal.Executed out -> respond "OK executed" out
  | Portal.Cache_hit out -> respond "OK cache_hit" out
  | Portal.Rejected r ->
    respond
      (Printf.sprintf "ERR %s %s" (Portal.reason_label r)
         (Portal.reason_message r))
      ""

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let config, file = parse_args argv in
  let ic =
    match file with
    | None -> stdin
    | Some path -> (
      try In_channel.open_text path
      with Sys_error msg ->
        prerr_endline ("vcserve: " ^ msg);
        exit 2)
  in
  let server = Server.start ~config () in
  Printf.eprintf "vcserve: %d worker(s), queue capacity %d\n%!"
    config.Server.workers config.Server.queue_capacity;
  let rec loop session_id =
    match In_channel.input_line ic with
    | None -> ()
    | Some raw -> (
      let line = String.trim raw in
      match String.split_on_char ' ' line with
      | [ "" ] -> loop session_id
      | [ "QUIT" ] -> ()
      | [ "LIST" ] ->
        respond "OK tools"
          (String.concat "\n"
             (List.map
                (fun t ->
                  t.Portal.tool_name ^ " - " ^ t.Portal.description)
                Portal.all_tools));
        loop session_id
      | [ "SESSION"; id ] ->
        respond ("OK session " ^ id) "";
        loop id
      | [ "TOOL"; name ] -> (
        let input = read_body ic in
        (match Portal.resolve_tool name with
        | Error msg -> respond ("ERR unknown " ^ msg) ""
        | Ok tool -> respond_outcome (Server.submit server ~session_id tool input));
        loop session_id)
      | _ ->
        respond "ERR protocol expected TOOL <name>, SESSION <id>, LIST or QUIT"
          "";
        loop session_id)
  in
  loop "default";
  Server.stop server
