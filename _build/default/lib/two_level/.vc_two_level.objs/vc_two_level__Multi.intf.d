lib/two_level/multi.mli: Pla Vc_cube
