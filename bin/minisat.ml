(* minisat: CDCL SAT solving of a DIMACS file.
   Usage: minisat [-dpll] [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] [cnf-file]
   Exit code 10 = SAT, 20 = UNSAT. *)

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let use_dpll = ref false and path = ref None in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "-dpll" -> use_dpll := true
        | _ -> path := Some arg)
    argv;
  let text =
    match !path with
    | None -> In_channel.input_all stdin
    | Some p -> In_channel.with_open_text p In_channel.input_all
  in
  match Vc_sat.Cnf.parse_dimacs text with
  | exception Failure msg ->
    prerr_endline ("minisat: " ^ msg);
    exit 2
  | cnf ->
    let result =
      Vc_util.Telemetry.timed_span "minisat" (fun () ->
          if !use_dpll then fst (Vc_sat.Dpll.solve cnf)
          else fst (Vc_sat.Solver.solve cnf))
    in
    begin
      match result with
      | Vc_sat.Solver.Sat model ->
        print_endline "SATISFIABLE";
        let lits =
          List.init cnf.Vc_sat.Cnf.num_vars (fun i ->
              let v = i + 1 in
              string_of_int (if model.(v) then v else -v))
        in
        print_endline ("v " ^ String.concat " " lits ^ " 0");
        exit 10
      | Vc_sat.Solver.Unsat ->
        print_endline "UNSATISFIABLE";
        exit 20
      | Vc_sat.Solver.Unknown ->
        print_endline "UNKNOWN";
        exit 0
    end
