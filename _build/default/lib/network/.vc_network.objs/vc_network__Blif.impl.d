lib/network/blif.ml: Buffer List Network String Vc_cube Vc_util
