(** The portal service's wire layer: the [vcserve] line protocol as a
    reusable engine, a TCP listener that serves it to remote clients,
    and the matching client - the transport [vcload] replays traces
    over.

    {b Protocol.} Requests are lines:

    {v
    TOOL <name> [<session>] [TRACE <id>]
                              submit the following lines to a tool
    <input lines>             terminated by a line containing only "."
    SESSION <id>              switch the connection's sticky session
    LIST                      list the available tools
    HELLO <version>           negotiate the protocol version (v2+)
    PING                      liveness probe (proto >= 2 only)
    SHUTDOWN                  stop the whole server (drain, then exit)
    QUIT                      close this connection (EOF works too)
    v}

    Each response is one status line, an optional body, and a ["."]
    line: [OK executed], [OK cache_hit], or [ERR <label> <msg>]. Lines
    beginning with ["."] are dot-stuffed (["."] -> [".."]) in both
    directions, SMTP-style, so any payload round-trips. The optional
    [<session>] operand on [TOOL] submits on behalf of that session
    without an extra [SESSION] round trip - what a load generator
    multiplexing many simulated participants over one connection needs.

    {b Request tracing.} The optional [TRACE <id>] operand (a
    {!Vc_util.Trace_ctx.is_valid_id} hex token; [TRACE] is therefore a
    reserved session name) tags the submission with a client-minted
    trace id. The status line then ends in [trace=<id>] - e.g.
    [OK executed trace=1f00c0ffee1f00c0] - and every server-side journal
    event for the request carries a [trace_id] attr, which is what
    [vcstat request] joins client and server journals on. Requests
    without [TRACE] behave exactly as before (the server mints an
    internal id for its own journal, but the wire format is
    unchanged).

    {b Versioning.} A connection starts at protocol version 1 - the
    exact dialect every pre-[HELLO] client spoke, pinned byte-for-byte
    by the [vcserve] golden transcripts. A client may send
    [HELLO <version>] at any time; the server answers
    [OK proto <negotiated>] where [negotiated = min requested
    {!max_protocol_version}] and the connection switches to that
    version. Version 2 adds the [PING] -> [OK pong] liveness probe
    (what [vcfront]'s health checker uses); at version 1, [PING] is an
    [ERR protocol] like any other unknown verb, exactly as before. A
    client that never sends [HELLO] cannot observe any difference.

    {b Concurrency.} The TCP listener accepts on the calling domain and
    spawns one domain per connection; all submissions funnel into the
    shared {!Server.t}, whose worker pool and admission control do the
    real scheduling. {!shutdown} is async-signal-safe: it only flips an
    atomic, closes the listening socket and half-closes the live
    connections (no locks), so a SIGINT handler can call it directly;
    the accept loop then returns and the caller runs the normal drain
    path. *)

(** {1 Dot-stuffing} *)

val stuff : string -> string
val unstuff : string -> string

val read_body : In_channel.t -> string
(** Read dot-stuffed lines up to the terminating ["."] (or EOF) and
    return the unstuffed payload. *)

(** {1 The protocol engine} *)

type submit_fn = Portal.request -> Portal.outcome
(** The one submission hook every transport shares: the engine parses a
    [TOOL] line and its body into a {!Portal.request} ([req_trace] is
    the validated [TRACE] operand, if any) and hands it over -
    [vcserve] plugs in {!Server.submit}, [vcfront] a forwarding
    closure. *)

val max_protocol_version : int
(** The newest protocol version this engine speaks (currently 2);
    [HELLO] negotiation never settles above it. *)

val protocol_help : string
(** The [ERR protocol ...] message listing the verbs. *)

val trace_of_status : string -> string option
(** The trailing [trace=<id>] operand of a response status line, if
    present - the client-side parse of the server's echo. *)

val session_loop :
  ?session_id:string ->
  input:In_channel.t ->
  output:Out_channel.t ->
  submit:submit_fn ->
  unit ->
  [ `Eof | `Quit | `Shutdown ]
(** Run one client session over the given channels until EOF, [QUIT] or
    [SHUTDOWN], dispatching each [TOOL] upload through [submit]
    (initial sticky session ["default"]). Both [vcserve]'s stdin/script
    mode and every TCP connection run exactly this loop, so the two
    transports cannot drift. *)

(** {1 TCP server} *)

type listener

val listen : ?addr:string -> port:int -> unit -> listener
(** Bind and listen on [addr] (default ["127.0.0.1"]). [port = 0] picks
    an ephemeral port - read it back with {!port}. *)

val port : listener -> int
val addr : listener -> string

val serve : listener -> submit:submit_fn -> unit
(** Accept connections until {!shutdown} (or a [SHUTDOWN] verb from any
    client) closes the listener, spawning one handler domain per
    connection. Returns once the accept loop has exited; live handler
    domains may still be draining - see {!drain_connections}. *)

val shutdown : listener -> unit
(** Stop accepting and half-close every live connection so handler
    domains observe EOF. Async-signal-safe and idempotent. *)

val drain_connections : ?timeout_s:float -> listener -> bool
(** Wait (default 5 s) for the handler domains to finish; [true] when
    all connections closed in time. *)

val active_connections : listener -> int

(** {1 Client} *)

module Client : sig
  type t

  val connect : ?host:string -> port:int -> unit -> t

  val submit :
    t -> ?session:string -> ?trace:string -> tool:string -> string ->
    string * string
  (** [submit c ~tool input] sends one upload and reads the reply:
      [(status line, body)], e.g. [("OK cache_hit", output)]. With
      [?session] the per-request session operand is used, leaving the
      connection's sticky session alone; with [?trace] the [TRACE]
      operand is sent and the status line echoes [trace=<id>] (see
      {!trace_of_status}). *)

  val hello : t -> int -> int
  (** [hello c v] negotiates the protocol version: sends [HELLO v] and
      returns the server's negotiated version
      ([min v] {!max_protocol_version}).
      @raise Failure if the server rejects the handshake. *)

  val ping : t -> bool
  (** Send [PING] (requires a prior [hello c 2]) and return whether the
      server answered [OK pong] - the health probe [vcfront] runs
      against its backends. *)

  val list_tools : t -> string
  (** The [LIST] response body. *)

  val shutdown_server : t -> unit
  (** Send [SHUTDOWN] and read the acknowledgement. *)

  val close : t -> unit
  (** Send [QUIT] (best effort) and close the socket. *)
end
