examples/project_urp.mli:
