lib/place/legalize.ml: Array Hashtbl List Pnet
