type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

type event = {
  ev_seq : int;
  ev_ts : float;
  ev_severity : severity;
  ev_component : string;
  ev_name : string;
  ev_attrs : (string * string) list;
}

(* Domain safety: the ring, the sequence counter and the sink registry
   share one mutex. Sinks run inside the critical section - that is what
   serializes concurrent writers onto a single JSONL channel - so a sink
   must never call back into [emit] (none does; they are plain
   formatters). The mutex is innermost everywhere: callers (portal,
   server) may hold their own locks, this module never calls theirs. *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* ------------------------------------------------------------------ *)
(* flight-recorder ring                                                *)
(* ------------------------------------------------------------------ *)

let ring : event Queue.t = Queue.create ()
let capacity = ref 256
let seq = ref 0

let ring_capacity () = locked (fun () -> !capacity)

let trim () =
  while Queue.length ring > !capacity do
    ignore (Queue.pop ring)
  done

let set_ring_capacity n =
  if n < 0 then invalid_arg "Journal.set_ring_capacity: negative capacity";
  locked (fun () ->
      capacity := n;
      trim ())

let events () = locked (fun () -> List.of_seq (Queue.to_seq ring))
let event_count () = locked (fun () -> !seq)

let clear () =
  locked (fun () ->
      Queue.clear ring;
      seq := 0)

(* ------------------------------------------------------------------ *)
(* sinks                                                               *)
(* ------------------------------------------------------------------ *)

let sinks : (string * (event -> unit)) list ref = ref []

let add_sink name f =
  locked (fun () -> sinks := (name, f) :: List.remove_assoc name !sinks)

let remove_sink name = locked (fun () -> sinks := List.remove_assoc name !sinks)

let emit ?(severity = Info) ?(attrs = []) ~component name =
  let failed =
    locked (fun () ->
        incr seq;
        let e =
          {
            ev_seq = !seq;
            ev_ts = Clock.now ();
            ev_severity = severity;
            ev_component = component;
            ev_name = name;
            ev_attrs = attrs;
          }
        in
        if !capacity > 0 then begin
          Queue.push e ring;
          trim ()
        end;
        let failures = ref [] in
        List.iter
          (fun (name, f) ->
            match f e with
            | () -> ()
            | exception exn -> failures := (name, exn) :: !failures)
          !sinks;
        (* drop raising sinks inline - remove_sink would self-deadlock *)
        List.iter
          (fun (name, _) -> sinks := List.remove_assoc name !sinks)
          !failures;
        !failures)
  in
  List.iter
    (fun (name, exn) ->
      Printf.eprintf "journal: sink %s failed (%s); removed\n%!" name
        (Printexc.to_string exn))
    failed

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let event_to_json e =
  Json.obj
    [
      ("seq", Json.int e.ev_seq);
      ("ts", Json.num e.ev_ts);
      ("severity", Json.str (severity_to_string e.ev_severity));
      ("component", Json.str e.ev_component);
      ("event", Json.str e.ev_name);
      ("attrs", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) e.ev_attrs));
    ]

let to_jsonl () =
  String.concat ""
    (List.map (fun e -> event_to_json e ^ "\n") (events ()))

let open_jsonl file =
  (* A journal that cannot be written must never take the tool down:
     warn once and run without the sink (write failures mid-run are
     handled the same way by [emit], which detaches a raising sink). *)
  match Out_channel.open_text file with
  | exception Sys_error msg ->
    Printf.eprintf "journal: cannot open %s (%s); continuing without it\n%!"
      file msg
  | oc ->
    at_exit (fun () -> try Out_channel.close oc with Sys_error _ -> ());
    add_sink ("jsonl:" ^ file) (fun e ->
        Out_channel.output_string oc (event_to_json e);
        Out_channel.output_char oc '\n';
        Out_channel.flush oc)

(* ------------------------------------------------------------------ *)
(* flight recorder dumps                                               *)
(* ------------------------------------------------------------------ *)

let dump_printer = ref prerr_string
let set_dump_printer f = dump_printer := f

let dump_flight_recorder ?(limit = 32) ~reason () =
  let all = events () in
  let total = List.length all in
  let window =
    if total <= limit then all
    else
      (* keep the trailing [limit] events *)
      List.filteri (fun i _ -> i >= total - limit) all
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "== journal flight recorder: %s ==\n" reason);
  Buffer.add_string b
    (Printf.sprintf "last %d of %d event(s):\n" (List.length window)
       (event_count ()));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  [%5d] %.6f %-5s %-10s %s%s\n" e.ev_seq e.ev_ts
           (severity_to_string e.ev_severity)
           e.ev_component e.ev_name
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) e.ev_attrs))))
    window;
  !dump_printer (Buffer.contents b)

let crash_handler_installed = ref false

let install_crash_handler () =
  if not !crash_handler_installed then begin
    crash_handler_installed := true;
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        (if event_count () > 0 then
           try dump_flight_recorder ~reason:"uncaught exception" ()
           with _ -> ());
        Printf.eprintf "Fatal error: exception %s\n" (Printexc.to_string exn);
        Printexc.print_raw_backtrace stderr bt;
        flush stderr)
  end
