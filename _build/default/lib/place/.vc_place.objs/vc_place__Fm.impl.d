lib/place/fm.ml: Array List Pnet Vc_util
