lib/mooc/autograder.ml: Buffer Hashtbl List Printf String Vc_place Vc_route Vc_util
