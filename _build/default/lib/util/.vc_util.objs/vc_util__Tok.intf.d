lib/util/tok.mli:
