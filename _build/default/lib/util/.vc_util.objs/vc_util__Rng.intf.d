lib/util/rng.mli:
