lib/cube/expr.ml: Array Hashtbl List Printf String
