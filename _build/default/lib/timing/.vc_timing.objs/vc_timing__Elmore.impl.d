lib/timing/elmore.ml: Hashtbl List Printf Vc_route
