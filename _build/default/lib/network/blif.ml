module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube
module Urp = Vc_cube.Urp

type pending = {
  p_name : string;
  p_fanins : string list;
  mutable p_rows : (string * char) list; (* input plane, output char *)
}

let parse text =
  let lines = Vc_util.Tok.logical_lines ~comment:'#' text in
  let model = ref "blif" in
  let inputs = ref [] and outputs = ref [] in
  let pendings = ref [] in
  let current = ref None in
  let flush_current () =
    match !current with
    | None -> ()
    | Some p ->
      pendings := p :: !pendings;
      current := None
  in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | ".model" :: m :: _ ->
      flush_current ();
      model := m
    | ".inputs" :: names ->
      flush_current ();
      inputs := !inputs @ names
    | ".outputs" :: names ->
      flush_current ();
      outputs := !outputs @ names
    | ".names" :: signals -> begin
      flush_current ();
      match List.rev signals with
      | [] -> failwith "blif: .names without signals"
      | out :: rev_fanins ->
        current :=
          Some { p_name = out; p_fanins = List.rev rev_fanins; p_rows = [] }
    end
    | [ ".end" ] -> flush_current ()
    | ".latch" :: _ ->
      failwith "blif: sequential elements (.latch) are not supported"
    | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
      flush_current () (* ignore other directives *)
    | [ plane; out ] -> begin
      match !current with
      | Some p when String.length out = 1 ->
        p.p_rows <- (plane, out.[0]) :: p.p_rows
      | Some _ -> failwith ("blif: malformed row: " ^ line)
      | None -> failwith ("blif: row outside .names: " ^ line)
    end
    | [ single ] -> begin
      (* constant node: a bare 0/1 row with no inputs *)
      match !current with
      | Some p when p.p_fanins = [] && (single = "0" || single = "1") ->
        p.p_rows <- ("", single.[0]) :: p.p_rows
      | Some _ | None -> failwith ("blif: malformed line: " ^ line)
    end
    | _ -> failwith ("blif: malformed line: " ^ line)
  in
  List.iter handle lines;
  flush_current ();
  let t = Network.create ~name:!model ~inputs:!inputs ~outputs:!outputs () in
  let build p =
    let n = List.length p.p_fanins in
    let rows = List.rev p.p_rows in
    let on_rows = List.filter (fun (_, c) -> c = '1') rows in
    let off_rows = List.filter (fun (_, c) -> c = '0') rows in
    let func =
      match (on_rows, off_rows) with
      | [], [] -> Cover.empty n (* constant 0 *)
      | _, [] ->
        if n = 0 then Cover.top 0
        else Cover.make n (List.map (fun (plane, _) -> Cube.of_string plane) on_rows)
      | [], _ ->
        (* OFF-set style: function is complement of the given rows *)
        if n = 0 then Cover.empty 0
        else
          Urp.complement
            (Cover.make n
               (List.map (fun (plane, _) -> Cube.of_string plane) off_rows))
      | _ :: _, _ :: _ -> failwith ("blif: node " ^ p.p_name ^ " mixes 1 and 0 rows")
    in
    Network.add_node t ~name:p.p_name ~fanins:p.p_fanins ~func
  in
  List.iter build (List.rev !pendings);
  t

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (".model " ^ Network.name t ^ "\n");
  Buffer.add_string buf (".inputs " ^ String.concat " " (Network.inputs t) ^ "\n");
  Buffer.add_string buf (".outputs " ^ String.concat " " (Network.outputs t) ^ "\n");
  let emit name =
    match Network.find_node t name with
    | None -> ()
    | Some node ->
      Buffer.add_string buf
        (".names " ^ String.concat " " (node.Network.fanins @ [ name ]) ^ "\n");
      let cubes = node.Network.func.Cover.cubes in
      if node.Network.fanins = [] then begin
        if cubes <> [] then Buffer.add_string buf "1\n"
        (* constant 0: no rows *)
      end
      else
        List.iter
          (fun c -> Buffer.add_string buf (Cube.to_string c ^ " 1\n"))
          cubes
  in
  List.iter emit (Network.topological_order t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
