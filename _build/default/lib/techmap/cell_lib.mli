(** Standard-cell library for technology mapping. Each cell carries a
    pattern tree over the NAND2/INV basis (the subject-graph decomposition
    taught in the tech-mapping week), an area, and a pin-to-output delay. *)

type pattern =
  | P_leaf of int  (** Pattern input slot (0-based). *)
  | P_nand of pattern * pattern
  | P_inv of pattern

type cell = {
  cell_name : string;
  area : float;
  delay : float;  (** Worst pin-to-output delay, ns. *)
  arity : int;
  pattern : pattern;
}

val leaves : pattern -> int
(** Number of distinct leaf slots (= the cell's arity). *)

val standard : unit -> cell list
(** The course library: INV, NAND2/3/4, AND2/3, OR2/3, NOR2, AO21/AOI21,
    OA21/OAI21, AOI22, XOR2, XNOR2, with areas and delays loosely modelled
    on a generic standard-cell book (bigger cells amortize area but are
    slower; XOR cells match through repeated pattern-leaf slots). *)

val minimal : unit -> cell list
(** INV and NAND2 only - the "no library" baseline for the mapping
    ablation. *)

val find : cell list -> string -> cell option
