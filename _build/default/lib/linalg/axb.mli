(** Text-file front end of the course's [Ax=b] portal tool (Fig. 4): a
    linear system uploaded as ASCII, solved in the cloud, answer returned
    as ASCII.

    Input format ([#] comments):
    {v
    n <dimension>
    method lu | cg | gs          (optional; default lu)
    row a1 a2 ... an             (n dense rows)  -- or --
    entry i j v                  (any number of sparse triplets, 0-based)
    rhs b1 b2 ... bn
    v} *)

val run : string -> string
(** Solve the uploaded system; returns the solution (one [x<i> = v] line
    each) or an ["error: ..."] line. Never raises. *)
