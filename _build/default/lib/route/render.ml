let net_char id =
  let alphabet = "0123456789abcdefghijklmnopqrstuvwxyz" in
  alphabet.[id mod String.length alphabet]

let grid_ascii g =
  let w = Grid.width g and h = Grid.height g in
  let buf = Buffer.create ((w * 2 * (h + 2)) + 64) in
  Buffer.add_string buf "layer0 (pref horizontal)";
  let pad = max 1 (w - 22) in
  Buffer.add_string buf (String.make (pad + 3) ' ');
  Buffer.add_string buf "layer1 (pref vertical)\n";
  for y = h - 1 downto 0 do
    let emit layer =
      for x = 0 to w - 1 do
        let p = { Grid.layer; x; y } in
        let ch =
          if Grid.is_obstacle g p then '#'
          else match Grid.occupant g p with Some id -> net_char id | None -> '.'
        in
        Buffer.add_char buf ch
      done
    in
    emit 0;
    Buffer.add_string buf "   ";
    emit 1;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let result_ascii (r : Router.result) =
  Printf.sprintf "routed %d/%d nets, wirelength %d, vias %d\n%s" r.Router.completed
    r.Router.total r.Router.wirelength r.Router.vias (grid_ascii r.Router.grid)

let result_svg (r : Router.result) =
  let g = r.Router.grid in
  let s = 8 in
  let w = Grid.width g * s and h = Grid.height g * s in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"%d\" height=\"%d\" \
        fill=\"white\"/>\n"
       w h w h w h);
  let cell color (p : Grid.point) =
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
          fill-opacity=\"0.7\"/>\n"
         (p.Grid.x * s)
         ((Grid.height g - 1 - p.Grid.y) * s)
         s s color)
  in
  for y = 0 to Grid.height g - 1 do
    for x = 0 to Grid.width g - 1 do
      List.iter
        (fun layer ->
          let p = { Grid.layer; x; y } in
          if Grid.is_obstacle g p then cell "#bbbbbb" p
          else
            match Grid.occupant g p with
            | Some _ -> cell (if layer = 0 then "#3b6fd4" else "#d43b3b") p
            | None -> ())
        [ 0; 1 ]
    done
  done;
  (* vias: cells occupied on both layers by the same net *)
  for y = 0 to Grid.height g - 1 do
    for x = 0 to Grid.width g - 1 do
      match
        ( Grid.occupant g { Grid.layer = 0; x; y },
          Grid.occupant g { Grid.layer = 1; x; y } )
      with
      | Some a, Some b when a = b ->
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"black\"/>\n"
             ((x * s) + (s / 4))
             (((Grid.height g - 1 - y) * s) + (s / 4))
             (s / 2) (s / 2))
      | _, _ -> ()
    done
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let placement_svg ~width ~height positions =
  let scale = 600.0 /. max width height in
  let buf = Buffer.create 4096 in
  let w = int_of_float (width *. scale) and h = int_of_float (height *. scale) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n\
        <rect width=\"%d\" height=\"%d\" fill=\"white\" stroke=\"black\"/>\n"
       w h w h);
  Array.iter
    (fun (x, y) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" fill=\"#3b6fd4\"/>\n"
           (x *. scale)
           (float_of_int h -. (y *. scale))))
    positions;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
