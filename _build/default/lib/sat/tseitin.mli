(** Tseitin transformation: linear-size CNF encoding of a Boolean
    expression by introducing one fresh variable per gate, plus the
    SAT-based equivalence checking built from it (the lectures' "SAT or
    BDDs" verification choice). *)

type encoding = {
  cnf : Cnf.t;
  output : Cnf.lit;  (** Literal asserting the expression's output. *)
  var_of_name : (string * int) list;  (** Input name -> CNF variable. *)
}

val encode : Vc_cube.Expr.t -> encoding
(** CNF whose models restricted to the inputs are exactly the expression's
    satisfying assignments once [output] is asserted. The returned [cnf]
    does NOT include the unit clause for [output]; add it for
    satisfiability queries. *)

val sat_of_expr : Vc_cube.Expr.t -> Cnf.t
(** [encode] plus the output unit clause: satisfiable iff the expression
    is. *)

val equivalent : Vc_cube.Expr.t -> Vc_cube.Expr.t -> bool
(** Miter-based equivalence: encode [a XOR b], assert it, call the CDCL
    solver, and report UNSAT as equivalence. *)

val counterexample :
  Vc_cube.Expr.t -> Vc_cube.Expr.t -> (string * bool) list option
(** A distinguishing input assignment, or [None] if equivalent. *)
