bin/axb.mli:
