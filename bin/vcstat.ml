(* vcstat: offline analytics over --journal JSONL files.
   Usage: vcstat summary [--format text|json] [--top N] FILE...
          vcstat spans   [--format text|json] FILE
          vcstat funnel  [--format text|json] FILE
          vcstat request [--format text|json] [--top N] CLIENT SERVER...
          vcstat phases  [--format text|json] [--top N] FILE...
          vcstat flame   [--format svg|text|json] FILE... *)

module Q = Vc_util.Journal_query

let usage () =
  prerr_endline
    "usage: vcstat summary [--format text|json] [--top N] FILE...\n\
    \       vcstat spans   [--format text|json] FILE\n\
    \       vcstat funnel  [--format text|json] FILE\n\
    \       vcstat request [--format text|json] [--top N] CLIENT SERVER...\n\
    \       vcstat phases  [--format text|json] [--top N] FILE...\n\
    \       vcstat flame   [--format svg|text|json] FILE...\n\
     Analyze journal JSONL files written by any tool's --journal FILE flag:\n\
    \  summary  per-component/per-event counts, error rate, latency\n\
    \           percentiles (p50/p90/p99) and the --top N slowest events\n\
    \  spans    text flamegraph reconstructed from *.begin/*.end pairs\n\
    \  funnel   participation funnel over Mooc.Cohort funnel.stage events\n\
    \  request  join a vcload client journal with a vcserve server journal\n\
    \           by trace_id: match rate, per-phase (queue/cache/execute/\n\
    \           reply/wire) latency breakdown, --top N slowest timelines\n\
    \  phases   the same per-phase breakdown over server journals alone\n\
    \  flame    flamegraph SVG (or folded text/JSON) from the continuous\n\
    \           profiler's profile.sample events in a server journal";
  exit 2

type format = Text | Json | Svg

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let command = ref None
  and format = ref None
  and top = ref 5
  and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format" :: fmt :: rest ->
      (match fmt with
      | "text" -> format := Some Text
      | "json" -> format := Some Json
      | "svg" -> format := Some Svg
      | _ ->
        Printf.eprintf "vcstat: unknown format %S (text, json or svg)\n" fmt;
        exit 2);
      parse rest
    | [ "--format" ] ->
      prerr_endline "vcstat: --format requires an argument (text, json or svg)";
      exit 2
    | "--top" :: n :: rest ->
      (match int_of_string_opt n with
      | Some v when v >= 0 -> top := v
      | Some _ | None ->
        Printf.eprintf "vcstat: --top: bad count %S\n" n;
        exit 2);
      parse rest
    | [ "--top" ] ->
      prerr_endline "vcstat: --top requires a count argument";
      exit 2
    | arg :: rest ->
      (match !command with
      | None -> command := Some arg
      | Some _ -> files := arg :: !files);
      parse rest
  in
  (match Array.to_list argv with _ :: rest -> parse rest | [] -> ());
  (* rotated journals: a base FILE argument expands to its
     FILE.00000.jsonl segment set, and globs work without a shell *)
  let files = Q.expand_segments (List.rev !files) in
  (* flame is the one command whose natural output is an image *)
  let format ~default = Option.value ~default !format in
  let load () =
    if files = [] then begin
      prerr_endline "vcstat: no journal file given";
      usage ()
    end;
    match Q.load_files files with
    | l ->
      List.iter
        (fun (line, msg) ->
          Printf.eprintf "vcstat: warning: skipped malformed line %d: %s\n"
            line msg)
        l.Q.malformed;
      l.Q.events
    | exception Sys_error msg ->
      Printf.eprintf "vcstat: %s\n" msg;
      exit 1
  in
  match !command with
  | Some "summary" ->
    let s = Q.summarize ~top:!top (load ()) in
    print_string
      (match format ~default:Text with
      | Text | Svg -> Q.render_summary s
      | Json -> Q.summary_to_json s ^ "\n")
  | Some "spans" ->
    let roots = Q.spans_of (load ()) in
    print_string
      (match format ~default:Text with
      | Text | Svg -> Q.render_spans roots
      | Json -> Q.spans_to_json roots ^ "\n")
  | Some "funnel" ->
    let stages = Q.funnel_of (load ()) in
    print_string
      (match format ~default:Text with
      | Text | Svg -> Q.render_funnel stages
      | Json -> Q.funnel_to_json stages ^ "\n")
  | Some ("request" | "phases") ->
    (* both are the trace-id join; "request" conventionally gets the
       client journal plus the server journal, "phases" server-side
       files alone (the join is vacuous then and only the per-phase
       breakdown is interesting) *)
    let join = Q.join_requests (load ()) in
    print_string
      (match format ~default:Text with
      | Text | Svg -> Q.render_requests ~top:!top join
      | Json -> Q.requests_to_json ~top:!top join ^ "\n")
  | Some "flame" ->
    let ticks, folded = Q.profile_folded (load ()) in
    print_string
      (match format ~default:Svg with
      | Svg -> Vc_util.Profile.flamegraph_svg ~ticks folded
      | Text -> Vc_util.Profile.to_folded_text folded
      | Json ->
        let module Json = Vc_util.Json in
        Json.obj
          [
            ("ticks", Json.int ticks);
            ( "samples",
              Json.int (List.fold_left (fun a (_, n) -> a + n) 0 folded) );
            ( "stacks",
              Json.obj (List.map (fun (k, n) -> (k, Json.int n)) folded) );
          ]
        ^ "\n")
  | Some cmd ->
    Printf.eprintf "vcstat: unknown command %S\n" cmd;
    usage ()
  | None -> usage ()
