lib/place/legalize.mli: Pnet
