module Network = Vc_network.Network
module Cover = Vc_cube.Cover
module Cube = Vc_cube.Cube
module Bdd = Vc_bdd.Bdd
module Espresso = Vc_two_level.Espresso

let node_dc_cover ?(max_support = 16) t name =
  match Network.find_node t name with
  | None -> None
  | Some node ->
    let fanins = node.Network.fanins in
    let k = List.length fanins in
    (* collapse each fanin cone to an expression over primary inputs *)
    let exprs =
      List.map
        (fun f ->
          if List.mem f (Network.inputs t) then Vc_cube.Expr.Var f
          else Network.output_expr t f)
        fanins
    in
    let support =
      List.sort_uniq compare (List.concat_map Vc_cube.Expr.vars exprs)
    in
    if List.length support > max_support then None
    else begin
      let m = Bdd.create () in
      List.iter (fun v -> ignore (Bdd.var m v)) support;
      let fanin_bdds = List.map (Bdd.of_expr m) exprs in
      (* a fanin pattern is reachable iff the conjunction of (fi <-> bit_i)
         is satisfiable over the primary inputs *)
      let unreachable = ref [] in
      for pattern = 0 to (1 lsl k) - 1 do
        let conj =
          List.fold_left
            (fun acc (i, fb) ->
              let want = pattern land (1 lsl i) <> 0 in
              let lit = if want then fb else Bdd.mk_not m fb in
              Bdd.mk_and m acc lit)
            Bdd.one
            (List.mapi (fun i fb -> (i, fb)) fanin_bdds)
        in
        if conj = Bdd.zero then begin
          let lits =
            List.init k (fun i -> (i, pattern land (1 lsl i) <> 0))
          in
          unreachable := Cube.of_literals k lits :: !unreachable
        end
      done;
      Some (Cover.make k !unreachable)
    end

let simplify ?(max_fanins = 8) ?max_support t =
  let saved = ref 0 in
  List.iter
    (fun name ->
      match Network.find_node t name with
      | None -> ()
      | Some node ->
        if List.length node.Network.fanins <= max_fanins then begin
          match node_dc_cover ?max_support t name with
          | None -> ()
          | Some dc ->
            let before = (Espresso.cost node.Network.func).Espresso.literals in
            let minimized = Espresso.minimize ~dc node.Network.func in
            let after = (Espresso.cost minimized).Espresso.literals in
            if after < before then begin
              saved := !saved + before - after;
              Network.add_node t ~name ~fanins:node.Network.fanins
                ~func:minimized
            end
        end)
    (Network.node_names t);
  !saved
