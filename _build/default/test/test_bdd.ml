open Helpers
module Bdd = Vc_bdd.Bdd
module Expr = Vc_cube.Expr
module Order = Vc_bdd.Bdd_order
module Script = Vc_bdd.Bdd_script
module Repair = Vc_bdd.Repair

let with_vars k =
  let m = Bdd.create () in
  List.iter (fun v -> ignore (Bdd.var m v)) (var_names k);
  m

(* --------------------------- core ------------------------------ *)

let core_tests =
  [
    tc "constants" (fun () ->
        let m = Bdd.create () in
        check Alcotest.int "zero size" 0 (Bdd.size m Bdd.zero);
        check Alcotest.int "one size" 0 (Bdd.size m Bdd.one);
        check Alcotest.bool "zero<>one" true (Bdd.zero <> Bdd.one));
    tc "variable basics" (fun () ->
        let m = Bdd.create () in
        let a = Bdd.var m "a" in
        check Alcotest.int "single node" 1 (Bdd.size m a);
        check Alcotest.bool "stable" true (a = Bdd.var m "a");
        check Alcotest.(option int) "index" (Some 0) (Bdd.var_index m "a");
        check Alcotest.string "name" "a" (Bdd.var_name m 0));
    tc "basic laws" (fun () ->
        let m = with_vars 2 in
        let a = Bdd.var m "v0" and b = Bdd.var m "v1" in
        check Alcotest.bool "a&a=a" true (Bdd.mk_and m a a = a);
        check Alcotest.bool "a|!a=1" true
          (Bdd.mk_or m a (Bdd.mk_not m a) = Bdd.one);
        check Alcotest.bool "a&!a=0" true
          (Bdd.mk_and m a (Bdd.mk_not m a) = Bdd.zero);
        check Alcotest.bool "demorgan" true
          (Bdd.mk_not m (Bdd.mk_and m a b)
          = Bdd.mk_or m (Bdd.mk_not m a) (Bdd.mk_not m b));
        check Alcotest.bool "xor via iff" true
          (Bdd.mk_xor m a b = Bdd.mk_not m (Bdd.mk_iff m a b)));
    tc "nand nor imp" (fun () ->
        let m = with_vars 2 in
        let a = Bdd.var m "v0" and b = Bdd.var m "v1" in
        check Alcotest.bool "nand" true
          (Bdd.mk_nand m a b = Bdd.mk_not m (Bdd.mk_and m a b));
        check Alcotest.bool "nor" true
          (Bdd.mk_nor m a b = Bdd.mk_not m (Bdd.mk_or m a b));
        check Alcotest.bool "imp" true
          (Bdd.mk_imp m a b = Bdd.mk_or m (Bdd.mk_not m a) b));
    prop ~count:200 "canonicity: equivalent expressions share a node"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ()))
      (fun (e1, e2) ->
        let m = with_vars 4 in
        let f1 = Bdd.of_expr m e1 and f2 = Bdd.of_expr m e2 in
        Expr.equivalent e1 e2 = (f1 = f2));
    prop ~count:200 "eval agrees with expression semantics"
      (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        List.for_all
          (fun row ->
            let env_expr v =
              let i = int_of_string (String.sub v 1 (String.length v - 1)) in
              row land (1 lsl i) <> 0
            in
            let env_bdd i = row land (1 lsl i) <> 0 in
            Expr.eval env_expr e = Bdd.eval m f env_bdd)
          (List.init 16 (fun i -> i)));
    prop ~count:200 "sat_count equals truth-table count" (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        let tt = Expr.truth_table (var_names 4) e in
        let expected =
          Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 tt
        in
        Bdd.sat_count m f ~nvars:4 = float_of_int expected);
    prop ~count:100 "to_expr inverts of_expr" (arbitrary_expr ()) (fun e ->
        let m = with_vars 4 in
        Expr.equivalent e (Bdd.to_expr m (Bdd.of_expr m e)));
    prop ~count:100 "of_cover matches cover semantics" (arbitrary_cover ())
      (fun cover ->
        let m = with_vars 4 in
        let names = Array.of_list (var_names 4) in
        let f = Bdd.of_cover m ~names cover in
        let tt = Vc_cube.Cover.truth_table cover in
        let expected =
          Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 tt
        in
        Bdd.sat_count m f ~nvars:4 = float_of_int expected);
  ]

(* ----------------------- operations ---------------------------- *)

let op_tests =
  [
    prop ~count:150 "restrict = expression cofactor" (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        let r = Bdd.restrict m f ~var:0 ~value:true in
        r = Bdd.of_expr m (Expr.cofactor "v0" true e));
    prop ~count:150 "exists/forall = expression quantifiers"
      (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        Bdd.exists m [ 1 ] f = Bdd.of_expr m (Expr.exists "v1" e)
        && Bdd.forall m [ 1 ] f = Bdd.of_expr m (Expr.forall "v1" e));
    prop ~count:100 "compose substitutes functions"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ~max_vars:3 ()))
      (fun (e, g) ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        let gb = Bdd.of_expr m g in
        let composed = Bdd.compose m f ~var:0 gb in
        (* expression-level substitution of g for v0 *)
        let rec subst = function
          | Expr.Var "v0" -> g
          | Expr.Var v -> Expr.Var v
          | Expr.Const b -> Expr.Const b
          | Expr.Not a -> Expr.Not (subst a)
          | Expr.And (a, b) -> Expr.And (subst a, subst b)
          | Expr.Or (a, b) -> Expr.Or (subst a, subst b)
          | Expr.Xor (a, b) -> Expr.Xor (subst a, subst b)
        in
        composed = Bdd.of_expr m (subst e));
    prop ~count:150 "support is exactly the essential variables"
      (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        let support = Bdd.support m f in
        List.for_all
          (fun i ->
            let v = Printf.sprintf "v%d" i in
            let sensitive =
              not
                (Expr.equivalent (Expr.cofactor v true e)
                   (Expr.cofactor v false e))
            in
            List.mem i support = sensitive)
          [ 0; 1; 2; 3 ]);
    tc "any_sat finds a model" (fun () ->
        let m = with_vars 3 in
        let e = Expr.parse "v0 & !v1 | v2" in
        let f = Bdd.of_expr m e in
        match Bdd.any_sat m f with
        | None -> Alcotest.fail "satisfiable"
        | Some partial ->
          let env i = List.assoc_opt i partial = Some true in
          check Alcotest.bool "model valid" true (Bdd.eval m f env));
    tc "any_sat on zero" (fun () ->
        let m = Bdd.create () in
        check Alcotest.bool "none" true (Bdd.any_sat m Bdd.zero = None));
    prop ~count:100 "all_sat cubes cover exactly f" (arbitrary_expr ())
      (fun e ->
        let m = with_vars 4 in
        let f = Bdd.of_expr m e in
        let cubes = Bdd.all_sat m f in
        List.for_all
          (fun row ->
            let env i = row land (1 lsl i) <> 0 in
            let in_cubes =
              List.exists
                (List.for_all (fun (v, b) -> env v = b))
                cubes
            in
            Bdd.eval m f env = in_cubes)
          (List.init 16 (fun i -> i)));
    tc "gc preserves roots, drops garbage" (fun () ->
        let m = with_vars 4 in
        let keep = Bdd.of_expr m (Expr.parse "v0 & v1 | v2") in
        (* create garbage *)
        for i = 0 to 50 do
          ignore
            (Bdd.mk_xor m keep
               (Bdd.mk_and m (Bdd.ith_var m (i mod 4)) (Bdd.ith_var m 3)))
        done;
        let before_count = Bdd.node_count m in
        let sat_before = Bdd.sat_count m keep ~nvars:4 in
        match Bdd.gc m ~roots:[ keep ] with
        | [ keep' ] ->
          check Alcotest.bool "shrunk" true (Bdd.node_count m < before_count);
          check (Alcotest.float 0.0) "function preserved" sat_before
            (Bdd.sat_count m keep' ~nvars:4)
        | _ -> Alcotest.fail "one root in, one out");
    tc "cache statistics move" (fun () ->
        let m = with_vars 4 in
        ignore (Bdd.of_expr m (Expr.parse "v0 & v1 | v2 & v3 | v0 & v3"));
        let hits, misses = Bdd.cache_stats m in
        check Alcotest.bool "some activity" true (hits + misses > 0));
  ]

(* ----------------------- variable order ------------------------ *)

(* f = a0 b0 + a1 b1 + a2 b2: linear interleaved, exponential blocked *)
let multiplexer_like n =
  let terms =
    List.init n (fun i ->
        Printf.sprintf "(a%d & b%d)" i i)
  in
  Expr.parse (String.concat " | " terms)

let order_tests =
  [
    tc "interleaved beats blocked on the classic example" (fun () ->
        let e = multiplexer_like 4 in
        let good = Order.build_size e (Order.interleaved_order 4 "a" "b") in
        let bad = Order.build_size e (Order.blocked_order 4 "a" "b") in
        check Alcotest.bool
          (Printf.sprintf "interleaved %d < blocked %d" good bad)
          true (good < bad);
        (* known closed forms: 2n vs > 2^n *)
        check Alcotest.int "interleaved linear" 8 good;
        check Alcotest.bool "blocked exponential" true (bad >= 30));
    tc "sifting recovers a good order from a bad one" (fun () ->
        let e = multiplexer_like 3 in
        let bad = Order.blocked_order 3 "a" "b" in
        let bad_size = Order.build_size e bad in
        let _, sifted_size = Order.sift e bad in
        check Alcotest.bool "improved" true (sifted_size < bad_size);
        let good_size = Order.build_size e (Order.interleaved_order 3 "a" "b") in
        check Alcotest.bool "near optimal" true (sifted_size <= good_size));
    prop ~count:50 "sift never worsens" (arbitrary_expr ()) (fun e ->
        let base = Order.build_size e (var_names 4) in
        let _, sifted = Order.sift e (var_names 4) in
        sifted <= base);
    tc "random restarts bounded by tries" (fun () ->
        let e = multiplexer_like 3 in
        let _, best = Order.random_restarts ~seed:5 ~tries:30 e
            (Order.blocked_order 3 "a" "b") in
        check Alcotest.bool "no worse than start" true
          (best <= Order.build_size e (Order.blocked_order 3 "a" "b")));
  ]

(* -------------------------- script ----------------------------- *)

let script_tests =
  [
    tc "declare, define, query" (fun () ->
        let out =
          Script.run_script
            "boolean a b c\nf = a & b | c\ntautology f\nsatcount f\nsize f"
        in
        check Alcotest.int "one output per command" 5 (List.length out);
        check Alcotest.string "not tautology" "no" (List.nth out 2);
        check Alcotest.string "satcount" "5" (List.nth out 3));
    tc "undeclared identifier is an error" (fun () ->
        let out = Script.run_script "f = x & y" in
        match out with
        | [ line ] ->
          check Alcotest.bool "error" true
            (String.length line > 6 && String.sub line 0 6 = "error:")
        | _ -> Alcotest.fail "one error line");
    tc "functions compose" (fun () ->
        let out =
          Script.run_script
            "boolean a b c\nf = a & b\ng = f | c\nh = a & b | c\nequal g h"
        in
        check Alcotest.string "equal" "yes" (List.nth out 4));
    tc "cofactor command" (fun () ->
        let out =
          Script.run_script
            "boolean a b\nf = a & b\ncofactor g f a 1\nequal g f\nprint g"
        in
        check Alcotest.string "g = b" "b" (List.nth out 4));
    tc "exists and forall commands" (fun () ->
        let st = Script.create () in
        ignore (Script.run st "boolean a b\nf = a ^ b\nexists g f a\nforall h f a");
        (match Script.lookup st "g" with
        | Some g -> check Alcotest.bool "exists a. a^b = 1" true (g = Bdd.one)
        | None -> Alcotest.fail "g missing");
        match Script.lookup st "h" with
        | Some h -> check Alcotest.bool "forall a. a^b = 0" true (h = Bdd.zero)
        | None -> Alcotest.fail "h missing");
    tc "sat on unsatisfiable" (fun () ->
        let out = Script.run_script "boolean a\nf = a & !a\nsat f" in
        check Alcotest.string "unsat" "unsatisfiable" (List.nth out 2));
    tc "comments and blanks ignored" (fun () ->
        let out = Script.run_script "# hello\n\nboolean a\n" in
        check Alcotest.int "one output" 1 (List.length out));
    tc "dot output is well-formed graphviz" (fun () ->
        let m = with_vars 3 in
        let f = Bdd.of_expr m (Expr.parse "v0 & v1 | v2") in
        let dot = Bdd.to_dot m f in
        check Alcotest.bool "digraph" true
          (String.length dot > 7 && String.sub dot 0 7 = "digraph");
        (* one dashed + one solid edge per internal node *)
        let count sub =
          let re = ref 0 and i = ref 0 in
          let n = String.length dot and k = String.length sub in
          while !i + k <= n do
            if String.sub dot !i k = sub then incr re;
            incr i
          done;
          !re
        in
        check Alcotest.int "dashed edges" (Bdd.size m f) (count "style=dashed"));
    prop ~count:60 "script fuzz: random command soup never raises"
      QCheck.(int_bound 100_000)
      (fun seed ->
        let rng = Vc_util.Rng.create seed in
        let names = [| "a"; "b"; "f"; "g"; "zz"; "1bad"; "" |] in
        let pick () = Vc_util.Rng.choose rng names in
        let line () =
          match Vc_util.Rng.int rng 10 with
          | 0 -> "boolean " ^ pick () ^ " " ^ pick ()
          | 1 -> pick () ^ " = " ^ pick () ^ " & " ^ pick ()
          | 2 -> "print " ^ pick ()
          | 3 -> "sat " ^ pick ()
          | 4 -> "satcount " ^ pick ()
          | 5 -> "equal " ^ pick () ^ " " ^ pick ()
          | 6 -> "cofactor g " ^ pick () ^ " " ^ pick () ^ " 1"
          | 7 -> "exists g " ^ pick () ^ " " ^ pick ()
          | 8 -> "dot " ^ pick ()
          | _ -> "bogus " ^ pick ()
        in
        let script =
          String.concat "\n" (List.init 15 (fun _ -> line ()))
        in
        match Script.run_script script with
        | _ -> true
        | exception _ -> false);
  ]

(* -------------------------- repair ----------------------------- *)

let repair_tests =
  [
    tc "gate names" (fun () ->
        check Alcotest.string "and" "AND"
          (Repair.gate_name
             { Repair.d00 = false; d01 = false; d10 = false; d11 = true });
        check Alcotest.string "xor" "XOR"
          (Repair.gate_name
             { Repair.d00 = false; d01 = true; d10 = true; d11 = false });
        check Alcotest.string "raw" "TABLE:0010"
          (Repair.gate_name
             { Repair.d00 = false; d01 = false; d10 = true; d11 = false }));
    tc "direct gate repair finds exactly the spec gate family" (fun () ->
        let tables =
          Repair.repair_2input ~inputs:[ "a"; "b" ]
            ~spec:(Expr.parse "a & b")
            ~build:(fun m ~hole -> hole (Bdd.var m "a") (Bdd.var m "b"))
        in
        check Alcotest.(list string) "only AND" [ "AND" ]
          (List.map Repair.gate_name tables));
    tc "repair inside a larger netlist" (fun () ->
        (* out = OR(hole(a,b), c) should equal (a^b)|c: hole must be XOR *)
        let tables =
          Repair.repair_2input ~inputs:[ "a"; "b"; "c" ]
            ~spec:(Expr.parse "(a ^ b) | c")
            ~build:(fun m ~hole ->
              Bdd.mk_or m (hole (Bdd.var m "a") (Bdd.var m "b")) (Bdd.var m "c"))
        in
        check Alcotest.bool "xor found" true
          (List.mem "XOR" (List.map Repair.gate_name tables)));
    tc "unrepairable location" (fun () ->
        check Alcotest.bool "none" false
          (Repair.repairable ~inputs:[ "a"; "b"; "c" ]
             ~spec:(Expr.parse "a ^ b ^ c")
             ~build:(fun m ~hole ->
               Bdd.mk_and m (hole (Bdd.var m "a") (Bdd.var m "b")) (Bdd.var m "c"))));
    tc "every returned repair actually works" (fun () ->
        let spec = Expr.parse "(s & a) | (!s & b)" in
        let build m ~hole =
          let t1 = Bdd.mk_and m (Bdd.var m "s") (Bdd.var m "a") in
          Bdd.mk_or m t1 (hole (Bdd.var m "s") (Bdd.var m "b"))
        in
        let tables =
          Repair.repair_2input ~inputs:[ "s"; "a"; "b" ] ~spec ~build
        in
        check Alcotest.bool "at least one" true (tables <> []);
        List.iter
          (fun t ->
            (* replay the repair concretely and verify against spec *)
            let m = Bdd.create () in
            List.iter (fun v -> ignore (Bdd.var m v)) [ "s"; "a"; "b" ];
            let gate u v =
              let pick b00 b01 b10 b11 =
                Bdd.mk_ite m u (Bdd.mk_ite m v b11 b10) (Bdd.mk_ite m v b01 b00)
              in
              let of_bool b = if b then Bdd.one else Bdd.zero in
              pick (of_bool t.Repair.d00) (of_bool t.Repair.d01)
                (of_bool t.Repair.d10) (of_bool t.Repair.d11)
            in
            let impl = build m ~hole:gate in
            let spec_bdd = Bdd.of_expr m spec in
            check Alcotest.bool (Repair.gate_name t) true (impl = spec_bdd))
          tables);
  ]

let () =
  Alcotest.run "bdd"
    [
      ("core", core_tests);
      ("operations", op_tests);
      ("ordering", order_tests);
      ("script", script_tests);
      ("repair", repair_tests);
    ]
