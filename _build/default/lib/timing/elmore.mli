(** Elmore delay of RC trees (week 8's electrical timing): first moment of
    the impulse response, computed as
    [tau(sink) = sum over path segments k of R_k * C_downstream(k)]. *)

type tree = {
  resistance : float;  (** Segment resistance from the parent (ohms). *)
  capacitance : float;  (** Node capacitance to ground (farads). *)
  label : string;
  children : tree list;
}

val node : ?label:string -> r:float -> c:float -> tree list -> tree

val downstream_capacitance : tree -> float

val delays : ?driver_resistance:float -> tree -> (string * float) list
(** Elmore delay from the root driver to every labelled node. The driver
    resistance (default 0) sees the whole tree capacitance. *)

val delay_to : ?driver_resistance:float -> tree -> string -> float
(** @raise Not_found if no node has the label. *)

type wire_params = {
  r_per_unit : float;
  c_per_unit : float;
  via_r : float;
  via_c : float;
  load_c : float;  (** Sink input capacitance. *)
}

val default_wire : wire_params
(** Unit-grid RC loosely modelled on a mature process: 0.1 ohm and 0.2 fF
    per grid edge, 2 ohm vias. *)

val of_route : ?params:wire_params -> Vc_route.Maze.path list -> tree
(** RC tree of a routed net: the first point of the first path drives;
    each grid step is one RC segment, layer changes are vias, and every
    path end carries a sink load labelled ["sink<i>"]. *)
