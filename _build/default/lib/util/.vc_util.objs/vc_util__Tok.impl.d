lib/util/tok.ml: List Printf String
