examples/project_routing.mli:
