lib/place/pnet.mli:
