lib/route/geom.mli: Grid Router
