bin/moocsim.mli:
