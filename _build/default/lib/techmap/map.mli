(** Technology mapping by dynamic-programming tree covering over the
    subject graph, in both objective modes taught in the lectures. *)

type mode = Min_area | Min_delay

type gate = {
  g_cell : Cell_lib.cell;
  g_inputs : int list;  (** Subject ids feeding each pattern leaf, in slot order. *)
  g_output : int;  (** Subject id this gate implements. *)
}

type mapping = {
  gates : gate list;  (** Topological (inputs before users). *)
  area : float;
  delay : float;  (** Critical path through cell delays. *)
  subject : Subject.t;
  mode : mode;
}

val cover : ?mode:mode -> Cell_lib.cell list -> Subject.t -> mapping
(** Cover the subject graph. Multi-fanout nodes are covering boundaries
    (classic tree mapping). The library must contain INV and NAND2 so a
    cover always exists.
    @raise Failure if some node cannot be covered. *)

val map_network : ?mode:mode -> Cell_lib.cell list -> Vc_network.Network.t -> mapping
(** [Subject.of_network] then {!cover}. *)

val gate_count : mapping -> int

val simulate : mapping -> (string -> bool) -> (string * bool) list
(** Evaluate the mapped netlist gate by gate (through each cell's pattern
    semantics) - independent of the subject graph's own evaluator, so tests
    can cross-check the cover. *)

val to_string : mapping -> string
(** Human-readable netlist listing. *)
